//! The Datalog points-to analysis of Figure 1 of the paper, run on the
//! §2.1 Java fragment:
//!
//! ```java
//! ClassA o1 = new ClassA() // object A
//! ClassB o2 = new ClassB() // object B
//! ClassB o3 = o2;
//! o2.f = o1;
//! Object r = o3.f; // Q: What is r?
//! ```
//!
//! Run with `cargo run -p flix --example points_to`.

use flix::analyses::points_to::{self, PointsToInput};

fn main() {
    let input = PointsToInput::section_2_1_example();
    let result = points_to::analyze(&input);

    println!("VarPointsTo:");
    for (var, obj) in &result.var_points_to {
        println!("  {var} -> {obj}");
    }
    println!("HeapPointsTo:");
    for (obj, field, target) in &result.heap_points_to {
        println!("  {obj}.{field} -> {target}");
    }
    println!();
    println!(
        "Q: what can r point to?  A: {}",
        if result.may_point_to("r", "A") {
            "object A"
        } else {
            "nothing!"
        }
    );
    assert!(result.may_point_to("r", "A"));
    assert!(!result.may_point_to("r", "B"));
}
