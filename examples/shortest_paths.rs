//! Shortest paths as a least-fixed-point program over the lattice
//! `(ℕ ∪ ∞, ∞, 0, ≥, min, max)` — §4.4 of the paper, cross-checked
//! against Dijkstra.
//!
//! Run with `cargo run -p flix --example shortest_paths`.

use flix::analyses::shortest_paths;
use flix::analyses::workloads::graphs;

fn main() {
    let graph = graphs::generate(12, 20, 0xCAFE);
    println!(
        "graph: {} nodes, {} edges",
        graph.num_nodes,
        graph.edges.len()
    );

    let flix_dist = shortest_paths::single_source(&graph, 0);
    let dijkstra_dist = graphs::dijkstra(&graph, 0);
    assert_eq!(
        flix_dist, dijkstra_dist,
        "lattice solve must match Dijkstra"
    );

    println!("single-source distances from node 0 (FLIX = Dijkstra):");
    for (node, d) in flix_dist.iter().enumerate() {
        match d {
            Some(c) => println!("  0 -> {node}: {c}"),
            None => println!("  0 -> {node}: unreachable"),
        }
    }

    let apsp = shortest_paths::all_pairs(&graph);
    println!("\nall-pairs table has {} reachable pairs", apsp.len());
}
