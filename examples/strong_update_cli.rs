//! The Strong Update analysis (§4.1, Figure 4, Table 1) on a generated
//! C-like pointer program, under all three implementations, with timings —
//! a miniature of the paper's Table 1.
//!
//! Run with `cargo run --release -p flix --example strong_update_cli [facts] [seed]`.

use flix::analyses::strong_update;
use flix::analyses::workloads::c_program;
use std::time::Instant;

fn main() {
    let mut args = std::env::args().skip(1);
    let facts: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(800);
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(42);

    let input = c_program::generate(facts, seed);
    println!(
        "generated program: {} vars, {} objects, {} labels, {} input facts \
         ({} strong-update sites)",
        input.num_vars,
        input.num_objs,
        input.num_labels,
        input.fact_count(),
        input.kill.len()
    );

    let t = Instant::now();
    let imperative = strong_update::imperative::analyze(&input);
    println!(
        "\nimperative (C++ baseline): {:>8.3}s  {} derived facts",
        t.elapsed().as_secs_f64(),
        imperative.derived_facts
    );

    let t = Instant::now();
    let flix = strong_update::flix::analyze(&input);
    println!(
        "FLIX lattice engine:       {:>8.3}s  {} derived facts",
        t.elapsed().as_secs_f64(),
        flix.derived_facts
    );

    let t = Instant::now();
    let datalog = strong_update::datalog::analyze(&input);
    println!(
        "Datalog powerset (DLV):    {:>8.3}s  {} derived facts",
        t.elapsed().as_secs_f64(),
        datalog.derived_facts
    );

    strong_update::assert_pt_agree(&flix, &imperative);
    strong_update::assert_pt_agree(&flix, &datalog);
    assert_eq!(flix.su_after, imperative.su_after);
    println!("\nall three implementations agree ✓");
    println!(
        "flow-insensitive Pt: {} pairs; flow-sensitive cells: {}",
        flix.pt.len(),
        flix.su_after.len()
    );
}
