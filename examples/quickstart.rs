//! Quickstart: build and solve a FLIX program two ways — through the Rust
//! API and through the surface language — and watch a lattice at work.
//!
//! Run with `cargo run -p flix --example quickstart`.

use flix::core::ValueLattice;
use flix::lattice::Parity;
use flix::{BodyItem, Head, HeadTerm, LatticeOps, ProgramBuilder, Solver, Term, Value};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---- 1. Plain Datalog through the Rust API -------------------------
    let mut b = ProgramBuilder::new();
    let edge = b.relation("Edge", 2);
    let path = b.relation("Path", 2);
    for (x, y) in [(1, 2), (2, 3), (3, 4)] {
        b.fact(edge, vec![x.into(), y.into()]);
    }
    // Path(x, y) :- Edge(x, y).
    b.rule(
        Head::new(path, [HeadTerm::var("x"), HeadTerm::var("y")]),
        [BodyItem::atom(edge, [Term::var("x"), Term::var("y")])],
    );
    // Path(x, z) :- Path(x, y), Edge(y, z).
    b.rule(
        Head::new(path, [HeadTerm::var("x"), HeadTerm::var("z")]),
        [
            BodyItem::atom(path, [Term::var("x"), Term::var("y")]),
            BodyItem::atom(edge, [Term::var("y"), Term::var("z")]),
        ],
    );
    let solution = Solver::new().solve(&b.build()?)?;
    println!(
        "transitive closure has {} paths:",
        solution.len("Path").unwrap_or(0)
    );
    for row in solution.relation("Path").expect("declared") {
        println!("  Path({}, {})", row[0], row[1]);
    }

    // ---- 2. Beyond Datalog: a lattice predicate -------------------------
    // Two facts about the same cell join in the parity lattice.
    let mut b = ProgramBuilder::new();
    let obs = b.lattice("Observed", 2, LatticeOps::of::<Parity>());
    b.fact(obs, vec![Value::from("x"), Parity::Even.to_value()]);
    b.fact(obs, vec![Value::from("x"), Parity::Odd.to_value()]);
    b.fact(obs, vec![Value::from("y"), Parity::Odd.to_value()]);
    let solution = Solver::new().solve(&b.build()?)?;
    println!("\nlattice cells (Even ⊔ Odd = ⊤):");
    for (key, value) in solution.lattice("Observed").expect("declared") {
        println!("  Observed({}) = {}", key[0], value);
    }

    // ---- 3. The same idea in the FLIX surface language ------------------
    let source = r#"
        rel Edge(x: Int, y: Int);
        rel Path(x: Int, y: Int);
        Edge(10, 20). Edge(20, 30).
        Path(x, y) :- Edge(x, y).
        Path(x, z) :- Path(x, y), Edge(y, z).
    "#;
    let program = flix::compile(source)?;
    let solution = Solver::new().solve(&program)?;
    println!(
        "\nsurface language: Path(10, 30) derived? {}",
        solution.contains("Path", &[10.into(), 30.into()])
    );
    Ok(())
}
