//! The combined points-to + parity dataflow analysis of Figure 2 of the
//! paper, with its division-by-zero client — the example of what FLIX can
//! express and Datalog cannot.
//!
//! Run with `cargo run -p flix --example dataflow_parity`.

use flix::analyses::dataflow;

fn main() {
    let input = dataflow::example_input();
    let result = dataflow::analyze(&input);

    println!("variable parities:");
    for (var, parity) in &result.int_var {
        println!("  {var}: {parity}");
    }
    println!("heap field parities:");
    for ((obj, field), parity) in &result.int_field {
        println!("  {obj}.{field}: {parity}");
    }
    println!(
        "possible division-by-zero results: {:?}",
        result.arithmetic_errors
    );

    // The story: a = 3 (Odd) is stored into H.f, loaded into b (Odd),
    // c = b + b is Even (maybe zero!), so d = x / c is flagged while
    // e = x / b is provably safe.
    assert!(result.arithmetic_errors.contains("d"));
    assert!(!result.arithmetic_errors.contains("e"));
}
