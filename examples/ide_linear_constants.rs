//! IFDS and IDE side by side — §4.2/§4.3 of the paper.
//!
//! Runs the declarative IFDS (Figure 5) and IDE (Figure 6) solvers on a
//! small interprocedural program, demonstrating the paper's point that
//! IDE is IFDS with one extra micro-function column: the IFDS result is
//! the *reachability* projection of the IDE result, and IDE additionally
//! reports the constant value of each variable.
//!
//! Run with `cargo run -p flix --example ide_linear_constants`.

use flix::analyses::ide::{self, linear_constant::LinearConstant};
use flix::analyses::ifds::{self, problems};
use std::sync::Arc;

fn main() {
    let model = Arc::new(problems::two_proc_example());
    println!(
        "program: {} nodes, {} procedures, {} call sites",
        model.graph.num_nodes,
        model.graph.procs.len(),
        model.graph.calls.len()
    );

    // IFDS: which variables may be tainted where?
    let taint = Arc::new(problems::Taint::new(model.clone()));
    let reachable = ifds::flix::solve(&model.graph, taint);
    println!("\nIFDS taint facts (node, var):");
    for &(n, d) in ifds::without_zero(&reachable).iter() {
        println!("  node {n}: v{} tainted", d - 1);
    }

    // IDE: which constant value does each variable hold where?
    let lcp = Arc::new(LinearConstant::new(model.clone()));
    let values = ide::flix::solve(&model.graph, lcp);
    println!("\nIDE linear constant propagation (node, var, value):");
    for (&(n, d), v) in &values.values {
        if d != ifds::ZERO {
            println!("  node {n}: v{} = {v}", d - 1);
        }
    }

    // The generalisation claim, checked: identity-decorated IDE computes
    // exactly the IFDS reachable set.
    let ide_as_ifds = ide::imperative::solve(
        &model.graph,
        &ide::IdentityIde(problems::Taint::new(model.clone())),
    );
    let ifds_imperative =
        ifds::imperative::solve(&model.graph, &problems::Taint::new(model.clone()));
    assert_eq!(ide_as_ifds.reachable(), ifds_imperative);
    println!("\nIDE restricted to identity micro-functions == IFDS ✓");
}
