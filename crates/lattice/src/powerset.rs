//! The powerset lattice.

use crate::{HasTop, Lattice};
use std::collections::BTreeSet;
use std::fmt;
use std::hash::Hash;

/// The powerset lattice over element type `T`, ordered by inclusion.
///
/// The paper's introduction observes that Datalog is "inherently limited to
/// rules on relations, i.e. powersets of tuples"; this type makes that
/// implicit lattice explicit so it can be compared head-to-head with richer
/// domains (the `ablation` bench measures the §1 claim that embedding the
/// constant propagation lattice in a powerset gives "the worst of both
/// worlds").
///
/// Because the universe of `T` may be unbounded, `⊤` is a distinguished
/// [`PowerSet::Univ`] marker absorbing all joins, mirroring the paper's
/// encoding trick of "a specially designated ⊤ element".
///
/// # Example
///
/// ```
/// use flix_lattice::{Lattice, PowerSet};
///
/// let a = PowerSet::from_iter([1, 2]);
/// let b = PowerSet::from_iter([2, 3]);
/// assert_eq!(a.lub(&b), PowerSet::from_iter([1, 2, 3]));
/// assert_eq!(a.glb(&b), PowerSet::from_iter([2]));
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default)]
pub enum PowerSet<T: Ord> {
    /// The empty set (least element).
    #[default]
    Empty,
    /// A finite, non-empty set of elements.
    Set(BTreeSet<T>),
    /// The whole universe (greatest element).
    Univ,
}

impl<T: Ord + Clone + Hash + fmt::Debug> PowerSet<T> {
    /// Creates the empty set (the least element).
    pub fn empty() -> Self {
        PowerSet::Empty
    }

    /// Creates a singleton set.
    pub fn singleton(x: T) -> Self {
        PowerSet::from_iter([x])
    }

    /// Returns the number of elements, or `None` for the universe.
    pub fn len(&self) -> Option<usize> {
        match self {
            PowerSet::Empty => Some(0),
            PowerSet::Set(s) => Some(s.len()),
            PowerSet::Univ => None,
        }
    }

    /// Returns `true` if this is the empty set.
    pub fn is_empty(&self) -> bool {
        matches!(self, PowerSet::Empty)
    }

    /// Returns `true` if `x` is a member (the universe contains everything).
    pub fn contains(&self, x: &T) -> bool {
        match self {
            PowerSet::Empty => false,
            PowerSet::Set(s) => s.contains(x),
            PowerSet::Univ => true,
        }
    }

    /// Iterates the members of a finite set; `None` for the universe.
    pub fn iter(&self) -> Option<impl Iterator<Item = &T>> {
        match self {
            PowerSet::Empty => Some(None.into_iter().flatten()),
            PowerSet::Set(s) => Some(Some(s.iter()).into_iter().flatten()),
            PowerSet::Univ => None,
        }
    }

    fn normalize(set: BTreeSet<T>) -> Self {
        if set.is_empty() {
            PowerSet::Empty
        } else {
            PowerSet::Set(set)
        }
    }
}

impl<T: Ord + Clone + Hash + fmt::Debug> FromIterator<T> for PowerSet<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        Self::normalize(iter.into_iter().collect())
    }
}

impl<T: Ord + Clone + Hash + fmt::Debug> Lattice for PowerSet<T> {
    fn bottom() -> Self {
        PowerSet::Empty
    }

    fn leq(&self, other: &Self) -> bool {
        match (self, other) {
            (PowerSet::Empty, _) | (_, PowerSet::Univ) => true,
            (PowerSet::Univ, _) => false,
            (PowerSet::Set(a), PowerSet::Set(b)) => a.is_subset(b),
            (PowerSet::Set(_), PowerSet::Empty) => false,
        }
    }

    fn lub(&self, other: &Self) -> Self {
        match (self, other) {
            (PowerSet::Univ, _) | (_, PowerSet::Univ) => PowerSet::Univ,
            (PowerSet::Empty, x) | (x, PowerSet::Empty) => x.clone(),
            (PowerSet::Set(a), PowerSet::Set(b)) => PowerSet::Set(a.union(b).cloned().collect()),
        }
    }

    fn glb(&self, other: &Self) -> Self {
        match (self, other) {
            (PowerSet::Empty, _) | (_, PowerSet::Empty) => PowerSet::Empty,
            (PowerSet::Univ, x) | (x, PowerSet::Univ) => x.clone(),
            (PowerSet::Set(a), PowerSet::Set(b)) => {
                Self::normalize(a.intersection(b).cloned().collect())
            }
        }
    }
}

impl<T: Ord + Clone + Hash + fmt::Debug> HasTop for PowerSet<T> {
    fn top() -> Self {
        PowerSet::Univ
    }
}

impl<T: Ord + fmt::Display> fmt::Display for PowerSet<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PowerSet::Empty => f.write_str("{}"),
            PowerSet::Set(s) => {
                f.write_str("{")?;
                for (i, x) in s.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{x}")?;
                }
                f.write_str("}")
            }
            PowerSet::Univ => f.write_str("𝒰"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checks;

    fn sample() -> Vec<PowerSet<u8>> {
        let mut v = vec![PowerSet::empty(), PowerSet::Univ];
        // All subsets of {1, 2, 3}.
        for mask in 1u8..8 {
            v.push(PowerSet::from_iter(
                (0..3).filter(|b| mask & (1 << b) != 0).map(|b| b + 1),
            ));
        }
        v
    }

    #[test]
    fn lattice_laws_on_subsets_of_three() {
        checks::assert_lattice_laws(&sample());
    }

    #[test]
    fn empty_set_normalizes_to_bottom() {
        assert_eq!(PowerSet::<u8>::from_iter([]), PowerSet::bottom());
        let a = PowerSet::from_iter([1u8]);
        let b = PowerSet::from_iter([2u8]);
        assert_eq!(a.glb(&b), PowerSet::bottom());
    }

    #[test]
    fn universe_absorbs() {
        let a = PowerSet::from_iter([1u8, 2]);
        assert_eq!(a.lub(&PowerSet::Univ), PowerSet::Univ);
        assert_eq!(a.glb(&PowerSet::Univ), a);
        assert!(PowerSet::<u8>::Univ.contains(&99));
    }

    #[test]
    fn iter_and_len() {
        let a = PowerSet::from_iter([3u8, 1, 2]);
        assert_eq!(a.len(), Some(3));
        let collected: Vec<u8> = a.iter().expect("finite").copied().collect();
        assert_eq!(collected, vec![1, 2, 3]);
        assert!(PowerSet::<u8>::Univ.iter().is_none());
    }
}
