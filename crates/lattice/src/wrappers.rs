//! Lattice wrappers and small structural combinators.

use crate::{FiniteLattice, HasTop, Lattice};
use std::fmt;

/// The two-point boolean lattice with `false ⊑ true`.
///
/// §3.3 of the paper: "a monotone filter function is a function from one or
/// more lattice elements to true or false, and is monotone when the
/// booleans are ordered `false < true`". This wrapper makes that ordering a
/// first-class lattice so filter functions can be law-checked like any
/// other monotone function.
///
/// # Example
///
/// ```
/// use flix_lattice::{BoolLat, Lattice};
///
/// assert!(BoolLat(false).leq(&BoolLat(true)));
/// assert_eq!(BoolLat(false).lub(&BoolLat(true)), BoolLat(true));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord, Default)]
pub struct BoolLat(pub bool);

impl Lattice for BoolLat {
    fn bottom() -> Self {
        BoolLat(false)
    }

    fn leq(&self, other: &Self) -> bool {
        !self.0 || other.0
    }

    fn lub(&self, other: &Self) -> Self {
        BoolLat(self.0 || other.0)
    }

    fn glb(&self, other: &Self) -> Self {
        BoolLat(self.0 && other.0)
    }
}

impl HasTop for BoolLat {
    fn top() -> Self {
        BoolLat(true)
    }
}

impl FiniteLattice for BoolLat {
    fn elements() -> Vec<Self> {
        vec![BoolLat(false), BoolLat(true)]
    }
}

impl fmt::Display for BoolLat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Adds a new distinct bottom element below an existing lattice.
///
/// `Lifted<L>` is the lattice `L` with a fresh `⊥` adjoined; the original
/// bottom of `L` becomes the unique atom above it. Useful for
/// distinguishing "unreachable" from "reachable with no information" in
/// dataflow analyses.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum Lifted<L> {
    /// The fresh least element.
    #[default]
    Bot,
    /// An element of the underlying lattice.
    Elem(L),
}

impl<L: Lattice> Lattice for Lifted<L> {
    fn bottom() -> Self {
        Lifted::Bot
    }

    fn leq(&self, other: &Self) -> bool {
        match (self, other) {
            (Lifted::Bot, _) => true,
            (_, Lifted::Bot) => false,
            (Lifted::Elem(a), Lifted::Elem(b)) => a.leq(b),
        }
    }

    fn lub(&self, other: &Self) -> Self {
        match (self, other) {
            (Lifted::Bot, x) | (x, Lifted::Bot) => x.clone(),
            (Lifted::Elem(a), Lifted::Elem(b)) => Lifted::Elem(a.lub(b)),
        }
    }

    fn glb(&self, other: &Self) -> Self {
        match (self, other) {
            (Lifted::Bot, _) | (_, Lifted::Bot) => Lifted::Bot,
            (Lifted::Elem(a), Lifted::Elem(b)) => Lifted::Elem(a.glb(b)),
        }
    }
}

impl<L: HasTop> HasTop for Lifted<L> {
    fn top() -> Self {
        Lifted::Elem(L::top())
    }
}

impl<L: FiniteLattice> FiniteLattice for Lifted<L> {
    fn elements() -> Vec<Self> {
        let mut v = vec![Lifted::Bot];
        v.extend(L::elements().into_iter().map(Lifted::Elem));
        v
    }
}

impl<L: fmt::Display> fmt::Display for Lifted<L> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Lifted::Bot => f.write_str("⊥⊥"),
            Lifted::Elem(e) => write!(f, "{e}"),
        }
    }
}

/// The order dual of a lattice: `⊑` flipped, `⊔` and `⊓` swapped,
/// `⊥` and `⊤` exchanged.
///
/// A greatest-fixed-point problem on `L` is a least-fixed-point problem on
/// `Dual<L>`, so the FLIX engine — which computes least fixed points only —
/// can solve "must" analyses through this wrapper.
///
/// `Dual` requires `HasTop` because the dual's bottom is the original top.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Dual<L>(pub L);

impl<L: HasTop> Lattice for Dual<L> {
    fn bottom() -> Self {
        Dual(L::top())
    }

    fn leq(&self, other: &Self) -> bool {
        other.0.leq(&self.0)
    }

    fn lub(&self, other: &Self) -> Self {
        Dual(self.0.glb(&other.0))
    }

    fn glb(&self, other: &Self) -> Self {
        Dual(self.0.lub(&other.0))
    }
}

impl<L: HasTop> HasTop for Dual<L> {
    fn top() -> Self {
        Dual(L::bottom())
    }
}

impl<L: FiniteLattice + HasTop> FiniteLattice for Dual<L> {
    fn elements() -> Vec<Self> {
        L::elements().into_iter().map(Dual).collect()
    }
}

impl<L: fmt::Display> fmt::Display for Dual<L> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "δ{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{checks, Parity};

    #[test]
    fn bool_lattice_laws() {
        checks::assert_lattice_laws(&BoolLat::elements());
        assert_eq!(BoolLat::height(), 2);
    }

    #[test]
    fn lifted_parity_laws() {
        checks::assert_lattice_laws(&<Lifted<Parity>>::elements());
        assert_eq!(<Lifted<Parity>>::height(), 4);
    }

    #[test]
    fn lifted_bot_below_inner_bot() {
        assert!(Lifted::Bot.leq(&Lifted::Elem(Parity::Bot)));
        assert!(!Lifted::Elem(Parity::Bot).leq(&Lifted::<Parity>::Bot));
    }

    #[test]
    fn dual_parity_laws() {
        checks::assert_lattice_laws(&<Dual<Parity>>::elements());
    }

    #[test]
    fn dual_swaps_bounds() {
        assert_eq!(<Dual<Parity>>::bottom(), Dual(Parity::Top));
        assert_eq!(<Dual<Parity>>::top(), Dual(Parity::Bot));
        assert_eq!(
            Dual(Parity::Even).lub(&Dual(Parity::Odd)),
            Dual(Parity::Bot)
        );
    }
}
