//! The sign lattice used in the second worked example of §3.2.

use crate::{FiniteLattice, HasTop, Lattice};
use std::fmt;

/// The sign abstract domain: tracks whether an integer is negative, zero,
/// or positive.
///
/// This is the lattice of the second worked example in §3.2 of the paper
/// (the `A(1, Pos). A(2, Pos). A(2, Neg).` program), with the Hasse diagram
///
/// ```text
///          Top
///        /  |  \
///     Neg  Zer  Pos
///        \  |  /
///          Bot
/// ```
///
/// # Example
///
/// ```
/// use flix_lattice::{Lattice, Sign};
///
/// assert_eq!(Sign::Pos.lub(&Sign::Neg), Sign::Top);
/// assert_eq!(Sign::Pos.sum(&Sign::Pos), Sign::Pos);
/// assert_eq!(Sign::Pos.sum(&Sign::Neg), Sign::Top);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord, Default)]
pub enum Sign {
    /// No information (least element).
    #[default]
    Bot,
    /// Known negative.
    Neg,
    /// Known zero.
    Zer,
    /// Known positive.
    Pos,
    /// Any sign (greatest element).
    Top,
}

impl Sign {
    /// Abstracts a concrete integer to its sign.
    pub fn alpha(n: i64) -> Self {
        match n.cmp(&0) {
            std::cmp::Ordering::Less => Sign::Neg,
            std::cmp::Ordering::Equal => Sign::Zer,
            std::cmp::Ordering::Greater => Sign::Pos,
        }
    }

    /// Abstract addition. Strict and monotone.
    pub fn sum(&self, other: &Self) -> Self {
        use Sign::*;
        match (self, other) {
            (Bot, _) | (_, Bot) => Bot,
            (Top, _) | (_, Top) => Top,
            (Zer, x) | (x, Zer) => *x,
            (Pos, Pos) => Pos,
            (Neg, Neg) => Neg,
            (Pos, Neg) | (Neg, Pos) => Top,
        }
    }

    /// Abstract multiplication. Strict and monotone.
    pub fn product(&self, other: &Self) -> Self {
        use Sign::*;
        match (self, other) {
            (Bot, _) | (_, Bot) => Bot,
            (Zer, _) | (_, Zer) => Zer,
            (Top, _) | (_, Top) => Top,
            (Pos, Pos) | (Neg, Neg) => Pos,
            (Pos, Neg) | (Neg, Pos) => Neg,
        }
    }

    /// Abstract negation. Strict and monotone.
    pub fn negate(&self) -> Self {
        use Sign::*;
        match self {
            Pos => Neg,
            Neg => Pos,
            other => *other,
        }
    }

    /// Monotone filter: can this value be zero?
    pub fn is_maybe_zero(&self) -> bool {
        matches!(self, Sign::Zer | Sign::Top)
    }

    /// Monotone filter: can this value be negative?
    pub fn is_maybe_negative(&self) -> bool {
        matches!(self, Sign::Neg | Sign::Top)
    }
}

impl Lattice for Sign {
    fn bottom() -> Self {
        Sign::Bot
    }

    fn leq(&self, other: &Self) -> bool {
        use Sign::*;
        matches!(
            (self, other),
            (Bot, _) | (_, Top) | (Neg, Neg) | (Zer, Zer) | (Pos, Pos)
        )
    }

    fn lub(&self, other: &Self) -> Self {
        use Sign::*;
        match (self, other) {
            (Bot, x) | (x, Bot) => *x,
            (Top, _) | (_, Top) => Top,
            (a, b) if a == b => *a,
            _ => Top,
        }
    }

    fn glb(&self, other: &Self) -> Self {
        use Sign::*;
        match (self, other) {
            (Bot, _) | (_, Bot) => Bot,
            (Top, x) | (x, Top) => *x,
            (a, b) if a == b => *a,
            _ => Bot,
        }
    }
}

impl HasTop for Sign {
    fn top() -> Self {
        Sign::Top
    }
}

impl FiniteLattice for Sign {
    fn elements() -> Vec<Self> {
        vec![Sign::Bot, Sign::Neg, Sign::Zer, Sign::Pos, Sign::Top]
    }
}

impl fmt::Display for Sign {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Sign::Bot => "⊥",
            Sign::Neg => "Neg",
            Sign::Zer => "Zer",
            Sign::Pos => "Pos",
            Sign::Top => "⊤",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checks;

    #[test]
    fn lattice_laws_hold() {
        checks::assert_lattice_laws(&Sign::elements());
    }

    #[test]
    fn height_is_three() {
        assert_eq!(Sign::height(), 3);
    }

    #[test]
    fn sum_sound_wrt_concrete() {
        for a in -4i64..=4 {
            for b in -4i64..=4 {
                assert!(Sign::alpha(a + b).leq(&Sign::alpha(a).sum(&Sign::alpha(b))));
            }
        }
    }

    #[test]
    fn product_exact_on_singletons() {
        for a in -4i64..=4 {
            for b in -4i64..=4 {
                assert_eq!(Sign::alpha(a * b), Sign::alpha(a).product(&Sign::alpha(b)));
            }
        }
    }

    #[test]
    fn ops_strict_and_monotone() {
        let elems = Sign::elements();
        checks::assert_strict_binary(&elems, |a| a[0].sum(&a[1]));
        checks::assert_monotone_binary(&elems, |a| a[0].sum(&a[1]));
        checks::assert_strict_binary(&elems, |a| a[0].product(&a[1]));
        checks::assert_monotone_binary(&elems, |a| a[0].product(&a[1]));
        checks::assert_monotone_filter(&elems, |e| e.is_maybe_zero());
        checks::assert_monotone_filter(&elems, |e| e.is_maybe_negative());
    }

    #[test]
    fn negate_swaps_pos_neg() {
        assert_eq!(Sign::Pos.negate(), Sign::Neg);
        assert_eq!(Sign::Zer.negate(), Sign::Zer);
    }
}
