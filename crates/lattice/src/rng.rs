//! A small deterministic pseudo-random number generator.
//!
//! The workload generators and property tests need reproducible random
//! streams, not cryptographic quality. This SplitMix64 generator replaces
//! the external `rand` dependency so the workspace builds with no network
//! access; its API mirrors the subset of `rand` the repo used
//! (`SmallRng::seed_from_u64`, `gen_range`, `gen_bool`).

use std::ops::Range;

/// A seedable SplitMix64 generator.
///
/// # Example
///
/// ```
/// use flix_lattice::rng::SmallRng;
///
/// let mut rng = SmallRng::seed_from_u64(7);
/// let a = rng.gen_range(0..10);
/// assert!((0..10).contains(&a));
/// assert_eq!(SmallRng::seed_from_u64(7).gen_range(0..10), a);
/// ```
#[derive(Clone, Debug)]
pub struct SmallRng {
    state: u64,
}

impl SmallRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> SmallRng {
        SmallRng { state: seed }
    }

    /// The next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Samples uniformly from a half-open range (`lo..hi`, `hi > lo`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample(self, range)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        (self.next_u64() >> 11) as f64 / ((1u64 << 53) as f64) < p
    }

    /// Samples a uniformly random index for a slice of length `len`.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero.
    pub fn index(&mut self, len: usize) -> usize {
        self.gen_range(0..len)
    }
}

/// Types that [`SmallRng::gen_range`] can sample uniformly from a range.
pub trait SampleUniform: Sized {
    /// Samples one value from `range`.
    fn sample(rng: &mut SmallRng, range: Range<Self>) -> Self;
}

macro_rules! impl_sample_unsigned {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample(rng: &mut SmallRng, range: Range<$t>) -> $t {
                assert!(range.start < range.end, "gen_range on empty range");
                let span = (range.end - range.start) as u64;
                range.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_sample_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_signed {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample(rng: &mut SmallRng, range: Range<$t>) -> $t {
                assert!(range.start < range.end, "gen_range on empty range");
                let span = range.end.wrapping_sub(range.start) as u64;
                range.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

impl_sample_signed!(i8, i16, i32, i64, isize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = (0..8)
            .scan(SmallRng::seed_from_u64(42), |r, _| Some(r.next_u64()))
            .collect();
        let b: Vec<u64> = (0..8)
            .scan(SmallRng::seed_from_u64(42), |r, _| Some(r.next_u64()))
            .collect();
        assert_eq!(a, b);
        let c: Vec<u64> = (0..8)
            .scan(SmallRng::seed_from_u64(43), |r, _| Some(r.next_u64()))
            .collect();
        assert_ne!(a, c);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            assert!((0..7).contains(&rng.gen_range(0u32..7)));
            assert!((-5..5).contains(&rng.gen_range(-5i64..5)));
            assert!((3..4).contains(&rng.gen_range(3usize..4)));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(2);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn all_values_reachable_in_small_range() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
