//! The map lattice.

use crate::Lattice;
use std::collections::BTreeMap;
use std::fmt;
use std::hash::Hash;

/// The map lattice from keys `K` to a lattice `L`, ordered pointwise.
///
/// Absent keys denote `⊥`, so the representation is always *compact*: it
/// stores only the non-bottom cells. §3.2 of the paper observes that "the
/// `IntVar` lattice is the map lattice from strings to elements of the
/// parity lattice" — a `lat` predicate of arity *n* denotes exactly this
/// structure with (n−1)-tuple keys, and the engine's database mirrors it.
///
/// `MapLattice` has no representable `⊤` unless the key universe is finite,
/// so it implements [`Lattice`] but not [`HasTop`](crate::HasTop).
///
/// # Example
///
/// ```
/// use flix_lattice::{Lattice, MapLattice, Parity};
///
/// let mut a = MapLattice::new();
/// a.join_at("x", Parity::Even);
/// let mut b = MapLattice::new();
/// b.join_at("x", Parity::Odd);
/// b.join_at("y", Parity::Even);
///
/// let joined = a.lub(&b);
/// assert_eq!(joined.get(&"x"), Parity::Top);
/// assert_eq!(joined.get(&"y"), Parity::Even);
/// assert_eq!(joined.get(&"z"), Parity::Bot); // absent = bottom
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct MapLattice<K: Ord, L> {
    entries: BTreeMap<K, L>,
}

impl<K: Ord + Clone + Hash + fmt::Debug, L: Lattice> MapLattice<K, L> {
    /// Creates the empty map, which is the bottom element.
    pub fn new() -> Self {
        MapLattice {
            entries: BTreeMap::new(),
        }
    }

    /// Returns the value at `key` (`⊥` when absent).
    pub fn get(&self, key: &K) -> L {
        self.entries.get(key).cloned().unwrap_or_else(L::bottom)
    }

    /// Joins `value` into the cell at `key`, returning `true` if the cell
    /// strictly increased.
    ///
    /// This is the per-cell lub compaction step of the FLIX immediate
    /// consequence operator (§3.2 step 4): the map never stores two
    /// comparable values for one key.
    pub fn join_at(&mut self, key: K, value: L) -> bool {
        if value.is_bottom() {
            return false;
        }
        match self.entries.get_mut(&key) {
            Some(old) => {
                let joined = old.lub(&value);
                if joined == *old {
                    false
                } else {
                    *old = joined;
                    true
                }
            }
            None => {
                self.entries.insert(key, value);
                true
            }
        }
    }

    /// Iterates the non-bottom cells in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &L)> {
        self.entries.iter()
    }

    /// Returns the number of non-bottom cells.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if every cell is bottom.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl<K, L> Lattice for MapLattice<K, L>
where
    K: Ord + Clone + Hash + fmt::Debug,
    L: Lattice,
{
    fn bottom() -> Self {
        MapLattice::new()
    }

    fn leq(&self, other: &Self) -> bool {
        self.entries.iter().all(|(k, v)| v.leq(&other.get(k)))
    }

    fn lub(&self, other: &Self) -> Self {
        let mut out = self.clone();
        for (k, v) in &other.entries {
            out.join_at(k.clone(), v.clone());
        }
        out
    }

    fn glb(&self, other: &Self) -> Self {
        let mut entries = BTreeMap::new();
        for (k, v) in &self.entries {
            let met = v.glb(&other.get(k));
            if !met.is_bottom() {
                entries.insert(k.clone(), met);
            }
        }
        MapLattice { entries }
    }

    fn is_bottom(&self) -> bool {
        self.is_empty()
    }
}

impl<K: Ord + Clone + Hash + fmt::Debug, L: Lattice> FromIterator<(K, L)> for MapLattice<K, L> {
    fn from_iter<I: IntoIterator<Item = (K, L)>>(iter: I) -> Self {
        let mut out = Self::new();
        for (k, v) in iter {
            out.join_at(k, v);
        }
        out
    }
}

impl<K: Ord + Clone + Hash + fmt::Debug, L: Lattice> Extend<(K, L)> for MapLattice<K, L> {
    fn extend<I: IntoIterator<Item = (K, L)>>(&mut self, iter: I) {
        for (k, v) in iter {
            self.join_at(k, v);
        }
    }
}

impl<K: Ord + fmt::Display, L: fmt::Display> fmt::Display for MapLattice<K, L> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("{")?;
        for (i, (k, v)) in self.entries.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{k} ↦ {v}")?;
        }
        f.write_str("}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{checks, Parity};

    type M = MapLattice<u8, Parity>;

    fn sample() -> Vec<M> {
        let ps = [Parity::Bot, Parity::Even, Parity::Odd, Parity::Top];
        let mut out = Vec::new();
        for a in ps {
            for b in ps {
                out.push(M::from_iter([(0u8, a), (1u8, b)]));
            }
        }
        out
    }

    #[test]
    fn lattice_laws_on_two_key_maps() {
        checks::assert_lattice_laws(&sample());
    }

    #[test]
    fn absent_keys_are_bottom() {
        let m = M::new();
        assert_eq!(m.get(&42), Parity::Bot);
        assert!(m.is_bottom());
    }

    #[test]
    fn join_at_reports_strict_increase() {
        let mut m = M::new();
        assert!(m.join_at(0, Parity::Even));
        assert!(!m.join_at(0, Parity::Even)); // no change
        assert!(!m.join_at(0, Parity::Bot)); // bottom never changes a cell
        assert!(m.join_at(0, Parity::Odd)); // Even ⊔ Odd = Top, strict
        assert_eq!(m.get(&0), Parity::Top);
    }

    #[test]
    fn compactness_bottom_cells_are_dropped() {
        let m = M::from_iter([(0u8, Parity::Bot), (1u8, Parity::Even)]);
        assert_eq!(m.len(), 1);
        let met = m.glb(&M::from_iter([(1u8, Parity::Odd)]));
        assert!(met.is_empty(), "Even ⊓ Odd = ⊥ must leave no cell");
    }

    #[test]
    fn pointwise_order() {
        let lo = M::from_iter([(0u8, Parity::Even)]);
        let hi = M::from_iter([(0u8, Parity::Top), (1u8, Parity::Odd)]);
        assert!(lo.leq(&hi));
        assert!(!hi.leq(&lo));
    }

    #[test]
    fn display_shows_cells() {
        let m = MapLattice::from_iter([("x", Parity::Even)]);
        assert_eq!(m.to_string(), "{x ↦ Even}");
    }
}
