//! Direct products of lattices (§3.4 of the paper).

use crate::{FiniteLattice, HasTop, Lattice};
use std::fmt;

/// The direct product of two lattices, ordered componentwise.
///
/// §3.4: "FLIX provides the direct product automatically, but the reduced
/// and logical products must be implemented manually." `Pair` is the
/// building block: running a sign analysis and a parity analysis over
/// `Pair<Sign, Parity>` is exactly the direct product combination the paper
/// describes (where the element `(Zer, Odd)` is representable even though
/// no concrete value inhabits it — the hallmark of a *non-reduced* product).
///
/// A reduced product can be layered on top by normalising such empty
/// elements to `(⊥, ⊥)` in user transfer functions.
///
/// # Example
///
/// ```
/// use flix_lattice::{Lattice, Pair, Parity, Sign};
///
/// let a = Pair(Sign::Pos, Parity::Even);
/// let b = Pair(Sign::Neg, Parity::Even);
/// assert_eq!(a.lub(&b), Pair(Sign::Top, Parity::Even));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct Pair<A, B>(pub A, pub B);

impl<A: Lattice, B: Lattice> Lattice for Pair<A, B> {
    fn bottom() -> Self {
        Pair(A::bottom(), B::bottom())
    }

    fn leq(&self, other: &Self) -> bool {
        self.0.leq(&other.0) && self.1.leq(&other.1)
    }

    fn lub(&self, other: &Self) -> Self {
        Pair(self.0.lub(&other.0), self.1.lub(&other.1))
    }

    fn glb(&self, other: &Self) -> Self {
        Pair(self.0.glb(&other.0), self.1.glb(&other.1))
    }
}

impl<A: HasTop, B: HasTop> HasTop for Pair<A, B> {
    fn top() -> Self {
        Pair(A::top(), B::top())
    }
}

impl<A: FiniteLattice, B: FiniteLattice> FiniteLattice for Pair<A, B> {
    fn elements() -> Vec<Self> {
        let bs = B::elements();
        A::elements()
            .into_iter()
            .flat_map(|a| bs.iter().map(move |b| Pair(a.clone(), b.clone())))
            .collect()
    }
}

impl<A: fmt::Display, B: fmt::Display> fmt::Display for Pair<A, B> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.0, self.1)
    }
}

/// The direct product of three lattices, ordered componentwise.
///
/// Provided as a convenience; deeper products nest [`Pair`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct Triple<A, B, C>(pub A, pub B, pub C);

impl<A: Lattice, B: Lattice, C: Lattice> Lattice for Triple<A, B, C> {
    fn bottom() -> Self {
        Triple(A::bottom(), B::bottom(), C::bottom())
    }

    fn leq(&self, other: &Self) -> bool {
        self.0.leq(&other.0) && self.1.leq(&other.1) && self.2.leq(&other.2)
    }

    fn lub(&self, other: &Self) -> Self {
        Triple(
            self.0.lub(&other.0),
            self.1.lub(&other.1),
            self.2.lub(&other.2),
        )
    }

    fn glb(&self, other: &Self) -> Self {
        Triple(
            self.0.glb(&other.0),
            self.1.glb(&other.1),
            self.2.glb(&other.2),
        )
    }
}

impl<A: HasTop, B: HasTop, C: HasTop> HasTop for Triple<A, B, C> {
    fn top() -> Self {
        Triple(A::top(), B::top(), C::top())
    }
}

impl<A, B, C> fmt::Display for Triple<A, B, C>
where
    A: fmt::Display,
    B: fmt::Display,
    C: fmt::Display,
{
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {}, {})", self.0, self.1, self.2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{checks, BoolLat, Parity, Sign};

    #[test]
    fn pair_laws() {
        checks::assert_lattice_laws(&<Pair<Parity, BoolLat>>::elements());
    }

    #[test]
    fn pair_height_adds() {
        // height(Pair) = height(A) + height(B) - 1.
        assert_eq!(<Pair<Parity, BoolLat>>::height(), 3 + 2 - 1);
    }

    #[test]
    fn direct_product_keeps_unreachable_elements() {
        // (Zer, Odd) is representable despite being concretely empty —
        // that is what makes this the *direct*, not *reduced*, product.
        let weird = Pair(Sign::Zer, Parity::Odd);
        assert!(Pair::<Sign, Parity>::bottom().leq(&weird));
    }

    #[test]
    fn triple_componentwise() {
        let a = Triple(Sign::Pos, Parity::Even, BoolLat(false));
        let b = Triple(Sign::Pos, Parity::Odd, BoolLat(true));
        assert_eq!(a.lub(&b), Triple(Sign::Pos, Parity::Top, BoolLat(true)));
        assert_eq!(a.glb(&b), Triple(Sign::Pos, Parity::Bot, BoolLat(false)));
        assert!(Triple::<Sign, Parity, BoolLat>::bottom().leq(&a));
        assert!(a.leq(&Triple::<Sign, Parity, BoolLat>::top()));
    }
}
