//! A bounded interval lattice.

use crate::{HasTop, Lattice};
use std::fmt;

/// A bounded interval abstract domain over `i64`.
///
/// §2.2 of the paper names interval analysis as a dataflow analysis that is
/// inexpressible in Datalog but expressible in FLIX. The classic interval
/// domain has infinite ascending chains; FLIX requires lattices of *finite
/// height* for termination (§3.2), so — like the paper's implicit
/// assumption — we clamp endpoints to a fixed range `[MIN_BOUND, MAX_BOUND]`
/// (values outside it saturate to the bound), which bounds the height by
/// `2 * (MAX_BOUND - MIN_BOUND + 1) + 2`. A [`widen`](Interval::widen)
/// operator is provided for clients that prefer accelerated convergence
/// over clamping.
///
/// # Example
///
/// ```
/// use flix_lattice::{Interval, Lattice};
///
/// let a = Interval::of(1, 3);
/// let b = Interval::of(2, 5);
/// assert_eq!(a.lub(&b), Interval::of(1, 5));
/// assert_eq!(a.glb(&b), Interval::of(2, 3));
/// assert_eq!(a.sum(&b), Interval::of(3, 8));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum Interval {
    /// The empty interval (least element).
    #[default]
    Bot,
    /// The interval `[lo, hi]` with `lo <= hi`, both within the clamp range.
    Range(i64, i64),
}

impl Interval {
    /// The smallest representable endpoint.
    pub const MIN_BOUND: i64 = -(1 << 20);
    /// The largest representable endpoint.
    pub const MAX_BOUND: i64 = 1 << 20;

    /// Creates the interval `[lo, hi]`, clamping both endpoints to the
    /// representable range.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn of(lo: i64, hi: i64) -> Self {
        assert!(
            lo <= hi,
            "interval lower bound {lo} exceeds upper bound {hi}"
        );
        Interval::Range(Self::clamp(lo), Self::clamp(hi))
    }

    /// Creates the singleton interval `[n, n]`.
    pub fn singleton(n: i64) -> Self {
        Interval::of(n, n)
    }

    fn clamp(n: i64) -> i64 {
        n.clamp(Self::MIN_BOUND, Self::MAX_BOUND)
    }

    /// Returns the `(lo, hi)` endpoints, or `None` for the empty interval.
    pub fn bounds(&self) -> Option<(i64, i64)> {
        match self {
            Interval::Bot => None,
            Interval::Range(lo, hi) => Some((*lo, *hi)),
        }
    }

    /// Returns `true` if the concrete value `n` is contained.
    pub fn contains(&self, n: i64) -> bool {
        match self {
            Interval::Bot => false,
            Interval::Range(lo, hi) => *lo <= n && n <= *hi,
        }
    }

    /// Abstract addition with saturation. Strict and monotone.
    pub fn sum(&self, other: &Self) -> Self {
        match (self.bounds(), other.bounds()) {
            (Some((a, b)), Some((c, d))) => Interval::of(a.saturating_add(c), b.saturating_add(d)),
            _ => Interval::Bot,
        }
    }

    /// Abstract negation. Strict and monotone.
    pub fn negate(&self) -> Self {
        match self.bounds() {
            Some((lo, hi)) => Interval::of(hi.saturating_neg(), lo.saturating_neg()),
            None => Interval::Bot,
        }
    }

    /// Abstract multiplication with saturation. Strict and monotone.
    pub fn product(&self, other: &Self) -> Self {
        match (self.bounds(), other.bounds()) {
            (Some((a, b)), Some((c, d))) => {
                let products = [
                    a.saturating_mul(c),
                    a.saturating_mul(d),
                    b.saturating_mul(c),
                    b.saturating_mul(d),
                ];
                let lo = *products.iter().min().expect("non-empty");
                let hi = *products.iter().max().expect("non-empty");
                Interval::of(lo, hi)
            }
            _ => Interval::Bot,
        }
    }

    /// The classic interval widening operator: any growing bound jumps to
    /// the clamp limit. An upper bound operator that accelerates ascending
    /// chains to at most three steps.
    pub fn widen(&self, newer: &Self) -> Self {
        match (self.bounds(), newer.bounds()) {
            (None, _) => *newer,
            (_, None) => *self,
            (Some((a, b)), Some((c, d))) => {
                let lo = if c < a { Self::MIN_BOUND } else { a };
                let hi = if d > b { Self::MAX_BOUND } else { b };
                Interval::Range(lo, hi)
            }
        }
    }

    /// Monotone filter: can this value be zero?
    pub fn is_maybe_zero(&self) -> bool {
        self.contains(0)
    }
}

impl Lattice for Interval {
    fn bottom() -> Self {
        Interval::Bot
    }

    fn leq(&self, other: &Self) -> bool {
        match (self.bounds(), other.bounds()) {
            (None, _) => true,
            (_, None) => false,
            (Some((a, b)), Some((c, d))) => c <= a && b <= d,
        }
    }

    fn lub(&self, other: &Self) -> Self {
        match (self.bounds(), other.bounds()) {
            (None, _) => *other,
            (_, None) => *self,
            (Some((a, b)), Some((c, d))) => Interval::Range(a.min(c), b.max(d)),
        }
    }

    fn glb(&self, other: &Self) -> Self {
        match (self.bounds(), other.bounds()) {
            (Some((a, b)), Some((c, d))) if a.max(c) <= b.min(d) => {
                Interval::Range(a.max(c), b.min(d))
            }
            _ => Interval::Bot,
        }
    }
}

impl HasTop for Interval {
    fn top() -> Self {
        Interval::Range(Self::MIN_BOUND, Self::MAX_BOUND)
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Interval::Bot => f.write_str("⊥"),
            Interval::Range(lo, hi) => write!(f, "[{lo}, {hi}]"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checks;

    fn sample() -> Vec<Interval> {
        let mut v = vec![Interval::Bot, Interval::top()];
        for lo in -2..=2 {
            for hi in lo..=2 {
                v.push(Interval::of(lo, hi));
            }
        }
        v
    }

    #[test]
    fn lattice_laws_on_sample() {
        checks::assert_lattice_laws(&sample());
    }

    #[test]
    fn arithmetic_is_sound() {
        for a in -3i64..=3 {
            for b in -3i64..=3 {
                let ia = Interval::of(a.min(0), a.max(0));
                let ib = Interval::singleton(b);
                assert!(ia.sum(&ib).contains(a + b));
                assert!(ia.product(&ib).contains(a * b));
                assert!(ia.negate().contains(-a));
            }
        }
    }

    #[test]
    fn ops_monotone_on_sample() {
        let s = sample();
        checks::assert_monotone_binary(&s, |a| a[0].sum(&a[1]));
        checks::assert_monotone_binary(&s, |a| a[0].product(&a[1]));
        checks::assert_monotone_filter(&s, |e| e.is_maybe_zero());
        checks::assert_strict_binary(&s, |a| a[0].sum(&a[1]));
    }

    #[test]
    fn widening_reaches_top_quickly() {
        let mut cur = Interval::singleton(0);
        for i in 1..4 {
            cur = cur.widen(&cur.lub(&Interval::singleton(i)));
        }
        assert_eq!(cur.bounds().expect("non-empty").1, Interval::MAX_BOUND);
    }

    #[test]
    fn endpoints_clamp() {
        let huge = Interval::of(i64::MIN + 1, i64::MAX - 1);
        assert_eq!(huge, Interval::top());
    }

    #[test]
    #[should_panic(expected = "exceeds upper bound")]
    fn inverted_bounds_panic() {
        let _ = Interval::of(3, 1);
    }
}
