//! The min-cost lattice for shortest paths (§4.4 of the paper).

use crate::{HasTop, Lattice};
use std::fmt;

/// The shortest-path cost lattice `(ℕ ∪ {∞}, ∞, 0, ≥, min, max)`.
///
/// §4.4 of the paper: "to compute all-pairs shortest paths, let
/// `(ℕ, ∞, 0, ≥, min, max)` be a lattice over the natural numbers." The
/// partial order is *reversed* numeric order — a smaller distance is a
/// *larger* lattice element — so iterating to a least fixed point shrinks
/// distances monotonically:
///
/// * `⊥ = ∞` (no path known yet),
/// * `⊤ = 0`,
/// * `a ⊑ b` iff `a ≥ b` numerically,
/// * `a ⊔ b = min(a, b)`, `a ⊓ b = max(a, b)`.
///
/// # Example
///
/// ```
/// use flix_lattice::{Lattice, MinCost};
///
/// let five = MinCost::finite(5);
/// let three = MinCost::finite(3);
/// assert_eq!(five.lub(&three), three); // shorter path wins
/// assert!(MinCost::INFINITY.leq(&five));
/// assert_eq!(five.add(&three), MinCost::finite(8)); // path extension
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum MinCost {
    /// No path (`∞`, the least element).
    #[default]
    Infinite,
    /// A path of this total weight.
    Finite(u64),
}

impl MinCost {
    /// The least element, `∞`.
    pub const INFINITY: MinCost = MinCost::Infinite;

    /// Creates a finite cost.
    pub fn finite(c: u64) -> Self {
        MinCost::Finite(c)
    }

    /// Returns the numeric cost, or `None` for `∞`.
    pub fn value(&self) -> Option<u64> {
        match self {
            MinCost::Infinite => None,
            MinCost::Finite(c) => Some(*c),
        }
    }

    /// Extends a path by an edge weight: `∞ + w = ∞` (strict), otherwise
    /// saturating numeric addition. Monotone: shortening the path shortens
    /// the extension.
    pub fn add(&self, weight: &MinCost) -> Self {
        match (self, weight) {
            (MinCost::Finite(a), MinCost::Finite(b)) => MinCost::Finite(a.saturating_add(*b)),
            _ => MinCost::Infinite,
        }
    }

    /// Extends a path by a constant edge weight; see [`MinCost::add`].
    pub fn add_weight(&self, weight: u64) -> Self {
        self.add(&MinCost::Finite(weight))
    }
}

impl Lattice for MinCost {
    fn bottom() -> Self {
        MinCost::Infinite
    }

    fn leq(&self, other: &Self) -> bool {
        match (self, other) {
            (MinCost::Infinite, _) => true,
            (MinCost::Finite(_), MinCost::Infinite) => false,
            (MinCost::Finite(a), MinCost::Finite(b)) => a >= b,
        }
    }

    fn lub(&self, other: &Self) -> Self {
        match (self, other) {
            (MinCost::Infinite, x) | (x, MinCost::Infinite) => *x,
            (MinCost::Finite(a), MinCost::Finite(b)) => MinCost::Finite(*a.min(b)),
        }
    }

    fn glb(&self, other: &Self) -> Self {
        match (self, other) {
            (MinCost::Infinite, _) | (_, MinCost::Infinite) => MinCost::Infinite,
            (MinCost::Finite(a), MinCost::Finite(b)) => MinCost::Finite(*a.max(b)),
        }
    }
}

impl HasTop for MinCost {
    fn top() -> Self {
        MinCost::Finite(0)
    }
}

impl fmt::Display for MinCost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MinCost::Infinite => f.write_str("∞"),
            MinCost::Finite(c) => write!(f, "{c}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checks;

    fn sample() -> Vec<MinCost> {
        let mut v: Vec<MinCost> = (0..6).map(MinCost::finite).collect();
        v.push(MinCost::INFINITY);
        v
    }

    #[test]
    fn lattice_laws_on_sample() {
        checks::assert_lattice_laws(&sample());
    }

    #[test]
    fn order_is_reversed_numeric() {
        assert!(MinCost::finite(9).leq(&MinCost::finite(2)));
        assert!(!MinCost::finite(2).leq(&MinCost::finite(9)));
        assert!(MinCost::INFINITY.leq(&MinCost::finite(1_000_000)));
        assert!(MinCost::finite(1).leq(&MinCost::top()));
    }

    #[test]
    fn add_is_strict_and_monotone() {
        let s = sample();
        checks::assert_strict_binary(&s, |a| a[0].add(&a[1]));
        checks::assert_monotone_binary(&s, |a| a[0].add(&a[1]));
    }

    #[test]
    fn add_saturates() {
        let big = MinCost::finite(u64::MAX);
        assert_eq!(big.add_weight(5), big);
    }

    #[test]
    fn display() {
        assert_eq!(MinCost::INFINITY.to_string(), "∞");
        assert_eq!(MinCost::finite(7).to_string(), "7");
    }
}
