//! The IDE micro-function lattice (§4.3 of the paper, Figure 7).

use crate::{Constant, Flat, HasTop, Lattice};
use std::fmt;

/// The micro-function lattice `F` of the IDE linear constant propagation
/// example (§4.3, Figure 7).
///
/// Elements represent certain functions from the constant propagation
/// lattice `V` to itself:
///
/// * [`Transformer::Bot`] is `λl.⊥`,
/// * [`Transformer::non_bot(a, b, c)`](Transformer::non_bot) is
///   `λl.(a·l + b) ⊔ c`, where `a`, `b` are integers and `c ∈ V`.
///
/// Values are kept in a normal form: every function with `c = ⊤` is
/// pointwise equal to `λl.⊤`, so it is canonicalised to
/// `NonBot(0, 0, ⊤)`. With that normalisation, [`Lattice::lub`] (which
/// over-approximates the pointwise join of two incomparable linear maps by
/// `λl.⊤`, exactly as IDE implementations do) is idempotent, commutative
/// and associative, so `(F, ⊑, ⊔)` defined by `x ⊑ y ⇔ x ⊔ y = y` is a
/// genuine finite-height lattice — see the property tests.
///
/// [`Transformer::comp`] is the composition operation of Figure 7,
/// transcribed case for case, and [`Transformer::apply`] evaluates the
/// represented micro-function on a lattice value.
///
/// # Example
///
/// ```
/// use flix_lattice::{Constant, Transformer};
///
/// // λl. 2·l + 1, then λl. 3·l  ==>  λl. 6·l + 3
/// let f = Transformer::linear(2, 1);
/// let g = Transformer::linear(3, 0);
/// let h = Transformer::comp(&f, &g);
/// assert_eq!(h.apply(&Constant::cst(5)), Constant::cst(33));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum Transformer {
    /// The function `λl.⊥` (least element).
    #[default]
    Bot,
    /// The function `λl.(a·l + b) ⊔ c`. Use [`Transformer::non_bot`] to
    /// construct values in normal form.
    NonBot {
        /// The multiplicative coefficient `a`.
        a: i64,
        /// The additive coefficient `b`.
        b: i64,
        /// The constant join component `c`.
        c: Constant,
    },
}

impl Transformer {
    /// Creates `λl.(a·l + b) ⊔ c` in normal form.
    pub fn non_bot(a: i64, b: i64, c: Constant) -> Self {
        if c == Flat::Top {
            Transformer::NonBot {
                a: 0,
                b: 0,
                c: Flat::Top,
            }
        } else {
            Transformer::NonBot { a, b, c }
        }
    }

    /// Creates the pure linear function `λl.a·l + b`.
    pub fn linear(a: i64, b: i64) -> Self {
        Transformer::non_bot(a, b, Flat::Bot)
    }

    /// The identity micro-function `λl.l`, used by the third IDE rule of
    /// Figure 6 (`JumpFn(d3, start, d3, identity())`).
    pub fn identity() -> Self {
        Transformer::linear(1, 0)
    }

    /// The constant micro-function `λl.⊤` (greatest element).
    pub fn top_transformer() -> Self {
        Transformer::non_bot(0, 0, Flat::Top)
    }

    /// The constant micro-function `λl.k`, loading the constant `k`.
    ///
    /// Represented as `NonBot(0, k, Cst(k))` — exactly the form Figure 7
    /// produces when composing the bottom transformer with a function whose
    /// constant component is `Cst(k)` — so that it yields `k` even on `⊥`.
    pub fn constant(k: i64) -> Self {
        Transformer::non_bot(0, k, Flat::Val(k))
    }

    /// Evaluates the represented micro-function on `l`.
    ///
    /// The linear part `a·l + b` uses the strict abstract arithmetic of
    /// [`Constant`], so `apply(⊥) = ⊥ ⊔ c = c`.
    pub fn apply(&self, l: &Constant) -> Constant {
        match self {
            Transformer::Bot => Flat::Bot,
            Transformer::NonBot { a, b, c } => {
                let linear = Constant::cst(*a).product(l).sum(&Constant::cst(*b));
                linear.lub(c)
            }
        }
    }

    /// Function composition, applied *first-then-second*: the result is
    /// `second ∘ first`. This is the `comp` operation of Figure 7 of the
    /// paper, transcribed case for case (the figure's `t1` is `first` and
    /// `t2` is `second`; its case order binds `(a2, b2, c2)` to `first`).
    pub fn comp(first: &Transformer, second: &Transformer) -> Transformer {
        use Transformer::*;
        match (first, second) {
            // case (_, BotTransformer) => BotTransformer
            (_, Bot) => Bot,
            // case (BotTransformer, NonBotTransformer(a, b, c)) =>
            //   composing after λl.⊥ yields the constant function λl.c.
            (Bot, NonBot { c, .. }) => match c {
                Flat::Bot => Bot,
                Flat::Val(k) => Transformer::non_bot(0, *k, Flat::Val(*k)),
                Flat::Top => Transformer::non_bot(0, 0, Flat::Top),
            },
            // case (NonBot(a2,b2,c2), NonBot(a1,b1,c1)) =>
            //   NonBot(a1*a2, a1*b2 + b1, (c2*a1 + b1) ⊔ c1)
            (
                NonBot {
                    a: a2,
                    b: b2,
                    c: c2,
                },
                NonBot {
                    a: a1,
                    b: b1,
                    c: c1,
                },
            ) => {
                let lifted = c2
                    .product(&Constant::cst(*a1))
                    .sum(&Constant::cst(*b1))
                    .lub(c1);
                Transformer::non_bot(
                    a1.wrapping_mul(*a2),
                    a1.wrapping_mul(*b2).wrapping_add(*b1),
                    lifted,
                )
            }
        }
    }
}

impl Lattice for Transformer {
    fn bottom() -> Self {
        Transformer::Bot
    }

    fn leq(&self, other: &Self) -> bool {
        self.lub(other) == *other
    }

    fn lub(&self, other: &Self) -> Self {
        use Transformer::*;
        match (self, other) {
            (Bot, x) | (x, Bot) => *x,
            (
                NonBot {
                    a: a1,
                    b: b1,
                    c: c1,
                },
                NonBot {
                    a: a2,
                    b: b2,
                    c: c2,
                },
            ) => {
                if a1 == a2 && b1 == b2 {
                    Transformer::non_bot(*a1, *b1, c1.lub(c2))
                } else {
                    // Two distinct linear maps agree on at most one point;
                    // their pointwise join is not representable, so we
                    // over-approximate by λl.⊤ (standard IDE practice).
                    Transformer::top_transformer()
                }
            }
        }
    }

    fn glb(&self, other: &Self) -> Self {
        use Transformer::*;
        let top = Transformer::top_transformer();
        match (self, other) {
            (Bot, _) | (_, Bot) => Bot,
            _ if *self == top => *other,
            _ if *other == top => *self,
            (
                NonBot {
                    a: a1,
                    b: b1,
                    c: c1,
                },
                NonBot {
                    a: a2,
                    b: b2,
                    c: c2,
                },
            ) => {
                if a1 == a2 && b1 == b2 {
                    Transformer::non_bot(*a1, *b1, c1.glb(c2))
                } else {
                    Bot
                }
            }
        }
    }
}

impl HasTop for Transformer {
    fn top() -> Self {
        Transformer::top_transformer()
    }
}

impl fmt::Display for Transformer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Transformer::Bot => f.write_str("λl.⊥"),
            Transformer::NonBot { a, b, c } => write!(f, "λl.({a}·l + {b}) ⊔ {c}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checks;

    fn sample() -> Vec<Transformer> {
        let mut v = vec![
            Transformer::Bot,
            Transformer::top_transformer(),
            Transformer::identity(),
        ];
        for a in [-1i64, 0, 1, 2] {
            for b in [-1i64, 0, 1] {
                v.push(Transformer::linear(a, b));
                v.push(Transformer::non_bot(a, b, Constant::cst(1)));
            }
        }
        v
    }

    #[test]
    fn lattice_laws_on_sample() {
        checks::assert_lattice_laws(&sample());
    }

    #[test]
    fn top_is_normalised() {
        assert_eq!(
            Transformer::non_bot(7, -3, Flat::Top),
            Transformer::top_transformer()
        );
    }

    #[test]
    fn identity_applies_as_identity() {
        for l in [Flat::Bot, Constant::cst(5), Flat::Top] {
            assert_eq!(Transformer::identity().apply(&l), l);
        }
    }

    #[test]
    fn comp_matches_pointwise_composition() {
        let points: Vec<Constant> = [Flat::Bot, Flat::Top]
            .into_iter()
            .chain((-3..=3).map(Constant::cst))
            .collect();
        for f in sample() {
            for g in sample() {
                let h = Transformer::comp(&f, &g);
                for l in &points {
                    assert_eq!(h.apply(l), g.apply(&f.apply(l)), "comp({f}, {g}) at {l}");
                }
            }
        }
    }

    #[test]
    fn comp_with_identity_is_neutral() {
        for t in sample() {
            assert_eq!(Transformer::comp(&t, &Transformer::identity()), t);
        }
    }

    #[test]
    fn comp_is_associative_on_sample() {
        let s = sample();
        for f in &s {
            for g in &s {
                for h in &s {
                    let left = Transformer::comp(&Transformer::comp(f, g), h);
                    let right = Transformer::comp(f, &Transformer::comp(g, h));
                    // Compare pointwise: the representations may differ
                    // only where both denote the same function.
                    for l in [Flat::Bot, Constant::cst(-2), Constant::cst(3), Flat::Top] {
                        assert_eq!(left.apply(&l), right.apply(&l));
                    }
                }
            }
        }
    }

    #[test]
    fn lub_is_pointwise_sound() {
        let points: Vec<Constant> = [Flat::Bot, Flat::Top]
            .into_iter()
            .chain((-3..=3).map(Constant::cst))
            .collect();
        for f in sample() {
            for g in sample() {
                let j = f.lub(&g);
                for l in &points {
                    let pw = f.apply(l).lub(&g.apply(l));
                    assert!(pw.leq(&j.apply(l)), "lub({f}, {g}) unsound at {l}");
                }
            }
        }
    }

    #[test]
    fn incomparable_linear_maps_join_to_top() {
        let f = Transformer::linear(1, 0);
        let g = Transformer::linear(2, 0);
        assert_eq!(f.lub(&g), Transformer::top_transformer());
        assert_eq!(f.glb(&g), Transformer::Bot);
    }

    #[test]
    fn constant_loader_is_truly_constant() {
        let five = Transformer::constant(5);
        for l in [Flat::Bot, Constant::cst(99), Flat::Top] {
            assert_eq!(five.apply(&l), Constant::cst(5));
        }
    }
}
