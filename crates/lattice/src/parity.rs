//! The parity lattice of §2.2 of the paper.

use crate::{FiniteLattice, HasTop, Lattice};
use std::fmt;

/// The parity abstract domain: tracks whether an integer is odd or even.
///
/// This is the running example of §2.2 of the paper (Figure 2), with the
/// Hasse diagram
///
/// ```text
///        Top
///       /   \
///    Even   Odd
///       \   /
///        Bot
/// ```
///
/// The abstract arithmetic operations ([`Parity::sum`], [`Parity::product`],
/// [`Parity::negate`]) are strict and monotone, and
/// [`Parity::is_maybe_zero`] is the monotone filter function used by the
/// division-by-zero client in Figure 2.
///
/// # Example
///
/// ```
/// use flix_lattice::Parity;
///
/// assert_eq!(Parity::Odd.sum(&Parity::Odd), Parity::Even);
/// assert!(Parity::Even.is_maybe_zero());
/// assert!(!Parity::Odd.is_maybe_zero());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord, Default)]
pub enum Parity {
    /// No information: the value has not been observed (least element).
    #[default]
    Bot,
    /// The value is known to be even.
    Even,
    /// The value is known to be odd.
    Odd,
    /// The value may be either parity (greatest element).
    Top,
}

impl Parity {
    /// Abstracts a concrete integer to its parity.
    ///
    /// ```
    /// use flix_lattice::Parity;
    /// assert_eq!(Parity::alpha(7), Parity::Odd);
    /// assert_eq!(Parity::alpha(-4), Parity::Even);
    /// ```
    pub fn alpha(n: i64) -> Self {
        if n % 2 == 0 {
            Parity::Even
        } else {
            Parity::Odd
        }
    }

    /// Abstract addition, the `sum` transfer function of Figure 2.
    ///
    /// Strict (`⊥ + x = ⊥`) and monotone in both arguments.
    pub fn sum(&self, other: &Self) -> Self {
        use Parity::*;
        match (self, other) {
            (Bot, _) | (_, Bot) => Bot,
            (Top, _) | (_, Top) => Top,
            (Even, Even) | (Odd, Odd) => Even,
            (Even, Odd) | (Odd, Even) => Odd,
        }
    }

    /// Abstract multiplication. Strict and monotone.
    ///
    /// Note that `Even * Top = Top` rather than `Even`: the parity domain
    /// cannot express "even or unobserved", and `Top * Even` must
    /// over-approximate `Bot * Even = Bot` being promoted by monotonicity.
    /// (A product with `Even` is always even concretely, but monotonicity
    /// over the *abstract* domain still permits returning `Even`; we do so.)
    pub fn product(&self, other: &Self) -> Self {
        use Parity::*;
        match (self, other) {
            (Bot, _) | (_, Bot) => Bot,
            (Even, _) | (_, Even) => Even,
            (Odd, Odd) => Odd,
            (Top, _) | (_, Top) => Top,
        }
    }

    /// Abstract negation. Strict and monotone; parity is preserved.
    pub fn negate(&self) -> Self {
        *self
    }

    /// The monotone filter function of Figure 2: can this value be zero?
    ///
    /// Zero is even, so `Even` and `Top` may be zero while `Odd` cannot.
    /// `Bot` denotes "no value", which cannot be zero. Monotone with
    /// `false < true`.
    pub fn is_maybe_zero(&self) -> bool {
        matches!(self, Parity::Even | Parity::Top)
    }
}

impl Lattice for Parity {
    fn bottom() -> Self {
        Parity::Bot
    }

    fn leq(&self, other: &Self) -> bool {
        use Parity::*;
        matches!(
            (self, other),
            (Bot, _) | (_, Top) | (Even, Even) | (Odd, Odd)
        )
    }

    fn lub(&self, other: &Self) -> Self {
        use Parity::*;
        match (self, other) {
            (Bot, x) | (x, Bot) => *x,
            (Top, _) | (_, Top) => Top,
            (Even, Even) => Even,
            (Odd, Odd) => Odd,
            (Even, Odd) | (Odd, Even) => Top,
        }
    }

    fn glb(&self, other: &Self) -> Self {
        use Parity::*;
        match (self, other) {
            (Bot, _) | (_, Bot) => Bot,
            (Top, x) | (x, Top) => *x,
            (Even, Even) => Even,
            (Odd, Odd) => Odd,
            (Even, Odd) | (Odd, Even) => Bot,
        }
    }
}

impl HasTop for Parity {
    fn top() -> Self {
        Parity::Top
    }
}

impl FiniteLattice for Parity {
    fn elements() -> Vec<Self> {
        vec![Parity::Bot, Parity::Even, Parity::Odd, Parity::Top]
    }
}

impl fmt::Display for Parity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Parity::Bot => "⊥",
            Parity::Even => "Even",
            Parity::Odd => "Odd",
            Parity::Top => "⊤",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checks;

    #[test]
    fn lattice_laws_hold() {
        checks::assert_lattice_laws(&Parity::elements());
    }

    #[test]
    fn sum_matches_concrete() {
        for a in -5i64..=5 {
            for b in -5i64..=5 {
                assert_eq!(
                    Parity::alpha(a).sum(&Parity::alpha(b)),
                    Parity::alpha(a + b),
                    "sum of parities of {a} and {b}"
                );
            }
        }
    }

    #[test]
    fn product_is_sound_wrt_concrete() {
        for a in -5i64..=5 {
            for b in -5i64..=5 {
                let abs = Parity::alpha(a).product(&Parity::alpha(b));
                assert!(
                    Parity::alpha(a * b).leq(&abs),
                    "product of parities of {a} and {b}"
                );
            }
        }
    }

    #[test]
    fn sum_is_strict_and_monotone() {
        let f = |args: &[Parity]| args[0].sum(&args[1]);
        checks::assert_strict_binary(&Parity::elements(), f);
        checks::assert_monotone_binary(&Parity::elements(), f);
    }

    #[test]
    fn product_is_strict_and_monotone() {
        let f = |args: &[Parity]| args[0].product(&args[1]);
        checks::assert_strict_binary(&Parity::elements(), f);
        checks::assert_monotone_binary(&Parity::elements(), f);
    }

    #[test]
    fn is_maybe_zero_is_monotone_filter() {
        checks::assert_monotone_filter(&Parity::elements(), |e| e.is_maybe_zero());
    }

    #[test]
    fn display_roundtrip() {
        assert_eq!(Parity::Odd.to_string(), "Odd");
        assert_eq!(Parity::Bot.to_string(), "⊥");
    }
}
