//! Complete lattices for the flix-rs fixed-point engine.
//!
//! This crate is the lattice-theory substrate of the FLIX reproduction
//! (Madsen, Yee, Lhoták: *From Datalog to FLIX*, PLDI 2016). A FLIX program
//! associates every `lat` predicate with a complete lattice
//! `(E, ⊥, ⊤, ⊑, ⊔, ⊓)` and requires transfer functions on lattice elements
//! to be strict and monotone. This crate provides:
//!
//! * the [`Lattice`] and [`HasTop`] traits describing that 6-tuple,
//! * the standard abstract domains used throughout the paper — [`Parity`],
//!   [`Sign`], constant propagation ([`Constant`]), [`Interval`]s, the
//!   Strong Update lattice [`SuLattice`], the min-cost lattice [`MinCost`]
//!   for shortest paths, and the IDE micro-function lattice [`Transformer`],
//! * lattice *combinators* — [`Flat`], [`Lifted`], [`Dual`], products,
//!   [`PowerSet`], and [`MapLattice`] (the direct product machinery of
//!   §3.4 of the paper),
//! * and the law checkers of the [`checks`] module, which implement the
//!   "Safety" verification sketched in §7 of the paper: exhaustive
//!   complete-lattice law checking for finite lattices and monotonicity /
//!   strictness checking for transfer and filter functions.
//!
//! # Example
//!
//! ```
//! use flix_lattice::{Lattice, HasTop, Parity};
//!
//! let even = Parity::Even;
//! let odd = Parity::Odd;
//! assert_eq!(even.lub(&odd), Parity::Top);
//! assert_eq!(even.glb(&odd), Parity::Bot);
//! assert!(Parity::Bot.leq(&even) && even.leq(&Parity::top()));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checks;
mod constant;
mod interval;
mod map;
mod mincost;
mod parity;
mod powerset;
mod product;
pub mod rng;
mod sign;
mod su;
mod traits;
mod transformer;
mod wrappers;

pub use constant::{Constant, Flat};
pub use interval::Interval;
pub use map::MapLattice;
pub use mincost::MinCost;
pub use parity::Parity;
pub use powerset::PowerSet;
pub use product::{Pair, Triple};
pub use sign::Sign;
pub use su::SuLattice;
pub use traits::{FiniteLattice, HasTop, Lattice};
pub use transformer::Transformer;
pub use wrappers::{BoolLat, Dual, Lifted};
