//! Lattice-law and monotonicity checkers.
//!
//! §7 of the paper ("Safety") observes that "a FLIX programmer may
//! inadvertently violate one or more of the required properties when
//! specifying a lattice or function" and proposes verification. This module
//! is that verification for the Rust embedding: given an enumeration of a
//! finite lattice (or a finite sample of an infinite one), it checks the
//! complete-lattice laws and the strictness/monotonicity obligations on
//! transfer and filter functions.
//!
//! Two flavours are provided: `check_*` functions return a
//! [`LawViolation`] describing the first failure, and `assert_*` wrappers
//! panic with that description (convenient in tests).

use crate::Lattice;
use std::fmt;

/// A violated lattice or function law, with the witnessing elements.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LawViolation {
    /// `leq` is not reflexive at the element.
    NotReflexive(String),
    /// `leq` is not antisymmetric at the pair.
    NotAntisymmetric(String, String),
    /// `leq` is not transitive at the triple.
    NotTransitive(String, String, String),
    /// `bottom()` is not below the element.
    BottomNotLeast(String),
    /// `lub` is not an upper bound of the pair.
    LubNotUpperBound(String, String),
    /// `lub` is not the *least* upper bound: the third element is a
    /// strictly smaller upper bound.
    LubNotLeast(String, String, String),
    /// `glb` is not a lower bound of the pair.
    GlbNotLowerBound(String, String),
    /// `glb` is not the *greatest* lower bound: the third element is a
    /// strictly larger lower bound.
    GlbNotGreatest(String, String, String),
    /// A function is not monotone: inputs ordered, outputs not.
    NotMonotone(String, String),
    /// A function is not strict: bottom input, non-bottom output.
    NotStrict(String),
}

impl fmt::Display for LawViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use LawViolation::*;
        match self {
            NotReflexive(a) => write!(f, "leq not reflexive at {a}"),
            NotAntisymmetric(a, b) => write!(f, "leq not antisymmetric at {a}, {b}"),
            NotTransitive(a, b, c) => write!(f, "leq not transitive at {a} ⊑ {b} ⊑ {c}"),
            BottomNotLeast(a) => write!(f, "bottom is not below {a}"),
            LubNotUpperBound(a, b) => write!(f, "lub({a}, {b}) is not an upper bound"),
            LubNotLeast(a, b, u) => {
                write!(
                    f,
                    "lub({a}, {b}) is not least: {u} is a smaller upper bound"
                )
            }
            GlbNotLowerBound(a, b) => write!(f, "glb({a}, {b}) is not a lower bound"),
            GlbNotGreatest(a, b, l) => {
                write!(
                    f,
                    "glb({a}, {b}) is not greatest: {l} is a larger lower bound"
                )
            }
            NotMonotone(x, y) => write!(f, "function not monotone on inputs {x} ⊑ {y}"),
            NotStrict(x) => write!(f, "function not strict on bottom input {x}"),
        }
    }
}

impl std::error::Error for LawViolation {}

/// Checks the complete-lattice laws over the given elements.
///
/// When `elems` enumerates a finite lattice (e.g. via
/// [`FiniteLattice::elements`](crate::FiniteLattice::elements)) this is an
/// exhaustive proof; when it is a sample of an infinite lattice it is a
/// refutation search. The least-upper-bound and greatest-lower-bound
/// properties are checked *relative to the sample*: `lub(a, b)` must be
/// below every sampled upper bound, and symmetrically for `glb`.
///
/// Runs in `O(n^3)` comparisons.
///
/// # Errors
///
/// Returns the first [`LawViolation`] found, if any.
pub fn check_lattice_laws<L: Lattice + fmt::Debug>(elems: &[L]) -> Result<(), LawViolation> {
    let d = |x: &L| format!("{x:?}");
    let bot = L::bottom();
    for a in elems {
        if !a.leq(a) {
            return Err(LawViolation::NotReflexive(d(a)));
        }
        if !bot.leq(a) {
            return Err(LawViolation::BottomNotLeast(d(a)));
        }
    }
    for a in elems {
        for b in elems {
            if a.leq(b) && b.leq(a) && a != b {
                return Err(LawViolation::NotAntisymmetric(d(a), d(b)));
            }
            let j = a.lub(b);
            if !a.leq(&j) || !b.leq(&j) {
                return Err(LawViolation::LubNotUpperBound(d(a), d(b)));
            }
            let m = a.glb(b);
            if !m.leq(a) || !m.leq(b) {
                return Err(LawViolation::GlbNotLowerBound(d(a), d(b)));
            }
            for c in elems {
                if a.leq(b) && b.leq(c) && !a.leq(c) {
                    return Err(LawViolation::NotTransitive(d(a), d(b), d(c)));
                }
                // Any sampled upper bound of {a, b} must dominate the lub.
                if a.leq(c) && b.leq(c) && !j.leq(c) {
                    return Err(LawViolation::LubNotLeast(d(a), d(b), d(c)));
                }
                // Any sampled lower bound of {a, b} must be below the glb.
                if c.leq(a) && c.leq(b) && !c.leq(&m) {
                    return Err(LawViolation::GlbNotGreatest(d(a), d(b), d(c)));
                }
            }
        }
    }
    Ok(())
}

/// Panicking wrapper around [`check_lattice_laws`], for use in tests.
///
/// # Panics
///
/// Panics with a description of the first violated law.
pub fn assert_lattice_laws<L: Lattice + fmt::Debug>(elems: &[L]) {
    if let Err(v) = check_lattice_laws(elems) {
        panic!("lattice law violated: {v}");
    }
}

/// Checks that an `n`-ary function is monotone in every argument
/// separately, over all argument vectors drawn from `elems`.
///
/// The paper (§3.3) requires transfer functions to be "order-preserving";
/// argument-wise monotonicity over a finite lattice implies joint
/// monotonicity, and is what we can check in `O(n^(arity+1))`.
///
/// # Errors
///
/// Returns [`LawViolation::NotMonotone`] with the witnessing inputs.
pub fn check_monotone<L, M, F>(elems: &[L], arity: usize, f: F) -> Result<(), LawViolation>
where
    L: Lattice + fmt::Debug,
    M: Lattice + fmt::Debug,
    F: Fn(&[L]) -> M,
{
    let mut args = vec![L::bottom(); arity];
    check_monotone_rec(elems, &f, &mut args, 0)
}

fn check_monotone_rec<L, M, F>(
    elems: &[L],
    f: &F,
    args: &mut Vec<L>,
    pos: usize,
) -> Result<(), LawViolation>
where
    L: Lattice + fmt::Debug,
    M: Lattice + fmt::Debug,
    F: Fn(&[L]) -> M,
{
    if pos == args.len() {
        // For every argument position, bump it to every larger element and
        // require the output not to decrease.
        let base = f(args);
        for i in 0..args.len() {
            let orig = args[i].clone();
            for e in elems {
                if orig.leq(e) {
                    args[i] = e.clone();
                    let bumped = f(args);
                    if !base.leq(&bumped) {
                        let witness_lo = format!("{:?} (arg {} = {:?})", args, i, orig);
                        let witness_hi = format!("{args:?}");
                        args[i] = orig;
                        return Err(LawViolation::NotMonotone(witness_lo, witness_hi));
                    }
                }
            }
            args[i] = orig;
        }
        return Ok(());
    }
    for e in elems {
        args[pos] = e.clone();
        check_monotone_rec(elems, f, args, pos + 1)?;
    }
    Ok(())
}

/// Checks that an `n`-ary function is strict: whenever *any* argument is
/// `⊥`, the result is `⊥` (§3.3: "strictness ensures that when a function
/// is applied to ⊥ it returns ⊥").
///
/// # Errors
///
/// Returns [`LawViolation::NotStrict`] with the witnessing input vector.
pub fn check_strict<L, M, F>(elems: &[L], arity: usize, f: F) -> Result<(), LawViolation>
where
    L: Lattice + fmt::Debug,
    M: Lattice + fmt::Debug,
    F: Fn(&[L]) -> M,
{
    let mut args = vec![L::bottom(); arity];
    check_strict_rec(elems, &f, &mut args, 0)
}

fn check_strict_rec<L, M, F>(
    elems: &[L],
    f: &F,
    args: &mut Vec<L>,
    pos: usize,
) -> Result<(), LawViolation>
where
    L: Lattice + fmt::Debug,
    M: Lattice + fmt::Debug,
    F: Fn(&[L]) -> M,
{
    if pos == args.len() {
        if args.iter().any(Lattice::is_bottom) && !f(args).is_bottom() {
            return Err(LawViolation::NotStrict(format!("{args:?}")));
        }
        return Ok(());
    }
    for e in elems {
        args[pos] = e.clone();
        check_strict_rec(elems, f, args, pos + 1)?;
    }
    Ok(())
}

/// Asserts that a binary function is monotone in both arguments.
///
/// # Panics
///
/// Panics with the witnessing inputs if monotonicity fails.
pub fn assert_monotone_binary<L, M>(elems: &[L], f: impl Fn(&[L]) -> M)
where
    L: Lattice + fmt::Debug,
    M: Lattice + fmt::Debug,
{
    if let Err(v) = check_monotone(elems, 2, f) {
        panic!("monotonicity violated: {v}");
    }
}

/// Asserts that a unary function is monotone.
///
/// # Panics
///
/// Panics with the witnessing inputs if monotonicity fails.
pub fn assert_monotone_unary<L, M>(elems: &[L], f: impl Fn(&L) -> M)
where
    L: Lattice + fmt::Debug,
    M: Lattice + fmt::Debug,
{
    if let Err(v) = check_monotone(elems, 1, |args: &[L]| f(&args[0])) {
        panic!("monotonicity violated: {v}");
    }
}

/// Asserts that a binary function is strict.
///
/// # Panics
///
/// Panics with the witnessing inputs if strictness fails.
pub fn assert_strict_binary<L, M>(elems: &[L], f: impl Fn(&[L]) -> M)
where
    L: Lattice + fmt::Debug,
    M: Lattice + fmt::Debug,
{
    if let Err(v) = check_strict(elems, 2, f) {
        panic!("strictness violated: {v}");
    }
}

/// Asserts that a boolean-valued filter function is monotone over
/// `false < true` (§3.3).
///
/// # Panics
///
/// Panics with the witnessing inputs if monotonicity fails.
pub fn assert_monotone_filter<L>(elems: &[L], f: impl Fn(&L) -> bool)
where
    L: Lattice + fmt::Debug,
{
    assert_monotone_unary(elems, |e| crate::BoolLat(f(e)));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BoolLat, FiniteLattice, Parity};

    /// A deliberately broken "lattice" whose lub is not an upper bound.
    #[derive(Clone, PartialEq, Eq, Hash, Debug)]
    struct Broken(u8);

    impl Lattice for Broken {
        fn bottom() -> Self {
            Broken(0)
        }
        fn leq(&self, other: &Self) -> bool {
            self.0 <= other.0
        }
        fn lub(&self, other: &Self) -> Self {
            // Wrong on purpose: min instead of max.
            Broken(self.0.min(other.0))
        }
        fn glb(&self, other: &Self) -> Self {
            Broken(self.0.min(other.0))
        }
    }

    #[test]
    fn broken_lattice_is_caught() {
        let elems = [Broken(0), Broken(1), Broken(2)];
        let err = check_lattice_laws(&elems).expect_err("must be rejected");
        assert!(matches!(err, LawViolation::LubNotUpperBound(_, _)));
    }

    #[test]
    fn non_monotone_function_is_caught() {
        // Negation on the boolean lattice is the canonical non-monotone map.
        let err = check_monotone(&BoolLat::elements(), 1, |a: &[BoolLat]| BoolLat(!a[0].0))
            .expect_err("negation is not monotone");
        assert!(matches!(err, LawViolation::NotMonotone(_, _)));
    }

    #[test]
    fn non_strict_function_is_caught() {
        let err = check_strict(&Parity::elements(), 1, |_: &[Parity]| Parity::Top)
            .expect_err("constant Top is not strict");
        assert!(matches!(err, LawViolation::NotStrict(_)));
    }

    #[test]
    fn violations_display() {
        let v = LawViolation::NotReflexive("x".into());
        assert!(v.to_string().contains("reflexive"));
    }

    #[test]
    fn good_lattice_passes() {
        check_lattice_laws(&Parity::elements()).expect("parity is a lattice");
    }
}
