//! The core lattice traits.

use std::fmt::Debug;
use std::hash::Hash;

/// A (complete) lattice with a least element.
///
/// This is the Rust rendering of the paper's lattice 6-tuple
/// `ℓ = (E, ⊥, ⊤, ⊑, ⊔, ⊓)` (§3.2), split in two: every [`Lattice`] has a
/// bottom, a partial order, a least upper bound and a greatest lower bound;
/// lattices that additionally have a representable greatest element also
/// implement [`HasTop`]. The split exists because some useful instances —
/// e.g. [`MapLattice`](crate::MapLattice) over an unbounded key type — have
/// no finitely representable top, yet the FLIX engine only ever *requires*
/// `⊥`, `⊑`, `⊔` and `⊓`.
///
/// # Laws
///
/// Implementations must satisfy, for all `a`, `b`, `c`:
///
/// * `leq` is reflexive, antisymmetric and transitive;
/// * `bottom().leq(&a)`;
/// * `a.lub(&b)` is the *least* upper bound of `a` and `b`;
/// * `a.glb(&b)` is the *greatest* lower bound of `a` and `b`.
///
/// The checkers in [`checks`](crate::checks) verify these laws exhaustively
/// for finite lattices and by sampling for infinite ones. A FLIX program run
/// over a structure violating them has undefined meaning (paper §2.2).
///
/// # Example
///
/// ```
/// use flix_lattice::{Lattice, Sign};
///
/// assert_eq!(Sign::Pos.lub(&Sign::Neg), Sign::Top);
/// assert!(Sign::bottom().leq(&Sign::Zer));
/// ```
pub trait Lattice: Clone + Eq + Hash + Debug {
    /// Returns the least element `⊥`.
    fn bottom() -> Self;

    /// Returns `true` if `self ⊑ other` in the partial order.
    fn leq(&self, other: &Self) -> bool;

    /// Returns the least upper bound `self ⊔ other`.
    fn lub(&self, other: &Self) -> Self;

    /// Returns the greatest lower bound `self ⊓ other`.
    fn glb(&self, other: &Self) -> Self;

    /// Returns `true` if this element is the least element.
    ///
    /// The default implementation compares against [`Lattice::bottom`];
    /// override it when a cheaper check exists.
    fn is_bottom(&self) -> bool {
        *self == Self::bottom()
    }

    /// Folds `⊔` over an iterator, starting from `⊥`.
    ///
    /// ```
    /// use flix_lattice::{Lattice, Parity};
    /// let all = Parity::lub_all([Parity::Even, Parity::Odd]);
    /// assert_eq!(all, Parity::Top);
    /// ```
    fn lub_all<I: IntoIterator<Item = Self>>(iter: I) -> Self
    where
        Self: Sized,
    {
        iter.into_iter().fold(Self::bottom(), |acc, x| acc.lub(&x))
    }
}

/// A lattice with a representable greatest element `⊤`.
///
/// See [`Lattice`] for why this is a separate trait.
pub trait HasTop: Lattice {
    /// Returns the greatest element `⊤`.
    fn top() -> Self;

    /// Returns `true` if this element is the greatest element.
    fn is_top(&self) -> bool {
        *self == Self::top()
    }
}

/// A lattice with finitely many elements, all of which can be enumerated.
///
/// Finite lattices admit *exhaustive* law checking (see
/// [`checks`](crate::checks)) and have finite height, which is the
/// termination condition for FLIX's naïve and semi-naïve evaluation (§3.2:
/// "by insisting that the FLIX lattices be of finite height, we can apply
/// the same proof").
pub trait FiniteLattice: Lattice {
    /// Enumerates every element of the lattice, in no particular order.
    fn elements() -> Vec<Self>;

    /// The height of the lattice: the number of elements on a longest
    /// strictly ascending chain.
    ///
    /// The default implementation computes it by dynamic programming over
    /// the enumerated elements; it runs in `O(n^2)` comparisons.
    fn height() -> usize {
        let elems = Self::elements();
        // Longest chain ending at each element, memoised by index.
        let n = elems.len();
        let mut best = vec![0usize; n];
        // Repeatedly relax: height is bounded by n, so n passes suffice.
        let mut changed = true;
        while changed {
            changed = false;
            for i in 0..n {
                let mut h = 1;
                for j in 0..n {
                    if i != j && elems[j].leq(&elems[i]) && elems[j] != elems[i] {
                        h = h.max(best[j] + 1);
                    }
                }
                if h > best[i] {
                    best[i] = h;
                    changed = true;
                }
            }
        }
        best.into_iter().max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Parity;

    #[test]
    fn lub_all_of_empty_is_bottom() {
        assert_eq!(Parity::lub_all(std::iter::empty()), Parity::Bot);
    }

    #[test]
    fn lub_all_of_singleton_is_identity() {
        assert_eq!(Parity::lub_all([Parity::Odd]), Parity::Odd);
    }

    #[test]
    fn parity_height_is_three() {
        // Bot < Even < Top is a longest chain.
        assert_eq!(Parity::height(), 3);
    }

    #[test]
    fn is_bottom_default() {
        assert!(Parity::Bot.is_bottom());
        assert!(!Parity::Top.is_bottom());
    }
}
