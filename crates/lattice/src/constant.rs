//! Flat lattices and the constant propagation domain.

use crate::{FiniteLattice, HasTop, Lattice};
use std::fmt;
use std::hash::Hash;

/// The *flat* lattice over an arbitrary value type `T`.
///
/// Every pair of distinct values is incomparable; `⊥` sits below all values
/// and `⊤` above them:
///
/// ```text
///            Top
///      / | ... | \
///     v0 v1 ... vn      (all values of T, mutually incomparable)
///      \ | ... | /
///            Bot
/// ```
///
/// The paper's introduction uses exactly this lattice (over the integers)
/// to argue why Datalog cannot express constant propagation: when the
/// domain of constants is infinite "the lattice cannot be encoded at all"
/// in relations, while here it is a two-line `enum`. See also [`Constant`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord, Default)]
pub enum Flat<T> {
    /// No information (least element).
    #[default]
    Bot,
    /// Exactly this value.
    Val(T),
    /// Any value (greatest element).
    Top,
}

impl<T: Clone + Eq + Hash + fmt::Debug> Flat<T> {
    /// Abstracts a concrete value into the flat lattice.
    pub fn val(v: T) -> Self {
        Flat::Val(v)
    }

    /// Returns the contained value if this element is a single value.
    pub fn as_val(&self) -> Option<&T> {
        match self {
            Flat::Val(v) => Some(v),
            _ => None,
        }
    }

    /// Lifts a binary function on concrete values to the flat lattice,
    /// strictly in `⊥` and pessimistically in `⊤`.
    ///
    /// This is the standard way to derive strict monotone transfer
    /// functions for constant propagation.
    pub fn lift2(a: &Self, b: &Self, f: impl FnOnce(&T, &T) -> T) -> Self {
        match (a, b) {
            (Flat::Bot, _) | (_, Flat::Bot) => Flat::Bot,
            (Flat::Top, _) | (_, Flat::Top) => Flat::Top,
            (Flat::Val(x), Flat::Val(y)) => Flat::Val(f(x, y)),
        }
    }
}

impl<T: Clone + Eq + Hash + fmt::Debug> Lattice for Flat<T> {
    fn bottom() -> Self {
        Flat::Bot
    }

    fn leq(&self, other: &Self) -> bool {
        match (self, other) {
            (Flat::Bot, _) | (_, Flat::Top) => true,
            (Flat::Val(a), Flat::Val(b)) => a == b,
            _ => false,
        }
    }

    fn lub(&self, other: &Self) -> Self {
        match (self, other) {
            (Flat::Bot, x) | (x, Flat::Bot) => x.clone(),
            (Flat::Top, _) | (_, Flat::Top) => Flat::Top,
            (Flat::Val(a), Flat::Val(b)) if a == b => self.clone(),
            _ => Flat::Top,
        }
    }

    fn glb(&self, other: &Self) -> Self {
        match (self, other) {
            (Flat::Bot, _) | (_, Flat::Bot) => Flat::Bot,
            (Flat::Top, x) | (x, Flat::Top) => x.clone(),
            (Flat::Val(a), Flat::Val(b)) if a == b => self.clone(),
            _ => Flat::Bot,
        }
    }
}

impl<T: Clone + Eq + Hash + fmt::Debug> HasTop for Flat<T> {
    fn top() -> Self {
        Flat::Top
    }
}

impl<T: fmt::Display> fmt::Display for Flat<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Flat::Bot => f.write_str("⊥"),
            Flat::Val(v) => write!(f, "{v}"),
            Flat::Top => f.write_str("⊤"),
        }
    }
}

/// The constant propagation lattice over 64-bit integers.
///
/// This is [`Flat<i64>`] with abstract arithmetic; it is the value lattice
/// `V` of the IDE linear constant propagation example (§4.3, Figure 7) and
/// the domain the paper's introduction uses to motivate lattices.
///
/// # Example
///
/// ```
/// use flix_lattice::{Constant, Lattice};
///
/// let three = Constant::cst(3);
/// let four = Constant::cst(4);
/// assert_eq!(three.sum(&four), Constant::cst(7));
/// assert_eq!(three.lub(&four), Constant::top_const());
/// ```
pub type Constant = Flat<i64>;

impl Constant {
    /// Abstracts the concrete integer `n`.
    pub fn cst(n: i64) -> Self {
        Flat::Val(n)
    }

    /// The greatest element, named to avoid clashing with
    /// [`HasTop::top`](crate::HasTop::top) in non-generic contexts.
    pub fn top_const() -> Self {
        Flat::Top
    }

    /// Abstract addition (wrapping). Strict and monotone.
    pub fn sum(&self, other: &Self) -> Self {
        Flat::lift2(self, other, |a, b| a.wrapping_add(*b))
    }

    /// Abstract subtraction (wrapping). Strict and monotone.
    pub fn difference(&self, other: &Self) -> Self {
        Flat::lift2(self, other, |a, b| a.wrapping_sub(*b))
    }

    /// Abstract multiplication (wrapping). Strict and monotone.
    ///
    /// Refines the pointwise lifting with `0 · x = x · 0 = 0` for non-`⊥`
    /// `x` (still strict in `⊥`). This exactness at zero is required by the
    /// micro-function composition algebra of Figure 7 of the paper (see
    /// [`Transformer::comp`](crate::Transformer::comp)): composing through
    /// a constant micro-function multiplies by `a = 0`, which must erase
    /// the incoming value rather than smear it to `⊤`.
    pub fn product(&self, other: &Self) -> Self {
        match (self, other) {
            (Flat::Bot, _) | (_, Flat::Bot) => Flat::Bot,
            (Flat::Val(0), _) | (_, Flat::Val(0)) => Flat::Val(0),
            _ => Flat::lift2(self, other, |a, b| a.wrapping_mul(*b)),
        }
    }

    /// Monotone filter: can this value be zero?
    pub fn is_maybe_zero(&self) -> bool {
        matches!(self, Flat::Val(0) | Flat::Top)
    }
}

/// A tiny finite slice of the constant lattice used for exhaustive law
/// checking in tests: `⊥`, `⊤`, and the constants `-1..=2`.
#[cfg(test)]
pub(crate) fn constant_sample() -> Vec<Constant> {
    let mut v: Vec<Constant> = (-1..=2).map(Constant::cst).collect();
    v.push(Flat::Bot);
    v.push(Flat::Top);
    v
}

impl FiniteLattice for Flat<bool> {
    fn elements() -> Vec<Self> {
        vec![Flat::Bot, Flat::Val(false), Flat::Val(true), Flat::Top]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checks;

    #[test]
    fn lattice_laws_on_sample() {
        checks::assert_lattice_laws(&constant_sample());
    }

    #[test]
    fn flat_bool_laws() {
        checks::assert_lattice_laws(&<Flat<bool>>::elements());
        assert_eq!(<Flat<bool>>::height(), 3);
    }

    #[test]
    fn arithmetic_on_constants() {
        assert_eq!(Constant::cst(2).sum(&Constant::cst(3)), Constant::cst(5));
        assert_eq!(
            Constant::cst(2).product(&Constant::cst(3)),
            Constant::cst(6)
        );
        assert_eq!(
            Constant::cst(2).difference(&Constant::cst(3)),
            Constant::cst(-1)
        );
    }

    #[test]
    fn arithmetic_is_strict() {
        assert_eq!(Constant::cst(2).sum(&Flat::Bot), Flat::Bot);
        assert_eq!(Flat::Bot.product(&Flat::Top), Flat::Bot);
    }

    #[test]
    fn arithmetic_monotone_on_sample() {
        let sample = constant_sample();
        checks::assert_monotone_binary(&sample, |a| a[0].sum(&a[1]));
        checks::assert_monotone_binary(&sample, |a| a[0].product(&a[1]));
        checks::assert_monotone_filter(&sample, |e| e.is_maybe_zero());
    }

    #[test]
    fn distinct_values_join_to_top() {
        assert_eq!(Constant::cst(1).lub(&Constant::cst(2)), Flat::Top);
        assert_eq!(Constant::cst(1).glb(&Constant::cst(2)), Flat::Bot);
    }

    #[test]
    fn display() {
        assert_eq!(Constant::cst(42).to_string(), "42");
        assert_eq!(Constant::top_const().to_string(), "⊤");
    }
}
