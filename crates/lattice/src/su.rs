//! The Strong Update lattice (§4.1 of the paper, Figure 4).

use crate::{HasTop, Lattice};
use std::fmt;
use std::sync::Arc;

/// The Strong Update lattice of Lhoták & Chung (POPL 2011), as used in
/// Figure 4 of the FLIX paper.
///
/// An element abstracts the contents of an abstract memory location at a
/// program point in the flow-*sensitive* portion of the analysis:
///
/// * [`SuLattice::Bottom`] — the location has not been written (yet),
/// * [`SuLattice::Single`] — the location definitely points to exactly one
///   abstract object (a *singleton* points-to set, eligible for strong
///   updates),
/// * [`SuLattice::Top`] — the location may point to many objects; the
///   analysis falls back to the flow-insensitive points-to set `Pt`.
///
/// The [`SuLattice::filter`] method is the `filter` monotone filter
/// function of Figure 4: it implements the `PtSU` case split, selecting
/// `b ∈ pt(a)` only when the flow-sensitive value does not rule `b` out.
///
/// # Example
///
/// ```
/// use flix_lattice::{Lattice, SuLattice};
///
/// let single = SuLattice::single("objA");
/// assert!(single.filter("objA"));
/// assert!(!single.filter("objB"));
/// assert!(SuLattice::Top.filter("objB"));
/// assert_eq!(single.lub(&SuLattice::single("objB")), SuLattice::Top);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default)]
pub enum SuLattice {
    /// The location is unwritten (least element).
    #[default]
    Bottom,
    /// The location points to exactly this abstract object.
    Single(Arc<str>),
    /// The location may point to many objects (greatest element).
    Top,
}

impl SuLattice {
    /// Creates a singleton element for the named abstract object.
    pub fn single(obj: impl Into<Arc<str>>) -> Self {
        SuLattice::Single(obj.into())
    }

    /// The monotone filter function of Figure 4.
    ///
    /// Returns `true` when object `b` may be the value of a location whose
    /// flow-sensitive abstraction is `self`:
    ///
    /// ```text
    /// case Bottom    => false
    /// case Single(p) => b == p
    /// case Top       => true
    /// ```
    ///
    /// Monotone over `false < true`: moving `self` up the lattice can only
    /// turn `false` into `true`.
    pub fn filter(&self, b: &str) -> bool {
        match self {
            SuLattice::Bottom => false,
            SuLattice::Single(p) => &**p == b,
            SuLattice::Top => true,
        }
    }

    /// Returns the singleton object name, if any.
    pub fn as_single(&self) -> Option<&str> {
        match self {
            SuLattice::Single(p) => Some(p),
            _ => None,
        }
    }
}

impl Lattice for SuLattice {
    fn bottom() -> Self {
        SuLattice::Bottom
    }

    fn leq(&self, other: &Self) -> bool {
        match (self, other) {
            (SuLattice::Bottom, _) | (_, SuLattice::Top) => true,
            (SuLattice::Single(a), SuLattice::Single(b)) => a == b,
            _ => false,
        }
    }

    fn lub(&self, other: &Self) -> Self {
        match (self, other) {
            (SuLattice::Bottom, x) | (x, SuLattice::Bottom) => x.clone(),
            (SuLattice::Top, _) | (_, SuLattice::Top) => SuLattice::Top,
            (SuLattice::Single(a), SuLattice::Single(b)) if a == b => self.clone(),
            _ => SuLattice::Top,
        }
    }

    fn glb(&self, other: &Self) -> Self {
        match (self, other) {
            (SuLattice::Bottom, _) | (_, SuLattice::Bottom) => SuLattice::Bottom,
            (SuLattice::Top, x) | (x, SuLattice::Top) => x.clone(),
            (SuLattice::Single(a), SuLattice::Single(b)) if a == b => self.clone(),
            _ => SuLattice::Bottom,
        }
    }
}

impl HasTop for SuLattice {
    fn top() -> Self {
        SuLattice::Top
    }
}

impl fmt::Display for SuLattice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SuLattice::Bottom => f.write_str("⊥"),
            SuLattice::Single(p) => write!(f, "{{{p}}}"),
            SuLattice::Top => f.write_str("⊤"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checks;

    fn sample() -> Vec<SuLattice> {
        vec![
            SuLattice::Bottom,
            SuLattice::single("a"),
            SuLattice::single("b"),
            SuLattice::single("c"),
            SuLattice::Top,
        ]
    }

    #[test]
    fn lattice_laws_on_three_objects() {
        checks::assert_lattice_laws(&sample());
    }

    #[test]
    fn it_is_a_flat_lattice() {
        assert_eq!(
            SuLattice::single("a").lub(&SuLattice::single("b")),
            SuLattice::Top
        );
        assert_eq!(
            SuLattice::single("a").glb(&SuLattice::single("b")),
            SuLattice::Bottom
        );
        assert_eq!(
            SuLattice::single("a").lub(&SuLattice::single("a")),
            SuLattice::single("a")
        );
    }

    #[test]
    fn filter_is_monotone() {
        for b in ["a", "b", "zzz"] {
            checks::assert_monotone_filter(&sample(), |e| e.filter(b));
        }
    }

    #[test]
    fn filter_matches_figure_4() {
        assert!(!SuLattice::Bottom.filter("a"));
        assert!(SuLattice::single("a").filter("a"));
        assert!(!SuLattice::single("a").filter("b"));
        assert!(SuLattice::Top.filter("anything"));
    }
}
