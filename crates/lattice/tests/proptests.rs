//! Property-based tests for the lattice instances whose carriers are too
//! large to enumerate: intervals, constants, min-costs, powersets, maps,
//! and IDE micro-functions.
//!
//! Randomised with the in-tree deterministic [`SmallRng`] (seeded loops)
//! rather than an external property-testing framework, so the suite runs
//! without network access.

use flix_lattice::rng::SmallRng;
use flix_lattice::{
    Constant, Flat, Interval, Lattice, MapLattice, MinCost, Parity, PowerSet, SuLattice,
    Transformer,
};

const CASES: usize = 300;

fn arb_constant(rng: &mut SmallRng) -> Constant {
    match rng.gen_range(0u8..3) {
        0 => Flat::Bot,
        1 => Flat::Top,
        _ => Constant::cst(rng.gen_range(-50i64..50)),
    }
}

fn arb_interval(rng: &mut SmallRng) -> Interval {
    if rng.gen_bool(0.2) {
        Interval::Bot
    } else {
        let lo = rng.gen_range(-100i64..100);
        let len = rng.gen_range(0i64..100);
        Interval::of(lo, lo + len)
    }
}

fn arb_mincost(rng: &mut SmallRng) -> MinCost {
    if rng.gen_bool(0.2) {
        MinCost::INFINITY
    } else {
        MinCost::finite(rng.gen_range(0u64..1000))
    }
}

fn arb_powerset(rng: &mut SmallRng) -> PowerSet<u8> {
    if rng.gen_bool(0.15) {
        PowerSet::Univ
    } else {
        let n = rng.gen_range(0usize..6);
        (0..n)
            .map(|_| rng.gen_range(0u8..10))
            .collect::<PowerSet<u8>>()
    }
}

fn arb_parity(rng: &mut SmallRng) -> Parity {
    match rng.gen_range(0u8..4) {
        0 => Parity::Bot,
        1 => Parity::Even,
        2 => Parity::Odd,
        _ => Parity::Top,
    }
}

fn arb_map(rng: &mut SmallRng) -> MapLattice<u8, Parity> {
    let n = rng.gen_range(0usize..8);
    MapLattice::from_iter((0..n).map(|_| (rng.gen_range(0u8..5), arb_parity(rng))))
}

fn arb_su(rng: &mut SmallRng) -> SuLattice {
    match rng.gen_range(0u8..3) {
        0 => SuLattice::Bottom,
        1 => SuLattice::Top,
        _ => {
            let i = rng.gen_range(0u8..6);
            SuLattice::single(format!("obj{i}"))
        }
    }
}

fn arb_transformer(rng: &mut SmallRng) -> Transformer {
    match rng.gen_range(0u8..3) {
        0 => Transformer::Bot,
        1 => Transformer::top_transformer(),
        _ => Transformer::non_bot(
            rng.gen_range(-5i64..5),
            rng.gen_range(-5i64..5),
            arb_constant(rng),
        ),
    }
}

/// Generates the core lattice-law properties for a given generator.
macro_rules! lattice_props {
    ($modname:ident, $gen:path, $ty:ty, $seed:expr) => {
        mod $modname {
            use super::*;

            #[test]
            fn lub_commutes() {
                let mut rng = SmallRng::seed_from_u64($seed);
                for _ in 0..CASES {
                    let (a, b) = ($gen(&mut rng), $gen(&mut rng));
                    assert_eq!(a.lub(&b), b.lub(&a), "a={a:?} b={b:?}");
                }
            }

            #[test]
            fn lub_is_idempotent() {
                let mut rng = SmallRng::seed_from_u64($seed + 1);
                for _ in 0..CASES {
                    let a = $gen(&mut rng);
                    assert_eq!(a.lub(&a), a, "a={a:?}");
                }
            }

            #[test]
            fn lub_associates() {
                let mut rng = SmallRng::seed_from_u64($seed + 2);
                for _ in 0..CASES {
                    let (a, b, c) = ($gen(&mut rng), $gen(&mut rng), $gen(&mut rng));
                    assert_eq!(
                        a.lub(&b).lub(&c),
                        a.lub(&b.lub(&c)),
                        "a={a:?} b={b:?} c={c:?}"
                    );
                }
            }

            #[test]
            fn lub_is_upper_bound() {
                let mut rng = SmallRng::seed_from_u64($seed + 3);
                for _ in 0..CASES {
                    let (a, b) = ($gen(&mut rng), $gen(&mut rng));
                    let j = a.lub(&b);
                    assert!(a.leq(&j) && b.leq(&j), "a={a:?} b={b:?} j={j:?}");
                }
            }

            #[test]
            fn glb_is_lower_bound() {
                let mut rng = SmallRng::seed_from_u64($seed + 4);
                for _ in 0..CASES {
                    let (a, b) = ($gen(&mut rng), $gen(&mut rng));
                    let m = a.glb(&b);
                    assert!(m.leq(&a) && m.leq(&b), "a={a:?} b={b:?} m={m:?}");
                }
            }

            #[test]
            fn bottom_is_least() {
                let mut rng = SmallRng::seed_from_u64($seed + 5);
                for _ in 0..CASES {
                    let a = $gen(&mut rng);
                    assert!(<$ty as Lattice>::bottom().leq(&a), "a={a:?}");
                }
            }

            #[test]
            fn leq_antisymmetric() {
                let mut rng = SmallRng::seed_from_u64($seed + 6);
                for _ in 0..CASES {
                    let (a, b) = ($gen(&mut rng), $gen(&mut rng));
                    if a.leq(&b) && b.leq(&a) {
                        assert_eq!(a, b, "a={a:?} b={b:?}");
                    }
                }
            }

            #[test]
            fn leq_transitive() {
                let mut rng = SmallRng::seed_from_u64($seed + 7);
                for _ in 0..CASES {
                    let (a, b, c) = ($gen(&mut rng), $gen(&mut rng), $gen(&mut rng));
                    if a.leq(&b) && b.leq(&c) {
                        assert!(a.leq(&c), "a={a:?} b={b:?} c={c:?}");
                    }
                }
            }

            #[test]
            fn absorption() {
                let mut rng = SmallRng::seed_from_u64($seed + 8);
                for _ in 0..CASES {
                    let (a, b) = ($gen(&mut rng), $gen(&mut rng));
                    assert_eq!(a.lub(&a.glb(&b)), a.clone(), "a={a:?} b={b:?}");
                    assert_eq!(a.glb(&a.lub(&b)), a, "a={a:?} b={b:?}");
                }
            }
        }
    };
}

lattice_props!(constant_laws, super::arb_constant, Constant, 0x01);
lattice_props!(interval_laws, super::arb_interval, Interval, 0x100);
lattice_props!(mincost_laws, super::arb_mincost, MinCost, 0x200);
lattice_props!(powerset_laws, super::arb_powerset, PowerSet<u8>, 0x300);
lattice_props!(map_laws, super::arb_map, MapLattice<u8, Parity>, 0x400);
lattice_props!(su_laws, super::arb_su, SuLattice, 0x500);
lattice_props!(transformer_laws, super::arb_transformer, Transformer, 0x600);

/// Interval arithmetic is sound: γ(a) + γ(b) ⊆ γ(a.sum(b)), etc.
#[test]
fn interval_sum_sound() {
    let mut rng = SmallRng::seed_from_u64(0x700);
    for _ in 0..CASES {
        let a = rng.gen_range(-50i64..50);
        let b = rng.gen_range(-50i64..50);
        let wa = rng.gen_range(0i64..5);
        let wb = rng.gen_range(0i64..5);
        let ia = Interval::of(a, a + wa);
        let ib = Interval::of(b, b + wb);
        for x in a..=a + wa {
            for y in b..=b + wb {
                assert!(ia.sum(&ib).contains(x + y));
                assert!(ia.product(&ib).contains(x * y));
            }
        }
    }
}

/// Constant propagation arithmetic agrees with concrete arithmetic.
#[test]
fn constant_arith_exact() {
    let mut rng = SmallRng::seed_from_u64(0x701);
    for _ in 0..CASES {
        let a = rng.gen_range(-100i64..100);
        let b = rng.gen_range(-100i64..100);
        assert_eq!(
            Constant::cst(a).sum(&Constant::cst(b)),
            Constant::cst(a + b)
        );
        assert_eq!(
            Constant::cst(a).product(&Constant::cst(b)),
            Constant::cst(a * b)
        );
    }
}

/// Transformer composition is pointwise function composition.
#[test]
fn transformer_comp_pointwise() {
    let mut rng = SmallRng::seed_from_u64(0x702);
    for _ in 0..CASES {
        let f = arb_transformer(&mut rng);
        let g = arb_transformer(&mut rng);
        let l = arb_constant(&mut rng);
        let h = Transformer::comp(&f, &g);
        assert_eq!(
            h.apply(&l),
            g.apply(&f.apply(&l)),
            "f={f:?} g={g:?} l={l:?}"
        );
    }
}

/// Transformer lub is a sound pointwise upper bound.
#[test]
fn transformer_lub_pointwise_sound() {
    let mut rng = SmallRng::seed_from_u64(0x703);
    for _ in 0..CASES {
        let f = arb_transformer(&mut rng);
        let g = arb_transformer(&mut rng);
        let l = arb_constant(&mut rng);
        let j = f.lub(&g);
        assert!(
            f.apply(&l).lub(&g.apply(&l)).leq(&j.apply(&l)),
            "f={f:?} g={g:?} l={l:?}"
        );
    }
}

/// Transformer leq is pointwise sound.
#[test]
fn transformer_leq_pointwise_sound() {
    let mut rng = SmallRng::seed_from_u64(0x704);
    for _ in 0..CASES {
        let f = arb_transformer(&mut rng);
        let g = arb_transformer(&mut rng);
        let l = arb_constant(&mut rng);
        if f.leq(&g) {
            assert!(f.apply(&l).leq(&g.apply(&l)), "f={f:?} g={g:?} l={l:?}");
        }
    }
}

/// MinCost::add is commutative, associative, and monotone.
#[test]
fn mincost_add_algebra() {
    let mut rng = SmallRng::seed_from_u64(0x705);
    for _ in 0..CASES {
        let a = arb_mincost(&mut rng);
        let b = arb_mincost(&mut rng);
        let c = arb_mincost(&mut rng);
        assert_eq!(a.add(&b), b.add(&a));
        assert_eq!(a.add(&b).add(&c), a.add(&b.add(&c)));
        if a.leq(&b) {
            assert!(a.add(&c).leq(&b.add(&c)));
        }
    }
}

/// Map lattice join-at agrees with lub of singleton maps.
#[test]
fn map_join_at_agrees_with_lub() {
    let mut rng = SmallRng::seed_from_u64(0x706);
    for _ in 0..CASES {
        let k = rng.gen_range(0u8..5);
        let v = arb_parity(&mut rng);
        let m = arb_map(&mut rng);
        let mut via_join = m.clone();
        via_join.join_at(k, v);
        let singleton = MapLattice::from_iter([(k, v)]);
        assert_eq!(via_join, m.lub(&singleton), "k={k:?} v={v:?}");
    }
}
