//! Property-based tests for the lattice instances whose carriers are too
//! large to enumerate: intervals, constants, min-costs, powersets, maps,
//! and IDE micro-functions.

use flix_lattice::{
    Constant, Flat, Interval, Lattice, MapLattice, MinCost, Parity, PowerSet, SuLattice,
    Transformer,
};
use proptest::prelude::*;

fn arb_constant() -> impl Strategy<Value = Constant> {
    prop_oneof![
        Just(Flat::Bot),
        Just(Flat::Top),
        (-50i64..50).prop_map(Constant::cst),
    ]
}

fn arb_interval() -> impl Strategy<Value = Interval> {
    prop_oneof![
        Just(Interval::Bot),
        (-100i64..100, 0i64..100).prop_map(|(lo, len)| Interval::of(lo, lo + len)),
    ]
}

fn arb_mincost() -> impl Strategy<Value = MinCost> {
    prop_oneof![
        Just(MinCost::INFINITY),
        (0u64..1000).prop_map(MinCost::finite)
    ]
}

fn arb_powerset() -> impl Strategy<Value = PowerSet<u8>> {
    prop_oneof![
        Just(PowerSet::Univ),
        proptest::collection::btree_set(0u8..10, 0..6)
            .prop_map(|s| s.into_iter().collect::<PowerSet<u8>>()),
    ]
}

fn arb_parity() -> impl Strategy<Value = Parity> {
    prop_oneof![
        Just(Parity::Bot),
        Just(Parity::Even),
        Just(Parity::Odd),
        Just(Parity::Top)
    ]
}

fn arb_map() -> impl Strategy<Value = MapLattice<u8, Parity>> {
    proptest::collection::vec((0u8..5, arb_parity()), 0..8).prop_map(MapLattice::from_iter)
}

fn arb_su() -> impl Strategy<Value = SuLattice> {
    prop_oneof![
        Just(SuLattice::Bottom),
        Just(SuLattice::Top),
        (0u8..6).prop_map(|i| SuLattice::single(format!("obj{i}"))),
    ]
}

fn arb_transformer() -> impl Strategy<Value = Transformer> {
    prop_oneof![
        Just(Transformer::Bot),
        Just(Transformer::top_transformer()),
        (-5i64..5, -5i64..5, arb_constant()).prop_map(|(a, b, c)| Transformer::non_bot(a, b, c)),
    ]
}

/// Generates the core lattice-law properties for a given strategy.
macro_rules! lattice_props {
    ($modname:ident, $strat:expr, $ty:ty) => {
        mod $modname {
            use super::*;

            proptest! {
                #[test]
                fn lub_commutes(a in $strat, b in $strat) {
                    prop_assert_eq!(a.lub(&b), b.lub(&a));
                }

                #[test]
                fn lub_is_idempotent(a in $strat) {
                    prop_assert_eq!(a.lub(&a), a);
                }

                #[test]
                fn lub_associates(a in $strat, b in $strat, c in $strat) {
                    prop_assert_eq!(a.lub(&b).lub(&c), a.lub(&b.lub(&c)));
                }

                #[test]
                fn lub_is_upper_bound(a in $strat, b in $strat) {
                    let j = a.lub(&b);
                    prop_assert!(a.leq(&j) && b.leq(&j));
                }

                #[test]
                fn glb_is_lower_bound(a in $strat, b in $strat) {
                    let m = a.glb(&b);
                    prop_assert!(m.leq(&a) && m.leq(&b));
                }

                #[test]
                fn bottom_is_least(a in $strat) {
                    prop_assert!(<$ty as Lattice>::bottom().leq(&a));
                }

                #[test]
                fn leq_antisymmetric(a in $strat, b in $strat) {
                    if a.leq(&b) && b.leq(&a) {
                        prop_assert_eq!(a, b);
                    }
                }

                #[test]
                fn leq_transitive(a in $strat, b in $strat, c in $strat) {
                    if a.leq(&b) && b.leq(&c) {
                        prop_assert!(a.leq(&c));
                    }
                }

                #[test]
                fn absorption(a in $strat, b in $strat) {
                    prop_assert_eq!(a.lub(&a.glb(&b)), a.clone());
                    prop_assert_eq!(a.glb(&a.lub(&b)), a);
                }
            }
        }
    };
}

lattice_props!(constant_laws, arb_constant(), Constant);
lattice_props!(interval_laws, arb_interval(), Interval);
lattice_props!(mincost_laws, arb_mincost(), MinCost);
lattice_props!(powerset_laws, arb_powerset(), PowerSet<u8>);
lattice_props!(map_laws, arb_map(), MapLattice<u8, Parity>);
lattice_props!(su_laws, arb_su(), SuLattice);
lattice_props!(transformer_laws, arb_transformer(), Transformer);

proptest! {
    /// Interval arithmetic is sound: γ(a) + γ(b) ⊆ γ(a.sum(b)), etc.
    #[test]
    fn interval_sum_sound(a in -50i64..50, b in -50i64..50, wa in 0i64..5, wb in 0i64..5) {
        let ia = Interval::of(a, a + wa);
        let ib = Interval::of(b, b + wb);
        for x in a..=a + wa {
            for y in b..=b + wb {
                prop_assert!(ia.sum(&ib).contains(x + y));
                prop_assert!(ia.product(&ib).contains(x * y));
            }
        }
    }

    /// Constant propagation arithmetic agrees with concrete arithmetic.
    #[test]
    fn constant_arith_exact(a in -100i64..100, b in -100i64..100) {
        prop_assert_eq!(Constant::cst(a).sum(&Constant::cst(b)), Constant::cst(a + b));
        prop_assert_eq!(Constant::cst(a).product(&Constant::cst(b)), Constant::cst(a * b));
    }

    /// Transformer composition is pointwise function composition.
    #[test]
    fn transformer_comp_pointwise(
        f in arb_transformer(),
        g in arb_transformer(),
        l in arb_constant(),
    ) {
        let h = Transformer::comp(&f, &g);
        prop_assert_eq!(h.apply(&l), g.apply(&f.apply(&l)));
    }

    /// Transformer lub is a sound pointwise upper bound.
    #[test]
    fn transformer_lub_pointwise_sound(
        f in arb_transformer(),
        g in arb_transformer(),
        l in arb_constant(),
    ) {
        let j = f.lub(&g);
        prop_assert!(f.apply(&l).lub(&g.apply(&l)).leq(&j.apply(&l)));
    }

    /// Transformer leq is pointwise sound.
    #[test]
    fn transformer_leq_pointwise_sound(
        f in arb_transformer(),
        g in arb_transformer(),
        l in arb_constant(),
    ) {
        if f.leq(&g) {
            prop_assert!(f.apply(&l).leq(&g.apply(&l)));
        }
    }

    /// MinCost::add is commutative, associative, and monotone.
    #[test]
    fn mincost_add_algebra(a in arb_mincost(), b in arb_mincost(), c in arb_mincost()) {
        prop_assert_eq!(a.add(&b), b.add(&a));
        prop_assert_eq!(a.add(&b).add(&c), a.add(&b.add(&c)));
        if a.leq(&b) {
            prop_assert!(a.add(&c).leq(&b.add(&c)));
        }
    }

    /// Map lattice join-at agrees with lub of singleton maps.
    #[test]
    fn map_join_at_agrees_with_lub(k in 0u8..5, v in arb_parity(), m in arb_map()) {
        let mut via_join = m.clone();
        via_join.join_at(k, v);
        let singleton = MapLattice::from_iter([(k, v)]);
        prop_assert_eq!(via_join, m.lub(&singleton));
    }
}
