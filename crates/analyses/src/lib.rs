//! Static analyses built on the FLIX engine, reproducing §2 and §4 of the
//! paper, together with the baseline implementations and workload
//! generators needed to regenerate its evaluation tables.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dataflow;
pub mod ide;
pub mod ifds;
pub mod interval;
pub mod kcfa;
pub mod points_to;
pub mod shortest_paths;
pub mod strong_update;
pub mod workloads;
