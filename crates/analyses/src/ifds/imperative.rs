//! The hand-coded imperative IFDS tabulation solver — the worklist
//! algorithm of the original IFDS paper (Reps, Horwitz & Sagiv, POPL
//! 1995), standing in for the Scala baseline of Table 2.
//!
//! The FLIX paper observes that this algorithm "contains many worklist
//! updates and implicit quantifications" and is "difficult to understand";
//! the bookkeeping below (the `incoming` and `summaries` maps, and the
//! three re-firing loops) is exactly the complexity that the six rules of
//! Figure 5 replace.

use super::{Fact, IfdsProblem, IfdsResult, Node, ProcId, Supergraph};
use std::collections::{HashMap, HashSet};

/// Solves an IFDS problem by tabulation.
pub fn solve(graph: &Supergraph, problem: &dyn IfdsProblem) -> IfdsResult {
    Tabulation::new(graph, problem).run()
}

struct Tabulation<'a> {
    graph: &'a Supergraph,
    problem: &'a dyn IfdsProblem,
    succ: Vec<Vec<Node>>,
    /// Call target per node (None for non-call nodes).
    call_at: HashMap<Node, ProcId>,
    /// End node → procedure.
    end_of: HashMap<Node, ProcId>,
    /// The tabulated path edges (d1, n, d2).
    path_edges: HashSet<(Fact, Node, Fact)>,
    /// Path edges grouped by (node, d2) → set of d1, for summary re-firing.
    edges_into: HashMap<(Node, Fact), HashSet<Fact>>,
    /// Path edges grouped by node, for the call-site loop.
    edges_at: HashMap<Node, HashSet<(Fact, Fact)>>,
    /// incoming[(target, d3)] = callers (call, d2) whose call flow
    /// produced d3 at the callee start — the tabulated `EshCallStart`.
    incoming: HashMap<(ProcId, Fact), HashSet<(Node, Fact)>>,
    /// summaries[(call, d4)] = facts d5 at the return site.
    summaries: HashMap<(Node, Fact), HashSet<Fact>>,
    worklist: Vec<(Fact, Node, Fact)>,
}

impl<'a> Tabulation<'a> {
    fn new(graph: &'a Supergraph, problem: &'a dyn IfdsProblem) -> Tabulation<'a> {
        let call_at = graph.calls.iter().map(|c| (c.call, c.target)).collect();
        let end_of = graph
            .procs
            .iter()
            .enumerate()
            .map(|(p, info)| (info.end, p as ProcId))
            .collect();
        Tabulation {
            succ: graph.successors(),
            graph,
            problem,
            call_at,
            end_of,
            path_edges: HashSet::new(),
            edges_into: HashMap::new(),
            edges_at: HashMap::new(),
            incoming: HashMap::new(),
            summaries: HashMap::new(),
            worklist: Vec::new(),
        }
    }

    fn propagate(&mut self, d1: Fact, n: Node, d2: Fact) {
        if self.path_edges.insert((d1, n, d2)) {
            self.edges_into.entry((n, d2)).or_default().insert(d1);
            self.edges_at.entry(n).or_default().insert((d1, d2));
            self.worklist.push((d1, n, d2));
        }
    }

    fn run(mut self) -> IfdsResult {
        for (n, d) in self.problem.seeds() {
            self.propagate(d, n, d);
        }
        while let Some((d1, n, d2)) = self.worklist.pop() {
            if let Some(&target) = self.call_at.get(&n) {
                self.process_call(d1, n, d2, target);
            } else if let Some(&proc) = self.end_of.get(&n) {
                self.process_exit(d1, n, d2, proc);
            }
            // Every node (including call nodes, whose `flow` is the
            // call-to-return function) propagates intraprocedurally.
            self.process_normal(d1, n, d2);
        }
        self.path_edges.iter().map(|&(_, n, d2)| (n, d2)).collect()
    }

    fn process_normal(&mut self, d1: Fact, n: Node, d2: Fact) {
        let succs = self.succ[n as usize].clone();
        if succs.is_empty() {
            return;
        }
        let out = self.problem.flow(n, d2);
        for &m in &succs {
            for &d3 in &out {
                self.propagate(d1, m, d3);
            }
        }
        // Apply any summaries already tabulated at (n, d2).
        if let Some(d5s) = self.summaries.get(&(n, d2)).cloned() {
            for &m in &succs {
                for &d5 in &d5s {
                    self.propagate(d1, m, d5);
                }
            }
        }
    }

    fn process_call(&mut self, _d1: Fact, call: Node, d2: Fact, target: ProcId) {
        let start = self.graph.procs[target as usize].start;
        let end = self.graph.procs[target as usize].end;
        for d3 in self.problem.call_flow(call, d2, target) {
            // Seed the callee and remember who called with what.
            self.propagate(d3, start, d3);
            let newly_registered = self
                .incoming
                .entry((target, d3))
                .or_default()
                .insert((call, d2));
            if newly_registered {
                // The callee may already have end-node path edges for d3:
                // materialise their summaries for this caller now.
                let end_facts: Vec<Fact> = self
                    .edges_at
                    .get(&end)
                    .map(|pairs| {
                        pairs
                            .iter()
                            .filter(|&&(entry, _)| entry == d3)
                            .map(|&(_, d_end)| d_end)
                            .collect()
                    })
                    .unwrap_or_default();
                for d_end in end_facts {
                    self.record_summary(target, call, d2, d_end);
                }
            }
        }
    }

    fn process_exit(&mut self, d1: Fact, _end: Node, d2: Fact, proc: ProcId) {
        // d1 entered the procedure; find every caller that produced d1.
        let callers: Vec<(Node, Fact)> = self
            .incoming
            .get(&(proc, d1))
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default();
        for (call, d4) in callers {
            self.record_summary(proc, call, d4, d2);
        }
    }

    /// Installs the summary for caller fact `d4` at `call` given that the
    /// callee (entered with whatever fact flowed from `d4`) exits with
    /// `d_end`, and re-fires the rule-2 propagation for existing edges.
    fn record_summary(&mut self, proc: ProcId, call: Node, d4: Fact, d_end: Fact) {
        for d5 in self.problem.return_flow(proc, d_end, call) {
            if self.summaries.entry((call, d4)).or_default().insert(d5) {
                // Re-fire: every path edge reaching (call, d4) continues
                // to the return sites with d5.
                let d1s: Vec<Fact> = self
                    .edges_into
                    .get(&(call, d4))
                    .map(|s| s.iter().copied().collect())
                    .unwrap_or_default();
                let succs = self.succ[call as usize].clone();
                for d1 in d1s {
                    for &m in &succs {
                        self.propagate(d1, m, d5);
                    }
                }
            }
        }
    }
}
