//! The declarative IFDS solver — Figure 5 of the paper, rule for rule.
//!
//! The flow functions are registered as engine functions returning sets;
//! the `d3 <- eshIntra(n, d2)` arrow syntax of the figure maps onto the
//! engine's choice bindings.

use super::{IfdsProblem, IfdsResult, Node, Supergraph};
use flix_core::{BodyItem, Head, HeadTerm, Program, ProgramBuilder, Query, Solver, Term, Value};
use std::collections::BTreeSet;
use std::sync::Arc;

/// Builds the Figure 5 program for a supergraph and problem.
///
/// Nodes, procedures, and facts are all encoded as integers.
pub fn build_program(graph: &Supergraph, problem: Arc<dyn IfdsProblem>) -> Program {
    let mut b = ProgramBuilder::new();

    let cfg = b.relation("CFG", 2);
    let call_graph = b.relation("CallGraph", 2);
    let start_node = b.relation("StartNode", 2);
    let end_node = b.relation("EndNode", 2);
    let path_edge = b.relation("PathEdge", 3);
    let summary_edge = b.relation("SummaryEdge", 3);
    let esh_call_start = b.relation("EshCallStart", 4);
    let result = b.relation("Result", 2);

    let p1 = Arc::clone(&problem);
    let esh_intra = b.function("eshIntra", move |args| {
        let n = args[0].as_int().expect("node") as u32;
        let d = args[1].as_int().expect("fact");
        Value::set(p1.flow(n, d).into_iter().map(Value::Int))
    });
    let p2 = Arc::clone(&problem);
    let esh_call_start_fn = b.function("eshCallStart", move |args| {
        let call = args[0].as_int().expect("node") as u32;
        let d = args[1].as_int().expect("fact");
        let target = args[2].as_int().expect("proc") as u32;
        Value::set(p2.call_flow(call, d, target).into_iter().map(Value::Int))
    });
    let p3 = Arc::clone(&problem);
    let esh_end_return = b.function("eshEndReturn", move |args| {
        let target = args[0].as_int().expect("proc") as u32;
        let d = args[1].as_int().expect("fact");
        let call = args[2].as_int().expect("node") as u32;
        Value::set(p3.return_flow(target, d, call).into_iter().map(Value::Int))
    });

    // Supergraph facts.
    for &(n, m) in &graph.cfg {
        b.fact(cfg, vec![(n as i64).into(), (m as i64).into()]);
    }
    for call in &graph.calls {
        b.fact(
            call_graph,
            vec![(call.call as i64).into(), (call.target as i64).into()],
        );
    }
    for (proc, info) in graph.procs.iter().enumerate() {
        b.fact(
            start_node,
            vec![(proc as i64).into(), (info.start as i64).into()],
        );
        b.fact(
            end_node,
            vec![(proc as i64).into(), (info.end as i64).into()],
        );
    }
    // Seeds: PathEdge(d, n, d).
    for (n, d) in problem.seeds() {
        b.fact(path_edge, vec![d.into(), (n as i64).into(), d.into()]);
    }

    let v = Term::var;

    // PathEdge(d1, m, d3) :- CFG(n, m), PathEdge(d1, n, d2),
    //                        d3 <- eshIntra(n, d2).
    b.rule(
        Head::new(
            path_edge,
            [HeadTerm::var("d1"), HeadTerm::var("m"), HeadTerm::var("d3")],
        ),
        [
            BodyItem::atom(cfg, [v("n"), v("m")]),
            BodyItem::atom(path_edge, [v("d1"), v("n"), v("d2")]),
            BodyItem::choose(esh_intra, [v("n"), v("d2")], "d3"),
        ],
    );
    // PathEdge(d1, m, d3) :- CFG(n, m), PathEdge(d1, n, d2),
    //                        SummaryEdge(n, d2, d3).
    b.rule(
        Head::new(
            path_edge,
            [HeadTerm::var("d1"), HeadTerm::var("m"), HeadTerm::var("d3")],
        ),
        [
            BodyItem::atom(cfg, [v("n"), v("m")]),
            BodyItem::atom(path_edge, [v("d1"), v("n"), v("d2")]),
            BodyItem::atom(summary_edge, [v("n"), v("d2"), v("d3")]),
        ],
    );
    // PathEdge(d3, start, d3) :- PathEdge(d1, call, d2),
    //                            CallGraph(call, target),
    //                            EshCallStart(call, d2, target, d3),
    //                            StartNode(target, start).
    b.rule(
        Head::new(
            path_edge,
            [
                HeadTerm::var("d3"),
                HeadTerm::var("start"),
                HeadTerm::var("d3"),
            ],
        ),
        [
            BodyItem::atom(path_edge, [v("d1"), v("call"), v("d2")]),
            BodyItem::atom(call_graph, [v("call"), v("target")]),
            BodyItem::atom(esh_call_start, [v("call"), v("d2"), v("target"), v("d3")]),
            BodyItem::atom(start_node, [v("target"), v("start")]),
        ],
    );
    // SummaryEdge(call, d4, d5) :- CallGraph(call, target),
    //                              StartNode(target, start),
    //                              EndNode(target, end),
    //                              EshCallStart(call, d4, target, d1),
    //                              PathEdge(d1, end, d2),
    //                              d5 <- eshEndReturn(target, d2, call).
    b.rule(
        Head::new(
            summary_edge,
            [
                HeadTerm::var("call"),
                HeadTerm::var("d4"),
                HeadTerm::var("d5"),
            ],
        ),
        [
            BodyItem::atom(call_graph, [v("call"), v("target")]),
            BodyItem::atom(start_node, [v("target"), v("start")]),
            BodyItem::atom(end_node, [v("target"), v("end")]),
            BodyItem::atom(esh_call_start, [v("call"), v("d4"), v("target"), v("d1")]),
            BodyItem::atom(path_edge, [v("d1"), v("end"), v("d2")]),
            BodyItem::choose(esh_end_return, [v("target"), v("d2"), v("call")], "d5"),
        ],
    );
    // EshCallStart(call, d, target, d2) :- PathEdge(_, call, d),
    //                                      CallGraph(call, target),
    //                                      d2 <- eshCallStart(call, d, target).
    // This rule tabulates the call flow function so the SummaryEdge rule
    // can consult it in the inverse direction (§4.2 of the paper).
    b.rule(
        Head::new(
            esh_call_start,
            [
                HeadTerm::var("call"),
                HeadTerm::var("d"),
                HeadTerm::var("target"),
                HeadTerm::var("d2"),
            ],
        ),
        [
            BodyItem::atom(path_edge, [Term::Wildcard, v("call"), v("d")]),
            BodyItem::atom(call_graph, [v("call"), v("target")]),
            BodyItem::choose(esh_call_start_fn, [v("call"), v("d"), v("target")], "d2"),
        ],
    );
    // Result(n, d2) :- PathEdge(_, n, d2).
    b.rule(
        Head::new(result, [HeadTerm::var("n"), HeadTerm::var("d2")]),
        [BodyItem::atom(path_edge, [Term::Wildcard, v("n"), v("d2")])],
    );

    b.build().expect("the Figure 5 rule set is well-formed")
}

/// Solves the problem with the given solver configuration.
pub fn solve_with(
    graph: &Supergraph,
    problem: Arc<dyn IfdsProblem>,
    solver: &Solver,
) -> IfdsResult {
    let program = build_program(graph, problem);
    let solution = solver.solve(&program).expect("Figure 5 is stratifiable");
    solution
        .relation("Result")
        .expect("declared")
        .map(|row| {
            (
                row[0].as_int().expect("node") as u32,
                row[1].as_int().expect("fact"),
            )
        })
        .collect()
}

/// Solves the problem with the default solver.
pub fn solve(graph: &Supergraph, problem: Arc<dyn IfdsProblem>) -> IfdsResult {
    solve_with(graph, problem, &Solver::new())
}

/// Demand-driven point query: the dataflow facts holding at one program
/// point, via `Result(node, _)` and the demand rewrite.
///
/// The rewrite chases demand backwards through the Figure 5 rules —
/// `Result(n, _)` demands the path edges *into* `n`, which demand the
/// summary and call-start edges that can feed them — so only the slice
/// of the exploded supergraph that can reach `node` is tabulated. The
/// reported facts are identical to the full [`solve`] restricted to
/// `node` (pinned by the demand parity suite).
pub fn query_node_with(
    graph: &Supergraph,
    problem: Arc<dyn IfdsProblem>,
    node: Node,
    solver: &Solver,
) -> BTreeSet<super::Fact> {
    let program = build_program(graph, problem);
    let query = Query::new("Result", vec![Some((node as i64).into()), None]);
    let result = solver
        .solve_query(&program, &[query])
        .expect("Figure 5 is stratifiable");
    result
        .answers(0)
        .map(|row| row.key()[1].as_int().expect("fact"))
        .collect()
}

/// Demand-driven point query with the default solver.
pub fn query_node(
    graph: &Supergraph,
    problem: Arc<dyn IfdsProblem>,
    node: Node,
) -> BTreeSet<super::Fact> {
    query_node_with(graph, problem, node, &Solver::new())
}
