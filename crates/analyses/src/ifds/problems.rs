//! Concrete IFDS problem instantiations over the [`ProgramModel`] of the
//! workload generator.
//!
//! The paper instantiates its IFDS evaluation with the object abstraction
//! of a multi-object typestate analysis; that abstraction is tied to the
//! unavailable Soot/DaCapo pipeline, so (per DESIGN.md) we substitute two
//! classic IFDS problems with the same gen/kill structure:
//!
//! * [`UninitVars`] — possibly-uninitialised variables;
//! * [`Taint`] — taint propagation from environment reads, with
//!   sanitisation kills.

use super::{Fact, IfdsProblem, Node, ProcId, ZERO};
use crate::workloads::jvm_program::{ProgramModel, Stmt, VarId};
use std::collections::HashMap;
use std::sync::Arc;

fn fact_of(v: VarId) -> Fact {
    v as Fact + 1
}

fn var_of(d: Fact) -> Option<VarId> {
    if d == ZERO {
        None
    } else {
        Some((d - 1) as VarId)
    }
}

/// Shared plumbing for problems over a [`ProgramModel`].
struct ModelInfo {
    model: Arc<ProgramModel>,
    start_of: HashMap<Node, ProcId>,
}

impl ModelInfo {
    fn new(model: Arc<ProgramModel>) -> ModelInfo {
        let start_of = model
            .graph
            .procs
            .iter()
            .enumerate()
            .map(|(p, info)| (info.start, p as ProcId))
            .collect();
        ModelInfo { model, start_of }
    }

    /// The non-parameter locals of a procedure (uninitialised at entry).
    fn uninit_at_entry(&self, proc: ProcId) -> impl Iterator<Item = VarId> + '_ {
        let params = &self.model.proc_params[proc as usize];
        self.model.proc_vars[proc as usize]
            .iter()
            .copied()
            .filter(move |v| !params.contains(v))
    }

    fn ret_dst_at(&self, call: Node) -> Option<VarId> {
        match self.model.stmt(call) {
            Stmt::Call { ret_dst, .. } => *ret_dst,
            _ => None,
        }
    }

    fn args_at(&self, call: Node) -> &[(VarId, VarId)] {
        match self.model.stmt(call) {
            Stmt::Call { args, .. } => args,
            _ => &[],
        }
    }
}

/// The possibly-uninitialised-variables IFDS problem.
///
/// A fact `v` at node `n` means "some execution reaches `n` with `v` never
/// assigned". Non-parameter locals are uninitialised at procedure entry;
/// assignments kill their destination (and copy uninitialised-ness from
/// their source); calls bind uninitialised actuals to formals and map the
/// callee's return variable back to the caller's destination.
pub struct UninitVars {
    info: ModelInfo,
}

impl UninitVars {
    /// Creates the problem over a program model.
    pub fn new(model: Arc<ProgramModel>) -> UninitVars {
        UninitVars {
            info: ModelInfo::new(model),
        }
    }
}

impl IfdsProblem for UninitVars {
    fn flow(&self, n: Node, d: Fact) -> Vec<Fact> {
        let stmt = self.info.model.stmt(n);
        let Some(v) = var_of(d) else {
            // Λ generates the uninitialised locals at procedure entries.
            let mut out = vec![ZERO];
            if let Some(&proc) = self.info.start_of.get(&n) {
                out.extend(self.info.uninit_at_entry(proc).map(fact_of));
            }
            return out;
        };
        match stmt {
            Stmt::Nop | Stmt::Sanitize { .. } => vec![d],
            Stmt::Const { dst, .. } | Stmt::Read { dst } => {
                if v == *dst {
                    vec![]
                } else {
                    vec![d]
                }
            }
            Stmt::Assign { dst, src } | Stmt::Linear { dst, src, .. } => {
                if v == *src && v == *dst {
                    vec![d]
                } else if v == *src {
                    vec![d, fact_of(*dst)]
                } else if v == *dst {
                    vec![]
                } else {
                    vec![d]
                }
            }
            Stmt::Call { ret_dst, .. } => {
                // Call-to-return: the return value is defined by the
                // callee (or mapped back by return_flow), so kill it here.
                if Some(v) == *ret_dst {
                    vec![]
                } else {
                    vec![d]
                }
            }
        }
    }

    fn call_flow(&self, call: Node, d: Fact, _target: ProcId) -> Vec<Fact> {
        match var_of(d) {
            None => vec![ZERO],
            Some(v) => self
                .info
                .args_at(call)
                .iter()
                .filter(|&&(actual, _)| actual == v)
                .map(|&(_, formal)| fact_of(formal))
                .collect(),
        }
    }

    fn return_flow(&self, target: ProcId, d: Fact, call: Node) -> Vec<Fact> {
        match var_of(d) {
            Some(v) if v == self.info.model.proc_ret[target as usize] => self
                .info
                .ret_dst_at(call)
                .map(fact_of)
                .into_iter()
                .collect(),
            _ => vec![],
        }
    }

    fn seeds(&self) -> Vec<(Node, Fact)> {
        let main = self.info.model.main;
        vec![(self.info.model.graph.procs[main as usize].start, ZERO)]
    }
}

/// The taint-propagation IFDS problem.
///
/// `Read` statements taint their destination; assignments propagate taint;
/// `Sanitize` and constant assignments clear it; calls carry taint through
/// arguments and return values.
pub struct Taint {
    info: ModelInfo,
}

impl Taint {
    /// Creates the problem over a program model.
    pub fn new(model: Arc<ProgramModel>) -> Taint {
        Taint {
            info: ModelInfo::new(model),
        }
    }
}

impl IfdsProblem for Taint {
    fn flow(&self, n: Node, d: Fact) -> Vec<Fact> {
        let stmt = self.info.model.stmt(n);
        let Some(v) = var_of(d) else {
            let mut out = vec![ZERO];
            if let Stmt::Read { dst } = stmt {
                out.push(fact_of(*dst));
            }
            return out;
        };
        match stmt {
            Stmt::Nop => vec![d],
            Stmt::Read { dst } => {
                // Overwrites dst with fresh (tainted) input; existing
                // taint of dst stays tainted, everything else unaffected.
                let _ = dst;
                vec![d]
            }
            Stmt::Const { dst, .. } | Stmt::Sanitize { dst } => {
                if v == *dst {
                    vec![]
                } else {
                    vec![d]
                }
            }
            Stmt::Assign { dst, src } | Stmt::Linear { dst, src, .. } => {
                if v == *src && v == *dst {
                    vec![d]
                } else if v == *src {
                    vec![d, fact_of(*dst)]
                } else if v == *dst {
                    vec![]
                } else {
                    vec![d]
                }
            }
            Stmt::Call { ret_dst, .. } => {
                if Some(v) == *ret_dst {
                    vec![]
                } else {
                    vec![d]
                }
            }
        }
    }

    fn call_flow(&self, call: Node, d: Fact, _target: ProcId) -> Vec<Fact> {
        match var_of(d) {
            None => vec![ZERO],
            Some(v) => self
                .info
                .args_at(call)
                .iter()
                .filter(|&&(actual, _)| actual == v)
                .map(|&(_, formal)| fact_of(formal))
                .collect(),
        }
    }

    fn return_flow(&self, target: ProcId, d: Fact, call: Node) -> Vec<Fact> {
        match var_of(d) {
            Some(v) if v == self.info.model.proc_ret[target as usize] => self
                .info
                .ret_dst_at(call)
                .map(fact_of)
                .into_iter()
                .collect(),
            _ => vec![],
        }
    }

    fn seeds(&self) -> Vec<(Node, Fact)> {
        let main = self.info.model.main;
        vec![(self.info.model.graph.procs[main as usize].start, ZERO)]
    }
}

/// Builds a small two-procedure program with a known answer, used by unit
/// and integration tests:
///
/// ```text
/// main:  n0 start | n1 x=input() | n2 y=5 | n3 r=callee(x) | n4 z=y | n5 end
/// callee: n6 start | n7 ret=param | n8 end
/// ```
///
/// Variables: main has x=0, y=1, z=2, r=3 (locals), callee has param=4,
/// ret=5. `x` is tainted; the call propagates the taint into `r`; `y` and
/// `z` stay clean. For uninitialised variables: everything but params is
/// uninitialised at entry; `x`, `y`, `r` are defined along the way; `z`
/// is defined from `y`.
pub fn two_proc_example() -> ProgramModel {
    use crate::ifds::{CallSite, ProcInfo, Supergraph};
    let graph = Supergraph {
        num_nodes: 9,
        procs: vec![ProcInfo { start: 0, end: 5 }, ProcInfo { start: 6, end: 8 }],
        cfg: vec![(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (6, 7), (7, 8)],
        calls: vec![CallSite { call: 3, target: 1 }],
        proc_of: vec![0, 0, 0, 0, 0, 0, 1, 1, 1],
    };
    let stmts = vec![
        Stmt::Nop,                    // n0 main start
        Stmt::Read { dst: 0 },        // n1 x = input()
        Stmt::Const { dst: 1, k: 5 }, // n2 y = 5
        Stmt::Call {
            args: vec![(0, 4)],
            ret_dst: Some(3),
        }, // n3 r = callee(x)
        Stmt::Assign { dst: 2, src: 1 }, // n4 z = y
        Stmt::Nop,                    // n5 main end
        Stmt::Nop,                    // n6 callee start
        Stmt::Assign { dst: 5, src: 4 }, // n7 ret = param
        Stmt::Nop,                    // n8 callee end
    ];
    ProgramModel {
        graph,
        stmts,
        proc_vars: vec![vec![0, 1, 2, 3], vec![4, 5]],
        proc_params: vec![vec![], vec![4]],
        proc_ret: vec![3, 5],
        main: 0,
        num_vars: 6,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ifds::imperative;

    #[test]
    fn taint_flows_through_the_call() {
        let model = Arc::new(two_proc_example());
        let result = imperative::solve(&model.graph, &Taint::new(model.clone()));
        // After the call (node 4), r (var 3, fact 4) is tainted.
        assert!(result.contains(&(4, fact_of(3))), "r tainted after call");
        // x (var 0) is tainted from node 2 onwards.
        assert!(result.contains(&(2, fact_of(0))));
        // y (var 1) is never tainted.
        assert!(!result.contains(&(5, fact_of(1))), "y must stay clean");
        // z (var 2) copies clean y: never tainted.
        assert!(!result.contains(&(5, fact_of(2))), "z must stay clean");
        // Inside the callee, the parameter is tainted.
        assert!(result.contains(&(7, fact_of(4))));
    }

    #[test]
    fn uninit_vars_are_killed_by_definitions() {
        let model = Arc::new(two_proc_example());
        let result = imperative::solve(&model.graph, &UninitVars::new(model.clone()));
        // At node 1 everything local to main is still uninitialised.
        for v in [0u32, 1, 2, 3] {
            assert!(result.contains(&(1, fact_of(v))), "v{v} uninit at n1");
        }
        // After x = input() and y = 5, x and y are initialised at n3.
        assert!(!result.contains(&(3, fact_of(0))));
        assert!(!result.contains(&(3, fact_of(1))));
        // z is still uninitialised at n4 (defined there), not after.
        assert!(result.contains(&(4, fact_of(2))));
        assert!(!result.contains(&(5, fact_of(2))));
        // r is defined by the call: not uninitialised at n4.
        assert!(!result.contains(&(4, fact_of(3))));
    }

    #[test]
    fn zero_fact_reaches_everywhere_reachable() {
        let model = Arc::new(two_proc_example());
        let result = imperative::solve(&model.graph, &Taint::new(model.clone()));
        for n in 0..model.graph.num_nodes {
            assert!(result.contains(&(n, ZERO)), "node {n} reachable");
        }
    }
}
