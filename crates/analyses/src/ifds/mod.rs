//! The IFDS framework (§4.2 of the paper): interprocedural, finite,
//! distributive subset problems solved by graph reachability (Reps,
//! Horwitz & Sagiv, POPL 1995).
//!
//! Two interchangeable solvers over one problem interface:
//!
//! * [`flix`] — the declarative formulation of Figure 5 of the FLIX
//!   paper, six rules running on the lattice engine with `<-` choice
//!   bindings calling the flow functions;
//! * [`imperative`] — the hand-coded tabulation worklist algorithm of the
//!   original IFDS paper, standing in for the Scala baseline of Table 2.
//!
//! Flow functions are *functions*, not tabulated relations — §4.2
//! explains why that is essential: tabulating `eshIntra` for all pairs
//! would itself solve the problem. Both solvers call the same
//! [`IfdsProblem`] object, exactly as the paper's evaluation reuses "the
//! same implementations of the transfer functions".

pub mod flix;
pub mod imperative;
pub mod problems;

use std::collections::BTreeSet;

/// A supergraph node (program point).
pub type Node = u32;
/// A procedure id.
pub type ProcId = u32;
/// A dataflow fact; `ZERO` is the distinguished Λ fact.
pub type Fact = i64;

/// The distinguished zero fact Λ.
pub const ZERO: Fact = 0;

/// A procedure's distinguished nodes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProcInfo {
    /// The unique start node.
    pub start: Node,
    /// The unique end (exit) node.
    pub end: Node,
}

/// A call site: a node that invokes a target procedure. The intraprocedural
/// CFG edge out of `call` is the call-to-return edge; the callee is entered
/// via [`IfdsProblem::call_flow`] and left via [`IfdsProblem::return_flow`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CallSite {
    /// The calling node.
    pub call: Node,
    /// The callee.
    pub target: ProcId,
}

/// The exploded-supergraph skeleton: procedures, intraprocedural edges
/// (including call-to-return edges), and the call graph.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Supergraph {
    /// Total number of nodes.
    pub num_nodes: u32,
    /// Per-procedure start/end nodes.
    pub procs: Vec<ProcInfo>,
    /// Intraprocedural edges, including call-node → return-site edges.
    pub cfg: Vec<(Node, Node)>,
    /// Call sites.
    pub calls: Vec<CallSite>,
    /// The procedure containing each node.
    pub proc_of: Vec<ProcId>,
}

impl Supergraph {
    /// Successor lists indexed by node.
    pub fn successors(&self) -> Vec<Vec<Node>> {
        let mut succ = vec![Vec::new(); self.num_nodes as usize];
        for &(n, m) in &self.cfg {
            succ[n as usize].push(m);
        }
        succ
    }

    /// The call target at a node, if it is a call site.
    pub fn call_target(&self, node: Node) -> Option<ProcId> {
        self.calls.iter().find(|c| c.call == node).map(|c| c.target)
    }
}

/// An IFDS problem instance: the flow functions of §4.2.
///
/// Implementations must be *distributive*: `flow(n, ·)` must distribute
/// over set union, which holds by construction here because every flow
/// function maps a single fact to a set of facts.
pub trait IfdsProblem: Send + Sync {
    /// The intraprocedural flow function `eshIntra(n, d)`. At call nodes
    /// this is the call-to-return flow applied along the call-node →
    /// return-site CFG edge.
    fn flow(&self, n: Node, d: Fact) -> Vec<Fact>;

    /// The call flow function `eshCallStart(call, d, target)`: facts
    /// entering the callee.
    fn call_flow(&self, call: Node, d: Fact, target: ProcId) -> Vec<Fact>;

    /// The return flow function `eshEndReturn(target, d, call)`: facts
    /// mapped from the callee's end node back to the caller.
    fn return_flow(&self, target: ProcId, d: Fact, call: Node) -> Vec<Fact>;

    /// Initial path-edge seeds `(n, d)`, each seeding `PathEdge(d, n, d)`.
    fn seeds(&self) -> Vec<(Node, Fact)>;
}

/// The solution: the set of reachable `(node, fact)` pairs — the `Result`
/// relation of Figure 5. `ZERO` facts are included.
pub type IfdsResult = BTreeSet<(Node, Fact)>;

/// Strips `ZERO` entries, leaving only the analysis-meaningful facts.
pub fn without_zero(result: &IfdsResult) -> IfdsResult {
    result.iter().copied().filter(|&(_, d)| d != ZERO).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn supergraph_helpers() {
        let g = Supergraph {
            num_nodes: 4,
            procs: vec![ProcInfo { start: 0, end: 3 }],
            cfg: vec![(0, 1), (1, 2), (2, 3)],
            calls: vec![CallSite { call: 1, target: 0 }],
            proc_of: vec![0; 4],
        };
        assert_eq!(g.successors()[1], vec![2]);
        assert_eq!(g.call_target(1), Some(0));
        assert_eq!(g.call_target(2), None);
    }

    #[test]
    fn without_zero_strips_lambda() {
        let result: IfdsResult = [(1, ZERO), (1, 5), (2, ZERO)].into_iter().collect();
        assert_eq!(without_zero(&result), [(1, 5)].into_iter().collect());
    }
}
