//! The declarative IDE solver — Figure 6 of the paper.
//!
//! The rules mirror the IFDS rules of Figure 5 with `PathEdge` and
//! `SummaryEdge` renamed to `JumpFn` and `SummaryFn` and one extra column
//! holding the micro-function, composed with `comp` (Figure 7). One
//! mechanical deviation: the engine allows a single function application
//! in the head, so Figure 6's nested `comp(comp(cs, se), er)` is
//! registered as the flattened helper `comp3`.

use super::{IdeProblem, IdeResult};
use crate::ifds::{Fact, Supergraph};
use flix_core::{
    BodyItem, Head, HeadTerm, LatticeOps, Program, ProgramBuilder, Solver, Term, Value,
    ValueLattice,
};
use flix_lattice::{Constant, Transformer};
use std::sync::Arc;

fn tset(items: Vec<(Fact, Transformer)>) -> Value {
    Value::set(
        items
            .into_iter()
            .map(|(d, t)| Value::tuple([Value::Int(d), t.to_value()])),
    )
}

/// Builds the Figure 6 program for a supergraph and problem.
pub fn build_program(graph: &Supergraph, problem: Arc<dyn IdeProblem>) -> Program {
    let mut b = ProgramBuilder::new();

    let cfg = b.relation("CFG", 2);
    let call_graph = b.relation("CallGraph", 2);
    let start_node = b.relation("StartNode", 2);
    let end_node = b.relation("EndNode", 2);
    let in_proc = b.relation("InProc", 2);
    let jump_fn = b.lattice("JumpFn", 4, LatticeOps::of::<Transformer>());
    let summary_fn = b.lattice("SummaryFn", 4, LatticeOps::of::<Transformer>());
    let esh_call_start = b.lattice("EshCallStart", 5, LatticeOps::of::<Transformer>());
    let result = b.lattice("Result", 3, LatticeOps::of::<Constant>());
    let result_proc = b.lattice("ResultProc", 3, LatticeOps::of::<Constant>());

    let p1 = Arc::clone(&problem);
    let esh_intra = b.function("eshIntra", move |args| {
        let n = args[0].as_int().expect("node") as u32;
        let d = args[1].as_int().expect("fact");
        tset(p1.flow(n, d))
    });
    let p2 = Arc::clone(&problem);
    let esh_call_start_fn = b.function("eshCallStart", move |args| {
        let call = args[0].as_int().expect("node") as u32;
        let d = args[1].as_int().expect("fact");
        let target = args[2].as_int().expect("proc") as u32;
        tset(p2.call_flow(call, d, target))
    });
    let p3 = Arc::clone(&problem);
    let esh_end_return = b.function("eshEndReturn", move |args| {
        let target = args[0].as_int().expect("proc") as u32;
        let d = args[1].as_int().expect("fact");
        let call = args[2].as_int().expect("node") as u32;
        tset(p3.return_flow(target, d, call))
    });

    // comp(t1, t2): apply t1 first, then t2 — the operation of Figure 7.
    let comp = b.function("comp", |args| {
        let first = Transformer::expect_from(&args[0]);
        let second = Transformer::expect_from(&args[1]);
        Transformer::comp(&first, &second).to_value()
    });
    // comp3(cs, se, er) = comp(comp(cs, se), er), flattening the nested
    // head application of Figure 6's SummaryFn rule.
    let comp3 = b.function("comp3", |args| {
        let cs = Transformer::expect_from(&args[0]);
        let se = Transformer::expect_from(&args[1]);
        let er = Transformer::expect_from(&args[2]);
        Transformer::comp(&Transformer::comp(&cs, &se), &er).to_value()
    });
    let identity = b.function("identity", |_| Transformer::identity().to_value());
    // apply(fn, v): evaluate a micro-function on a value-lattice element.
    let apply = b.function("apply", |args| {
        let f = Transformer::expect_from(&args[0]);
        let v = Constant::expect_from(&args[1]);
        f.apply(&v).to_value()
    });

    // Supergraph facts.
    for &(n, m) in &graph.cfg {
        b.fact(cfg, vec![(n as i64).into(), (m as i64).into()]);
    }
    for call in &graph.calls {
        b.fact(
            call_graph,
            vec![(call.call as i64).into(), (call.target as i64).into()],
        );
    }
    for (proc, info) in graph.procs.iter().enumerate() {
        b.fact(
            start_node,
            vec![(proc as i64).into(), (info.start as i64).into()],
        );
        b.fact(
            end_node,
            vec![(proc as i64).into(), (info.end as i64).into()],
        );
    }
    // Seeds.
    for (n, d) in problem.seeds() {
        b.fact(
            jump_fn,
            vec![
                d.into(),
                (n as i64).into(),
                d.into(),
                Transformer::identity().to_value(),
            ],
        );
        let proc = graph.proc_of[n as usize];
        b.fact(
            result_proc,
            vec![
                (proc as i64).into(),
                d.into(),
                problem.entry_value().to_value(),
            ],
        );
    }

    let v = Term::var;

    // JumpFn(d1, m, d3, comp(long, short)) :-
    //     CFG(n, m), JumpFn(d1, n, d2, long), (d3, short) <- eshIntra(n, d2).
    b.rule(
        Head::new(
            jump_fn,
            [
                HeadTerm::var("d1"),
                HeadTerm::var("m"),
                HeadTerm::var("d3"),
                HeadTerm::app(comp, [v("long"), v("short")]),
            ],
        ),
        [
            BodyItem::atom(cfg, [v("n"), v("m")]),
            BodyItem::atom(jump_fn, [v("d1"), v("n"), v("d2"), v("long")]),
            BodyItem::choose_tuple(esh_intra, [v("n"), v("d2")], ["d3", "short"]),
        ],
    );
    // JumpFn(d1, m, d3, comp(caller, summary)) :-
    //     CFG(n, m), JumpFn(d1, n, d2, caller), SummaryFn(n, d2, d3, summary).
    b.rule(
        Head::new(
            jump_fn,
            [
                HeadTerm::var("d1"),
                HeadTerm::var("m"),
                HeadTerm::var("d3"),
                HeadTerm::app(comp, [v("caller"), v("summary")]),
            ],
        ),
        [
            BodyItem::atom(cfg, [v("n"), v("m")]),
            BodyItem::atom(jump_fn, [v("d1"), v("n"), v("d2"), v("caller")]),
            BodyItem::atom(summary_fn, [v("n"), v("d2"), v("d3"), v("summary")]),
        ],
    );
    // JumpFn(d3, start, d3, identity()) :-
    //     JumpFn(d1, call, d2, _), CallGraph(call, target),
    //     EshCallStart(call, d2, target, d3, _), StartNode(target, start).
    b.rule(
        Head::new(
            jump_fn,
            [
                HeadTerm::var("d3"),
                HeadTerm::var("start"),
                HeadTerm::var("d3"),
                HeadTerm::app(identity, []),
            ],
        ),
        [
            BodyItem::atom(jump_fn, [v("d1"), v("call"), v("d2"), Term::Wildcard]),
            BodyItem::atom(call_graph, [v("call"), v("target")]),
            BodyItem::atom(
                esh_call_start,
                [v("call"), v("d2"), v("target"), v("d3"), Term::Wildcard],
            ),
            BodyItem::atom(start_node, [v("target"), v("start")]),
        ],
    );
    // SummaryFn(call, d4, d5, comp(comp(cs, se), er)) :-
    //     CallGraph(call, target), StartNode(target, start),
    //     EndNode(target, end), EshCallStart(call, d4, target, d1, cs),
    //     JumpFn(d1, end, d2, se), (d5, er) <- eshEndReturn(target, d2, call).
    b.rule(
        Head::new(
            summary_fn,
            [
                HeadTerm::var("call"),
                HeadTerm::var("d4"),
                HeadTerm::var("d5"),
                HeadTerm::app(comp3, [v("cs"), v("se"), v("er")]),
            ],
        ),
        [
            BodyItem::atom(call_graph, [v("call"), v("target")]),
            BodyItem::atom(start_node, [v("target"), v("start")]),
            BodyItem::atom(end_node, [v("target"), v("end")]),
            BodyItem::atom(
                esh_call_start,
                [v("call"), v("d4"), v("target"), v("d1"), v("cs")],
            ),
            BodyItem::atom(jump_fn, [v("d1"), v("end"), v("d2"), v("se")]),
            BodyItem::choose_tuple(
                esh_end_return,
                [v("target"), v("d2"), v("call")],
                ["d5", "er"],
            ),
        ],
    );
    // EshCallStart(call, d, target, d2, cs) :-
    //     JumpFn(_, call, d, _), CallGraph(call, target),
    //     (d2, cs) <- eshCallStart(call, d, target).
    b.rule(
        Head::new(
            esh_call_start,
            [
                HeadTerm::var("call"),
                HeadTerm::var("d"),
                HeadTerm::var("target"),
                HeadTerm::var("d2"),
                HeadTerm::var("cs"),
            ],
        ),
        [
            BodyItem::atom(jump_fn, [Term::Wildcard, v("call"), v("d"), Term::Wildcard]),
            BodyItem::atom(call_graph, [v("call"), v("target")]),
            BodyItem::choose_tuple(
                esh_call_start_fn,
                [v("call"), v("d"), v("target")],
                ["d2", "cs"],
            ),
        ],
    );
    // InProc(p, start) :- StartNode(p, start).
    // InProc(p, m) :- InProc(p, n), CFG(n, m).
    b.rule(
        Head::new(in_proc, [HeadTerm::var("p"), HeadTerm::var("start")]),
        [BodyItem::atom(start_node, [v("p"), v("start")])],
    );
    b.rule(
        Head::new(in_proc, [HeadTerm::var("p"), HeadTerm::var("m")]),
        [
            BodyItem::atom(in_proc, [v("p"), v("n")]),
            BodyItem::atom(cfg, [v("n"), v("m")]),
        ],
    );
    // Result(n, d, apply(fn, vp)) :-
    //     ResultProc(proc, dp, vp), InProc(proc, n), JumpFn(dp, n, d, fn).
    b.rule(
        Head::new(
            result,
            [
                HeadTerm::var("n"),
                HeadTerm::var("d"),
                HeadTerm::app(apply, [v("fn"), v("vp")]),
            ],
        ),
        [
            BodyItem::atom(result_proc, [v("proc"), v("dp"), v("vp")]),
            BodyItem::atom(in_proc, [v("proc"), v("n")]),
            BodyItem::atom(jump_fn, [v("dp"), v("n"), v("d"), v("fn")]),
        ],
    );
    // ResultProc(proc, dp, apply(cs, v)) :-
    //     Result(call, d, v), EshCallStart(call, d, proc, dp, cs).
    b.rule(
        Head::new(
            result_proc,
            [
                HeadTerm::var("proc"),
                HeadTerm::var("dp"),
                HeadTerm::app(apply, [v("cs"), v("vv")]),
            ],
        ),
        [
            BodyItem::atom(result, [v("call"), v("d"), v("vv")]),
            BodyItem::atom(
                esh_call_start,
                [v("call"), v("d"), v("proc"), v("dp"), v("cs")],
            ),
        ],
    );

    b.build().expect("the Figure 6 rule set is well-formed")
}

/// Solves the problem with the given solver configuration.
pub fn solve_with(graph: &Supergraph, problem: Arc<dyn IdeProblem>, solver: &Solver) -> IdeResult {
    let program = build_program(graph, problem);
    let solution = solver.solve(&program).expect("Figure 6 is stratifiable");
    let mut result = IdeResult::default();
    for (key, value) in solution.lattice("Result").expect("declared") {
        let n = key[0].as_int().expect("node") as u32;
        let d = key[1].as_int().expect("fact");
        result.values.insert((n, d), Constant::expect_from(value));
    }
    result
}

/// Solves the problem with the default solver.
pub fn solve(graph: &Supergraph, problem: Arc<dyn IdeProblem>) -> IdeResult {
    solve_with(graph, problem, &Solver::new())
}
