//! The hand-coded imperative IDE solver.
//!
//! The original IDE presentation "as an imperative algorithm requires two
//! pages" (§4.3); this is its standard two-phase structure: phase 1
//! tabulates jump functions (the IFDS tabulation carrying micro-function
//! compositions), phase 2 propagates value-lattice elements through the
//! tabulated jump functions.

use super::{IdeProblem, IdeResult};
use crate::ifds::{Fact, Node, ProcId, Supergraph};
use flix_lattice::{Constant, Lattice, Transformer};
use std::collections::HashMap;

/// Solves an IDE problem imperatively.
pub fn solve(graph: &Supergraph, problem: &dyn IdeProblem) -> IdeResult {
    let phase1 = JumpFunctions::tabulate(graph, problem);
    phase2(graph, problem, &phase1)
}

/// Phase-1 output: jump functions, call-edge functions, and summaries.
struct JumpFunctions {
    /// `jump[(d1, n, d2)]` = composed micro-function along same-level
    /// paths from the proc entry fact `d1` to `(n, d2)`.
    jump: HashMap<(Fact, Node, Fact), Transformer>,
    /// `esh[(call, d, target, d2)]` = call-edge micro-function.
    esh: HashMap<(Node, Fact, ProcId, Fact), Transformer>,
}

impl JumpFunctions {
    fn tabulate(graph: &Supergraph, problem: &dyn IdeProblem) -> JumpFunctions {
        let succ = graph.successors();
        let call_at: HashMap<Node, ProcId> =
            graph.calls.iter().map(|c| (c.call, c.target)).collect();
        let end_of: HashMap<Node, ProcId> = graph
            .procs
            .iter()
            .enumerate()
            .map(|(p, info)| (info.end, p as ProcId))
            .collect();

        let mut jump: HashMap<(Fact, Node, Fact), Transformer> = HashMap::new();
        let mut esh: HashMap<(Node, Fact, ProcId, Fact), Transformer> = HashMap::new();
        // incoming[(target, d3)] = callers (call, d2).
        let mut incoming: HashMap<(ProcId, Fact), Vec<(Node, Fact)>> = HashMap::new();
        // summaries[(call, d4)] = (d5 -> transformer).
        let mut summaries: HashMap<(Node, Fact), HashMap<Fact, Transformer>> = HashMap::new();
        // Edges grouped for re-firing.
        let mut edges_at: HashMap<Node, Vec<(Fact, Fact)>> = HashMap::new();

        let mut worklist: Vec<(Fact, Node, Fact)> = Vec::new();
        let propagate = |jump: &mut HashMap<(Fact, Node, Fact), Transformer>,
                         edges_at: &mut HashMap<Node, Vec<(Fact, Fact)>>,
                         worklist: &mut Vec<(Fact, Node, Fact)>,
                         d1: Fact,
                         n: Node,
                         d2: Fact,
                         t: Transformer| {
            if t == Transformer::Bot {
                return;
            }
            let entry = jump.entry((d1, n, d2)).or_insert(Transformer::Bot);
            let joined = entry.lub(&t);
            if joined != *entry {
                *entry = joined;
                if !edges_at.entry(n).or_default().contains(&(d1, d2)) {
                    edges_at.entry(n).or_default().push((d1, d2));
                }
                worklist.push((d1, n, d2));
            }
        };

        for (n, d) in problem.seeds() {
            propagate(
                &mut jump,
                &mut edges_at,
                &mut worklist,
                d,
                n,
                d,
                Transformer::identity(),
            );
        }

        while let Some((d1, n, d2)) = worklist.pop() {
            let t = jump[&(d1, n, d2)];
            // Call handling.
            if let Some(&target) = call_at.get(&n) {
                let start = graph.procs[target as usize].start;
                let end = graph.procs[target as usize].end;
                for (d3, cs) in problem.call_flow(n, d2, target) {
                    propagate(
                        &mut jump,
                        &mut edges_at,
                        &mut worklist,
                        d3,
                        start,
                        d3,
                        Transformer::identity(),
                    );
                    let entry = esh.entry((n, d2, target, d3)).or_insert(Transformer::Bot);
                    let joined = entry.lub(&cs);
                    let grew = joined != *entry;
                    *entry = joined;
                    let cs_now = *entry;
                    if !incoming.entry((target, d3)).or_default().contains(&(n, d2)) {
                        incoming.entry((target, d3)).or_default().push((n, d2));
                    }
                    if grew {
                        // Re-derive summaries against existing end edges.
                        let end_edges: Vec<(Fact, Transformer)> = edges_at
                            .get(&end)
                            .map(|pairs| {
                                pairs
                                    .iter()
                                    .filter(|&&(entry_fact, _)| entry_fact == d3)
                                    .map(|&(_, d_end)| (d_end, jump[&(d3, end, d_end)]))
                                    .collect()
                            })
                            .unwrap_or_default();
                        for (d_end, se) in end_edges {
                            install_summary(
                                graph,
                                problem,
                                &mut jump,
                                &mut edges_at,
                                &mut worklist,
                                &mut summaries,
                                &succ,
                                target,
                                n,
                                d2,
                                cs_now,
                                se,
                                d_end,
                            );
                        }
                    }
                }
            }
            // Exit handling.
            if let Some(&proc) = end_of.get(&n) {
                let callers: Vec<(Node, Fact)> =
                    incoming.get(&(proc, d1)).cloned().unwrap_or_default();
                for (call, d4) in callers {
                    let cs = esh[&(call, d4, proc, d1)];
                    install_summary(
                        graph,
                        problem,
                        &mut jump,
                        &mut edges_at,
                        &mut worklist,
                        &mut summaries,
                        &succ,
                        proc,
                        call,
                        d4,
                        cs,
                        t,
                        d2,
                    );
                }
            }
            // Intraprocedural propagation (incl. call-to-return).
            let succs = &succ[n as usize];
            if !succs.is_empty() {
                for (d3, short) in problem.flow(n, d2) {
                    let composed = Transformer::comp(&t, &short);
                    for &m in succs {
                        propagate(&mut jump, &mut edges_at, &mut worklist, d1, m, d3, composed);
                    }
                }
                if let Some(summary_map) = summaries.get(&(n, d2)).cloned() {
                    for (d5, s) in summary_map {
                        let composed = Transformer::comp(&t, &s);
                        for &m in succs {
                            propagate(&mut jump, &mut edges_at, &mut worklist, d1, m, d5, composed);
                        }
                    }
                }
            }
        }

        #[allow(clippy::too_many_arguments)]
        fn install_summary(
            _graph: &Supergraph,
            problem: &dyn IdeProblem,
            jump: &mut HashMap<(Fact, Node, Fact), Transformer>,
            edges_at: &mut HashMap<Node, Vec<(Fact, Fact)>>,
            worklist: &mut Vec<(Fact, Node, Fact)>,
            summaries: &mut HashMap<(Node, Fact), HashMap<Fact, Transformer>>,
            succ: &[Vec<Node>],
            proc: ProcId,
            call: Node,
            d4: Fact,
            cs: Transformer,
            se: Transformer,
            d_end: Fact,
        ) {
            for (d5, er) in problem.return_flow(proc, d_end, call) {
                let summary = Transformer::comp(&Transformer::comp(&cs, &se), &er);
                let entry = summaries
                    .entry((call, d4))
                    .or_default()
                    .entry(d5)
                    .or_insert(Transformer::Bot);
                let joined = entry.lub(&summary);
                if joined == *entry {
                    continue;
                }
                *entry = joined;
                let s_now = *entry;
                // Re-fire rule 2: existing jump edges into (call, d4).
                let d1s: Vec<(Fact, Transformer)> = edges_at
                    .get(&call)
                    .map(|pairs| {
                        pairs
                            .iter()
                            .filter(|&&(_, dd)| dd == d4)
                            .map(|&(d1, _)| (d1, jump[&(d1, call, d4)]))
                            .collect()
                    })
                    .unwrap_or_default();
                for (d1, caller_t) in d1s {
                    let composed = Transformer::comp(&caller_t, &s_now);
                    for &m in &succ[call as usize] {
                        if t_propagate(jump, edges_at, d1, m, d5, composed) {
                            worklist.push((d1, m, d5));
                        }
                    }
                }
            }
        }

        fn t_propagate(
            jump: &mut HashMap<(Fact, Node, Fact), Transformer>,
            edges_at: &mut HashMap<Node, Vec<(Fact, Fact)>>,
            d1: Fact,
            n: Node,
            d2: Fact,
            t: Transformer,
        ) -> bool {
            if t == Transformer::Bot {
                return false;
            }
            let entry = jump.entry((d1, n, d2)).or_insert(Transformer::Bot);
            let joined = entry.lub(&t);
            if joined != *entry {
                *entry = joined;
                let list = edges_at.entry(n).or_default();
                if !list.contains(&(d1, d2)) {
                    list.push((d1, d2));
                }
                return true;
            }
            false
        }

        JumpFunctions { jump, esh }
    }
}

/// Phase 2: propagate value-lattice elements through the tabulated jump
/// functions — the imperative mirror of Figure 6's `Result`/`ResultProc`
/// rules, iterated to a fixed point.
fn phase2(graph: &Supergraph, problem: &dyn IdeProblem, jf: &JumpFunctions) -> IdeResult {
    let mut result_proc: HashMap<(ProcId, Fact), Constant> = HashMap::new();
    for (n, d) in problem.seeds() {
        let proc = graph.proc_of[n as usize];
        let entry = result_proc
            .entry((proc, d))
            .or_insert(flix_lattice::Flat::Bot);
        *entry = entry.lub(&problem.entry_value());
    }

    let mut result: HashMap<(Node, Fact), Constant> = HashMap::new();
    loop {
        let mut changed = false;
        // Result(n, d) ⊔= fn.apply(ResultProc(proc_of(n), dp)).
        for (&(dp, n, d), f) in &jf.jump {
            let proc = graph.proc_of[n as usize];
            if let Some(vp) = result_proc.get(&(proc, dp)) {
                let value = f.apply(vp);
                if value.is_bottom() {
                    continue;
                }
                let entry = result.entry((n, d)).or_insert(flix_lattice::Flat::Bot);
                let joined = entry.lub(&value);
                if joined != *entry {
                    *entry = joined;
                    changed = true;
                }
            }
        }
        // ResultProc(target, dp) ⊔= cs.apply(Result(call, d)).
        for (&(call, d, target, dp), cs) in &jf.esh {
            if let Some(v) = result.get(&(call, d)) {
                let value = cs.apply(v);
                if value.is_bottom() {
                    continue;
                }
                let entry = result_proc
                    .entry((target, dp))
                    .or_insert(flix_lattice::Flat::Bot);
                let joined = entry.lub(&value);
                if joined != *entry {
                    *entry = joined;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }

    IdeResult {
        values: result.into_iter().filter(|(_, v)| !v.is_bottom()).collect(),
    }
}
