//! Linear constant propagation — the running IDE example of §4.3 and
//! Figure 7 of the paper.
//!
//! The value lattice `V` is constant propagation
//! ([`flix_lattice::Constant`]); the micro-function lattice `F` holds
//! `λl.⊥` and `λl.(a·l + b) ⊔ c` ([`flix_lattice::Transformer`]). Edge
//! functions: a constant assignment loads `λl.k`, a copy is the identity,
//! a linear statement `dst = a*src + b` is `λl.a·l + b`, and an
//! environment read is `λl.⊤`.

use super::IdeProblem;
use crate::ifds::{Fact, Node, ProcId, ZERO};
use crate::workloads::jvm_program::{ProgramModel, Stmt, VarId};
use flix_lattice::Transformer;
use std::sync::Arc;

fn fact_of(v: VarId) -> Fact {
    v as Fact + 1
}

fn var_of(d: Fact) -> Option<VarId> {
    if d == ZERO {
        None
    } else {
        Some((d - 1) as VarId)
    }
}

/// The linear constant propagation IDE problem over a [`ProgramModel`].
pub struct LinearConstant {
    model: Arc<ProgramModel>,
}

impl LinearConstant {
    /// Creates the problem over a program model.
    pub fn new(model: Arc<ProgramModel>) -> LinearConstant {
        LinearConstant { model }
    }

    fn id() -> Transformer {
        Transformer::identity()
    }
}

impl IdeProblem for LinearConstant {
    fn flow(&self, n: Node, d: Fact) -> Vec<(Fact, Transformer)> {
        let stmt = self.model.stmt(n);
        let Some(v) = var_of(d) else {
            // Λ persists and generates definitions.
            let mut out = vec![(ZERO, Self::id())];
            match stmt {
                Stmt::Const { dst, k } => out.push((fact_of(*dst), Transformer::constant(*k))),
                Stmt::Read { dst } => out.push((fact_of(*dst), Transformer::top_transformer())),
                _ => {}
            }
            return out;
        };
        match stmt {
            Stmt::Nop | Stmt::Sanitize { .. } => vec![(d, Self::id())],
            Stmt::Const { dst, .. } | Stmt::Read { dst } => {
                if v == *dst {
                    vec![] // killed; regenerated from Λ
                } else {
                    vec![(d, Self::id())]
                }
            }
            Stmt::Assign { dst, src } => {
                if v == *src && v == *dst {
                    vec![(d, Self::id())]
                } else if v == *src {
                    vec![(d, Self::id()), (fact_of(*dst), Self::id())]
                } else if v == *dst {
                    vec![]
                } else {
                    vec![(d, Self::id())]
                }
            }
            Stmt::Linear { dst, src, a, b } => {
                if v == *src && v == *dst {
                    vec![(d, Transformer::linear(*a, *b))]
                } else if v == *src {
                    vec![
                        (d, Self::id()),
                        (fact_of(*dst), Transformer::linear(*a, *b)),
                    ]
                } else if v == *dst {
                    vec![]
                } else {
                    vec![(d, Self::id())]
                }
            }
            Stmt::Call { ret_dst, .. } => {
                if Some(v) == *ret_dst {
                    vec![]
                } else {
                    vec![(d, Self::id())]
                }
            }
        }
    }

    fn call_flow(&self, call: Node, d: Fact, _target: ProcId) -> Vec<(Fact, Transformer)> {
        let Stmt::Call { args, .. } = self.model.stmt(call) else {
            return vec![];
        };
        match var_of(d) {
            None => vec![(ZERO, Self::id())],
            Some(v) => args
                .iter()
                .filter(|&&(actual, _)| actual == v)
                .map(|&(_, formal)| (fact_of(formal), Self::id()))
                .collect(),
        }
    }

    fn return_flow(&self, target: ProcId, d: Fact, call: Node) -> Vec<(Fact, Transformer)> {
        match var_of(d) {
            Some(v) if v == self.model.proc_ret[target as usize] => {
                let Stmt::Call { ret_dst, .. } = self.model.stmt(call) else {
                    return vec![];
                };
                ret_dst
                    .map(|r| (fact_of(r), Self::id()))
                    .into_iter()
                    .collect()
            }
            _ => vec![],
        }
    }

    fn seeds(&self) -> Vec<(Node, Fact)> {
        let main = self.model.main;
        vec![(self.model.graph.procs[main as usize].start, ZERO)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ide::imperative;
    use flix_lattice::{Constant, Flat};

    /// main: n0 start | n1 x=3 | n2 y=2*x+1 | n3 z=input() | n4 w=y | n5 end
    /// Variables: x=0, y=1, z=2, w=3.
    fn straight_line() -> ProgramModel {
        use crate::ifds::{ProcInfo, Supergraph};
        ProgramModel {
            graph: Supergraph {
                num_nodes: 6,
                procs: vec![ProcInfo { start: 0, end: 5 }],
                cfg: vec![(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)],
                calls: vec![],
                proc_of: vec![0; 6],
            },
            stmts: vec![
                Stmt::Nop,
                Stmt::Const { dst: 0, k: 3 },
                Stmt::Linear {
                    dst: 1,
                    src: 0,
                    a: 2,
                    b: 1,
                },
                Stmt::Read { dst: 2 },
                Stmt::Assign { dst: 3, src: 1 },
                Stmt::Nop,
            ],
            proc_vars: vec![vec![0, 1, 2, 3]],
            proc_params: vec![vec![]],
            proc_ret: vec![3],
            main: 0,
            num_vars: 4,
        }
    }

    #[test]
    fn straight_line_constants() {
        let model = Arc::new(straight_line());
        let problem = LinearConstant::new(model.clone());
        let result = imperative::solve(&model.graph, &problem);
        // At the end node: x = 3, y = 2*3+1 = 7, z = ⊤, w = 7.
        assert_eq!(result.value(5, fact_of(0)), Constant::cst(3));
        assert_eq!(result.value(5, fact_of(1)), Constant::cst(7));
        assert_eq!(result.value(5, fact_of(2)), Flat::Top);
        assert_eq!(result.value(5, fact_of(3)), Constant::cst(7));
    }

    #[test]
    fn branch_join_loses_constancy() {
        // A diamond assigning x=1 on one arm and x=2 on the other.
        use crate::ifds::{ProcInfo, Supergraph};
        let model = Arc::new(ProgramModel {
            graph: Supergraph {
                num_nodes: 5,
                procs: vec![ProcInfo { start: 0, end: 4 }],
                cfg: vec![(0, 1), (0, 2), (1, 3), (2, 3), (3, 4)],
                calls: vec![],
                proc_of: vec![0; 5],
            },
            stmts: vec![
                Stmt::Nop,
                Stmt::Const { dst: 0, k: 1 },
                Stmt::Const { dst: 0, k: 2 },
                Stmt::Nop,
                Stmt::Nop,
            ],
            proc_vars: vec![vec![0]],
            proc_params: vec![vec![]],
            proc_ret: vec![0],
            main: 0,
            num_vars: 1,
        });
        let problem = LinearConstant::new(model.clone());
        let result = imperative::solve(&model.graph, &problem);
        assert_eq!(result.value(4, fact_of(0)), Flat::Top, "1 ⊔ 2 = ⊤");
    }
}
