//! The IDE framework (§4.3 of the paper): interprocedural distributive
//! environment problems (Sagiv, Reps & Horwitz, TCS 1996).
//!
//! IDE generalises IFDS: the same exploded-supergraph edges, but each edge
//! is decorated with a *micro-function* describing how a value lattice
//! element transforms along it. The paper's point — made by Figures 5
//! and 6 side by side — is that the declarative formulations make this
//! generalisation visually obvious: the IDE rules are the IFDS rules with
//! one extra column composed via `comp`.
//!
//! * [`flix`] — the declarative formulation of Figure 6, with the
//!   micro-function lattice in the last column of `JumpFn`/`SummaryFn`;
//! * [`imperative`] — a hand-coded two-phase jump-function solver;
//! * [`linear_constant`] — the linear constant propagation instantiation
//!   whose micro-function algebra is Figure 7
//!   ([`flix_lattice::Transformer`]);
//! * [`IdentityIde`] — wraps any IFDS problem with identity
//!   micro-functions, the embedding that makes "IDE restricted to
//!   identity = IFDS" a checkable theorem (see the integration tests).

pub mod flix;
pub mod imperative;
pub mod linear_constant;

use crate::ifds::{Fact, IfdsProblem, Node, ProcId};
use flix_lattice::{Constant, Flat, Transformer};
use std::collections::BTreeMap;

/// An IDE problem instance: flow functions returning successor facts
/// *decorated with micro-functions* over the constant propagation value
/// lattice.
pub trait IdeProblem: Send + Sync {
    /// Intraprocedural flow (call-to-return at call nodes), with edge
    /// micro-functions.
    fn flow(&self, n: Node, d: Fact) -> Vec<(Fact, Transformer)>;

    /// Call flow into the callee.
    fn call_flow(&self, call: Node, d: Fact, target: ProcId) -> Vec<(Fact, Transformer)>;

    /// Return flow back to the caller.
    fn return_flow(&self, target: ProcId, d: Fact, call: Node) -> Vec<(Fact, Transformer)>;

    /// Seeds: `JumpFn(d, n, d, identity)` entries.
    fn seeds(&self) -> Vec<(Node, Fact)>;

    /// The value of each seed fact at program entry (usually `⊤`,
    /// "unknown").
    fn entry_value(&self) -> Constant {
        Flat::Top
    }
}

/// The IDE solution: the value-lattice element for each reachable
/// `(node, fact)` pair — the `Result` lattice of Figure 6.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct IdeResult {
    /// `Result(n, d) ↦ v` cells (only non-`⊥` entries).
    pub values: BTreeMap<(Node, Fact), Constant>,
}

impl IdeResult {
    /// The value at `(node, fact)` (`⊥` when unreachable).
    pub fn value(&self, node: Node, fact: Fact) -> Constant {
        self.values.get(&(node, fact)).copied().unwrap_or(Flat::Bot)
    }

    /// The reachable `(node, fact)` pairs — the IFDS projection.
    pub fn reachable(&self) -> std::collections::BTreeSet<(Node, Fact)> {
        self.values.keys().copied().collect()
    }
}

/// Embeds an IFDS problem into IDE by decorating every edge with the
/// identity micro-function.
///
/// §4.3: "the IDE framework computes the same edges as IFDS, but each
/// edge is decorated with a representation of a so-called micro-function";
/// with all decorations the identity, the two must coincide — the
/// integration tests check exactly that.
pub struct IdentityIde<P>(pub P);

impl<P: IfdsProblem> IdeProblem for IdentityIde<P> {
    fn flow(&self, n: Node, d: Fact) -> Vec<(Fact, Transformer)> {
        self.0
            .flow(n, d)
            .into_iter()
            .map(|d2| (d2, Transformer::identity()))
            .collect()
    }

    fn call_flow(&self, call: Node, d: Fact, target: ProcId) -> Vec<(Fact, Transformer)> {
        self.0
            .call_flow(call, d, target)
            .into_iter()
            .map(|d2| (d2, Transformer::identity()))
            .collect()
    }

    fn return_flow(&self, target: ProcId, d: Fact, call: Node) -> Vec<(Fact, Transformer)> {
        self.0
            .return_flow(target, d, call)
            .into_iter()
            .map(|d2| (d2, Transformer::identity()))
            .collect()
    }

    fn seeds(&self) -> Vec<(Node, Fact)> {
        self.0.seeds()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn result_defaults_to_bottom() {
        let r = IdeResult::default();
        assert_eq!(r.value(3, 1), Flat::Bot);
        assert!(r.reachable().is_empty());
    }
}
