//! The combined points-to + parity dataflow analysis with the
//! division-by-zero client — Figure 2 of the paper, through the Rust API.
//!
//! This is the paper's motivating example of what Datalog *cannot* express
//! and FLIX can: the `IntVar` and `IntField` predicates carry parity
//! lattice elements, the `sum` transfer function computes abstract
//! addition in a rule head, and the `isMaybeZero` monotone filter selects
//! possibly-zero denominators. (The same program written in the FLIX
//! surface language is exercised by the `surface_language` integration
//! test.)

use crate::points_to::PointsToInput;
use flix_core::{
    BodyItem, Head, HeadTerm, LatticeOps, Program, ProgramBuilder, Solver, Term, Value,
    ValueLattice,
};
use flix_lattice::Parity;
use std::collections::{BTreeMap, BTreeSet};

/// Input facts: the points-to facts of Figure 1 plus the integer dataflow
/// facts of Figure 2.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DataflowInput {
    /// The pointer part.
    pub points_to: PointsToInput,
    /// `Int(var, n)` — `var = n`, seeding the parity of `var`.
    pub int_const: Vec<(String, i64)>,
    /// `AddExp(res, v1, v2)` — `res = v1 + v2`.
    pub add_exp: Vec<(String, String, String)>,
    /// `DivExp(res, v1, v2)` — `res = v1 / v2`.
    pub div_exp: Vec<(String, String, String)>,
}

/// The analysis result.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DataflowResult {
    /// The parity of each integer variable.
    pub int_var: BTreeMap<String, Parity>,
    /// The parity of each heap field, keyed by `(object, field)`.
    pub int_field: BTreeMap<(String, String), Parity>,
    /// Result variables of divisions whose denominator may be zero.
    pub arithmetic_errors: BTreeSet<String>,
}

/// Builds the Figure 2 program over the input facts.
pub fn build_program(input: &DataflowInput) -> Program {
    let mut b = ProgramBuilder::new();

    // Pointer relations (shared shape with Figure 1).
    let new = b.relation("New", 2);
    let assign = b.relation("Assign", 2);
    let load = b.relation("Load", 3);
    let store = b.relation("Store", 3);
    let vpt = b.relation("VarPointsTo", 2);
    let hpt = b.relation("HeapPointsTo", 3);
    // Integer relations and lattices.
    let int_fact = b.relation("Int", 2);
    let add_exp = b.relation("AddExp", 3);
    let div_exp = b.relation("DivExp", 3);
    let arith_err = b.relation("ArithmeticError", 1);
    let int_var = b.lattice("IntVar", 2, LatticeOps::of::<Parity>());
    let int_field = b.lattice("IntField", 3, LatticeOps::of::<Parity>());

    let sum = b.function("sum", |args| {
        Parity::expect_from(&args[0])
            .sum(&Parity::expect_from(&args[1]))
            .to_value()
    });
    let is_maybe_zero = b.function("isMaybeZero", |args| {
        Value::Bool(Parity::expect_from(&args[0]).is_maybe_zero())
    });

    // Facts.
    let s = Value::str;
    for (x, y) in &input.points_to.new {
        b.fact(new, vec![s(x.as_str()), s(y.as_str())]);
    }
    for (x, y) in &input.points_to.assign {
        b.fact(assign, vec![s(x.as_str()), s(y.as_str())]);
    }
    for (x, y, z) in &input.points_to.load {
        b.fact(load, vec![s(x.as_str()), s(y.as_str()), s(z.as_str())]);
    }
    for (x, y, z) in &input.points_to.store {
        b.fact(store, vec![s(x.as_str()), s(y.as_str()), s(z.as_str())]);
    }
    for (x, n) in &input.int_const {
        b.fact(int_fact, vec![s(x.as_str()), Value::Int(*n)]);
    }
    for (r, x, y) in &input.add_exp {
        b.fact(add_exp, vec![s(r.as_str()), s(x.as_str()), s(y.as_str())]);
    }
    for (r, x, y) in &input.div_exp {
        b.fact(div_exp, vec![s(r.as_str()), s(x.as_str()), s(y.as_str())]);
    }

    let v = Term::var;

    // The four points-to rules of Figure 1.
    b.rule(
        Head::new(vpt, [HeadTerm::var("v1"), HeadTerm::var("h1")]),
        [BodyItem::atom(new, [v("v1"), v("h1")])],
    );
    b.rule(
        Head::new(vpt, [HeadTerm::var("v1"), HeadTerm::var("h2")]),
        [
            BodyItem::atom(assign, [v("v1"), v("v2")]),
            BodyItem::atom(vpt, [v("v2"), v("h2")]),
        ],
    );
    b.rule(
        Head::new(vpt, [HeadTerm::var("v1"), HeadTerm::var("h2")]),
        [
            BodyItem::atom(load, [v("v1"), v("v2"), v("f")]),
            BodyItem::atom(vpt, [v("v2"), v("h1")]),
            BodyItem::atom(hpt, [v("h1"), v("f"), v("h2")]),
        ],
    );
    b.rule(
        Head::new(
            hpt,
            [HeadTerm::var("h1"), HeadTerm::var("f"), HeadTerm::var("h2")],
        ),
        [
            BodyItem::atom(store, [v("v1"), v("f"), v("v2")]),
            BodyItem::atom(vpt, [v("v1"), v("h1")]),
            BodyItem::atom(vpt, [v("v2"), v("h2")]),
        ],
    );

    // IntVar(v, alpha(n)) :- Int(v, n) — seeding, via a parity-abstraction
    // transfer function (lines 49 of Figure 2, with abstraction inlined).
    let alpha = b.function("alpha", |args| {
        Parity::alpha(args[0].as_int().expect("constant")).to_value()
    });
    b.rule(
        Head::new(
            int_var,
            [HeadTerm::var("v"), HeadTerm::app(alpha, [v("n")])],
        ),
        [BodyItem::atom(int_fact, [v("v"), v("n")])],
    );
    // IntVar(v, i) :- Assign(v, v2), IntVar(v2, i).
    b.rule(
        Head::new(int_var, [HeadTerm::var("v"), HeadTerm::var("i")]),
        [
            BodyItem::atom(assign, [v("v"), v("v2")]),
            BodyItem::atom(int_var, [v("v2"), v("i")]),
        ],
    );
    // IntVar(v, i) :- Load(v, v2, f), VarPointsTo(v2, h), IntField(h, f, i).
    b.rule(
        Head::new(int_var, [HeadTerm::var("v"), HeadTerm::var("i")]),
        [
            BodyItem::atom(load, [v("v"), v("v2"), v("f")]),
            BodyItem::atom(vpt, [v("v2"), v("h")]),
            BodyItem::atom(int_field, [v("h"), v("f"), v("i")]),
        ],
    );
    // IntField(h, f, i) :- Store(v1, f, v2), VarPointsTo(v1, h), IntVar(v2, i).
    b.rule(
        Head::new(
            int_field,
            [HeadTerm::var("h"), HeadTerm::var("f"), HeadTerm::var("i")],
        ),
        [
            BodyItem::atom(store, [v("v1"), v("f"), v("v2")]),
            BodyItem::atom(vpt, [v("v1"), v("h")]),
            BodyItem::atom(int_var, [v("v2"), v("i")]),
        ],
    );
    // IntVar(r, sum(i1, i2)) :- AddExp(r, v1, v2), IntVar(v1, i1), IntVar(v2, i2).
    b.rule(
        Head::new(
            int_var,
            [HeadTerm::var("r"), HeadTerm::app(sum, [v("i1"), v("i2")])],
        ),
        [
            BodyItem::atom(add_exp, [v("r"), v("v1"), v("v2")]),
            BodyItem::atom(int_var, [v("v1"), v("i1")]),
            BodyItem::atom(int_var, [v("v2"), v("i2")]),
        ],
    );
    // ArithmeticError(r) :- DivExp(r, v1, v2), IntVar(v2, i2), isMaybeZero(i2).
    b.rule(
        Head::new(arith_err, [HeadTerm::var("r")]),
        [
            BodyItem::atom(div_exp, [v("r"), v("v1"), v("v2")]),
            BodyItem::atom(int_var, [v("v2"), v("i2")]),
            BodyItem::filter(is_maybe_zero, [v("i2")]),
        ],
    );

    b.build().expect("Figure 2 is well-formed")
}

/// Runs the analysis with the given solver.
pub fn analyze_with(input: &DataflowInput, solver: &Solver) -> DataflowResult {
    let solution = solver
        .solve(&build_program(input))
        .expect("Figure 2 is stratifiable");
    let mut result = DataflowResult::default();
    for (key, value) in solution.lattice("IntVar").expect("declared") {
        result.int_var.insert(
            key[0].as_str().expect("var").to_string(),
            Parity::expect_from(value),
        );
    }
    for (key, value) in solution.lattice("IntField").expect("declared") {
        result.int_field.insert(
            (
                key[0].as_str().expect("obj").to_string(),
                key[1].as_str().expect("field").to_string(),
            ),
            Parity::expect_from(value),
        );
    }
    for row in solution.relation("ArithmeticError").expect("declared") {
        result
            .arithmetic_errors
            .insert(row[0].as_str().expect("var").to_string());
    }
    result
}

/// Runs the analysis with the default solver.
pub fn analyze(input: &DataflowInput) -> DataflowResult {
    analyze_with(input, &Solver::new())
}

/// A worked example exercising every rule: an odd constant is stored into
/// a heap field, loaded back, added to itself (odd + odd = even, so maybe
/// zero), and used as a denominator.
pub fn example_input() -> DataflowInput {
    DataflowInput {
        points_to: PointsToInput {
            new: vec![("o".into(), "H".into())],
            assign: vec![],
            store: vec![("o".into(), "f".into(), "a".into())],
            load: vec![("b".into(), "o".into(), "f".into())],
        },
        int_const: vec![("a".into(), 3), ("x".into(), 10)],
        add_exp: vec![("c".into(), "b".into(), "b".into())],
        div_exp: vec![
            ("d".into(), "x".into(), "c".into()), // x / even — flagged
            ("e".into(), "x".into(), "b".into()), // x / odd — safe
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_2_example() {
        let result = analyze(&example_input());
        assert_eq!(result.int_var["a"], Parity::Odd);
        assert_eq!(result.int_field[&("H".into(), "f".into())], Parity::Odd);
        assert_eq!(result.int_var["b"], Parity::Odd);
        assert_eq!(result.int_var["c"], Parity::Even, "odd + odd");
        assert!(result.arithmetic_errors.contains("d"));
        assert!(!result.arithmetic_errors.contains("e"));
    }

    #[test]
    fn joining_parities_through_assignments() {
        let input = DataflowInput {
            int_const: vec![("a".into(), 2), ("b".into(), 3)],
            points_to: PointsToInput {
                assign: vec![("c".into(), "a".into()), ("c".into(), "b".into())],
                ..PointsToInput::default()
            },
            ..DataflowInput::default()
        };
        let result = analyze(&input);
        assert_eq!(result.int_var["c"], Parity::Top, "Even ⊔ Odd");
    }
}
