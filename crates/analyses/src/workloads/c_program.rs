//! Synthetic C-like pointer programs for the Strong Update analysis.
//!
//! The paper evaluates Table 1 on SPEC CPU benchmarks fed through an LLVM
//! fact extractor; neither is available here, so this generator is the
//! substitution documented in DESIGN.md: seeded random programs emitting
//! the same five fact relations (`AddrOf`, `Copy`, `Load`, `Store`,
//! `CFG`), scaled so the generated *input fact counts* match the paper's
//! per-benchmark numbers — the metric Table 1 itself is parameterised by.
//!
//! The shape mimics real extracted facts: labels form one long
//! control-flow spine with short branches (like basic blocks), a minority
//! of variables are address-taken, and loads/stores cluster on hot
//! pointers so points-to sets have the skewed size distribution that makes
//! strong updates profitable.

use crate::strong_update::SuInput;
use flix_lattice::rng::SmallRng;

/// One row of Table 1 of the paper: a benchmark program with its source
/// size and input fact count.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Table1Row {
    /// The SPEC benchmark name.
    pub name: &'static str,
    /// Thousands of source lines (paper column "kSLOC").
    pub ksloc_x10: u32,
    /// The paper's "Input Facts" column.
    pub input_facts: u32,
    /// Whether the paper's DLV column timed out (15 minutes) or was not
    /// attempted at this size.
    pub dlv_finished: bool,
    /// Whether the paper's FLIX column finished within the timeout.
    pub flix_finished: bool,
}

/// The sixteen explicitly listed rows of Table 1 (the paper truncates the
/// remainder as "seven more benchmarks").
pub const TABLE_1: &[Table1Row] = &[
    Table1Row {
        name: "470.lbm",
        ksloc_x10: 12,
        input_facts: 1_205,
        dlv_finished: true,
        flix_finished: true,
    },
    Table1Row {
        name: "181.mcf",
        ksloc_x10: 25,
        input_facts: 3_377,
        dlv_finished: true,
        flix_finished: true,
    },
    Table1Row {
        name: "429.mcf",
        ksloc_x10: 27,
        input_facts: 3_392,
        dlv_finished: true,
        flix_finished: true,
    },
    Table1Row {
        name: "256.bzip2",
        ksloc_x10: 47,
        input_facts: 5_017,
        dlv_finished: true,
        flix_finished: true,
    },
    Table1Row {
        name: "462.libquantum",
        ksloc_x10: 44,
        input_facts: 6_196,
        dlv_finished: true,
        flix_finished: true,
    },
    Table1Row {
        name: "164.gzip",
        ksloc_x10: 86,
        input_facts: 9_259,
        dlv_finished: true,
        flix_finished: true,
    },
    Table1Row {
        name: "401.bzip2",
        ksloc_x10: 83,
        input_facts: 11_844,
        dlv_finished: true,
        flix_finished: true,
    },
    Table1Row {
        name: "458.sjeng",
        ksloc_x10: 139,
        input_facts: 20_154,
        dlv_finished: true,
        flix_finished: true,
    },
    Table1Row {
        name: "433.milc",
        ksloc_x10: 150,
        input_facts: 22_147,
        dlv_finished: false,
        flix_finished: true,
    },
    Table1Row {
        name: "175.vpr",
        ksloc_x10: 178,
        input_facts: 25_977,
        dlv_finished: false,
        flix_finished: true,
    },
    Table1Row {
        name: "186.crafty",
        ksloc_x10: 212,
        input_facts: 32_189,
        dlv_finished: false,
        flix_finished: true,
    },
    Table1Row {
        name: "197.parser",
        ksloc_x10: 114,
        input_facts: 32_606,
        dlv_finished: false,
        flix_finished: true,
    },
    Table1Row {
        name: "482.sphinx3",
        ksloc_x10: 251,
        input_facts: 42_736,
        dlv_finished: false,
        flix_finished: true,
    },
    Table1Row {
        name: "300.twolf",
        ksloc_x10: 205,
        input_facts: 44_041,
        dlv_finished: false,
        flix_finished: true,
    },
    Table1Row {
        name: "456.hmmer",
        ksloc_x10: 360,
        input_facts: 68_384,
        dlv_finished: false,
        flix_finished: false,
    },
    Table1Row {
        name: "464.h264ref",
        ksloc_x10: 516,
        input_facts: 89_898,
        dlv_finished: false,
        flix_finished: false,
    },
];

/// Generates a pointer program with approximately `target_facts` input
/// facts, deterministically from `seed`.
///
/// The mix of fact kinds follows roughly what LLVM extraction of C code
/// produces: mostly CFG edges and copies, with address-taking, loads and
/// stores each a ~10% minority.
pub fn generate(target_facts: usize, seed: u64) -> SuInput {
    let mut rng = SmallRng::seed_from_u64(seed);

    // Budget split (fractions of the fact target before Kill derivation):
    //   CFG 35%, Copy 25%, AddrOf 12%, Store 14%, Load 14%.
    let n_cfg = target_facts * 35 / 100;
    let n_copy = target_facts * 25 / 100;
    let n_addr = target_facts * 12 / 100;
    let n_store = target_facts * 14 / 100;
    let n_load = target_facts.saturating_sub(n_cfg + n_copy + n_addr + n_store);

    let num_labels = (n_cfg + 1).max(2) as u32;
    // A variable per few statements, an object per few address-takings.
    let num_vars = ((target_facts / 3).max(8)) as u32;
    let num_objs = ((n_addr / 2).max(4)) as u32;

    let mut input = SuInput {
        num_vars,
        num_objs,
        num_labels,
        ..SuInput::default()
    };

    // Control flow: a spine with occasional short forward branches,
    // mimicking basic-block structure.
    for l in 0..num_labels - 1 {
        input.cfg.push((l, l + 1));
    }
    let extra_branches = n_cfg.saturating_sub(input.cfg.len());
    for _ in 0..extra_branches {
        let from = rng.gen_range(0..num_labels.saturating_sub(3).max(1));
        let span = rng.gen_range(2..8).min(num_labels - 1 - from);
        if span >= 1 {
            input.cfg.push((from, from + span));
        }
    }

    // Address-taking: a skewed minority of variables take addresses; a
    // few "hot" objects are taken by several variables (shared globals).
    for _ in 0..n_addr {
        let p = rng.gen_range(0..num_vars);
        let a = skewed(&mut rng, num_objs);
        input.addr_of.push((p, a));
    }

    // Copies: a sparse assignment graph with a few hubs.
    for _ in 0..n_copy {
        let p = rng.gen_range(0..num_vars);
        let q = skewed(&mut rng, num_vars);
        if p != q {
            input.copy.push((p, q));
        }
    }

    // Stores and loads at random labels through skewed base pointers.
    for _ in 0..n_store {
        let l = rng.gen_range(0..num_labels);
        let p = skewed(&mut rng, num_vars);
        let q = rng.gen_range(0..num_vars);
        input.store.push((l, p, q));
    }
    for _ in 0..n_load {
        let l = rng.gen_range(0..num_labels);
        let p = rng.gen_range(0..num_vars);
        let q = skewed(&mut rng, num_vars);
        input.load.push((l, p, q));
    }

    input.compute_kill();
    input
}

/// Generates the workload for one Table 1 row, scaled by `scale`
/// (`1.0` reproduces the paper's input-fact count; benchmark harnesses
/// use smaller scales to keep laptop runtimes reasonable).
pub fn generate_row(row: &Table1Row, scale: f64, seed: u64) -> SuInput {
    let target = ((row.input_facts as f64) * scale).max(32.0) as usize;
    generate(target, seed ^ row.input_facts as u64)
}

/// A skewed index distribution: 50% of draws land in the first eighth of
/// the range (hot variables/objects), the rest uniform.
fn skewed(rng: &mut SmallRng, n: u32) -> u32 {
    let hot = (n / 8).max(1);
    if rng.gen_bool(0.5) {
        rng.gen_range(0..hot)
    } else {
        rng.gen_range(0..n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fact_count_is_close_to_target() {
        for target in [500usize, 2_000, 10_000] {
            let input = generate(target, 7);
            let count = input.fact_count() - input.kill.len();
            let deviation = (count as f64 - target as f64).abs() / target as f64;
            assert!(
                deviation < 0.15,
                "target {target}, got {count} ({deviation:.2} off)"
            );
        }
    }

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(generate(1_000, 42), generate(1_000, 42));
        assert_ne!(generate(1_000, 42), generate(1_000, 43));
    }

    #[test]
    fn table_rows_are_ordered_by_fact_count_like_the_paper() {
        for w in TABLE_1.windows(2) {
            assert!(w[0].input_facts <= w[1].input_facts);
        }
        assert_eq!(TABLE_1.len(), 16);
    }

    #[test]
    fn generated_programs_have_strong_updates() {
        // The workload must actually exercise the Kill path, otherwise
        // the analysis degenerates to a weak-update-only analysis.
        let input = generate(2_000, 11);
        assert!(
            !input.kill.is_empty(),
            "no strong updates in generated program"
        );
    }

    #[test]
    fn row_scaling() {
        let row = &TABLE_1[0];
        let small = generate_row(row, 0.1, 1);
        let full = generate_row(row, 1.0, 1);
        assert!(small.fact_count() < full.fact_count());
    }
}
