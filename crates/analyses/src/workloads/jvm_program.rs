//! Synthetic interprocedural programs for the IFDS and IDE analyses.
//!
//! Table 2 of the paper runs an IFDS object-abstraction analysis over six
//! DaCapo benchmarks through a Soot frontend; neither is available here,
//! so this generator is the substitution documented in DESIGN.md: seeded
//! random interprocedural control-flow graphs with a small statement
//! language, scaled per benchmark so the relative problem sizes track the
//! paper's relative running times. Both solvers consume identical flow
//! functions over this model, so the *ratio* Table 2 reports (imperative
//! vs declarative) is preserved by construction.

use crate::ifds::{CallSite, Node, ProcId, ProcInfo, Supergraph};
use flix_lattice::rng::SmallRng;

/// A program variable (global id across procedures).
pub type VarId = u32;

/// A statement attached to a supergraph node; it transforms facts along
/// the node's outgoing edges.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Stmt {
    /// No effect.
    Nop,
    /// `dst = k` — initialises `dst` with the constant `k`.
    Const {
        /// The assigned variable.
        dst: VarId,
        /// The constant.
        k: i64,
    },
    /// `dst = src`.
    Assign {
        /// The assigned variable.
        dst: VarId,
        /// The source variable.
        src: VarId,
    },
    /// `dst = a * src + b` — the linear form of the IDE example (§4.3).
    Linear {
        /// The assigned variable.
        dst: VarId,
        /// The source variable.
        src: VarId,
        /// Multiplier.
        a: i64,
        /// Offset.
        b: i64,
    },
    /// `dst = input()` — an environment read: initialises `dst` with an
    /// unknown value (and taints it, for the taint analysis).
    Read {
        /// The assigned variable.
        dst: VarId,
    },
    /// `dst = sanitize(dst)` — clears taint without changing
    /// initialisation.
    Sanitize {
        /// The sanitised variable.
        dst: VarId,
    },
    /// A call; the node is also registered in [`Supergraph::calls`].
    Call {
        /// `(actual, formal)` argument bindings.
        args: Vec<(VarId, VarId)>,
        /// The caller variable receiving the callee's return value.
        ret_dst: Option<VarId>,
    },
}

/// An interprocedural program: a supergraph plus per-node statements and
/// per-procedure variable metadata.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProgramModel {
    /// The supergraph skeleton.
    pub graph: Supergraph,
    /// The statement at each node.
    pub stmts: Vec<Stmt>,
    /// All local variables of each procedure (global variable ids).
    pub proc_vars: Vec<Vec<VarId>>,
    /// The parameter subset of each procedure's locals.
    pub proc_params: Vec<Vec<VarId>>,
    /// The variable whose value a procedure returns.
    pub proc_ret: Vec<VarId>,
    /// The entry procedure.
    pub main: ProcId,
    /// Total number of variables.
    pub num_vars: u32,
}

impl ProgramModel {
    /// A size metric comparable across benchmarks: supergraph nodes times
    /// average per-procedure fact-domain size.
    pub fn exploded_size(&self) -> usize {
        self.graph.num_nodes as usize * (self.num_vars as usize / self.graph.procs.len().max(1))
    }

    /// Returns the statement at `node`.
    pub fn stmt(&self, node: Node) -> &Stmt {
        &self.stmts[node as usize]
    }
}

/// One row of Table 2 of the paper: a DaCapo benchmark with the reported
/// running times (in tenths of seconds, to stay integral).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Table2Row {
    /// The DaCapo benchmark name.
    pub name: &'static str,
    /// Paper column "Scala Time (s)" × 10.
    pub scala_time_ds: u64,
    /// Paper column "Flix Time (s)" × 10.
    pub flix_time_ds: u64,
    /// Paper column "Slowdown" × 10.
    pub slowdown_x10: u64,
}

/// The six rows of Table 2.
pub const TABLE_2: &[Table2Row] = &[
    Table2Row {
        name: "luindex",
        scala_time_ds: 1_336,
        flix_time_ds: 3_667,
        slowdown_x10: 27,
    },
    Table2Row {
        name: "antlr",
        scala_time_ds: 1_767,
        flix_time_ds: 4_373,
        slowdown_x10: 25,
    },
    Table2Row {
        name: "hsqldb",
        scala_time_ds: 1_874,
        flix_time_ds: 4_692,
        slowdown_x10: 25,
    },
    Table2Row {
        name: "bloat",
        scala_time_ds: 2_035,
        flix_time_ds: 5_841,
        slowdown_x10: 29,
    },
    Table2Row {
        name: "pmd",
        scala_time_ds: 2_477,
        flix_time_ds: 6_801,
        slowdown_x10: 27,
    },
    Table2Row {
        name: "jython",
        scala_time_ds: 46_147,
        flix_time_ds: 143_448,
        slowdown_x10: 31,
    },
];

/// Generation parameters.
#[derive(Clone, Copy, Debug)]
pub struct GenParams {
    /// Number of procedures.
    pub num_procs: u32,
    /// Body nodes per procedure (excluding start and end).
    pub nodes_per_proc: u32,
    /// Local variables per procedure.
    pub vars_per_proc: u32,
    /// Probability that a body node is a call site (percent).
    pub call_percent: u32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GenParams {
    fn default() -> GenParams {
        GenParams {
            num_procs: 8,
            nodes_per_proc: 12,
            vars_per_proc: 6,
            call_percent: 15,
            seed: 0xF11C,
        }
    }
}

/// Parameters for one Table 2 row: problem size proportional to the
/// paper's baseline running time, times `scale`.
pub fn params_for_row(row: &Table2Row, scale: f64, seed: u64) -> GenParams {
    // luindex (133.6 s) is the unit; jython is ~34.5x larger.
    let rel = row.scala_time_ds as f64 / 1_336.0;
    let budget = (rel * scale * 2_000.0).max(60.0); // total body nodes
    let num_procs = (budget.sqrt() * 0.7).ceil().max(3.0) as u32;
    let nodes_per_proc = (budget / num_procs as f64).ceil().max(6.0) as u32;
    GenParams {
        num_procs,
        nodes_per_proc,
        vars_per_proc: 8,
        call_percent: 15,
        seed: seed ^ row.scala_time_ds,
    }
}

/// Generates a program, deterministically from the parameters.
pub fn generate(params: GenParams) -> ProgramModel {
    let mut rng = SmallRng::seed_from_u64(params.seed);
    let np = params.num_procs.max(1);
    let body = params.nodes_per_proc.max(2);
    let nv = params.vars_per_proc.max(3);

    let mut graph = Supergraph::default();
    let mut stmts: Vec<Stmt> = Vec::new();
    let mut proc_vars = Vec::new();
    let mut proc_params = Vec::new();
    let mut proc_ret = Vec::new();

    // Allocate variables: proc p owns ids [p*nv, (p+1)*nv); the first
    // `n_params` are parameters, the last is the return variable.
    let n_params = 2.min(nv - 1);
    for p in 0..np {
        let base = p * nv;
        proc_vars.push((base..base + nv).collect::<Vec<_>>());
        proc_params.push((base..base + n_params).collect::<Vec<_>>());
        proc_ret.push(base + nv - 1);
    }

    for p in 0..np {
        let start = graph.num_nodes;
        let vars = proc_vars[p as usize].clone();
        stmts.push(Stmt::Nop); // start node
        graph.num_nodes += 1;
        let mut prev = start;
        for i in 0..body {
            let node = graph.num_nodes;
            graph.num_nodes += 1;
            graph.cfg.push((prev, node));
            // Occasional forward branch (diamond shape).
            if i >= 2 && rng.gen_bool(0.15) {
                graph.cfg.push((node - 2, node));
            }
            let dst = vars[rng.gen_range(0..vars.len())];
            let src = vars[rng.gen_range(0..vars.len())];
            let stmt = if rng.gen_range(0..100) < params.call_percent && np > 1 {
                let target = rng.gen_range(0..np);
                let formals = proc_params[target as usize].clone();
                let args = formals
                    .iter()
                    .map(|&f| (vars[rng.gen_range(0..vars.len())], f))
                    .collect();
                graph.calls.push(CallSite { call: node, target });
                Stmt::Call {
                    args,
                    ret_dst: Some(dst),
                }
            } else {
                match rng.gen_range(0..10) {
                    0 | 1 => Stmt::Const {
                        dst,
                        k: rng.gen_range(-4..5),
                    },
                    2..=4 => Stmt::Assign { dst, src },
                    5..=6 => Stmt::Linear {
                        dst,
                        src,
                        a: rng.gen_range(1..4),
                        b: rng.gen_range(-3..4),
                    },
                    7 => Stmt::Read { dst },
                    8 => Stmt::Sanitize { dst },
                    _ => Stmt::Nop,
                }
            };
            stmts.push(stmt);
            prev = node;
        }
        let end = graph.num_nodes;
        graph.num_nodes += 1;
        graph.cfg.push((prev, end));
        stmts.push(Stmt::Nop); // end node
        graph.procs.push(ProcInfo { start, end });
    }

    graph.proc_of = vec![0; graph.num_nodes as usize];
    for (p, info) in graph.procs.iter().enumerate() {
        for n in info.start..=info.end {
            graph.proc_of[n as usize] = p as ProcId;
        }
    }

    ProgramModel {
        graph,
        stmts,
        proc_vars,
        proc_params,
        proc_ret,
        main: 0,
        num_vars: np * nv,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = generate(GenParams::default());
        let b = generate(GenParams::default());
        assert_eq!(a, b);
    }

    #[test]
    fn structure_is_well_formed() {
        let m = generate(GenParams::default());
        assert_eq!(m.stmts.len(), m.graph.num_nodes as usize);
        assert_eq!(m.graph.proc_of.len(), m.graph.num_nodes as usize);
        for call in &m.graph.calls {
            assert!(matches!(m.stmt(call.call), Stmt::Call { .. }));
        }
        for (n, stmt) in m.stmts.iter().enumerate() {
            if matches!(stmt, Stmt::Call { .. }) {
                assert!(m.graph.calls.iter().any(|c| c.call == n as u32));
            }
        }
        for info in &m.graph.procs {
            assert_eq!(m.stmt(info.start), &Stmt::Nop);
            assert_eq!(m.stmt(info.end), &Stmt::Nop);
            assert!(info.start < info.end);
        }
    }

    #[test]
    fn table_2_rows_scale_monotonically() {
        let mut sizes = Vec::new();
        for row in TABLE_2 {
            let m = generate(params_for_row(row, 0.1, 1));
            sizes.push(m.graph.num_nodes);
        }
        assert!(
            sizes.windows(2).all(|w| w[0] <= w[1]),
            "sizes must track the paper's times: {sizes:?}"
        );
    }
}
