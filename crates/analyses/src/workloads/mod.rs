//! Workload generators: the substitutions (documented in DESIGN.md) for
//! the paper's unavailable benchmark inputs.
//!
//! * [`c_program`] — SPEC-scale pointer programs for the Strong Update
//!   analysis (Table 1);
//! * [`jvm_program`] — DaCapo-scale interprocedural programs for the IFDS
//!   and IDE analyses (Table 2);
//! * [`graphs`] — random weighted digraphs for shortest paths (§4.4).

pub mod c_program;
pub mod graphs;
pub mod jvm_program;
