//! Random weighted digraphs for the shortest-paths experiment (§4.4).

use flix_lattice::rng::SmallRng;

/// A weighted directed graph with nodes `0..num_nodes`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WeightedGraph {
    /// The number of nodes.
    pub num_nodes: u32,
    /// Directed edges `(from, to, weight)` with `weight >= 1`.
    pub edges: Vec<(u32, u32, u64)>,
}

/// Generates a connected-ish random digraph: a Hamiltonian-style spine
/// guaranteeing reachability from node 0 plus `extra_edges` random
/// shortcuts, deterministically from `seed`.
pub fn generate(num_nodes: u32, extra_edges: usize, seed: u64) -> WeightedGraph {
    assert!(num_nodes >= 2, "need at least two nodes");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut edges = Vec::with_capacity(num_nodes as usize + extra_edges);
    for n in 0..num_nodes - 1 {
        edges.push((n, n + 1, rng.gen_range(1..20)));
    }
    for _ in 0..extra_edges {
        let a = rng.gen_range(0..num_nodes);
        let b = rng.gen_range(0..num_nodes);
        if a != b {
            edges.push((a, b, rng.gen_range(1..20)));
        }
    }
    WeightedGraph { num_nodes, edges }
}

/// Reference single-source shortest paths (Dijkstra with a binary heap).
pub fn dijkstra(graph: &WeightedGraph, source: u32) -> Vec<Option<u64>> {
    let n = graph.num_nodes as usize;
    let mut adj: Vec<Vec<(u32, u64)>> = vec![Vec::new(); n];
    for &(a, b, w) in &graph.edges {
        adj[a as usize].push((b, w));
    }
    let mut dist: Vec<Option<u64>> = vec![None; n];
    let mut heap = std::collections::BinaryHeap::new();
    heap.push(std::cmp::Reverse((0u64, source)));
    while let Some(std::cmp::Reverse((d, node))) = heap.pop() {
        if let Some(best) = dist[node as usize] {
            if best <= d {
                continue;
            }
        }
        dist[node as usize] = Some(d);
        for &(next, w) in &adj[node as usize] {
            if dist[next as usize].is_none() {
                heap.push(std::cmp::Reverse((d + w, next)));
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spine_guarantees_reachability() {
        let g = generate(50, 100, 3);
        let dist = dijkstra(&g, 0);
        assert!(dist.iter().all(Option::is_some), "all nodes reachable");
    }

    #[test]
    fn deterministic() {
        assert_eq!(generate(10, 5, 9), generate(10, 5, 9));
    }

    #[test]
    fn dijkstra_on_a_diamond() {
        let g = WeightedGraph {
            num_nodes: 4,
            edges: vec![(0, 1, 1), (0, 2, 5), (1, 2, 1), (2, 3, 1), (1, 3, 10)],
        };
        let dist = dijkstra(&g, 0);
        assert_eq!(dist, vec![Some(0), Some(1), Some(2), Some(3)]);
    }
}
