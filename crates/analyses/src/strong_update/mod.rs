//! The Strong Update points-to analysis of Lhoták & Chung (POPL 2011),
//! the headline case study of the FLIX paper (§4.1, Figure 4, Table 1).
//!
//! The analysis propagates *singleton* points-to sets flow-sensitively
//! (enabling strong updates at stores) and larger sets flow-insensitively.
//! This module provides the shared input representation plus three
//! interchangeable implementations, mirroring the three columns of
//! Table 1:
//!
//! * [`flix`] — the declarative FLIX formulation of Figure 4, one rule per
//!   constraint, running on the lattice-aware engine;
//! * [`datalog`] — the pure-Datalog powerset embedding sketched in §1 of
//!   the paper ("the worst of both worlds"), standing in for the DLV
//!   column;
//! * [`imperative`] — a hand-written worklist implementation over dense
//!   index-based data structures, standing in for the C++/LLVM column.
//!
//! All three consume the same [`SuInput`] and produce a [`SuResult`]; the
//! test suite checks them pairwise equal on randomly generated programs.
//!
//! One representational choice, documented in DESIGN.md: Figure 4 uses an
//! input relation `Preserve(l, a)` — "the complement of the Kill set". A
//! materialised complement has `|labels| × |objects|` tuples, which would
//! swamp the input-fact counts Table 1 is parameterised by, so we take the
//! (small) `Kill` relation as input instead and use the engine's
//! stratified negation (`!Kill(l, a)`), a feature §7 of the paper plans
//! and this reproduction implements.

pub mod datalog;
pub mod flix;
pub mod imperative;

use flix_lattice::SuLattice;
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

/// A pointer variable, as a dense index.
pub type Var = u32;
/// An abstract object (allocation site), as a dense index.
pub type Obj = u32;
/// A statement label, as a dense index.
pub type Label = u32;

/// The extensional input of the Strong Update analysis: the five fact
/// relations extracted from a C program (plus the derived `Kill` set).
///
/// Matches the relations of Figure 4 of the paper: `AddrOf`, `Copy`,
/// `Load`, `Store`, and `CFG`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SuInput {
    /// Number of pointer variables (ids `0..num_vars`).
    pub num_vars: u32,
    /// Number of abstract objects (ids `0..num_objs`).
    pub num_objs: u32,
    /// Number of statement labels (ids `0..num_labels`).
    pub num_labels: u32,
    /// `p = &a` facts.
    pub addr_of: Vec<(Var, Obj)>,
    /// `p = q` facts.
    pub copy: Vec<(Var, Var)>,
    /// `p = *q` facts at a label.
    pub load: Vec<(Label, Var, Var)>,
    /// `*p = q` facts at a label.
    pub store: Vec<(Label, Var, Var)>,
    /// Control-flow edges between labels.
    pub cfg: Vec<(Label, Label)>,
    /// `Kill(l, a)`: the store at label `l` strongly updates object `a`
    /// (see [`SuInput::compute_kill`]).
    pub kill: Vec<(Label, Obj)>,
}

impl SuInput {
    /// The number of input facts, the scaling metric of Table 1.
    pub fn fact_count(&self) -> usize {
        self.addr_of.len()
            + self.copy.len()
            + self.load.len()
            + self.store.len()
            + self.cfg.len()
            + self.kill.len()
    }

    /// Computes the flow-insensitive Andersen points-to sets of the
    /// program, ignoring flow-sensitivity (loads read the full heap).
    ///
    /// Used by [`SuInput::compute_kill`] and as a sound upper bound in
    /// tests.
    #[allow(clippy::needless_range_loop)] // index loops avoid aliasing the mutated sets
    pub fn andersen(&self) -> HashMap<Var, BTreeSet<Obj>> {
        let nv = self.num_vars as usize;
        let no = self.num_objs as usize;
        let mut pt: Vec<HashSet<Obj>> = vec![HashSet::new(); nv];
        let mut delta: Vec<HashSet<Obj>> = vec![HashSet::new(); nv];
        let mut heap: Vec<HashSet<Obj>> = vec![HashSet::new(); no];

        let mut copy_succ: Vec<Vec<Var>> = vec![Vec::new(); nv]; // q -> [p] for p = q
        for &(p, q) in &self.copy {
            copy_succ[q as usize].push(p);
        }
        let mut loads_by_base: Vec<Vec<Var>> = vec![Vec::new(); nv]; // q -> [p] for p = *q
        for &(_, p, q) in &self.load {
            loads_by_base[q as usize].push(p);
        }
        let mut stores_by_base: Vec<Vec<Var>> = vec![Vec::new(); nv]; // p -> [q] for *p = q
        let mut stores_by_value: Vec<Vec<Var>> = vec![Vec::new(); nv]; // q -> [p] for *p = q
        for &(_, p, q) in &self.store {
            stores_by_base[p as usize].push(q);
            stores_by_value[q as usize].push(p);
        }
        // Vars that read each object's heap cell through a load.
        let mut obj_readers: Vec<Vec<Var>> = vec![Vec::new(); no];

        // Difference propagation: `delta[v]` holds the objects added to
        // `pt[v]` that have not been pushed through v's outgoing
        // constraints yet.
        let mut queued: Vec<bool> = vec![false; nv];
        let mut work: Vec<Var> = Vec::new();

        fn insert_all(
            p: Var,
            objs: impl IntoIterator<Item = Obj>,
            pt: &mut [HashSet<Obj>],
            delta: &mut [HashSet<Obj>],
            queued: &mut [bool],
            work: &mut Vec<Var>,
        ) {
            let mut grew = false;
            for a in objs {
                if pt[p as usize].insert(a) {
                    delta[p as usize].insert(a);
                    grew = true;
                }
            }
            if grew && !queued[p as usize] {
                queued[p as usize] = true;
                work.push(p);
            }
        }

        #[allow(clippy::too_many_arguments)]
        fn store_into(
            a: Obj,
            vals: &[Obj],
            heap: &mut [HashSet<Obj>],
            obj_readers: &[Vec<Var>],
            pt: &mut [HashSet<Obj>],
            delta: &mut [HashSet<Obj>],
            queued: &mut [bool],
            work: &mut Vec<Var>,
        ) {
            let fresh: Vec<Obj> = vals
                .iter()
                .copied()
                .filter(|&b| heap[a as usize].insert(b))
                .collect();
            if fresh.is_empty() {
                return;
            }
            for &p in &obj_readers[a as usize] {
                insert_all(p, fresh.iter().copied(), pt, delta, queued, work);
            }
        }

        for &(p, a) in &self.addr_of {
            insert_all(p, [a], &mut pt, &mut delta, &mut queued, &mut work);
        }

        while let Some(q) = work.pop() {
            queued[q as usize] = false;
            let d: Vec<Obj> = std::mem::take(&mut delta[q as usize]).into_iter().collect();
            if d.is_empty() {
                continue;
            }
            // Copies: p = q sees exactly the delta.
            for i in 0..copy_succ[q as usize].len() {
                let p = copy_succ[q as usize][i];
                insert_all(
                    p,
                    d.iter().copied(),
                    &mut pt,
                    &mut delta,
                    &mut queued,
                    &mut work,
                );
            }
            // Loads p = *q: p starts reading the cells of the new objects.
            for i in 0..loads_by_base[q as usize].len() {
                let p = loads_by_base[q as usize][i];
                for &a in &d {
                    if !obj_readers[a as usize].contains(&p) {
                        obj_readers[a as usize].push(p);
                    }
                    let cell: Vec<Obj> = heap[a as usize].iter().copied().collect();
                    insert_all(p, cell, &mut pt, &mut delta, &mut queued, &mut work);
                }
            }
            // Stores *q = r: the cells of the new objects absorb pt(r).
            for i in 0..stores_by_base[q as usize].len() {
                let r = stores_by_base[q as usize][i];
                let vals: Vec<Obj> = pt[r as usize].iter().copied().collect();
                for &a in &d {
                    store_into(
                        a,
                        &vals,
                        &mut heap,
                        &obj_readers,
                        &mut pt,
                        &mut delta,
                        &mut queued,
                        &mut work,
                    );
                }
            }
            // Stores *p = q: the cells of pt(p) absorb the delta of q.
            for i in 0..stores_by_value[q as usize].len() {
                let p = stores_by_value[q as usize][i];
                let bases: Vec<Obj> = pt[p as usize].iter().copied().collect();
                for a in bases {
                    store_into(
                        a,
                        &d,
                        &mut heap,
                        &obj_readers,
                        &mut pt,
                        &mut delta,
                        &mut queued,
                        &mut work,
                    );
                }
            }
        }

        pt.into_iter()
            .enumerate()
            .filter(|(_, s)| !s.is_empty())
            .map(|(p, s)| (p as u32, s.into_iter().collect()))
            .collect()
    }

    /// Derives the `Kill` relation: a store `*p = q` at label `l` kills
    /// (strongly updates) object `a` exactly when the flow-insensitive
    /// points-to set of `p` is the singleton `{a}` — the condition under
    /// which the Strong Update paper permits a strong update.
    pub fn compute_kill(&mut self) {
        let pt = self.andersen();
        let mut kill: BTreeSet<(Label, Obj)> = BTreeSet::new();
        for &(l, p, _) in &self.store {
            if let Some(objs) = pt.get(&p) {
                if objs.len() == 1 {
                    let a = *objs.iter().next().expect("len checked");
                    kill.insert((l, a));
                }
            }
        }
        self.kill = kill.into_iter().collect();
    }
}

/// The result of a Strong Update analysis run, in a representation
/// comparable across implementations.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SuResult {
    /// Flow-insensitive variable points-to: `Pt(p, a)`.
    pub pt: BTreeSet<(Var, Obj)>,
    /// Heap points-to: `PtH(a, b)`.
    pub pt_heap: BTreeSet<(Obj, Obj)>,
    /// Flow-sensitive state after each label: `SUAfter(l, a, t)`, one cell
    /// per (label, object) with a non-bottom lattice value.
    pub su_after: BTreeMap<(Label, Obj), SuLattice>,
    /// Total derived facts (the database-size proxy of Table 1's memory
    /// column).
    pub derived_facts: usize,
}

/// Encodes an object id the way all implementations name objects inside
/// [`SuLattice::Single`] elements.
pub fn obj_name(a: Obj) -> String {
    format!("o{a}")
}

/// Decodes an object name produced by [`obj_name`].
pub fn parse_obj(name: &str) -> Obj {
    name.strip_prefix('o')
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("malformed object name {name}"))
}

/// A tiny hand-written example program, used in unit tests across the
/// three implementations:
///
/// ```text
/// l0: p = &a0      (AddrOf)
///     q = &a1
/// l1: *p = r       with r = &a2   — singleton pt(p) ⇒ strong update
/// l2: s = *p       — reads {a2}
/// ```
pub fn example_program() -> SuInput {
    let mut input = SuInput {
        num_vars: 4, // p=0, q=1, r=2, s=3
        num_objs: 3, // a0, a1, a2
        num_labels: 3,
        addr_of: vec![(0, 0), (1, 1), (2, 2)],
        copy: vec![],
        load: vec![(2, 3, 0)],  // l2: s = *p
        store: vec![(1, 0, 2)], // l1: *p = r
        cfg: vec![(0, 1), (1, 2)],
        kill: vec![],
    };
    input.compute_kill();
    input
}

/// Checks that two results agree on the relations all implementations
/// share (`Pt` and `PtH`); `SUAfter` is compared only when both sides
/// track it (the Datalog embedding represents it differently).
pub fn assert_pt_agree(a: &SuResult, b: &SuResult) {
    assert_eq!(a.pt, b.pt, "Pt relations disagree");
    assert_eq!(a.pt_heap, b.pt_heap, "PtH relations disagree");
}

#[allow(dead_code)]
pub(crate) fn obj_set(objs: &[Obj]) -> HashSet<Obj> {
    objs.iter().copied().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn example_kill_is_strong() {
        let input = example_program();
        // pt(p) = {a0}: singleton, so the store at l1 kills a0.
        assert_eq!(input.kill, vec![(1, 0)]);
        assert_eq!(input.fact_count(), 3 + 1 + 1 + 2 + 1);
    }

    #[test]
    fn andersen_on_example() {
        let input = example_program();
        let pt = input.andersen();
        assert_eq!(pt[&0], BTreeSet::from([0]));
        // s = *p reads the heap cell of a0, which holds a2.
        assert_eq!(pt[&3], BTreeSet::from([2]));
    }

    #[test]
    fn obj_names_roundtrip() {
        assert_eq!(parse_obj(&obj_name(42)), 42);
    }

    #[test]
    fn no_kill_for_non_singleton_store() {
        // p may point to two objects: store must not kill either.
        let mut input = SuInput {
            num_vars: 2,
            num_objs: 2,
            num_labels: 1,
            addr_of: vec![(0, 0), (0, 1), (1, 0)],
            copy: vec![],
            load: vec![],
            store: vec![(0, 0, 1)],
            cfg: vec![],
            kill: vec![],
        };
        input.compute_kill();
        assert!(input.kill.is_empty());
    }
}
