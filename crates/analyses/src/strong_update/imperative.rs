//! The hand-crafted imperative Strong Update analysis — the "C++"
//! baseline of Table 1.
//!
//! A worklist-driven fixed point over dense, index-based data structures:
//! points-to sets are `Vec<HashSet<u32>>`, flow-sensitive cells are a
//! compact copy-free enum, and per-relation indexes (stores by label,
//! CFG predecessors) are precomputed. This is the "hand-crafted static
//! analyzer" role: same constraint system as Figure 4, none of the
//! declarative machinery.

use super::{obj_name, SuInput, SuResult};
use flix_lattice::SuLattice;
use std::collections::HashSet;

/// A compact Strong Update lattice element over object indices.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
enum SuVal {
    #[default]
    Bot,
    Single(u32),
    Top,
}

impl SuVal {
    fn join(self, other: SuVal) -> SuVal {
        match (self, other) {
            (SuVal::Bot, x) | (x, SuVal::Bot) => x,
            (SuVal::Top, _) | (_, SuVal::Top) => SuVal::Top,
            (SuVal::Single(a), SuVal::Single(b)) if a == b => self,
            _ => SuVal::Top,
        }
    }

    fn admits(self, b: u32) -> bool {
        match self {
            SuVal::Bot => false,
            SuVal::Single(p) => p == b,
            SuVal::Top => true,
        }
    }
}

/// Runs the imperative analysis.
#[allow(clippy::needless_range_loop)] // index loops avoid aliasing the mutated sets
pub fn analyze(input: &SuInput) -> SuResult {
    let nv = input.num_vars as usize;
    let no = input.num_objs as usize;
    let nl = input.num_labels as usize;

    let mut pt: Vec<HashSet<u32>> = vec![HashSet::new(); nv];
    let mut pt_heap: Vec<HashSet<u32>> = vec![HashSet::new(); no];
    // Flow-sensitive cells, dense by (label, object).
    let mut su_before: Vec<SuVal> = vec![SuVal::Bot; nl * no];
    let mut su_after: Vec<SuVal> = vec![SuVal::Bot; nl * no];
    let killed: HashSet<(u32, u32)> = input.kill.iter().copied().collect();

    // Precomputed indexes.
    let mut copies_from: Vec<Vec<u32>> = vec![Vec::new(); nv]; // q -> [p]
    for &(p, q) in &input.copy {
        copies_from[q as usize].push(p);
    }
    let mut cfg_succ: Vec<Vec<u32>> = vec![Vec::new(); nl];
    for &(l1, l2) in &input.cfg {
        cfg_succ[l1 as usize].push(l2);
    }

    let cell = |l: u32, a: u32| (l as usize) * no + a as usize;

    for &(p, a) in &input.addr_of {
        pt[p as usize].insert(a);
    }

    // Round-based fixed point with change tracking; each pass applies
    // every constraint kind with its index.
    loop {
        let mut changed = false;

        // Copy propagation to a local fixed point (worklist over vars).
        let mut work: Vec<u32> = (0..input.num_vars).collect();
        while let Some(q) = work.pop() {
            let objs: Vec<u32> = pt[q as usize].iter().copied().collect();
            for i in 0..copies_from[q as usize].len() {
                let p = copies_from[q as usize][i];
                let mut grew = false;
                for &a in &objs {
                    grew |= pt[p as usize].insert(a);
                }
                if grew {
                    changed = true;
                    work.push(p);
                }
            }
        }

        // Stores: heap writes and flow-sensitive updates.
        for &(l, p, q) in &input.store {
            let bases: Vec<u32> = pt[p as usize].iter().copied().collect();
            let vals: Vec<u32> = pt[q as usize].iter().copied().collect();
            for &a in &bases {
                for &b in &vals {
                    changed |= pt_heap[a as usize].insert(b);
                    let c = cell(l, a);
                    let joined = su_after[c].join(SuVal::Single(b));
                    if joined != su_after[c] {
                        su_after[c] = joined;
                        changed = true;
                    }
                }
            }
        }

        // CFG propagation to a local fixed point (worklist over labels).
        let mut lwork: Vec<u32> = (0..input.num_labels).collect();
        while let Some(l1) = lwork.pop() {
            for i in 0..cfg_succ[l1 as usize].len() {
                let l2 = cfg_succ[l1 as usize][i];
                let mut grew = false;
                for a in 0..input.num_objs {
                    let incoming = su_after[cell(l1, a)];
                    if incoming == SuVal::Bot {
                        continue;
                    }
                    let before = &mut su_before[cell(l2, a)];
                    let joined = before.join(incoming);
                    if joined != *before {
                        *before = joined;
                        changed = true;
                    }
                    // Transfer: preserved unless killed at l2.
                    if !killed.contains(&(l2, a)) {
                        let after = &mut su_after[cell(l2, a)];
                        let joined = after.join(su_before[cell(l2, a)]);
                        if joined != *after {
                            *after = joined;
                            grew = true;
                            changed = true;
                        }
                    }
                }
                if grew {
                    lwork.push(l2);
                }
            }
        }

        // Loads through the filtered flow-sensitive view.
        for &(l, p, q) in &input.load {
            let bases: Vec<u32> = pt[q as usize].iter().copied().collect();
            for &a in &bases {
                let view = su_before[cell(l, a)];
                if view == SuVal::Bot {
                    continue;
                }
                let targets: Vec<u32> = pt_heap[a as usize]
                    .iter()
                    .copied()
                    .filter(|&b| view.admits(b))
                    .collect();
                for b in targets {
                    changed |= pt[p as usize].insert(b);
                }
            }
        }

        if !changed {
            break;
        }
    }

    // Package the result.
    let mut result = SuResult::default();
    for (p, objs) in pt.iter().enumerate() {
        for &a in objs {
            result.pt.insert((p as u32, a));
        }
    }
    for (a, objs) in pt_heap.iter().enumerate() {
        for &b in objs {
            result.pt_heap.insert((a as u32, b));
        }
    }
    for l in 0..input.num_labels {
        for a in 0..input.num_objs {
            let value = match su_after[cell(l, a)] {
                SuVal::Bot => continue,
                SuVal::Single(b) => SuLattice::single(obj_name(b)),
                SuVal::Top => SuLattice::Top,
            };
            result.su_after.insert((l, a), value);
        }
    }
    result.derived_facts = result.pt.len() + result.pt_heap.len() + result.su_after.len();
    result
}

#[cfg(test)]
mod tests {
    use super::super::{assert_pt_agree, example_program};
    use super::*;

    #[test]
    fn example_matches_flix() {
        let input = example_program();
        let imp = analyze(&input);
        let flix = super::super::flix::analyze(&input);
        assert_pt_agree(&imp, &flix);
        assert_eq!(imp.su_after, flix.su_after);
    }

    #[test]
    fn suval_join_table() {
        use SuVal::*;
        assert_eq!(Bot.join(Single(1)), Single(1));
        assert_eq!(Single(1).join(Single(1)), Single(1));
        assert_eq!(Single(1).join(Single(2)), Top);
        assert_eq!(Top.join(Bot), Top);
    }

    #[test]
    fn admits_matches_figure_4_filter() {
        use SuVal::*;
        assert!(!Bot.admits(0));
        assert!(Single(3).admits(3));
        assert!(!Single(3).admits(4));
        assert!(Top.admits(9));
    }
}
