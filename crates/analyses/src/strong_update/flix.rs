//! The declarative FLIX formulation of the Strong Update analysis —
//! Figure 4 of the paper, one engine rule per constraint.

use super::{obj_name, parse_obj, SuInput, SuResult};
use flix_core::{
    BodyItem, Head, HeadTerm, LatticeOps, Program, ProgramBuilder, Solver, Term, Value,
    ValueLattice,
};
use flix_lattice::SuLattice;

/// Builds the Figure 4 rule set over the given input facts.
///
/// Objects are encoded as strings (`"o0"`, `"o1"`, ...) so that they can
/// inhabit [`SuLattice::Single`]; variables and labels are integers.
pub fn build_program(input: &SuInput) -> Program {
    let mut b = ProgramBuilder::new();

    // Extensional relations.
    let addr_of = b.relation("AddrOf", 2);
    let copy = b.relation("Copy", 2);
    let load = b.relation("Load", 3);
    let store = b.relation("Store", 3);
    let cfg = b.relation("CFG", 2);
    let kill = b.relation("Kill", 2);

    // Intensional relations and lattices.
    let pt = b.relation("Pt", 2);
    let pt_h = b.relation("PtH", 2);
    let pt_su = b.relation("PtSU", 3);
    let su_before = b.lattice("SUBefore", 3, LatticeOps::of::<SuLattice>());
    let su_after = b.lattice("SUAfter", 3, LatticeOps::of::<SuLattice>());

    // def single(b: Str): SULattice = SULattice.Single(b)
    let single = b.function("single", |args| {
        SuLattice::single(args[0].as_str().expect("object name")).to_value()
    });
    // The monotone filter function of Figure 4.
    let filter = b.function("filter", |args| {
        let t = SuLattice::expect_from(&args[0]);
        let obj = args[1].as_str().expect("object name");
        Value::Bool(t.filter(obj))
    });

    // Facts.
    for &(p, a) in &input.addr_of {
        b.fact(addr_of, vec![(p as i64).into(), obj_name(a).into()]);
    }
    for &(p, q) in &input.copy {
        b.fact(copy, vec![(p as i64).into(), (q as i64).into()]);
    }
    for &(l, p, q) in &input.load {
        b.fact(
            load,
            vec![(l as i64).into(), (p as i64).into(), (q as i64).into()],
        );
    }
    for &(l, p, q) in &input.store {
        b.fact(
            store,
            vec![(l as i64).into(), (p as i64).into(), (q as i64).into()],
        );
    }
    for &(l1, l2) in &input.cfg {
        b.fact(cfg, vec![(l1 as i64).into(), (l2 as i64).into()]);
    }
    for &(l, a) in &input.kill {
        b.fact(kill, vec![(l as i64).into(), obj_name(a).into()]);
    }

    let v = Term::var;

    // Pt(p, a) :- AddrOf(p, a).
    b.rule(
        Head::new(pt, [HeadTerm::var("p"), HeadTerm::var("a")]),
        [BodyItem::atom(addr_of, [v("p"), v("a")])],
    );
    // Pt(p, a) :- Copy(p, q), Pt(q, a).
    b.rule(
        Head::new(pt, [HeadTerm::var("p"), HeadTerm::var("a")]),
        [
            BodyItem::atom(copy, [v("p"), v("q")]),
            BodyItem::atom(pt, [v("q"), v("a")]),
        ],
    );
    // Pt(p, b) :- Load(l, p, q), Pt(q, a), PtSU(l, a, b).
    b.rule(
        Head::new(pt, [HeadTerm::var("p"), HeadTerm::var("b")]),
        [
            BodyItem::atom(load, [v("l"), v("p"), v("q")]),
            BodyItem::atom(pt, [v("q"), v("a")]),
            BodyItem::atom(pt_su, [v("l"), v("a"), v("b")]),
        ],
    );
    // PtH(a, b) :- Store(l, p, q), Pt(p, a), Pt(q, b).
    b.rule(
        Head::new(pt_h, [HeadTerm::var("a"), HeadTerm::var("b")]),
        [
            BodyItem::atom(store, [v("l"), v("p"), v("q")]),
            BodyItem::atom(pt, [v("p"), v("a")]),
            BodyItem::atom(pt, [v("q"), v("b")]),
        ],
    );
    // SUBefore(l2, a, t) :- CFG(l1, l2), SUAfter(l1, a, t).
    b.rule(
        Head::new(
            su_before,
            [HeadTerm::var("l2"), HeadTerm::var("a"), HeadTerm::var("t")],
        ),
        [
            BodyItem::atom(cfg, [v("l1"), v("l2")]),
            BodyItem::atom(su_after, [v("l1"), v("a"), v("t")]),
        ],
    );
    // SUAfter(l, a, t) :- SUBefore(l, a, t), Preserve(l, a).
    // `Preserve` is the complement of `Kill` (see module docs).
    b.rule(
        Head::new(
            su_after,
            [HeadTerm::var("l"), HeadTerm::var("a"), HeadTerm::var("t")],
        ),
        [
            BodyItem::atom(su_before, [v("l"), v("a"), v("t")]),
            BodyItem::not(kill, [v("l"), v("a")]),
        ],
    );
    // SUAfter(l, a, SULattice.Single(b)) :- Store(l, p, q), Pt(p, a), Pt(q, b).
    b.rule(
        Head::new(
            su_after,
            [
                HeadTerm::var("l"),
                HeadTerm::var("a"),
                HeadTerm::app(single, [v("b")]),
            ],
        ),
        [
            BodyItem::atom(store, [v("l"), v("p"), v("q")]),
            BodyItem::atom(pt, [v("p"), v("a")]),
            BodyItem::atom(pt, [v("q"), v("b")]),
        ],
    );
    // PtSU(l, a, b) :- PtH(a, b), SUBefore(l, a, t), filter(t, b).
    b.rule(
        Head::new(
            pt_su,
            [HeadTerm::var("l"), HeadTerm::var("a"), HeadTerm::var("b")],
        ),
        [
            BodyItem::atom(pt_h, [v("a"), v("b")]),
            BodyItem::atom(su_before, [v("l"), v("a"), v("t")]),
            BodyItem::filter(filter, [v("t"), v("b")]),
        ],
    );

    b.build().expect("the Figure 4 rule set is well-formed")
}

/// Runs the analysis with the given solver configuration.
pub fn analyze_with(input: &SuInput, solver: &Solver) -> SuResult {
    let program = build_program(input);
    let solution = solver.solve(&program).expect("Figure 4 is stratifiable");
    let mut result = SuResult {
        derived_facts: solution.total_facts(),
        ..SuResult::default()
    };
    for row in solution.relation("Pt").expect("declared") {
        result.pt.insert((
            row[0].as_int().expect("var id") as u32,
            parse_obj(row[1].as_str().expect("object")),
        ));
    }
    for row in solution.relation("PtH").expect("declared") {
        result.pt_heap.insert((
            parse_obj(row[0].as_str().expect("object")),
            parse_obj(row[1].as_str().expect("object")),
        ));
    }
    for (key, value) in solution.lattice("SUAfter").expect("declared") {
        let l = key[0].as_int().expect("label") as u32;
        let a = parse_obj(key[1].as_str().expect("object"));
        result
            .su_after
            .insert((l, a), SuLattice::expect_from(value));
    }
    result
}

/// Runs the analysis with the default (semi-naïve, indexed) solver.
pub fn analyze(input: &SuInput) -> SuResult {
    analyze_with(input, &Solver::new())
}

#[cfg(test)]
mod tests {
    use super::super::example_program;
    use super::*;

    #[test]
    fn example_strong_update() {
        let result = analyze(&example_program());
        // s = *p at l2 must read exactly {a2} thanks to the strong update.
        assert!(result.pt.contains(&(3, 2)));
        // The store at l1 wrote Single("o2") into cell (l1, a0).
        assert_eq!(result.su_after.get(&(1, 0)), Some(&SuLattice::single("o2")));
        assert!(result.pt_heap.contains(&(0, 2)));
    }

    #[test]
    fn weak_update_joins_to_top() {
        // p points to {a0, a1}; two stores through p at the same label
        // chain write different objects: cells go to Single then stay
        // (no kill), and a second differing store lifts to Top.
        let mut input = SuInput {
            num_vars: 3, // p=0, q=1, r=2
            num_objs: 4, // a0, a1 (targets of p), a2, a3 (stored values)
            num_labels: 2,
            addr_of: vec![(0, 0), (0, 1), (1, 2), (2, 3)],
            copy: vec![],
            load: vec![],
            store: vec![(0, 0, 1), (1, 0, 2)],
            cfg: vec![(0, 1)],
            kill: vec![],
        };
        input.compute_kill();
        assert!(input.kill.is_empty(), "pt(p) is not a singleton");
        let result = analyze(&input);
        // After l0: (l0, a0) = Single(o2). After l1: old Single(o2)
        // survives (no kill) and joins with Single(o3) = Top.
        assert_eq!(result.su_after.get(&(0, 0)), Some(&SuLattice::single("o2")));
        assert_eq!(result.su_after.get(&(1, 0)), Some(&SuLattice::Top));
    }

    #[test]
    fn naive_agrees_with_semi_naive() {
        let input = example_program();
        let semi = analyze(&input);
        let naive = analyze_with(&input, &Solver::new().strategy(flix_core::Strategy::Naive));
        assert_eq!(semi, naive);
    }
}
