//! The pure-Datalog powerset embedding of the Strong Update analysis —
//! the "DLV" baseline of Table 1.
//!
//! §1 of the paper explains the embedding this reproduces: "⊥ is
//! represented by the empty set, each constant is represented by a
//! singleton set, and ⊤ is represented by any set that contains a
//! specially designated ⊤ element. We then add a rule that adds the ⊤
//! element to every set of two or more elements. However, this ⊤ rule
//! cannot prevent the Datalog program from processing the original
//! non-singleton, non-⊤ sets. We get the worst of both worlds."
//!
//! The program below uses only relations (the engine never touches a
//! lattice); the `⊤`-closure rules use an inequality filter, standing in
//! for DLV's built-in `!=`.

use super::{obj_name, parse_obj, SuInput, SuResult};
use flix_core::{BodyItem, Head, HeadTerm, Program, ProgramBuilder, Solver, Term, Value};
use flix_lattice::SuLattice;

/// The designated `⊤` element of the powerset embedding.
pub const TOP_ELEMENT: &str = "⊤";

/// Builds the relational powerset-embedded program.
pub fn build_program(input: &SuInput) -> Program {
    let mut b = ProgramBuilder::new();

    let addr_of = b.relation("AddrOf", 2);
    let copy = b.relation("Copy", 2);
    let load = b.relation("Load", 3);
    let store = b.relation("Store", 3);
    let cfg = b.relation("CFG", 2);
    let kill = b.relation("Kill", 2);

    let pt = b.relation("Pt", 2);
    let pt_h = b.relation("PtH", 2);
    let pt_su = b.relation("PtSU", 3);
    // The embedded "lattice" relations: the last column ranges over
    // object names plus the designated ⊤ element.
    let su_before = b.relation("SUBefore", 3);
    let su_after = b.relation("SUAfter", 3);

    // DLV's built-in inequality.
    let neq = b.function("neq", |args| Value::Bool(args[0] != args[1]));

    for &(p, a) in &input.addr_of {
        b.fact(addr_of, vec![(p as i64).into(), obj_name(a).into()]);
    }
    for &(p, q) in &input.copy {
        b.fact(copy, vec![(p as i64).into(), (q as i64).into()]);
    }
    for &(l, p, q) in &input.load {
        b.fact(
            load,
            vec![(l as i64).into(), (p as i64).into(), (q as i64).into()],
        );
    }
    for &(l, p, q) in &input.store {
        b.fact(
            store,
            vec![(l as i64).into(), (p as i64).into(), (q as i64).into()],
        );
    }
    for &(l1, l2) in &input.cfg {
        b.fact(cfg, vec![(l1 as i64).into(), (l2 as i64).into()]);
    }
    for &(l, a) in &input.kill {
        b.fact(kill, vec![(l as i64).into(), obj_name(a).into()]);
    }

    let v = Term::var;

    // The four points-to rules, identical to the lattice version.
    b.rule(
        Head::new(pt, [HeadTerm::var("p"), HeadTerm::var("a")]),
        [BodyItem::atom(addr_of, [v("p"), v("a")])],
    );
    b.rule(
        Head::new(pt, [HeadTerm::var("p"), HeadTerm::var("a")]),
        [
            BodyItem::atom(copy, [v("p"), v("q")]),
            BodyItem::atom(pt, [v("q"), v("a")]),
        ],
    );
    b.rule(
        Head::new(pt, [HeadTerm::var("p"), HeadTerm::var("b")]),
        [
            BodyItem::atom(load, [v("l"), v("p"), v("q")]),
            BodyItem::atom(pt, [v("q"), v("a")]),
            BodyItem::atom(pt_su, [v("l"), v("a"), v("b")]),
        ],
    );
    b.rule(
        Head::new(pt_h, [HeadTerm::var("a"), HeadTerm::var("b")]),
        [
            BodyItem::atom(store, [v("l"), v("p"), v("q")]),
            BodyItem::atom(pt, [v("p"), v("a")]),
            BodyItem::atom(pt, [v("q"), v("b")]),
        ],
    );
    // Set-valued flow: every element flows along CFG edges, survives
    // non-killing labels, and stores contribute singletons.
    b.rule(
        Head::new(
            su_before,
            [HeadTerm::var("l2"), HeadTerm::var("a"), HeadTerm::var("e")],
        ),
        [
            BodyItem::atom(cfg, [v("l1"), v("l2")]),
            BodyItem::atom(su_after, [v("l1"), v("a"), v("e")]),
        ],
    );
    b.rule(
        Head::new(
            su_after,
            [HeadTerm::var("l"), HeadTerm::var("a"), HeadTerm::var("e")],
        ),
        [
            BodyItem::atom(su_before, [v("l"), v("a"), v("e")]),
            BodyItem::not(kill, [v("l"), v("a")]),
        ],
    );
    b.rule(
        Head::new(
            su_after,
            [HeadTerm::var("l"), HeadTerm::var("a"), HeadTerm::var("b")],
        ),
        [
            BodyItem::atom(store, [v("l"), v("p"), v("q")]),
            BodyItem::atom(pt, [v("p"), v("a")]),
            BodyItem::atom(pt, [v("q"), v("b")]),
        ],
    );
    // The §1 "⊤ rule": any cell holding two distinct elements also holds ⊤.
    for pred in [su_after, su_before] {
        b.rule(
            Head::new(
                pred,
                [
                    HeadTerm::var("l"),
                    HeadTerm::var("a"),
                    HeadTerm::lit(TOP_ELEMENT),
                ],
            ),
            [
                BodyItem::atom(pred, [v("l"), v("a"), v("b1")]),
                BodyItem::atom(pred, [v("l"), v("a"), v("b2")]),
                BodyItem::filter(neq, [v("b1"), v("b2")]),
            ],
        );
    }
    // The filter of Figure 4, unrolled over the encoding: a member
    // matches itself; a cell containing ⊤ matches everything in PtH.
    b.rule(
        Head::new(
            pt_su,
            [HeadTerm::var("l"), HeadTerm::var("a"), HeadTerm::var("b")],
        ),
        [
            BodyItem::atom(pt_h, [v("a"), v("b")]),
            BodyItem::atom(su_before, [v("l"), v("a"), v("b")]),
        ],
    );
    b.rule(
        Head::new(
            pt_su,
            [HeadTerm::var("l"), HeadTerm::var("a"), HeadTerm::var("b")],
        ),
        [
            BodyItem::atom(pt_h, [v("a"), v("b")]),
            BodyItem::atom(su_before, [v("l"), v("a"), Term::lit(TOP_ELEMENT)]),
        ],
    );

    b.build().expect("the powerset embedding is well-formed")
}

/// Runs the embedded analysis and decodes the sets back into
/// [`SuLattice`] values for comparison with the other implementations.
pub fn analyze_with(input: &SuInput, solver: &Solver) -> SuResult {
    let program = build_program(input);
    let solution = solver.solve(&program).expect("stratifiable");
    let mut result = SuResult {
        derived_facts: solution.total_facts(),
        ..SuResult::default()
    };
    for row in solution.relation("Pt").expect("declared") {
        result.pt.insert((
            row[0].as_int().expect("var") as u32,
            parse_obj(row[1].as_str().expect("object")),
        ));
    }
    for row in solution.relation("PtH").expect("declared") {
        result.pt_heap.insert((
            parse_obj(row[0].as_str().expect("object")),
            parse_obj(row[1].as_str().expect("object")),
        ));
    }
    // Decode each (label, object) set: {x} → Single(x); ⊤ ∈ set or
    // |set| ≥ 2 → Top.
    let mut cells: std::collections::BTreeMap<(u32, u32), Vec<String>> = Default::default();
    for row in solution.relation("SUAfter").expect("declared") {
        let l = row[0].as_int().expect("label") as u32;
        let a = parse_obj(row[1].as_str().expect("object"));
        cells
            .entry((l, a))
            .or_default()
            .push(row[2].as_str().expect("element").to_string());
    }
    for ((l, a), elems) in cells {
        let value = if elems.iter().any(|e| e == TOP_ELEMENT) || elems.len() >= 2 {
            SuLattice::Top
        } else {
            SuLattice::single(elems[0].as_str())
        };
        result.su_after.insert((l, a), value);
    }
    result
}

/// Runs the embedded analysis with the default solver.
pub fn analyze(input: &SuInput) -> SuResult {
    analyze_with(input, &Solver::new())
}

#[cfg(test)]
mod tests {
    use super::super::{assert_pt_agree, example_program};
    use super::*;

    #[test]
    fn agrees_with_lattice_version_on_example() {
        let input = example_program();
        let datalog = analyze(&input);
        let lattice = super::super::flix::analyze(&input);
        assert_pt_agree(&datalog, &lattice);
        assert_eq!(datalog.su_after, lattice.su_after);
    }

    #[test]
    fn embedding_materialises_more_facts() {
        // The §1 claim: the embedding pays for the same precision with a
        // larger database (members + ⊤ markers instead of one cell).
        let mut input = SuInput {
            num_vars: 3,
            num_objs: 4,
            num_labels: 2,
            addr_of: vec![(0, 0), (0, 1), (1, 2), (2, 3)],
            copy: vec![],
            load: vec![],
            store: vec![(0, 0, 1), (1, 0, 2)],
            cfg: vec![(0, 1)],
            kill: vec![],
        };
        input.compute_kill();
        let datalog = analyze(&input);
        let lattice = super::super::flix::analyze(&input);
        assert_pt_agree(&datalog, &lattice);
        assert_eq!(datalog.su_after, lattice.su_after);
        assert!(
            datalog.derived_facts > lattice.derived_facts,
            "powerset embedding should store more facts ({} vs {})",
            datalog.derived_facts,
            lattice.derived_facts
        );
    }
}
