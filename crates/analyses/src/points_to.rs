//! The field-sensitive subset-based points-to analysis of Figure 1 of the
//! paper — pure Datalog, the "killer-app" baseline of §2.1.

use flix_core::{BodyItem, Head, HeadTerm, Program, ProgramBuilder, Solver, Term, Value};
use std::collections::BTreeSet;

/// Input facts for the points-to analysis: the four relations of
/// Figure 1 over variable, object, and field names.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PointsToInput {
    /// `New(var, obj)` — `var = new Obj()`.
    pub new: Vec<(String, String)>,
    /// `Assign(lhs, rhs)` — `lhs = rhs`.
    pub assign: Vec<(String, String)>,
    /// `Load(dst, base, field)` — `dst = base.field`.
    pub load: Vec<(String, String, String)>,
    /// `Store(base, field, src)` — `base.field = src`.
    pub store: Vec<(String, String, String)>,
}

impl PointsToInput {
    /// The five-fact example program of §2.1 of the paper.
    ///
    /// ```java
    /// ClassA o1 = new ClassA() // object A
    /// ClassB o2 = new ClassB() // object B
    /// ClassB o3 = o2;
    /// o2.f = o1;
    /// Object r = o3.f;         // Q: what is r?
    /// ```
    pub fn section_2_1_example() -> PointsToInput {
        PointsToInput {
            new: vec![("o1".into(), "A".into()), ("o2".into(), "B".into())],
            assign: vec![("o3".into(), "o2".into())],
            store: vec![("o2".into(), "f".into(), "o1".into())],
            load: vec![("r".into(), "o3".into(), "f".into())],
        }
    }
}

/// The computed points-to relations.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PointsToResult {
    /// `VarPointsTo(var, obj)`.
    pub var_points_to: BTreeSet<(String, String)>,
    /// `HeapPointsTo(obj, field, obj)`.
    pub heap_points_to: BTreeSet<(String, String, String)>,
}

impl PointsToResult {
    /// Does `var` possibly point to `obj`?
    pub fn may_point_to(&self, var: &str, obj: &str) -> bool {
        self.var_points_to
            .contains(&(var.to_string(), obj.to_string()))
    }
}

/// Builds the four-rule program of Figure 1 over the input facts.
pub fn build_program(input: &PointsToInput) -> Program {
    let mut b = ProgramBuilder::new();
    let new = b.relation("New", 2);
    let assign = b.relation("Assign", 2);
    let load = b.relation("Load", 3);
    let store = b.relation("Store", 3);
    let vpt = b.relation("VarPointsTo", 2);
    let hpt = b.relation("HeapPointsTo", 3);

    for (x, y) in &input.new {
        b.fact(new, vec![Value::str(x.as_str()), Value::str(y.as_str())]);
    }
    for (x, y) in &input.assign {
        b.fact(assign, vec![Value::str(x.as_str()), Value::str(y.as_str())]);
    }
    for (x, y, z) in &input.load {
        b.fact(
            load,
            vec![
                Value::str(x.as_str()),
                Value::str(y.as_str()),
                Value::str(z.as_str()),
            ],
        );
    }
    for (x, y, z) in &input.store {
        b.fact(
            store,
            vec![
                Value::str(x.as_str()),
                Value::str(y.as_str()),
                Value::str(z.as_str()),
            ],
        );
    }

    let v = Term::var;
    // VarPointsTo(v1, h1) :- New(v1, h1).
    b.rule(
        Head::new(vpt, [HeadTerm::var("v1"), HeadTerm::var("h1")]),
        [BodyItem::atom(new, [v("v1"), v("h1")])],
    );
    // VarPointsTo(v1, h2) :- Assign(v1, v2), VarPointsTo(v2, h2).
    b.rule(
        Head::new(vpt, [HeadTerm::var("v1"), HeadTerm::var("h2")]),
        [
            BodyItem::atom(assign, [v("v1"), v("v2")]),
            BodyItem::atom(vpt, [v("v2"), v("h2")]),
        ],
    );
    // VarPointsTo(v1, h2) :- Load(v1, v2, f), VarPointsTo(v2, h1),
    //                        HeapPointsTo(h1, f, h2).
    b.rule(
        Head::new(vpt, [HeadTerm::var("v1"), HeadTerm::var("h2")]),
        [
            BodyItem::atom(load, [v("v1"), v("v2"), v("f")]),
            BodyItem::atom(vpt, [v("v2"), v("h1")]),
            BodyItem::atom(hpt, [v("h1"), v("f"), v("h2")]),
        ],
    );
    // HeapPointsTo(h1, f, h2) :- Store(v1, f, v2), VarPointsTo(v1, h1),
    //                            VarPointsTo(v2, h2).
    b.rule(
        Head::new(
            hpt,
            [HeadTerm::var("h1"), HeadTerm::var("f"), HeadTerm::var("h2")],
        ),
        [
            BodyItem::atom(store, [v("v1"), v("f"), v("v2")]),
            BodyItem::atom(vpt, [v("v1"), v("h1")]),
            BodyItem::atom(vpt, [v("v2"), v("h2")]),
        ],
    );
    b.build().expect("Figure 1 is well-formed")
}

/// Runs the analysis with the given solver.
pub fn analyze_with(input: &PointsToInput, solver: &Solver) -> PointsToResult {
    let solution = solver
        .solve(&build_program(input))
        .expect("Figure 1 is a positive Datalog program");
    let mut result = PointsToResult::default();
    for row in solution.relation("VarPointsTo").expect("declared") {
        result.var_points_to.insert((
            row[0].as_str().expect("var").to_string(),
            row[1].as_str().expect("obj").to_string(),
        ));
    }
    for row in solution.relation("HeapPointsTo").expect("declared") {
        result.heap_points_to.insert((
            row[0].as_str().expect("obj").to_string(),
            row[1].as_str().expect("field").to_string(),
            row[2].as_str().expect("obj").to_string(),
        ));
    }
    result
}

/// Runs the analysis with the default solver.
pub fn analyze(input: &PointsToInput) -> PointsToResult {
    analyze_with(input, &Solver::new())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn section_2_1_answer() {
        let result = analyze(&PointsToInput::section_2_1_example());
        // "Running the solver infers ... VarPointsTo("r", "A")".
        assert!(result.may_point_to("r", "A"));
        assert!(result.may_point_to("o3", "B"));
        assert!(!result.may_point_to("r", "B"));
        assert!(result
            .heap_points_to
            .contains(&("B".into(), "f".into(), "A".into())));
    }

    #[test]
    fn assignment_chains_propagate() {
        let input = PointsToInput {
            new: vec![("a".into(), "O".into())],
            assign: vec![
                ("b".into(), "a".into()),
                ("c".into(), "b".into()),
                ("d".into(), "c".into()),
            ],
            ..PointsToInput::default()
        };
        let result = analyze(&input);
        for var in ["a", "b", "c", "d"] {
            assert!(result.may_point_to(var, "O"));
        }
        assert_eq!(result.var_points_to.len(), 4);
    }
}
