//! k-CFA control-flow analysis for a labelled lambda calculus.
//!
//! §1 of the paper: "the lack of functions, as well as compound datatypes,
//! means that even a simple context-sensitive analysis such as k-CFA
//! cannot be expressed" in Datalog. This module expresses it in FLIX:
//! contexts are **k-truncated call strings stored as tuple values in
//! relation columns**, and the context-push operation is a transfer
//! function in a rule head — the two capabilities Datalog lacks.
//!
//! The subject language is a unary lambda calculus with labelled terms:
//!
//! ```text
//! e ::= Var(x) | Lam(x, body) | App(f, a)
//! ```
//!
//! The analysis computes, per (term, context), the set of closures the
//! term may evaluate to. Lexical capture of free variables through nested
//! lambdas is not modelled (bindings are looked up in the occurrence
//! context, as in flat m-CFA variants); the demonstration programs bind
//! and use variables within one lambda body, which this models soundly.

use flix_core::{BodyItem, Head, HeadTerm, Program, ProgramBuilder, Solver, Term, Value};
use std::collections::{BTreeMap, BTreeSet};

/// A term label.
pub type Label = i64;

/// A term of the subject language.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Expr {
    /// A variable reference.
    Var {
        /// The variable name.
        name: String,
    },
    /// A lambda abstraction.
    Lam {
        /// The parameter name.
        param: String,
        /// The label of the body term.
        body: Label,
    },
    /// An application.
    App {
        /// The label of the function term.
        func: Label,
        /// The label of the argument term.
        arg: Label,
    },
}

/// A program: labelled terms plus the root labels to seed as reachable
/// (in the empty context).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CfaInput {
    /// Terms by label.
    pub terms: BTreeMap<Label, Expr>,
    /// Labels evaluated at the top level.
    pub roots: Vec<Label>,
}

/// The analysis result: for each (term label, context) pair, the labels
/// of the lambdas the term may evaluate to.
///
/// Contexts are rendered as the vector of call-site labels (most recent
/// first), truncated to length `k`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CfaResult {
    /// `(label, context) → {lambda labels}`.
    pub flows: BTreeMap<(Label, Vec<Label>), BTreeSet<Label>>,
}

impl CfaResult {
    /// All lambdas a term may evaluate to, joined over every context.
    pub fn values_of(&self, label: Label) -> BTreeSet<Label> {
        self.flows
            .iter()
            .filter(|((l, _), _)| *l == label)
            .flat_map(|(_, lams)| lams.iter().copied())
            .collect()
    }
}

fn ctx_value(labels: &[Label]) -> Value {
    Value::tuple(labels.iter().map(|&l| Value::Int(l)))
}

fn ctx_labels(v: &Value) -> Vec<Label> {
    v.as_tuple()
        .expect("contexts are tuples")
        .iter()
        .map(|l| l.as_int().expect("labels are ints"))
        .collect()
}

/// Builds the k-CFA program over the input terms.
pub fn build_program(input: &CfaInput, k: usize) -> Program {
    let mut b = ProgramBuilder::new();

    // Syntax relations.
    let lam = b.relation("Lam", 3); // (label, param, body)
    let var_ref = b.relation("VarRef", 2); // (label, name)
    let app = b.relation("App", 3); // (label, func, arg)

    // Analysis relations. Context columns hold tuple values — the
    // compound data Datalog cannot represent.
    let reachable = b.relation("Reachable", 2); // (label, ctx)
    let flows_to = b.relation("FlowsTo", 4); // (label, ctx, lam, lam_ctx)
    let call_ctx = b.relation("CallCtx", 3); // (call, ctx, callee_ctx)
    let bind = b.relation("Bind", 4); // (name, ctx, lam, lam_ctx)

    // push(l, ctx): prepend the call site, truncate to k.
    let push = b.function("push", move |args| {
        let l = args[0].as_int().expect("label");
        let mut labels = ctx_labels(&args[1]);
        labels.insert(0, l);
        labels.truncate(k);
        ctx_value(&labels)
    });

    for (&label, term) in &input.terms {
        match term {
            Expr::Var { name } => {
                b.fact(var_ref, vec![label.into(), name.as_str().into()]);
            }
            Expr::Lam { param, body } => {
                b.fact(
                    lam,
                    vec![label.into(), param.as_str().into(), (*body).into()],
                );
            }
            Expr::App { func, arg } => {
                b.fact(app, vec![label.into(), (*func).into(), (*arg).into()]);
            }
        }
    }
    for &root in &input.roots {
        b.fact(reachable, vec![root.into(), ctx_value(&[])]);
    }

    let v = Term::var;

    // Subterms of a reachable application are reachable in the same ctx.
    for col in ["f", "a"] {
        b.rule(
            Head::new(reachable, [HeadTerm::var(col), HeadTerm::var("ctx")]),
            [
                BodyItem::atom(app, [v("l"), v("f"), v("a")]),
                BodyItem::atom(reachable, [v("l"), v("ctx")]),
            ],
        );
    }
    // A reachable lambda evaluates to itself (closed over its context).
    b.rule(
        Head::new(
            flows_to,
            [
                HeadTerm::var("l"),
                HeadTerm::var("ctx"),
                HeadTerm::var("l"),
                HeadTerm::var("ctx"),
            ],
        ),
        [
            BodyItem::atom(lam, [v("l"), v("x"), v("b")]),
            BodyItem::atom(reachable, [v("l"), v("ctx")]),
        ],
    );
    // Calling context: push the call site (the head transfer function).
    b.rule(
        Head::new(
            call_ctx,
            [
                HeadTerm::var("l"),
                HeadTerm::var("ctx"),
                HeadTerm::app(push, [v("l"), v("ctx")]),
            ],
        ),
        [
            BodyItem::atom(app, [v("l"), v("f"), v("a")]),
            BodyItem::atom(reachable, [v("l"), v("ctx")]),
        ],
    );
    // The callee body is reachable in the callee context.
    b.rule(
        Head::new(reachable, [HeadTerm::var("body"), HeadTerm::var("ctx2")]),
        [
            BodyItem::atom(app, [v("l"), v("f"), v("a")]),
            BodyItem::atom(flows_to, [v("f"), v("ctx"), v("laml"), Term::Wildcard]),
            BodyItem::atom(lam, [v("laml"), Term::Wildcard, v("body")]),
            BodyItem::atom(call_ctx, [v("l"), v("ctx"), v("ctx2")]),
        ],
    );
    // The parameter is bound to the argument's values in the callee ctx.
    b.rule(
        Head::new(
            bind,
            [
                HeadTerm::var("x"),
                HeadTerm::var("ctx2"),
                HeadTerm::var("vl"),
                HeadTerm::var("vctx"),
            ],
        ),
        [
            BodyItem::atom(app, [v("l"), v("f"), v("a")]),
            BodyItem::atom(flows_to, [v("f"), v("ctx"), v("laml"), Term::Wildcard]),
            BodyItem::atom(lam, [v("laml"), v("x"), Term::Wildcard]),
            BodyItem::atom(call_ctx, [v("l"), v("ctx"), v("ctx2")]),
            BodyItem::atom(flows_to, [v("a"), v("ctx"), v("vl"), v("vctx")]),
        ],
    );
    // Variable references read their binding in the occurrence context.
    b.rule(
        Head::new(
            flows_to,
            [
                HeadTerm::var("l"),
                HeadTerm::var("ctx"),
                HeadTerm::var("vl"),
                HeadTerm::var("vctx"),
            ],
        ),
        [
            BodyItem::atom(var_ref, [v("l"), v("x")]),
            BodyItem::atom(reachable, [v("l"), v("ctx")]),
            BodyItem::atom(bind, [v("x"), v("ctx"), v("vl"), v("vctx")]),
        ],
    );
    // An application evaluates to whatever the callee body evaluates to.
    b.rule(
        Head::new(
            flows_to,
            [
                HeadTerm::var("l"),
                HeadTerm::var("ctx"),
                HeadTerm::var("vl"),
                HeadTerm::var("vctx"),
            ],
        ),
        [
            BodyItem::atom(app, [v("l"), v("f"), v("a")]),
            BodyItem::atom(flows_to, [v("f"), v("ctx"), v("laml"), Term::Wildcard]),
            BodyItem::atom(lam, [v("laml"), Term::Wildcard, v("body")]),
            BodyItem::atom(call_ctx, [v("l"), v("ctx"), v("ctx2")]),
            BodyItem::atom(flows_to, [v("body"), v("ctx2"), v("vl"), v("vctx")]),
        ],
    );

    b.build().expect("the k-CFA rules are well-formed")
}

/// Runs the analysis with context depth `k`.
pub fn analyze(input: &CfaInput, k: usize) -> CfaResult {
    let solution = Solver::new()
        .solve(&build_program(input, k))
        .expect("finite term set and k-bounded contexts terminate");
    let mut result = CfaResult::default();
    for row in solution.relation("FlowsTo").expect("declared") {
        let label = row[0].as_int().expect("label");
        let ctx = ctx_labels(&row[1]);
        let lam = row[2].as_int().expect("lambda label");
        result.flows.entry((label, ctx)).or_default().insert(lam);
    }
    result
}

/// The classic polyvariance test program:
///
/// ```text
/// l10: App(l1, l2)   — id applied to lamA
/// l11: App(l1, l3)   — id applied to lamB
/// l1:  λx. x         (body: l6)
/// l2:  λa. a         ("lamA", body l7)
/// l3:  λb. b         ("lamB", body l8)
/// ```
///
/// 0-CFA merges both calls of `id`, so each application appears to return
/// both lambdas; 1-CFA distinguishes the call sites.
pub fn polyvariance_example() -> CfaInput {
    let mut terms = BTreeMap::new();
    terms.insert(
        1,
        Expr::Lam {
            param: "x".into(),
            body: 6,
        },
    );
    terms.insert(6, Expr::Var { name: "x".into() });
    terms.insert(
        2,
        Expr::Lam {
            param: "a".into(),
            body: 7,
        },
    );
    terms.insert(7, Expr::Var { name: "a".into() });
    terms.insert(
        3,
        Expr::Lam {
            param: "b".into(),
            body: 8,
        },
    );
    terms.insert(8, Expr::Var { name: "b".into() });
    terms.insert(10, Expr::App { func: 1, arg: 2 });
    terms.insert(11, Expr::App { func: 1, arg: 3 });
    CfaInput {
        terms,
        roots: vec![10, 11],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_cfa_distinguishes_call_sites() {
        let result = analyze(&polyvariance_example(), 1);
        // Under context [10], the body of id sees only lamA (label 2);
        // under [11], only lamB (label 3).
        assert_eq!(
            result.flows.get(&(6, vec![10])),
            Some(&BTreeSet::from([2])),
            "id's body under call site 10"
        );
        assert_eq!(
            result.flows.get(&(6, vec![11])),
            Some(&BTreeSet::from([3])),
            "id's body under call site 11"
        );
        // Consequently each application returns exactly its own argument.
        assert_eq!(result.flows.get(&(10, vec![])), Some(&BTreeSet::from([2])));
        assert_eq!(result.flows.get(&(11, vec![])), Some(&BTreeSet::from([3])));
    }

    #[test]
    fn zero_cfa_merges_call_sites() {
        let result = analyze(&polyvariance_example(), 0);
        // With k = 0 every context is the empty tuple: the two calls of
        // id merge and both applications appear to return both lambdas.
        assert_eq!(
            result.flows.get(&(6, vec![])),
            Some(&BTreeSet::from([2, 3])),
            "id's body merges both arguments"
        );
        assert_eq!(
            result.flows.get(&(10, vec![])),
            Some(&BTreeSet::from([2, 3]))
        );
    }

    #[test]
    fn one_cfa_is_at_most_as_coarse_as_zero_cfa() {
        let zero = analyze(&polyvariance_example(), 0);
        let one = analyze(&polyvariance_example(), 1);
        for label in [1i64, 2, 3, 6, 10, 11] {
            let z = zero.values_of(label);
            let o = one.values_of(label);
            assert!(
                o.is_subset(&z),
                "1-CFA must refine 0-CFA at {label}: {o:?} ⊄ {z:?}"
            );
        }
    }

    #[test]
    fn lambdas_evaluate_to_themselves() {
        let result = analyze(&polyvariance_example(), 1);
        assert_eq!(result.flows.get(&(1, vec![])), Some(&BTreeSet::from([1])));
    }

    #[test]
    fn contexts_are_truncated_to_k() {
        // A self-application tower would build unbounded call strings
        // without truncation: ((λx. x x) (λy. y y)) loops forever
        // concretely, but k-CFA terminates.
        let mut terms = BTreeMap::new();
        terms.insert(
            1,
            Expr::Lam {
                param: "x".into(),
                body: 2,
            },
        );
        terms.insert(2, Expr::App { func: 3, arg: 4 });
        terms.insert(3, Expr::Var { name: "x".into() });
        terms.insert(4, Expr::Var { name: "x".into() });
        terms.insert(
            5,
            Expr::Lam {
                param: "y".into(),
                body: 6,
            },
        );
        terms.insert(6, Expr::App { func: 7, arg: 8 });
        terms.insert(7, Expr::Var { name: "y".into() });
        terms.insert(8, Expr::Var { name: "y".into() });
        terms.insert(9, Expr::App { func: 1, arg: 5 });
        let input = CfaInput {
            terms,
            roots: vec![9],
        };
        for k in [0usize, 1, 2] {
            let result = analyze(&input, k);
            for (_, ctx) in result.flows.keys() {
                assert!(ctx.len() <= k, "context {ctx:?} exceeds k = {k}");
            }
        }
    }
}
