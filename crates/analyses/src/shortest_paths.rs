//! All-pairs shortest paths on the min-cost lattice — §4.4 of the paper.
//!
//! "FLIX is applicable to other types of fixed-point problems. For
//! example, to compute all-pairs shortest paths, let `(N, ∞, 0, ≥, min,
//! max)` be a lattice over the natural numbers. Then we can compute the
//! shortest paths as follows: `Dist(y, d + c) :- Dist(x, d), Edge(x, y, c).`"
//!
//! This module provides both the single-source form (exactly the paper's
//! rule) and the all-pairs form (the same rule with a source key column),
//! plus extraction back into plain maps. The reference implementation for
//! cross-validation is [`crate::workloads::graphs::dijkstra`].

use crate::workloads::graphs::WeightedGraph;
use flix_core::{
    BodyItem, Head, HeadTerm, LatticeOps, Program, ProgramBuilder, Query, SolveStats, Solver, Term,
    ValueLattice,
};
use flix_lattice::MinCost;
use std::collections::BTreeMap;

/// Builds the single-source program: `Dist(node, MinCost<>)` seeded with
/// `Dist(source, 0)`.
pub fn build_single_source(graph: &WeightedGraph, source: u32) -> Program {
    let mut b = ProgramBuilder::new();
    let edge = b.relation("Edge", 3);
    let dist = b.lattice("Dist", 2, LatticeOps::of::<MinCost>());
    let extend = b.function("extend", |args| {
        let d = MinCost::expect_from(&args[0]);
        let c = args[1].as_int().expect("weight") as u64;
        d.add_weight(c).to_value()
    });
    for &(x, y, c) in &graph.edges {
        b.fact(
            edge,
            vec![(x as i64).into(), (y as i64).into(), (c as i64).into()],
        );
    }
    b.fact(
        dist,
        vec![(source as i64).into(), MinCost::finite(0).to_value()],
    );
    // Dist(y, d + c) :- Dist(x, d), Edge(x, y, c).
    b.rule(
        Head::new(
            dist,
            [
                HeadTerm::var("y"),
                HeadTerm::app(extend, [Term::var("d"), Term::var("c")]),
            ],
        ),
        [
            BodyItem::atom(dist, [Term::var("x"), Term::var("d")]),
            BodyItem::atom(edge, [Term::var("x"), Term::var("y"), Term::var("c")]),
        ],
    );
    b.build()
        .expect("the shortest-paths program is well-formed")
}

/// Builds the all-pairs program: `Dist(src, node, MinCost<>)` seeded with
/// `Dist(v, v, 0)` for every node.
pub fn build_all_pairs(graph: &WeightedGraph) -> Program {
    let mut b = ProgramBuilder::new();
    let edge = b.relation("Edge", 3);
    let dist = b.lattice("Dist", 3, LatticeOps::of::<MinCost>());
    let extend = b.function("extend", |args| {
        let d = MinCost::expect_from(&args[0]);
        let c = args[1].as_int().expect("weight") as u64;
        d.add_weight(c).to_value()
    });
    for &(x, y, c) in &graph.edges {
        b.fact(
            edge,
            vec![(x as i64).into(), (y as i64).into(), (c as i64).into()],
        );
    }
    for v in 0..graph.num_nodes {
        b.fact(
            dist,
            vec![
                (v as i64).into(),
                (v as i64).into(),
                MinCost::finite(0).to_value(),
            ],
        );
    }
    // Dist(s, y, d + c) :- Dist(s, x, d), Edge(x, y, c).
    b.rule(
        Head::new(
            dist,
            [
                HeadTerm::var("s"),
                HeadTerm::var("y"),
                HeadTerm::app(extend, [Term::var("d"), Term::var("c")]),
            ],
        ),
        [
            BodyItem::atom(dist, [Term::var("s"), Term::var("x"), Term::var("d")]),
            BodyItem::atom(edge, [Term::var("x"), Term::var("y"), Term::var("c")]),
        ],
    );
    b.build().expect("the all-pairs program is well-formed")
}

/// Solves single-source shortest paths; `None` entries are unreachable.
pub fn single_source_with(graph: &WeightedGraph, source: u32, solver: &Solver) -> Vec<Option<u64>> {
    let solution = solver
        .solve(&build_single_source(graph, source))
        .expect("finite lattice height on a finite graph");
    let mut out = vec![None; graph.num_nodes as usize];
    for (key, value) in solution.lattice("Dist").expect("declared") {
        let node = key[0].as_int().expect("node") as usize;
        out[node] = MinCost::expect_from(value).value();
    }
    out
}

/// Solves single-source shortest paths with the default solver.
pub fn single_source(graph: &WeightedGraph, source: u32) -> Vec<Option<u64>> {
    single_source_with(graph, source, &Solver::new())
}

/// Solves single-source shortest paths and returns the solver's full
/// work profile alongside the distances.
///
/// This is the profiling demo for the observability layer: the returned
/// [`SolveStats`] carries the per-rule and per-stratum breakdowns that
/// the benchmark harness records into its `--metrics-json` report (the
/// same `flix-metrics/1` document `flixr --metrics-json` writes).
pub fn single_source_profiled(
    graph: &WeightedGraph,
    source: u32,
) -> (Vec<Option<u64>>, SolveStats) {
    let solution = Solver::new()
        .solve(&build_single_source(graph, source))
        .expect("finite lattice height on a finite graph");
    let mut out = vec![None; graph.num_nodes as usize];
    for (key, value) in solution.lattice("Dist").expect("declared") {
        let node = key[0].as_int().expect("node") as usize;
        out[node] = MinCost::expect_from(value).value();
    }
    (out, solution.stats().clone())
}

/// Demand-driven single-target query on the *all-pairs* program: the
/// shortest distance from `source` to `target`, or `None` if `target` is
/// unreachable.
///
/// Instead of materializing all n² distance cells, this runs
/// [`Solver::solve_query`] with the pattern `Dist(source, target, _)`.
/// The demand rewrite observes that the recursive rule propagates the
/// source key unchanged, so the adornment settles on the source column
/// and only the ~n cells reachable from `source` are ever derived — the
/// single-target answer still equals the full all-pairs model's
/// cell-for-cell (the demand parity suite pins this).
pub fn query_distance_with(
    graph: &WeightedGraph,
    source: u32,
    target: u32,
    solver: &Solver,
) -> Option<u64> {
    let program = build_all_pairs(graph);
    let query = Query::new(
        "Dist",
        vec![
            Some((source as i64).into()),
            Some((target as i64).into()),
            None,
        ],
    );
    let result = solver
        .solve_query(&program, &[query])
        .expect("finite lattice height on a finite graph");
    result
        .solution()
        .lattice_value("Dist", &[(source as i64).into(), (target as i64).into()])
        .and_then(|v| MinCost::expect_from(&v).value())
}

/// Demand-driven single-target query with the default solver.
pub fn query_distance(graph: &WeightedGraph, source: u32, target: u32) -> Option<u64> {
    query_distance_with(graph, source, target, &Solver::new())
}

/// Demand-driven single-source query on the *all-pairs* program: all
/// distances from `source`, without materializing the other n−1 sources'
/// cells. `None` entries are unreachable.
pub fn query_single_source(graph: &WeightedGraph, source: u32) -> Vec<Option<u64>> {
    let program = build_all_pairs(graph);
    let query = Query::new("Dist", vec![Some((source as i64).into()), None, None]);
    let result = Solver::new()
        .solve_query(&program, &[query])
        .expect("finite lattice height on a finite graph");
    let mut out = vec![None; graph.num_nodes as usize];
    for fact in result.answers(0) {
        let node = fact.key()[1].as_int().expect("node") as usize;
        out[node] = MinCost::expect_from(fact.value().expect("lattice cell")).value();
    }
    out
}

/// Solves all-pairs shortest paths; absent keys are unreachable pairs.
pub fn all_pairs(graph: &WeightedGraph) -> BTreeMap<(u32, u32), u64> {
    let solution = Solver::new()
        .solve(&build_all_pairs(graph))
        .expect("finite lattice height on a finite graph");
    let mut out = BTreeMap::new();
    for (key, value) in solution.lattice("Dist").expect("declared") {
        let s = key[0].as_int().expect("source") as u32;
        let n = key[1].as_int().expect("node") as u32;
        if let Some(c) = MinCost::expect_from(value).value() {
            out.insert((s, n), c);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::graphs;

    #[test]
    fn single_source_matches_dijkstra() {
        let graph = graphs::generate(30, 60, 5);
        assert_eq!(single_source(&graph, 0), graphs::dijkstra(&graph, 0));
    }

    #[test]
    fn all_pairs_diagonal_is_zero() {
        let graph = graphs::generate(10, 15, 2);
        let apsp = all_pairs(&graph);
        for v in 0..10 {
            assert_eq!(apsp.get(&(v, v)), Some(&0));
        }
    }

    #[test]
    fn all_pairs_agrees_with_repeated_dijkstra() {
        let graph = graphs::generate(12, 25, 9);
        let apsp = all_pairs(&graph);
        for s in 0..graph.num_nodes {
            let dist = graphs::dijkstra(&graph, s);
            for (n, d) in dist.iter().enumerate() {
                assert_eq!(apsp.get(&(s, n as u32)), d.as_ref(), "({s}, {n})");
            }
        }
    }

    #[test]
    fn unreachable_nodes_stay_at_bottom() {
        // Two disconnected components.
        let graph = WeightedGraph {
            num_nodes: 4,
            edges: vec![(0, 1, 3), (2, 3, 4)],
        };
        let dist = single_source(&graph, 0);
        assert_eq!(dist, vec![Some(0), Some(3), None, None]);
    }
}
