//! Interval analysis — the other abstract domain §2.2 of the paper names
//! as inexpressible in Datalog ("we can use a constant propagation
//! analysis or interval analysis to discover this information").
//!
//! Structurally identical to the parity analysis of [`crate::dataflow`]
//! but over the bounded interval lattice, demonstrating that the Figure 2
//! rule *shape* is domain-generic: swap the lattice and the transfer/
//! filter functions, keep the rules.

use crate::dataflow::DataflowInput;
use flix_core::{
    BodyItem, Head, HeadTerm, LatticeOps, Program, ProgramBuilder, Solver, Term, Value,
    ValueLattice,
};
use flix_lattice::Interval;
use std::collections::{BTreeMap, BTreeSet};

/// The interval analysis result.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct IntervalResult {
    /// The interval of each integer variable.
    pub int_var: BTreeMap<String, Interval>,
    /// Result variables of divisions whose denominator interval contains
    /// zero.
    pub arithmetic_errors: BTreeSet<String>,
}

/// Builds the interval version of the Figure 2 dataflow rules (assign,
/// add, divide; the heap rules are omitted — the parity version covers
/// them and they are domain-independent).
pub fn build_program(input: &DataflowInput) -> Program {
    let mut b = ProgramBuilder::new();

    let assign = b.relation("Assign", 2);
    let int_fact = b.relation("Int", 2);
    let add_exp = b.relation("AddExp", 3);
    let div_exp = b.relation("DivExp", 3);
    let arith_err = b.relation("ArithmeticError", 1);
    let int_var = b.lattice("IntVar", 2, LatticeOps::of::<Interval>());

    let alpha = b.function("alpha", |args| {
        Interval::singleton(args[0].as_int().expect("constant")).to_value()
    });
    let sum = b.function("sum", |args| {
        Interval::expect_from(&args[0])
            .sum(&Interval::expect_from(&args[1]))
            .to_value()
    });
    let is_maybe_zero = b.function("isMaybeZero", |args| {
        Value::Bool(Interval::expect_from(&args[0]).is_maybe_zero())
    });

    for (x, y) in &input.points_to.assign {
        b.fact(assign, vec![Value::str(x.as_str()), Value::str(y.as_str())]);
    }
    for (x, n) in &input.int_const {
        b.fact(int_fact, vec![Value::str(x.as_str()), Value::Int(*n)]);
    }
    for (r, x, y) in &input.add_exp {
        b.fact(
            add_exp,
            vec![
                Value::str(r.as_str()),
                Value::str(x.as_str()),
                Value::str(y.as_str()),
            ],
        );
    }
    for (r, x, y) in &input.div_exp {
        b.fact(
            div_exp,
            vec![
                Value::str(r.as_str()),
                Value::str(x.as_str()),
                Value::str(y.as_str()),
            ],
        );
    }

    let v = Term::var;
    b.rule(
        Head::new(
            int_var,
            [HeadTerm::var("x"), HeadTerm::app(alpha, [v("n")])],
        ),
        [BodyItem::atom(int_fact, [v("x"), v("n")])],
    );
    b.rule(
        Head::new(int_var, [HeadTerm::var("x"), HeadTerm::var("i")]),
        [
            BodyItem::atom(assign, [v("x"), v("y")]),
            BodyItem::atom(int_var, [v("y"), v("i")]),
        ],
    );
    b.rule(
        Head::new(
            int_var,
            [HeadTerm::var("r"), HeadTerm::app(sum, [v("i1"), v("i2")])],
        ),
        [
            BodyItem::atom(add_exp, [v("r"), v("v1"), v("v2")]),
            BodyItem::atom(int_var, [v("v1"), v("i1")]),
            BodyItem::atom(int_var, [v("v2"), v("i2")]),
        ],
    );
    b.rule(
        Head::new(arith_err, [HeadTerm::var("r")]),
        [
            BodyItem::atom(div_exp, [v("r"), v("v1"), v("v2")]),
            BodyItem::atom(int_var, [v("v2"), v("i2")]),
            BodyItem::filter(is_maybe_zero, [v("i2")]),
        ],
    );

    b.build().expect("the interval rules are well-formed")
}

/// Runs the interval analysis with the given solver.
pub fn analyze_with(input: &DataflowInput, solver: &Solver) -> IntervalResult {
    let solution = solver
        .solve(&build_program(input))
        .expect("finite-height lattice (clamped intervals)");
    let mut result = IntervalResult::default();
    for (key, value) in solution.lattice("IntVar").expect("declared") {
        result.int_var.insert(
            key[0].as_str().expect("var").to_string(),
            Interval::expect_from(value),
        );
    }
    for row in solution.relation("ArithmeticError").expect("declared") {
        result
            .arithmetic_errors
            .insert(row[0].as_str().expect("var").to_string());
    }
    result
}

/// Runs the interval analysis with the default solver.
pub fn analyze(input: &DataflowInput) -> IntervalResult {
    analyze_with(input, &Solver::new())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::points_to::PointsToInput;

    fn input() -> DataflowInput {
        DataflowInput {
            points_to: PointsToInput {
                assign: vec![("b".into(), "a".into()), ("b".into(), "c".into())],
                ..PointsToInput::default()
            },
            // a = 3, c = 7: b ∈ [3, 7]; d = a + c ∈ [10, 10];
            // z = 0: e = x / z flagged; f = x / a safe.
            int_const: vec![
                ("a".into(), 3),
                ("c".into(), 7),
                ("z".into(), 0),
                ("x".into(), 100),
            ],
            add_exp: vec![("d".into(), "a".into(), "c".into())],
            div_exp: vec![
                ("e".into(), "x".into(), "z".into()),
                ("f".into(), "x".into(), "a".into()),
            ],
        }
    }

    #[test]
    fn intervals_join_across_assignments() {
        let result = analyze(&input());
        assert_eq!(result.int_var["a"], Interval::singleton(3));
        assert_eq!(result.int_var["b"], Interval::of(3, 7), "join of 3 and 7");
        assert_eq!(result.int_var["d"], Interval::singleton(10));
    }

    #[test]
    fn zero_denominators_are_flagged_precisely() {
        let result = analyze(&input());
        assert!(result.arithmetic_errors.contains("e"));
        assert!(!result.arithmetic_errors.contains("f"));
    }

    #[test]
    fn interval_analysis_refines_parity_on_this_input() {
        // Parity of b would be Top (3 ⊔ 7 = Odd actually — both odd!);
        // make the point with an even/odd pair instead.
        let mut input = input();
        input.int_const.push(("a".into(), 4)); // a now 3 or 4
        let result = analyze(&input);
        assert_eq!(result.int_var["a"], Interval::of(3, 4));
        // The interval keeps the bound [3, 4]; parity would be Top.
        assert!(!result.int_var["a"].is_maybe_zero());
    }
}
