//! Cross-validation of declarative vs baseline implementations — the
//! correctness backbone of the Table 1 and Table 2 reproductions: every
//! pair of implementations that the benchmarks compare for *speed* is
//! checked here for *equal output*, on generated and random inputs.
//! (The paper: "We confirmed that both implementations compute the same
//! results" / "We verified that both implementations produce the same
//! outputs.")

use flix_analyses::ide::{self, linear_constant::LinearConstant, IdentityIde};
use flix_analyses::ifds::{self, problems};
use flix_analyses::strong_update::{self, SuInput};
use flix_analyses::workloads::{c_program, jvm_program};
use flix_lattice::rng::SmallRng;
use std::sync::Arc;

// ---- Strong Update: flix vs datalog vs imperative ------------------------

fn check_su_agreement(input: &SuInput) {
    let flix = strong_update::flix::analyze(input);
    let imperative = strong_update::imperative::analyze(input);
    let datalog = strong_update::datalog::analyze(input);
    strong_update::assert_pt_agree(&flix, &imperative);
    strong_update::assert_pt_agree(&flix, &datalog);
    assert_eq!(
        flix.su_after, imperative.su_after,
        "SUAfter: flix vs imperative"
    );
    assert_eq!(flix.su_after, datalog.su_after, "SUAfter: flix vs datalog");
}

#[test]
fn strong_update_implementations_agree_on_generated_programs() {
    for seed in 0..4 {
        let input = c_program::generate(220, seed);
        check_su_agreement(&input);
    }
}

#[test]
fn strong_update_flix_sound_wrt_andersen() {
    // The flow-sensitive Pt must be a subset of the flow-insensitive
    // Andersen points-to (strong updates only remove spurious targets).
    let input = c_program::generate(300, 99);
    let flix = strong_update::flix::analyze(&input);
    let andersen = input.andersen();
    for &(p, a) in &flix.pt {
        assert!(
            andersen.get(&p).is_some_and(|objs| objs.contains(&a)),
            "flix Pt({p}, {a}) not in Andersen"
        );
    }
}

#[test]
fn strong_update_agreement_on_random_programs() {
    let mut rng = SmallRng::seed_from_u64(0x5A5A_0001);
    for _ in 0..24 {
        let pairs = |rng: &mut SmallRng, lo: usize, hi: usize, a: u32, b: u32| {
            let n = rng.gen_range(lo..hi);
            (0..n)
                .map(|_| (rng.gen_range(0u32..a), rng.gen_range(0u32..b)))
                .collect::<Vec<_>>()
        };
        let triples = |rng: &mut SmallRng, hi: usize| {
            let n = rng.gen_range(0usize..hi);
            (0..n)
                .map(|_| {
                    (
                        rng.gen_range(0u32..5),
                        rng.gen_range(0u32..6),
                        rng.gen_range(0u32..6),
                    )
                })
                .collect::<Vec<_>>()
        };
        let mut input = SuInput {
            num_vars: 6,
            num_objs: 5,
            num_labels: 5,
            addr_of: pairs(&mut rng, 1, 8, 6, 5),
            copy: pairs(&mut rng, 0, 6, 6, 6),
            load: triples(&mut rng, 5),
            store: triples(&mut rng, 5),
            cfg: pairs(&mut rng, 0, 8, 5, 5),
            kill: vec![],
        };
        input.compute_kill();
        check_su_agreement(&input);
    }
}

// ---- IFDS: declarative vs imperative --------------------------------------

#[test]
fn ifds_flix_agrees_with_imperative_on_the_example() {
    let model = Arc::new(problems::two_proc_example());
    for problem in [
        Arc::new(problems::Taint::new(model.clone())) as Arc<dyn ifds::IfdsProblem>,
        Arc::new(problems::UninitVars::new(model.clone())) as Arc<dyn ifds::IfdsProblem>,
    ] {
        let imperative = ifds::imperative::solve(&model.graph, problem.as_ref());
        let declarative = ifds::flix::solve(&model.graph, problem);
        assert_eq!(imperative, declarative);
    }
}

#[test]
fn ifds_flix_agrees_with_imperative_on_generated_programs() {
    for seed in [1u64, 2, 3] {
        let params = jvm_program::GenParams {
            num_procs: 4,
            nodes_per_proc: 8,
            vars_per_proc: 4,
            call_percent: 20,
            seed,
        };
        let model = Arc::new(jvm_program::generate(params));
        let taint = Arc::new(problems::Taint::new(model.clone()));
        let imperative = ifds::imperative::solve(&model.graph, taint.as_ref());
        let declarative = ifds::flix::solve(&model.graph, taint.clone());
        assert_eq!(imperative, declarative, "taint, seed {seed}");

        let uninit = Arc::new(problems::UninitVars::new(model.clone()));
        let imperative = ifds::imperative::solve(&model.graph, uninit.as_ref());
        let declarative = ifds::flix::solve(&model.graph, uninit);
        assert_eq!(imperative, declarative, "uninit, seed {seed}");
    }
}

// ---- IDE: declarative vs imperative; IDE generalises IFDS ----------------

#[test]
fn ide_flix_agrees_with_imperative_on_generated_programs() {
    for seed in [5u64, 6] {
        let params = jvm_program::GenParams {
            num_procs: 3,
            nodes_per_proc: 7,
            vars_per_proc: 4,
            call_percent: 20,
            seed,
        };
        let model = Arc::new(jvm_program::generate(params));
        let problem = Arc::new(LinearConstant::new(model.clone()));
        let imperative = ide::imperative::solve(&model.graph, problem.as_ref());
        let declarative = ide::flix::solve(&model.graph, problem);
        assert_eq!(imperative.values, declarative.values, "seed {seed}");
    }
}

/// The paper's §4.3 claim made executable: IDE with identity
/// micro-functions computes exactly the IFDS reachable set.
#[test]
fn ide_with_identity_micro_functions_equals_ifds() {
    let model = Arc::new(problems::two_proc_example());
    let ifds_problem = problems::Taint::new(model.clone());
    let ifds_result = ifds::imperative::solve(&model.graph, &ifds_problem);

    let ide_problem = IdentityIde(problems::Taint::new(model.clone()));
    let ide_result = ide::imperative::solve(&model.graph, &ide_problem);

    assert_eq!(ide_result.reachable(), ifds_result);
    // All values are ⊤ (the entry value pushed through identities).
    for v in ide_result.values.values() {
        assert_eq!(*v, flix_lattice::Flat::Top);
    }
}

#[test]
fn ide_identity_equals_ifds_on_generated_programs() {
    let params = jvm_program::GenParams {
        num_procs: 4,
        nodes_per_proc: 9,
        vars_per_proc: 4,
        call_percent: 25,
        seed: 77,
    };
    let model = Arc::new(jvm_program::generate(params));
    let ifds_result =
        ifds::imperative::solve(&model.graph, &problems::UninitVars::new(model.clone()));
    let ide_result = ide::imperative::solve(
        &model.graph,
        &IdentityIde(problems::UninitVars::new(model.clone())),
    );
    assert_eq!(ide_result.reachable(), ifds_result);
}

/// IDE linear constant values must be sound w.r.t. the IFDS reachability:
/// the declarative Result keys are a subset of the reachable pairs, and
/// jump functions only exist for reachable facts.
#[test]
fn ide_results_are_reachable_facts() {
    let params = jvm_program::GenParams {
        num_procs: 3,
        nodes_per_proc: 8,
        vars_per_proc: 4,
        call_percent: 15,
        seed: 13,
    };
    let model = Arc::new(jvm_program::generate(params));
    let problem = Arc::new(LinearConstant::new(model.clone()));
    let ide_result = ide::imperative::solve(&model.graph, problem.as_ref());
    // Every valued pair must sit inside the procedure containing its node.
    for &(n, _) in ide_result.values.keys() {
        assert!(n < model.graph.num_nodes);
    }
}
