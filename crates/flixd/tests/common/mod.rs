//! Shared fixtures for the flixd integration tests: a small program
//! mixing relational closure with a lattice, hand-rolled language hooks
//! (the real surface language lives above this crate), and parity
//! helpers rendering models the way the daemon's `facts` op does.

// Each test binary compiles its own copy; not all of them use every
// fixture.
#![allow(dead_code)]

use flix_core::{
    BodyItem, Delta, DeltaOp, Head, HeadTerm, LatticeOps, Program, ProgramBuilder, Solution, Term,
    Value, ValueLattice,
};
use flix_lattice::MinCost;
use flixd::Hooks;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// Builds the test program: transitive closure over `Edge`, plus a
/// `Dist` shortest-hop lattice seeded at node 0, so updates exercise
/// both relational derivation and lattice ascent/retraction.
pub fn build_program(edges: &[(i64, i64)]) -> Program {
    let mut b = ProgramBuilder::new();
    let edge = b.relation("Edge", 2);
    let path = b.relation("Path", 2);
    let dist = b.lattice("Dist", 2, LatticeOps::of::<MinCost>());
    let step = b.function("step", |args| {
        MinCost::expect_from(&args[0]).add_weight(1).to_value()
    });
    for &(x, y) in edges {
        b.fact(edge, vec![x.into(), y.into()]);
    }
    b.fact(dist, vec![Value::from(0), MinCost::finite(0).to_value()]);
    b.rule(
        Head::new(path, [HeadTerm::var("x"), HeadTerm::var("y")]),
        [BodyItem::atom(edge, [Term::var("x"), Term::var("y")])],
    );
    b.rule(
        Head::new(path, [HeadTerm::var("x"), HeadTerm::var("z")]),
        [
            BodyItem::atom(path, [Term::var("x"), Term::var("y")]),
            BodyItem::atom(edge, [Term::var("y"), Term::var("z")]),
        ],
    );
    b.rule(
        Head::new(
            dist,
            [HeadTerm::var("y"), HeadTerm::app(step, [Term::var("d")])],
        ),
        [
            BodyItem::atom(dist, [Term::var("x"), Term::var("d")]),
            BodyItem::atom(edge, [Term::var("x"), Term::var("y")]),
        ],
    );
    b.build().expect("the test program is valid")
}

/// Parses the test update syntax: one op per line, `+Pred v v ...` to
/// insert, `-Pred v v ...` to retract, integer columns only.
pub fn parse_update(text: &str) -> Result<Delta, String> {
    let mut delta = Delta::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let (op, rest) = line.split_at(1);
        let mut parts = rest.split_whitespace();
        let predicate = parts.next().ok_or("missing predicate")?.to_string();
        let tuple = parts
            .map(|p| {
                p.parse::<i64>()
                    .map(Value::from)
                    .map_err(|_| format!("bad value {p:?}"))
            })
            .collect::<Result<Vec<_>, _>>()?;
        match op {
            "+" => delta.push(predicate, tuple),
            "-" => delta.push_op(DeltaOp::Retract { predicate, tuple }),
            other => return Err(format!("bad op {other:?} (want + or -)")),
        }
    }
    Ok(delta)
}

/// Hooks speaking the test syntaxes: space-separated query patterns
/// (`Path 0 _`), ground atoms (`Path 0 2`), and [`parse_update`] text.
pub fn test_hooks() -> Hooks {
    Hooks {
        parse_query: Box::new(|text| {
            let mut parts = text.split_whitespace();
            let pred = parts.next().ok_or("empty query")?.to_string();
            let pattern = parts
                .map(|p| {
                    if p == "_" {
                        Ok(None)
                    } else {
                        p.parse::<i64>()
                            .map(|v| Some(Value::from(v)))
                            .map_err(|_| format!("bad term {p:?}"))
                    }
                })
                .collect::<Result<Vec<_>, String>>()?;
            Ok((pred, pattern))
        }),
        parse_atom: Box::new(|text| {
            let mut parts = text.split_whitespace();
            let pred = parts.next().ok_or("empty atom")?.to_string();
            let values = parts
                .map(|p| {
                    p.parse::<i64>()
                        .map(Value::from)
                        .map_err(|_| format!("bad value {p:?}"))
                })
                .collect::<Result<Vec<_>, String>>()?;
            Ok((pred, values))
        }),
        compile_update: Box::new(parse_update),
    }
}

/// Renders every fact of a solution exactly as the daemon's `facts` op
/// renders its dump, sorted, for order-insensitive parity comparison.
pub fn render_model(solution: &Solution) -> Vec<String> {
    let snapshot = solution.snapshot();
    let mut lines = Vec::with_capacity(snapshot.total_facts());
    for name in snapshot.predicate_names() {
        for fact in snapshot.facts(name).expect("listed predicate") {
            lines.push(format!("{name}({fact})"));
        }
    }
    lines.sort();
    lines
}

/// A unique scratch directory per call, under the system temp dir.
pub fn scratch_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("flixd-test-{tag}-{}-{n}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// A deterministic xorshift generator so stress schedules are seeded
/// and reproducible.
pub struct Rng(pub u64);

impl Rng {
    pub fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    pub fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }
}
