//! Telemetry integration tests: the histogram's concurrency contract
//! under seeded multi-threaded stress, and the `stats` op end to end —
//! a mixed workload must surface as non-zero per-op counters and
//! latency histograms, the metrics cache must report its hits, the
//! Prometheus form must carry the same numbers, and a daemon started
//! without telemetry must refuse the op entirely.

mod common;

use common::{build_program, scratch_dir, test_hooks, Rng};
use flixd::json::{parse, Json};
use flixd::telemetry::Histogram;
use flixd::{Client, ErrorCode, ReplyBody, Request, Server, ServerConfig, STATS_SCHEMA};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

const EDGES: &[(i64, i64)] = &[(0, 1), (1, 2), (2, 3)];

fn start_server(
    tag: &str,
    configure: impl FnOnce(&mut ServerConfig),
) -> (Server, Arc<flix_core::Program>) {
    let program = Arc::new(build_program(EDGES));
    let dir = scratch_dir(tag);
    let mut config = ServerConfig::new(dir.join("flixd.sock"));
    configure(&mut config);
    let server = Server::start(Arc::clone(&program), config, test_hooks()).expect("server starts");
    (server, program)
}

fn fetch_stats(client: &mut Client) -> Json {
    let reply = client
        .request(&Request::Stats { prometheus: false })
        .expect("stats request");
    let ReplyBody::Stats(doc) = reply.body else {
        panic!("stats body, got {:?}", reply.body);
    };
    parse(&doc).expect("stats document parses")
}

fn counter(doc: &Json, path: &[&str]) -> u64 {
    let mut node = doc;
    for key in path {
        node = node
            .get(key)
            .unwrap_or_else(|| panic!("stats document has {path:?}"));
    }
    node.as_u64()
        .unwrap_or_else(|| panic!("{path:?} is a counter"))
}

/// Writers hammer a shared histogram with seeded samples while a
/// snapshot thread races them: every mid-flight snapshot must satisfy
/// `count <= sum(buckets)` (a sample is never counted before it is
/// bucketed), and once the writers join, counts, sums, and buckets must
/// all agree exactly.
#[test]
fn histogram_snapshots_stay_consistent_under_concurrent_recording() {
    const WRITERS: usize = 4;
    const SAMPLES_PER_WRITER: u64 = 20_000;

    let hist = Arc::new(Histogram::default());
    let done = Arc::new(AtomicBool::new(false));

    let snapshotter = {
        let hist = Arc::clone(&hist);
        let done = Arc::clone(&done);
        std::thread::spawn(move || {
            let mut snapshots = 0u64;
            let mut last_count = 0u64;
            while !done.load(Ordering::Acquire) {
                let snap = hist.snapshot();
                let bucketed: u64 = snap.buckets.iter().sum();
                assert!(
                    snap.count <= bucketed,
                    "snapshot saw {} counted but only {bucketed} bucketed",
                    snap.count
                );
                assert!(
                    snap.count >= last_count,
                    "count went backwards: {last_count} -> {}",
                    snap.count
                );
                last_count = snap.count;
                snapshots += 1;
            }
            snapshots
        })
    };

    let mut expected_sum = 0u64;
    let mut expected_max = 0u64;
    let mut handles = Vec::new();
    for w in 0..WRITERS {
        // Pre-walk each writer's seeded schedule so the main thread
        // knows the exact totals without sharing state with the
        // writers.
        let seed = 0x7e1e_0000_0000_0001 + w as u64;
        let mut rng = Rng(seed);
        for _ in 0..SAMPLES_PER_WRITER {
            let v = rng.below(1 << 20);
            expected_sum += v;
            expected_max = expected_max.max(v);
        }
        let hist = Arc::clone(&hist);
        handles.push(std::thread::spawn(move || {
            let mut rng = Rng(seed);
            for _ in 0..SAMPLES_PER_WRITER {
                hist.record(rng.below(1 << 20));
            }
        }));
    }
    for handle in handles {
        handle.join().expect("writer panicked");
    }
    done.store(true, Ordering::Release);
    let snapshots = snapshotter.join().expect("snapshotter panicked");
    assert!(snapshots > 0, "snapshotter never ran");

    let total = WRITERS as u64 * SAMPLES_PER_WRITER;
    let snap = hist.snapshot();
    assert_eq!(snap.count, total);
    assert_eq!(snap.sum, expected_sum);
    assert_eq!(snap.max, expected_max);
    assert_eq!(snap.buckets.iter().sum::<u64>(), total);
}

/// A seeded mixed workload (queries, dumps, status, errors, updates)
/// must show up in the `stats` document as non-zero request counts and
/// latency histograms — the ISSUE's acceptance round trip.
#[test]
fn stats_round_trip_reflects_a_mixed_workload() {
    let (server, _) = start_server("stats-mixed", |_| {});
    let mut client = Client::connect(server.socket()).expect("connects");

    let mut rng = Rng(0x57a7_57a7_0000_0001);
    let mut queries = 0u64;
    let mut dumps = 0u64;
    let mut errors = 0u64;
    for _ in 0..40 {
        match rng.below(3) {
            0 => {
                let reply = client
                    .request(&Request::Query {
                        atom: "Path 0 _".into(),
                    })
                    .expect("query");
                assert!(matches!(reply.body, ReplyBody::Answers(_)));
                queries += 1;
            }
            1 => {
                let reply = client
                    .request(&Request::Facts { predicate: None })
                    .expect("facts");
                assert!(matches!(reply.body, ReplyBody::Facts(_)));
                dumps += 1;
            }
            _ => {
                let reply = client
                    .request(&Request::Query {
                        atom: "Nope 1 2".into(),
                    })
                    .expect("bad query");
                assert!(matches!(reply.body, ReplyBody::Error { .. }));
                queries += 1;
                errors += 1;
            }
        }
    }
    let reply = client
        .request(&Request::Update {
            text: "+Edge 3 4\n".into(),
            timeout_secs: None,
        })
        .expect("update");
    assert_eq!(reply.epoch, 2);

    let stats = fetch_stats(&mut client);
    assert_eq!(
        stats.get("schema").and_then(Json::as_str),
        Some(STATS_SCHEMA)
    );
    assert_eq!(counter(&stats, &["epoch"]), 2);
    assert!(counter(&stats, &["facts"]) > 0);
    assert!(counter(&stats, &["connections", "opened"]) >= 1);
    assert!(counter(&stats, &["connections", "active"]) >= 1);

    assert_eq!(counter(&stats, &["requests", "query", "count"]), queries);
    assert_eq!(counter(&stats, &["requests", "facts", "count"]), dumps);
    assert_eq!(counter(&stats, &["requests", "update", "count"]), 1);
    assert_eq!(
        counter(&stats, &["requests", "query", "errors", "query"]),
        errors
    );
    assert!(counter(&stats, &["requests", "query", "bytes_in"]) > 0);
    assert!(counter(&stats, &["requests", "query", "bytes_out"]) > 0);

    // Latency histograms recorded one sample per request, and the
    // bucket counts account for every one of them.
    for (op, want) in [("query", queries), ("facts", dumps), ("update", 1)] {
        let hist = stats
            .get("requests")
            .and_then(|r| r.get(op))
            .and_then(|o| o.get("latency_ns"))
            .expect("latency histogram");
        assert_eq!(counter(hist, &["count"]), want, "latency count for {op}");
        let buckets: u64 = hist
            .get("buckets")
            .and_then(Json::as_array)
            .expect("buckets")
            .iter()
            .map(|b| b.as_u64().expect("bucket count"))
            .sum();
        assert_eq!(buckets, want, "bucketed samples for {op}");
    }

    // The writer applied exactly one batch carrying one update request.
    assert_eq!(counter(&stats, &["writer", "batches_applied"]), 1);
    assert_eq!(counter(&stats, &["writer", "updates_applied"]), 1);
    assert_eq!(counter(&stats, &["writer", "resume_ns", "count"]), 1);
    assert_eq!(counter(&stats, &["writer", "unapplied_durable"]), 0);

    server.shutdown();
    server.join();
}

/// Repeated `metrics` requests at the same epoch are served from the
/// per-epoch cache and counted; a publish invalidates the cache, so the
/// next request re-renders (hit count stays put).
#[test]
fn metrics_cache_hits_are_observable_and_publish_invalidates() {
    let (server, _) = start_server("stats-cache", |_| {});
    let mut client = Client::connect(server.socket()).expect("connects");

    let render = |client: &mut Client| {
        let reply = client.request(&Request::Metrics).expect("metrics");
        let ReplyBody::Metrics(doc) = reply.body else {
            panic!("metrics body");
        };
        doc
    };
    let first = render(&mut client);
    let second = render(&mut client);
    assert_eq!(first, second, "cached render is byte-identical");
    let stats = fetch_stats(&mut client);
    assert_eq!(counter(&stats, &["metrics_cache_hits"]), 1);

    client
        .request(&Request::Update {
            text: "+Edge 3 4\n".into(),
            timeout_secs: None,
        })
        .expect("update");
    let third = render(&mut client);
    assert_ne!(first, third, "publish invalidated the cached render");
    let stats = fetch_stats(&mut client);
    assert_eq!(
        counter(&stats, &["metrics_cache_hits"]),
        1,
        "the post-publish render was a miss"
    );

    server.shutdown();
    server.join();
}

/// `--slow-query-ms 0` flags every read; the counter shows up in stats.
#[test]
fn slow_queries_are_counted_against_the_threshold() {
    let (server, _) = start_server("stats-slow", |config| {
        config.slow_query_ms = Some(0.0);
    });
    let mut client = Client::connect(server.socket()).expect("connects");
    for _ in 0..3 {
        client
            .request(&Request::Query {
                atom: "Path 0 _".into(),
            })
            .expect("query");
    }
    let stats = fetch_stats(&mut client);
    assert_eq!(counter(&stats, &["slow_queries"]), 3);
    server.shutdown();
    server.join();
}

/// The Prometheus form carries the same counters as the JSON form, in
/// scrapeable text shape.
#[test]
fn prometheus_exposition_matches_the_workload() {
    let (server, _) = start_server("stats-prom", |_| {});
    let mut client = Client::connect(server.socket()).expect("connects");
    for _ in 0..5 {
        client
            .request(&Request::Query {
                atom: "Path 0 _".into(),
            })
            .expect("query");
    }
    let reply = client
        .request(&Request::Stats { prometheus: true })
        .expect("stats --prom");
    let ReplyBody::Prom(text) = reply.body else {
        panic!("prom body, got {:?}", reply.body);
    };
    assert!(
        text.contains("flixd_requests_total{op=\"query\"} 5"),
        "{text}"
    );
    assert!(
        text.contains("flixd_request_latency_seconds_count{op=\"query\"} 5"),
        "{text}"
    );
    assert!(text.contains("le=\"+Inf\""), "{text}");
    assert!(text.contains("# TYPE flixd_uptime_seconds gauge"), "{text}");
    assert!(text.contains("flixd_epoch 1"), "{text}");
    server.shutdown();
    server.join();
}

/// `--no-telemetry` makes `stats` an `unsupported` error and leaves
/// every other op untouched.
#[test]
fn disabled_telemetry_refuses_stats_but_serves_everything_else() {
    let (server, _) = start_server("stats-off", |config| {
        config.telemetry = false;
    });
    let mut client = Client::connect(server.socket()).expect("connects");

    let reply = client
        .request(&Request::Query {
            atom: "Path 0 _".into(),
        })
        .expect("query");
    assert!(matches!(reply.body, ReplyBody::Answers(_)));

    let reply = client
        .request(&Request::Stats { prometheus: false })
        .expect("stats");
    let ReplyBody::Error { code, message } = reply.body else {
        panic!("expected an error, got {:?}", reply.body);
    };
    assert_eq!(code, ErrorCode::Unsupported);
    assert!(message.contains("--no-telemetry"), "{message}");

    server.shutdown();
    server.join();
}
