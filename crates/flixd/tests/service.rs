//! End-to-end protocol tests against an in-process daemon: hello and
//! read round-trips, epoch semantics under updates, the full error-code
//! vocabulary, capability gating, budget-failed updates with durable
//! carry-over, compaction, and shutdown.

mod common;

use common::{build_program, parse_update, render_model, scratch_dir, test_hooks};
use flix_core::{Budget, Solver, SolverConfig};
use flixd::{proto, Client, ErrorCode, Reply, ReplyBody, Request, Server, ServerConfig};
use std::os::unix::net::UnixStream;
use std::sync::Arc;

const EDGES: &[(i64, i64)] = &[(0, 1), (1, 2), (2, 3)];

fn start_server(
    tag: &str,
    configure: impl FnOnce(&mut ServerConfig),
) -> (Server, Arc<flix_core::Program>) {
    let program = Arc::new(build_program(EDGES));
    let dir = scratch_dir(tag);
    let mut config = ServerConfig::new(dir.join("flixd.sock"));
    configure(&mut config);
    let server = Server::start(Arc::clone(&program), config, test_hooks()).expect("server starts");
    (server, program)
}

fn expect_error(reply: Reply) -> (ErrorCode, String) {
    match reply.body {
        ReplyBody::Error { code, message } => (code, message),
        other => panic!("expected an error reply, got {other:?}"),
    }
}

#[test]
fn hello_identifies_protocol_epoch_and_program() {
    let (server, program) = start_server("hello", |_| {});
    let client = Client::connect(server.socket()).expect("connects");
    let hello = client.hello();
    assert_eq!(hello.proto, proto::PROTOCOL);
    assert_eq!(hello.epoch, 1);
    let scratch = Solver::new().solve(&program).expect("solves");
    assert_eq!(hello.facts, scratch.total_facts() as u64);
    assert_eq!(
        hello.fingerprint,
        format!("{:#018x}", flix_core::program_fingerprint(&program))
    );
    server.shutdown();
    server.join();
}

#[test]
fn reads_match_a_scratch_solve_and_name_their_epoch() {
    let (server, program) = start_server("reads", |_| {});
    let mut client = Client::connect(server.socket()).expect("connects");
    let scratch = Solver::new().solve(&program).expect("solves");

    let reply = client
        .request(&Request::Facts { predicate: None })
        .expect("facts");
    assert_eq!(reply.epoch, 1);
    assert_eq!(reply.body, ReplyBody::Facts(render_model(&scratch)));

    let reply = client
        .request(&Request::Facts {
            predicate: Some("Edge".into()),
        })
        .expect("facts");
    let ReplyBody::Facts(lines) = reply.body else {
        panic!("facts body");
    };
    assert_eq!(lines, vec!["Edge(0, 1)", "Edge(1, 2)", "Edge(2, 3)"]);

    let reply = client
        .request(&Request::Query {
            atom: "Path 0 _".into(),
        })
        .expect("query");
    let ReplyBody::Answers(lines) = reply.body else {
        panic!("answers body");
    };
    assert_eq!(lines, vec!["Path(0, 1)", "Path(0, 2)", "Path(0, 3)"]);

    let reply = client.request(&Request::Status).expect("status");
    let ReplyBody::Status(status) = reply.body else {
        panic!("status body");
    };
    assert_eq!(status.facts, scratch.total_facts() as u64);
    assert_eq!(status.updates_applied, 0);
    assert_eq!(status.batches_applied, 0);
    assert_eq!(status.unapplied_durable, 0);
    assert!(status.queries_served >= 3);

    let reply = client.request(&Request::Metrics).expect("metrics");
    let ReplyBody::Metrics(doc) = reply.body else {
        panic!("metrics body");
    };
    assert!(doc.contains("flix-metrics/1"), "{doc}");
    assert!(doc.contains("\"name\":\"flixd\""), "{doc}");

    server.shutdown();
    server.join();
}

#[test]
fn update_publishes_a_new_epoch_matching_scratch_parity() {
    let (server, program) = start_server("update", |_| {});
    let mut client = Client::connect(server.socket()).expect("connects");

    let update = "+Edge 3 4\n-Edge 0 1\n";
    let reply = client
        .request(&Request::Update {
            text: update.into(),
            timeout_secs: None,
        })
        .expect("update");
    assert_eq!(reply.epoch, 2);
    assert_eq!(
        reply.body,
        ReplyBody::Updated {
            applied: 2,
            batched: 1
        }
    );

    let delta = parse_update(update).expect("parses");
    let updated_program = program.with_delta(&delta).expect("fits");
    let scratch = Solver::new().solve(&updated_program).expect("solves");
    let reply = client
        .request(&Request::Facts { predicate: None })
        .expect("facts");
    assert_eq!(reply.epoch, 2);
    assert_eq!(reply.body, ReplyBody::Facts(render_model(&scratch)));

    // `updates_applied` counts update *requests* applied, not epochs:
    // one request, one batch, epoch 2.
    let reply = client.request(&Request::Status).expect("status");
    let ReplyBody::Status(status) = reply.body else {
        panic!("status body");
    };
    assert_eq!(status.updates_applied, 1);
    assert_eq!(status.batches_applied, 1);

    // A connection opened before the update pinned nothing: reads
    // always serve the *current* epoch; pinning happens per request.
    let hello_epoch = Client::connect(server.socket())
        .expect("connects")
        .hello()
        .epoch;
    assert_eq!(hello_epoch, 2);

    server.shutdown();
    server.join();
}

#[test]
fn malformed_frames_and_requests_map_to_proto_and_parse_codes() {
    let (server, _) = start_server("codes", |_| {});

    // Speak the framing by hand to exercise the wire-level paths.
    let mut stream = UnixStream::connect(server.socket()).expect("connects");
    let hello = proto::read_frame(&mut stream)
        .expect("reads")
        .expect("hello");
    assert!(String::from_utf8(hello).expect("utf8").contains("flixd/1"));

    proto::write_frame(&mut stream, b"{\"op\":\"no-such-op\"}").expect("writes");
    let reply = proto::read_frame(&mut stream)
        .expect("reads")
        .expect("reply");
    let reply = Reply::from_json(&reply).expect("parses");
    let (code, message) = expect_error(reply);
    assert_eq!(code, ErrorCode::Proto);
    assert!(message.contains("no-such-op"), "{message}");

    proto::write_frame(&mut stream, b"not json at all").expect("writes");
    let reply = proto::read_frame(&mut stream)
        .expect("reads")
        .expect("reply");
    let (code, _) = expect_error(Reply::from_json(&reply).expect("parses"));
    assert_eq!(code, ErrorCode::Proto);

    let mut client = Client::connect(server.socket()).expect("connects");
    let checks: &[(Request, ErrorCode, &str)] = &[
        (
            Request::Query {
                atom: "Path zero _".into(),
            },
            ErrorCode::Parse,
            "bad term",
        ),
        (
            Request::Query {
                atom: "Nope 1 2".into(),
            },
            ErrorCode::Query,
            "unknown predicate",
        ),
        (
            Request::Query {
                atom: "Path 1".into(),
            },
            ErrorCode::Query,
            "takes 2 arguments",
        ),
        (
            Request::Facts {
                predicate: Some("Nope".into()),
            },
            ErrorCode::Query,
            "unknown predicate",
        ),
        (
            Request::Update {
                text: "*Edge 9 9\n".into(),
                timeout_secs: None,
            },
            ErrorCode::Parse,
            "bad op",
        ),
        (
            Request::Update {
                text: "+Nope 9 9\n".into(),
                timeout_secs: None,
            },
            ErrorCode::Delta,
            "unknown predicate",
        ),
        (
            Request::Update {
                text: "+Edge 9\n".into(),
                timeout_secs: None,
            },
            ErrorCode::Delta,
            "declared arity",
        ),
        (
            Request::Explain {
                atom: "Path 0 1".into(),
            },
            ErrorCode::Unsupported,
            "not recording provenance",
        ),
        (Request::Compact, ErrorCode::Unsupported, "--snapshot"),
        (Request::Trace, ErrorCode::Unsupported, "not recording"),
    ];
    for (request, want_code, want_fragment) in checks {
        let reply = client.request(request).expect("request");
        let (code, message) = expect_error(reply);
        assert_eq!(code, *want_code, "for {request:?}: {message}");
        assert!(
            message.contains(want_fragment),
            "for {request:?}: {message:?} should contain {want_fragment:?}"
        );
    }

    // Rejected updates never reach the writer, so the epoch is unmoved.
    let reply = client.request(&Request::Status).expect("status");
    assert_eq!(reply.epoch, 1);

    server.shutdown();
    server.join();
}

#[test]
fn explain_works_with_provenance_and_distinguishes_absent() {
    let (server, _) = start_server("explain", |config| {
        config.solver = SolverConfig {
            record_provenance: true,
            ..SolverConfig::default()
        };
    });
    let mut client = Client::connect(server.socket()).expect("connects");

    let reply = client
        .request(&Request::Explain {
            atom: "Path 0 2".into(),
        })
        .expect("explain");
    let ReplyBody::Explain(tree) = reply.body else {
        panic!("explain body, got {:?}", reply.body);
    };
    assert!(tree.contains("Path(0, 2)"), "{tree}");
    assert!(tree.contains("Edge"), "{tree}");

    let reply = client
        .request(&Request::Explain {
            atom: "Path 3 0".into(),
        })
        .expect("explain");
    let (code, _) = expect_error(reply);
    assert_eq!(code, ErrorCode::Absent);

    // Provenance carries across resumes: a fact derived only by the
    // update is explainable at the new epoch.
    let reply = client
        .request(&Request::Update {
            text: "+Edge 3 4\n".into(),
            timeout_secs: None,
        })
        .expect("update");
    assert_eq!(reply.epoch, 2);
    let reply = client
        .request(&Request::Explain {
            atom: "Path 0 4".into(),
        })
        .expect("explain");
    assert!(
        matches!(reply.body, ReplyBody::Explain(_)),
        "{:?}",
        reply.body
    );

    server.shutdown();
    server.join();
}

#[test]
fn budget_failed_update_keeps_durable_debt_and_blocks_compaction() {
    // A chain long enough that its closure cannot possibly be resumed
    // within a nanosecond deadline.
    let program = Arc::new(build_program(
        &(0..400).map(|i| (i, i + 1)).collect::<Vec<_>>(),
    ));
    let dir = scratch_dir("budget");
    let mut config = ServerConfig::new(dir.join("flixd.sock"));
    config.snapshot = Some(dir.join("model.snap"));
    config.wal = Some(dir.join("model.wal"));
    let server = Server::start(Arc::clone(&program), config, test_hooks()).expect("starts");
    let mut client = Client::connect(server.socket()).expect("connects");

    let reply = client
        .request(&Request::Update {
            text: "+Edge 400 401\n".into(),
            timeout_secs: Some(1e-9),
        })
        .expect("update");
    let (code, message) = expect_error(reply);
    assert_eq!(code, ErrorCode::Budget, "{message}");
    assert!(message.contains("logged but not applied"), "{message}");

    let reply = client.request(&Request::Status).expect("status");
    assert_eq!(reply.epoch, 1, "a failed resume publishes nothing");
    let ReplyBody::Status(status) = reply.body else {
        panic!("status body");
    };
    assert_eq!(status.unapplied_durable, 1);

    // Compacting now would snapshot the clean model and truncate the
    // log, silently dropping the durable-but-unapplied entry.
    let (code, message) = expect_error(client.request(&Request::Compact).expect("compact"));
    assert_eq!(code, ErrorCode::Busy, "{message}");

    // The next unbounded update carries the debt in: one publish
    // covers both deltas.
    let reply = client
        .request(&Request::Update {
            text: "+Edge 401 402\n".into(),
            timeout_secs: None,
        })
        .expect("update");
    assert_eq!(reply.epoch, 2);

    let mut delta = parse_update("+Edge 400 401\n").expect("parses");
    delta.extend_from(&parse_update("+Edge 401 402\n").expect("parses"));
    let scratch = Solver::new()
        .solve(&program.with_delta(&delta).expect("fits"))
        .expect("solves");
    let reply = client
        .request(&Request::Facts { predicate: None })
        .expect("facts");
    assert_eq!(reply.body, ReplyBody::Facts(render_model(&scratch)));

    let reply = client.request(&Request::Status).expect("status");
    let ReplyBody::Status(status) = reply.body else {
        panic!("status body");
    };
    assert_eq!(status.unapplied_durable, 0);

    // With the debt cleared, compaction succeeds and absorbs both
    // logged frames.
    let reply = client.request(&Request::Compact).expect("compact");
    assert_eq!(reply.body, ReplyBody::Compacted { frames_absorbed: 2 });

    server.shutdown();
    server.join();
}

#[test]
fn update_deadlines_are_capped_by_the_server() {
    let program = Arc::new(build_program(
        &(0..400).map(|i| (i, i + 1)).collect::<Vec<_>>(),
    ));
    let dir = scratch_dir("cap");
    let mut config = ServerConfig::new(dir.join("flixd.sock"));
    config.max_update_secs = Some(1e-9);
    let server = Server::start(program, config, test_hooks()).expect("starts");
    let mut client = Client::connect(server.socket()).expect("connects");

    // The request asks for a generous deadline; the server's cap wins.
    let reply = client
        .request(&Request::Update {
            text: "+Edge 400 401\n".into(),
            timeout_secs: Some(3600.0),
        })
        .expect("update");
    let (code, _) = expect_error(reply);
    assert_eq!(code, ErrorCode::Budget);

    server.shutdown();
    server.join();
}

#[test]
fn admission_control_refuses_when_the_queue_is_full() {
    let (server, _) = start_server("busy", |config| {
        config.max_pending = 0;
    });
    let mut client = Client::connect(server.socket()).expect("connects");
    let reply = client
        .request(&Request::Update {
            text: "+Edge 3 4\n".into(),
            timeout_secs: None,
        })
        .expect("update");
    let (code, message) = expect_error(reply);
    assert_eq!(code, ErrorCode::Busy);
    assert!(message.contains("queue is full"), "{message}");
    server.shutdown();
    server.join();
}

#[test]
fn shutdown_op_stops_the_server_and_unlinks_the_socket() {
    let (server, _) = start_server("shutdown", |_| {});
    let socket = server.socket().to_path_buf();
    let mut client = Client::connect(&socket).expect("connects");
    let reply = client.request(&Request::Shutdown).expect("shutdown");
    assert_eq!(reply.body, ReplyBody::Stopping);
    server.join();
    assert!(!socket.exists(), "socket should be unlinked after shutdown");
    assert!(Client::connect(&socket).is_err());
}

#[test]
fn startup_budget_failure_is_a_start_error() {
    let program = Arc::new(build_program(
        &(0..400).map(|i| (i, i + 1)).collect::<Vec<_>>(),
    ));
    let dir = scratch_dir("startfail");
    let mut config = ServerConfig::new(dir.join("flixd.sock"));
    config.solver = SolverConfig {
        budget: Budget::new().deadline(std::time::Duration::from_nanos(1)),
        ..SolverConfig::default()
    };
    match Server::start(program, config, test_hooks()) {
        Err(flixd::StartError::Solve(failure)) => {
            assert!(matches!(
                failure.error,
                flix_core::SolveError::BudgetExceeded { .. }
            ));
        }
        Err(other) => panic!("expected a budget start error, got {other}"),
        Ok(_) => panic!("expected a budget start error, got a running server"),
    }
}
