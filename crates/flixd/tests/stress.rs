//! Seeded concurrent stress: N reader clients hammer `facts`/`query`
//! while one writer client applies a random (but reproducible) sequence
//! of mixed insert/retract batches. Snapshot isolation means every
//! single reply must be cell-for-cell equal to a from-scratch solve of
//! the program state at the epoch the reply names — never a blend of
//! two epochs, never a partially applied batch.

mod common;

use common::{build_program, parse_update, render_model, scratch_dir, test_hooks, Rng};
use flix_core::{Program, Solver};
use flixd::json::{parse, Json};
use flixd::{Client, EventLogConfig, ReplyBody, Request, Server, ServerConfig};
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

const INITIAL_EDGES: &[(i64, i64)] = &[(0, 1), (1, 2), (2, 3)];
const NODES: u64 = 6;
const UPDATES: usize = 12;
const READERS: usize = 3;

/// Generates `UPDATES` update batches over a 6-node edge set, each
/// inserting absent edges and retracting present ones, never touching
/// the same edge twice within a batch (so every op is individually
/// valid against the state the batch starts from).
fn generate_updates(seed: u64) -> Vec<String> {
    let mut rng = Rng(seed);
    let mut edges: BTreeSet<(i64, i64)> = INITIAL_EDGES.iter().copied().collect();
    let mut updates = Vec::with_capacity(UPDATES);
    for _ in 0..UPDATES {
        let mut touched: BTreeSet<(i64, i64)> = BTreeSet::new();
        let mut text = String::new();
        let ops = 1 + rng.below(3);
        for _ in 0..ops {
            let untouched_present: Vec<(i64, i64)> = edges
                .iter()
                .copied()
                .filter(|e| !touched.contains(e))
                .collect();
            let retract = !untouched_present.is_empty() && rng.below(2) == 0;
            if retract {
                let (x, y) = untouched_present[rng.below(untouched_present.len() as u64) as usize];
                edges.remove(&(x, y));
                touched.insert((x, y));
                text.push_str(&format!("-Edge {x} {y}\n"));
            } else {
                loop {
                    let x = rng.below(NODES) as i64;
                    let y = rng.below(NODES) as i64;
                    if x != y && !edges.contains(&(x, y)) && !touched.contains(&(x, y)) {
                        edges.insert((x, y));
                        touched.insert((x, y));
                        text.push_str(&format!("+Edge {x} {y}\n"));
                        break;
                    }
                }
            }
        }
        updates.push(text);
    }
    updates
}

/// Scratch-solves the program state at each epoch: epoch 1 is the
/// initial program, epoch `1 + i` has the first `i` update batches
/// folded in. `out[e - 1]` is the only model a reply naming epoch `e`
/// may carry.
fn expected_per_epoch(base: &Program, updates: &[String], solver: &Solver) -> Vec<Vec<String>> {
    let mut out = vec![render_model(&solver.solve(base).expect("base solves"))];
    let mut current: Option<Program> = None;
    for update in updates {
        let delta = parse_update(update).expect("generated updates parse");
        let next = current
            .as_ref()
            .unwrap_or(base)
            .with_delta(&delta)
            .expect("generated updates are valid");
        out.push(render_model(
            &solver.solve(&next).expect("every epoch solves"),
        ));
        current = Some(next);
    }
    out
}

fn run_stress(tag: &str, seed: u64, configure: impl FnOnce(&mut ServerConfig)) {
    let program = Arc::new(build_program(INITIAL_EDGES));
    let updates = generate_updates(seed);
    let solver = Solver::new();
    let expected: Arc<Vec<Vec<String>>> = Arc::new(expected_per_epoch(&program, &updates, &solver));
    let expected_paths: Arc<Vec<Vec<String>>> = Arc::new(
        expected
            .iter()
            .map(|lines| {
                lines
                    .iter()
                    .filter(|l| l.starts_with("Path(0,"))
                    .cloned()
                    .collect()
            })
            .collect(),
    );
    let final_epoch = (updates.len() + 1) as u64;

    let dir = scratch_dir(tag);
    let event_log = dir.join("events.jsonl");
    let mut config = ServerConfig::new(dir.join("flixd.sock"));
    config.event_log = Some(EventLogConfig::new(&event_log));
    configure(&mut config);
    let server = Server::start(Arc::clone(&program), config, test_hooks()).expect("server starts");

    let done = Arc::new(AtomicBool::new(false));
    let readers: Vec<_> = (0..READERS)
        .map(|i| {
            let socket = server.socket().to_path_buf();
            let expected = Arc::clone(&expected);
            let expected_paths = Arc::clone(&expected_paths);
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                let mut client = Client::connect(&socket).expect("reader connects");
                // Reader 0 reads full dumps; the others alternate with
                // pattern queries so both read paths race the writer.
                let mut reads = 0u64;
                let mut saw_final = false;
                loop {
                    let full = i == 0 || reads.is_multiple_of(2);
                    let request = if full {
                        Request::Facts { predicate: None }
                    } else {
                        Request::Query {
                            atom: "Path 0 _".into(),
                        }
                    };
                    let reply = client.request(&request).expect("reader request");
                    let epoch = reply.epoch;
                    assert!(
                        epoch >= 1 && epoch <= final_epoch,
                        "reply named impossible epoch {epoch}"
                    );
                    let want = &expected[(epoch - 1) as usize];
                    match reply.body {
                        ReplyBody::Facts(lines) => assert_eq!(
                            &lines, want,
                            "epoch {epoch} full dump diverged from its scratch solve"
                        ),
                        ReplyBody::Answers(lines) => assert_eq!(
                            &lines,
                            &expected_paths[(epoch - 1) as usize],
                            "epoch {epoch} query answers diverged from its scratch solve"
                        ),
                        other => panic!("unexpected reader reply {other:?}"),
                    }
                    saw_final |= epoch == final_epoch;
                    reads += 1;
                    if done.load(Ordering::Acquire) && saw_final {
                        return reads;
                    }
                }
            })
        })
        .collect();

    // The writer: one batch at a time, so each reply must name exactly
    // the next epoch and count exactly its own entries.
    let mut writer = Client::connect(server.socket()).expect("writer connects");
    for (i, update) in updates.iter().enumerate() {
        let reply = writer
            .request(&Request::Update {
                text: update.clone(),
                timeout_secs: None,
            })
            .expect("update");
        let entries = parse_update(update).expect("parses").len() as u64;
        assert_eq!(
            reply.epoch,
            (i + 2) as u64,
            "updates publish epochs in order"
        );
        assert_eq!(
            reply.body,
            ReplyBody::Updated {
                applied: entries,
                batched: 1
            }
        );
    }
    done.store(true, Ordering::Release);

    let mut total_reads = 0;
    for reader in readers {
        total_reads += reader.join().expect("reader panicked");
    }
    assert!(
        total_reads >= READERS as u64,
        "readers made no progress ({total_reads} reads)"
    );

    // The telemetry registry saw the whole workload: every reader
    // request is in the per-op counters with a latency sample, and the
    // writer counted exactly one batch per update.
    let reply = writer
        .request(&Request::Stats { prometheus: false })
        .expect("stats");
    let ReplyBody::Stats(doc) = reply.body else {
        panic!("stats body, got {:?}", reply.body);
    };
    let stats = parse(&doc).expect("stats document parses");
    let op_count = |op: &str, field: &str| {
        stats
            .get("requests")
            .and_then(|r| r.get(op))
            .and_then(|o| o.get(field))
            .and_then(Json::as_u64)
            .unwrap_or_else(|| panic!("stats has requests.{op}.{field}"))
    };
    assert_eq!(
        op_count("query", "count") + op_count("facts", "count"),
        total_reads
    );
    assert_eq!(op_count("update", "count"), updates.len() as u64);
    let latency_samples: u64 = ["query", "facts"]
        .iter()
        .map(|op| {
            stats
                .get("requests")
                .and_then(|r| r.get(op))
                .and_then(|o| o.get("latency_ns"))
                .and_then(|h| h.get("count"))
                .and_then(Json::as_u64)
                .expect("latency histogram")
        })
        .sum();
    assert_eq!(latency_samples, total_reads);
    let writer_counter = |field: &str| {
        stats
            .get("writer")
            .and_then(|w| w.get(field))
            .and_then(Json::as_u64)
            .unwrap_or_else(|| panic!("stats has writer.{field}"))
    };
    assert_eq!(writer_counter("batches_applied"), updates.len() as u64);
    assert_eq!(writer_counter("updates_applied"), updates.len() as u64);

    server.shutdown();
    server.join();

    // Replay check: the JSONL event log must contain one
    // `batch_applied` per publish, naming epochs 2..=final in exactly
    // the order the writer observed them — FIFO ordering plus
    // logger-after-writer shutdown guarantees nothing is lost or
    // reordered.
    let text = std::fs::read_to_string(&event_log).expect("event log exists");
    let events: Vec<Json> = text
        .lines()
        .map(|line| parse(line).expect("every log line is a JSON object"))
        .collect();
    let logged_epochs: Vec<u64> = events
        .iter()
        .filter(|e| e.get("event").and_then(Json::as_str) == Some("batch_applied"))
        .map(|e| e.get("epoch").and_then(Json::as_u64).expect("epoch field"))
        .collect();
    let expected_epochs: Vec<u64> = (2..=final_epoch).collect();
    assert_eq!(
        logged_epochs, expected_epochs,
        "the event log replays the exact publish sequence"
    );
    let names: Vec<&str> = events
        .iter()
        .filter_map(|e| e.get("event").and_then(Json::as_str))
        .collect();
    assert_eq!(names.first(), Some(&"server_start"));
    assert_eq!(names.last(), Some(&"server_stop"));
}

#[test]
fn concurrent_reads_always_match_their_epoch_semi_naive() {
    run_stress("stress-sn", 0x5eed_cafe_f00d_0001, |_| {});
}

#[test]
fn concurrent_reads_always_match_their_epoch_parallel() {
    run_stress("stress-par", 0x5eed_cafe_f00d_0002, |config| {
        config.solver.threads = 4;
    });
}
