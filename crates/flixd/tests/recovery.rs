//! Daemon crash recovery: a flixd killed at any moment — including
//! mid-WAL-append — must restart into a model cell-for-cell equal to a
//! from-scratch solve of everything it durably acknowledged. Crash
//! states are manufactured with the persist layer's fault-injection
//! harness (`append_with_fault`, `corrupt_file`), then a real `Server`
//! is started on the damaged files.

mod common;

use common::{build_program, parse_update, render_model, scratch_dir, test_hooks};
use flix_core::persist::{corrupt_file, save_snapshot, DeltaLog, Fault, FaultPlan};
use flix_core::{Delta, Program, Solver};
use flixd::{Client, ReplyBody, Request, Server, ServerConfig};
use std::path::Path;
use std::sync::Arc;

const EDGES: &[(i64, i64)] = &[(0, 1), (1, 2), (2, 3)];

fn updates() -> Vec<Delta> {
    [
        "+Edge 3 4\n+Edge 4 5\n",
        "-Edge 0 1\n",
        "+Edge 0 2\n-Edge 2 3\n",
    ]
    .iter()
    .map(|text| parse_update(text).expect("fixture updates parse"))
    .collect()
}

/// Scratch-solves the base program with the first `m` deltas folded in.
fn expected_after(base: &Program, deltas: &[Delta], m: usize) -> Vec<String> {
    let solver = Solver::new();
    let mut current: Option<Program> = None;
    for delta in &deltas[..m] {
        let next = current
            .as_ref()
            .unwrap_or(base)
            .with_delta(delta)
            .expect("fixture updates are valid");
        current = Some(next);
    }
    match &current {
        Some(p) => render_model(&solver.solve(p).expect("solves")),
        None => render_model(&solver.solve(base).expect("solves")),
    }
}

fn start_on(dir: &Path, tag: &str, program: &Arc<Program>) -> Server {
    let mut config = ServerConfig::new(dir.join(format!("{tag}.sock")));
    config.snapshot = Some(dir.join("model.snap"));
    config.wal = Some(dir.join("model.wal"));
    Server::start(Arc::clone(program), config, test_hooks()).expect("server starts")
}

fn dump(server: &Server) -> (u64, Vec<String>) {
    let mut client = Client::connect(server.socket()).expect("connects");
    let reply = client
        .request(&Request::Facts { predicate: None })
        .expect("facts");
    match reply.body {
        ReplyBody::Facts(lines) => (reply.epoch, lines),
        other => panic!("expected facts, got {other:?}"),
    }
}

/// A daemon stopped cleanly and restarted on the same snapshot + WAL
/// resumes the exact model it acknowledged, with the epoch counter
/// restarting at 1 (epochs name in-memory publications, not durable
/// history — DESIGN.md §17).
#[test]
fn clean_restart_resumes_every_acknowledged_update() {
    let program = Arc::new(build_program(EDGES));
    let deltas = updates();
    let dir = scratch_dir("recovery-clean");

    let server = start_on(&dir, "first", &program);
    let mut client = Client::connect(server.socket()).expect("connects");
    for text in [
        "+Edge 3 4\n+Edge 4 5\n",
        "-Edge 0 1\n",
        "+Edge 0 2\n-Edge 2 3\n",
    ] {
        let reply = client
            .request(&Request::Update {
                text: text.into(),
                timeout_secs: None,
            })
            .expect("update");
        assert!(matches!(reply.body, ReplyBody::Updated { .. }), "{reply:?}");
    }
    server.shutdown();
    server.join();

    let restarted = start_on(&dir, "second", &program);
    let report = restarted.recovery.as_ref().expect("persistent start");
    assert_eq!(report.wal_frames_replayed, 3);
    let (epoch, lines) = dump(&restarted);
    assert_eq!(epoch, 1);
    assert_eq!(lines, expected_after(&program, &deltas, 3));
    restarted.shutdown();
    restarted.join();
}

/// Kill-mid-append sweep: with a clean snapshot and `k` logged deltas,
/// the `k+1`-th append tears at assorted byte offsets. The restarted
/// daemon must come up serving exactly the surviving prefix — the torn
/// frame only when the tear struck at/after its end (write completed).
#[test]
fn torn_append_crash_states_recover_the_surviving_prefix() {
    let program = Arc::new(build_program(EDGES));
    let deltas = updates();
    let solver = Solver::new();
    let base_model = solver.solve(&program).expect("solves");
    let expected: Vec<Vec<String>> = (0..=deltas.len())
        .map(|m| expected_after(&program, &deltas, m))
        .collect();

    for k in 0..deltas.len() {
        // Measure the torn frame's length with a clean probe append.
        let probe_dir = scratch_dir(&format!("recovery-probe-{k}"));
        let probe = probe_dir.join("probe.wal");
        let (mut plog, _) = DeltaLog::open(&probe, &program).expect("creates log");
        let before = std::fs::metadata(&probe).expect("probe exists").len();
        plog.append(&deltas[k]).expect("appends");
        let frame_len = (std::fs::metadata(&probe).expect("probe exists").len() - before) as usize;
        drop(plog);

        for at in [0, 1, frame_len / 2, frame_len - 1, frame_len] {
            let dir = scratch_dir(&format!("recovery-torn-{k}-{at}"));
            save_snapshot(dir.join("model.snap"), &program, &base_model).expect("snapshot saves");
            let (mut log, _) = DeltaLog::open(dir.join("model.wal"), &program).expect("opens");
            for delta in &deltas[..k] {
                log.append(delta).expect("appends");
            }
            let result = log.append_with_fault(
                &deltas[k],
                FaultPlan {
                    fault: Fault::Torn,
                    at: at as u64,
                },
            );
            assert!(result.is_err(), "a torn append reports the crash");
            drop(log);

            let server = start_on(&dir, "torn", &program);
            let report = server.recovery.as_ref().expect("persistent start");
            let survived = if at >= frame_len { k + 1 } else { k };
            assert_eq!(
                report.wal_frames_replayed, survived,
                "delta {k} torn at byte {at}/{frame_len}"
            );
            let (_, lines) = dump(&server);
            assert_eq!(
                lines, expected[survived],
                "delta {k} torn at byte {at}/{frame_len}: restarted model \
                 differs from the scratch solve of the surviving prefix"
            );
            server.shutdown();
            server.join();
        }
    }
}

/// An interior bit flip in an already-durable frame: recovery truncates
/// from the damaged frame onward and the daemon serves the prefix.
#[test]
fn interior_wal_corruption_truncates_from_the_damage() {
    let program = Arc::new(build_program(EDGES));
    let deltas = updates();
    let solver = Solver::new();
    let base_model = solver.solve(&program).expect("solves");

    let dir = scratch_dir("recovery-bitflip");
    save_snapshot(dir.join("model.snap"), &program, &base_model).expect("snapshot saves");
    let wal = dir.join("model.wal");
    let (mut log, _) = DeltaLog::open(&wal, &program).expect("opens");
    let mut ends = Vec::new();
    for delta in &deltas {
        log.append(delta).expect("appends");
        ends.push(std::fs::metadata(&wal).expect("wal exists").len());
    }
    drop(log);

    // Flip a byte inside the second frame: frames 2 and 3 must go.
    corrupt_file(
        &wal,
        FaultPlan {
            fault: Fault::BitFlip,
            at: ends[0] + (ends[1] - ends[0]) / 2,
        },
    )
    .expect("corrupts");

    let server = start_on(&dir, "bitflip", &program);
    let report = server.recovery.as_ref().expect("persistent start");
    assert_eq!(report.wal_frames_replayed, 1);
    assert!(report.wal_bytes_dropped > 0);
    let (_, lines) = dump(&server);
    assert_eq!(lines, expected_after(&program, &deltas, 1));
    server.shutdown();
    server.join();
}

/// A corrupt snapshot is abandoned: the daemon scratch-solves the
/// program and still replays the (independent) write-ahead log, so no
/// acknowledged update is lost.
#[test]
fn corrupt_snapshot_falls_back_to_scratch_and_replays_the_log() {
    let program = Arc::new(build_program(EDGES));
    let deltas = updates();
    let solver = Solver::new();
    let base_model = solver.solve(&program).expect("solves");

    let dir = scratch_dir("recovery-snap");
    let snap = dir.join("model.snap");
    save_snapshot(&snap, &program, &base_model).expect("snapshot saves");
    let (mut log, _) = DeltaLog::open(dir.join("model.wal"), &program).expect("opens");
    for delta in &deltas {
        log.append(delta).expect("appends");
    }
    drop(log);
    let mid = std::fs::metadata(&snap).expect("snap exists").len() / 2;
    corrupt_file(
        &snap,
        FaultPlan {
            fault: Fault::BitFlip,
            at: mid,
        },
    )
    .expect("corrupts");

    let server = start_on(&dir, "snap", &program);
    let report = server.recovery.as_ref().expect("persistent start");
    assert!(report.snapshot_error.is_some(), "{report:?}");
    assert!(report.scratch_solve);
    assert_eq!(report.wal_frames_replayed, deltas.len());
    let (_, lines) = dump(&server);
    assert_eq!(lines, expected_after(&program, &deltas, deltas.len()));
    server.shutdown();
    server.join();
}
