//! The resident fixed-point service.
//!
//! A [`Server`] loads (or recovers) a model once, keeps it resident, and
//! serves the `flixd/1` protocol over a Unix domain socket:
//!
//! * **Reads** (`query`, `facts`, `explain`, `metrics`, `trace`,
//!   `status`) run concurrently, one thread per connection, each against
//!   an epoch-pinned [`Arc<Solution>`] — *snapshot isolation*: a read
//!   observes exactly one published fixed point, never a mid-update
//!   state, and its reply names the epoch it saw.
//! * **Writes** (`update`, `compact`) are serialized through a single
//!   writer thread. Updates queued while a resume is in flight are
//!   *batched*: the writer drains its queue, folds the deltas into one,
//!   appends that combined delta to the write-ahead log, **then** runs
//!   [`Solver::resume`] from the last clean model and publishes the new
//!   fixed point atomically as the next epoch (log-then-apply, so a
//!   crash between the append and the publish replays the delta at
//!   restart instead of losing it).
//!
//! When a guarded resume fails (deadline, budget), the WAL is already
//! ahead of the resident model. The writer keeps those durable entries
//! as an *unapplied carry-over* folded into the next batch, readers keep
//! the old epoch, and `status` exposes the debt as `unapplied_durable`;
//! `compact` refuses (`busy`) while the debt is non-zero, since folding
//! the WAL into a snapshot of the clean model would silently drop it.
//! DESIGN.md §17 walks the full crash-window analysis.

use crate::events::{
    field, field_num, Event, EventLevel, EventLogConfig, EventLogger, LoggerThread,
};
use crate::hooks::Hooks;
use crate::proto::{self, ErrorCode, Hello, Reply, ReplyBody, Request, Status};
use crate::telemetry::{RecoveryStats, RequestKind, RequestSample, StatsContext, Telemetry};
use flix_core::{
    render_metrics_json, Budget, ConfigError, Delta, DeltaLog, MetricsReport, PersistError,
    Program, Query, RecoveryReport, Solution, SolveError, SolveFailure, Solver, SolverConfig,
};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, Sender, SyncSender};
use std::sync::{mpsc, Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How a [`Server`] is started: where it listens, where it persists,
/// how it solves.
#[derive(Debug)]
pub struct ServerConfig {
    /// The Unix socket path to listen on. A stale file at this path is
    /// removed at bind time and the socket is unlinked on shutdown.
    pub socket: PathBuf,
    /// Snapshot path: loaded at startup (scratch solve when absent or
    /// corrupt) and rewritten by `compact`.
    pub snapshot: Option<PathBuf>,
    /// Write-ahead log path: replayed at startup, appended by every
    /// `update`, truncated by `compact`. Without it updates stay
    /// volatile (still correct, not durable).
    pub wal: Option<PathBuf>,
    /// The solver configuration for the startup solve and every resume.
    /// `record_provenance` enables `explain`; `trace` enables `trace`.
    pub solver: SolverConfig,
    /// Cap on any update's resume deadline, in seconds. A request's
    /// `timeout_secs` is clamped to this; requests without one inherit
    /// it. `None` leaves unrequested updates unbounded.
    pub max_update_secs: Option<f64>,
    /// Admission control: `update` requests beyond this many queued or
    /// in flight are refused with [`ErrorCode::Busy`].
    pub max_pending: usize,
    /// Auto-compaction: after a publish, fold the WAL into the snapshot
    /// once it holds at least this many frames (requires both paths).
    pub compact_every: Option<u64>,
    /// Service telemetry (the `stats` op). On by default; `false` takes
    /// the compiled-off path — every record call returns after one
    /// branch and `stats` answers [`ErrorCode::Unsupported`].
    pub telemetry: bool,
    /// Structured JSONL event log; `None` (the default) logs nothing.
    pub event_log: Option<EventLogConfig>,
    /// Read requests (query/facts/explain) slower than this many
    /// milliseconds are counted and logged as `slow_query` events.
    pub slow_query_ms: Option<f64>,
}

impl ServerConfig {
    /// A volatile server on `socket`: no persistence, default solver,
    /// at most 64 queued updates, no deadline cap.
    pub fn new(socket: impl Into<PathBuf>) -> ServerConfig {
        ServerConfig {
            socket: socket.into(),
            snapshot: None,
            wal: None,
            solver: SolverConfig::default(),
            max_update_secs: None,
            max_pending: 64,
            compact_every: None,
            telemetry: true,
            event_log: None,
            slow_query_ms: None,
        }
    }
}

/// Why [`Server::start`] failed.
#[derive(Debug)]
pub enum StartError {
    /// The solver configuration was invalid.
    Config(ConfigError),
    /// The startup solve (or WAL replay) failed.
    Solve(Box<SolveFailure>),
    /// The write-ahead log could not be opened for appending.
    Persist(PersistError),
    /// The socket could not be bound.
    Io(std::io::Error),
}

impl std::fmt::Display for StartError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StartError::Config(e) => write!(f, "invalid solver configuration: {e}"),
            StartError::Solve(e) => write!(f, "startup solve failed: {e}"),
            StartError::Persist(e) => write!(f, "write-ahead log unusable: {e}"),
            StartError::Io(e) => write!(f, "cannot bind socket: {e}"),
        }
    }
}

impl std::error::Error for StartError {}

/// One published fixed point: the model plus the epoch that names it.
struct Published {
    epoch: u64,
    model: Arc<Solution>,
}

/// State shared between the acceptor, every connection thread, and the
/// writer.
struct Shared {
    program: Arc<Program>,
    hooks: Hooks,
    published: RwLock<Arc<Published>>,
    shutting_down: AtomicBool,
    queries_served: AtomicU64,
    pending_updates: AtomicU64,
    unapplied_durable: AtomicU64,
    /// Update *requests* folded into successfully published batches.
    updates_applied: AtomicU64,
    /// Update *batches* successfully published. `status` reports this
    /// instead of deriving `epoch - 1`, which misreports on a recovered
    /// daemon whose epoch did not start at 1.
    batches_applied: AtomicU64,
    telemetry: Telemetry,
    events: Option<EventLogger>,
    /// Connection ids for `conn_open`/`conn_close` events.
    next_conn_id: AtomicU64,
    slow_query_ns: Option<u64>,
    /// The rendered `flix-metrics/1` document for `(epoch, doc)` —
    /// rebuilt at most once per epoch, invalidated by `publish`.
    metrics_cache: Mutex<Option<(u64, Arc<String>)>>,
    started: Instant,
    strategy_name: &'static str,
    threads: usize,
    provenance: bool,
    max_update_secs: Option<f64>,
    max_pending: u64,
    persistent: bool,
    fingerprint: String,
    socket: PathBuf,
}

impl Shared {
    fn current(&self) -> Arc<Published> {
        Arc::clone(&self.published.read().expect("epoch store never poisoned"))
    }

    fn publish(&self, epoch: u64, model: Arc<Solution>) {
        *self.published.write().expect("epoch store never poisoned") =
            Arc::new(Published { epoch, model });
        // The cached `metrics` document describes the previous epoch's
        // model; the next `metrics` request re-renders.
        *self.metrics_cache.lock().expect("metrics cache") = None;
    }

    fn emit(&self, event: Event) {
        if let Some(events) = &self.events {
            events.emit(event);
        }
    }

    fn stats_context(&self) -> StatsContext {
        let published = self.current();
        StatsContext {
            epoch: published.epoch,
            facts: published.model.total_facts() as u64,
            pending_updates: self.pending_updates.load(Ordering::Relaxed),
            unapplied_durable: self.unapplied_durable.load(Ordering::Relaxed),
            events_logged: self.events.as_ref().map(EventLogger::logged).unwrap_or(0),
            events_dropped: self.events.as_ref().map(EventLogger::dropped).unwrap_or(0),
        }
    }
}

/// Work items for the single writer thread. Each carries a rendezvous
/// channel the requesting connection blocks on.
enum WriterJob {
    Update {
        delta: Delta,
        entries: u64,
        deadline: Option<Duration>,
        reply: SyncSender<Reply>,
    },
    Compact {
        reply: SyncSender<Reply>,
    },
    Shutdown,
}

/// A running flixd server: a bound socket, an acceptor thread, a pool
/// of per-connection reader threads, and one writer thread.
///
/// Dropping the handle does *not* stop the server; call
/// [`Server::shutdown`] (or send the protocol `shutdown` op) and then
/// [`Server::join`].
pub struct Server {
    shared: Arc<Shared>,
    writer_tx: Sender<WriterJob>,
    acceptor: Option<JoinHandle<()>>,
    writer: Option<JoinHandle<()>>,
    logger: Option<LoggerThread>,
    socket: PathBuf,
    /// What startup recovery found on disk, when the server was started
    /// with persistence paths (absent for a volatile scratch solve).
    pub recovery: Option<RecoveryReport>,
}

impl Server {
    /// Loads (or recovers) the model, binds the socket, and starts
    /// serving. Returns once the socket is accepting connections — a
    /// client connecting after `start` returns is never refused.
    pub fn start(
        program: Arc<Program>,
        config: ServerConfig,
        hooks: Hooks,
    ) -> Result<Server, StartError> {
        let solver = Solver::with_config(config.solver.clone()).map_err(StartError::Config)?;

        // Resolve the startup model: recover from snapshot + WAL when
        // either is configured, scratch-solve otherwise. `recover`
        // degrades (missing/corrupt files → scratch solve + truncated
        // replay) rather than failing, so a first boot needs no special
        // case.
        let (initial, recovery) = match (&config.snapshot, &config.wal) {
            (None, None) => (solver.solve(&program).map_err(StartError::Solve)?, None),
            (snap, wal) => {
                let missing = |stem: &str| config.socket.with_extension(stem);
                let snap = snap.clone().unwrap_or_else(|| missing("no-snapshot"));
                let wal_path = wal.clone().unwrap_or_else(|| missing("no-wal"));
                let (solution, report) = solver
                    .recover(&program, &snap, &wal_path)
                    .map_err(StartError::Solve)?;
                (solution, Some(report))
            }
        };

        // Reopen the WAL for appending. Recovery already truncated any
        // corrupt tail, so this open sees a valid log.
        let log = match &config.wal {
            Some(path) => Some(
                DeltaLog::open(path, &program)
                    .map(|(log, _)| log)
                    .map_err(StartError::Persist)?,
            ),
            None => None,
        };

        if config.socket.exists() {
            // A stale socket from a dead daemon refuses `bind`; a live
            // daemon's socket also dies here, which is the documented
            // single-daemon-per-socket contract.
            std::fs::remove_file(&config.socket).map_err(StartError::Io)?;
        }
        let listener = UnixListener::bind(&config.socket).map_err(StartError::Io)?;

        let telemetry = if config.telemetry {
            Telemetry::new(match &recovery {
                Some(report) => RecoveryStats {
                    performed: true,
                    snapshot_loaded: report.snapshot_loaded,
                    scratch_solve: report.scratch_solve,
                    wal_frames_replayed: report.wal_frames_replayed as u64,
                    wal_entries_replayed: report.wal_entries_replayed as u64,
                    wal_bytes_dropped: report.wal_bytes_dropped,
                },
                None => RecoveryStats::default(),
            })
        } else {
            Telemetry::disabled()
        };

        let (events, logger) = match &config.event_log {
            Some(log_config) => {
                let (logger, thread) = EventLogger::start(log_config).map_err(StartError::Io)?;
                (Some(logger), Some(thread))
            }
            None => (None, None),
        };

        let shared = Arc::new(Shared {
            hooks,
            published: RwLock::new(Arc::new(Published {
                epoch: 1,
                model: Arc::new(initial),
            })),
            shutting_down: AtomicBool::new(false),
            queries_served: AtomicU64::new(0),
            pending_updates: AtomicU64::new(0),
            unapplied_durable: AtomicU64::new(0),
            updates_applied: AtomicU64::new(0),
            batches_applied: AtomicU64::new(0),
            telemetry,
            events,
            next_conn_id: AtomicU64::new(0),
            slow_query_ns: config
                .slow_query_ms
                .filter(|ms| ms.is_finite() && *ms >= 0.0)
                .map(|ms| (ms * 1e6) as u64),
            metrics_cache: Mutex::new(None),
            started: Instant::now(),
            strategy_name: config.solver.strategy.name(),
            threads: config.solver.threads,
            provenance: config.solver.record_provenance,
            max_update_secs: config.max_update_secs,
            max_pending: config.max_pending as u64,
            persistent: config.snapshot.is_some() && config.wal.is_some(),
            fingerprint: format!("{:#018x}", flix_core::program_fingerprint(&program)),
            socket: config.socket.clone(),
            program,
        });

        {
            let published = shared.current();
            shared.emit(Event {
                level: EventLevel::Info,
                name: "server_start",
                fields: vec![
                    field_num("epoch", published.epoch as f64),
                    field_num("facts", published.model.total_facts() as f64),
                    field("socket", config.socket.display().to_string()),
                ],
            });
        }
        if let Some(report) = &recovery {
            shared.emit(Event {
                level: EventLevel::Info,
                name: "recovery",
                fields: vec![
                    field_num("snapshot_loaded", report.snapshot_loaded as u8 as f64),
                    field_num("scratch_solve", report.scratch_solve as u8 as f64),
                    field_num("wal_frames_replayed", report.wal_frames_replayed as f64),
                    field_num("wal_entries_replayed", report.wal_entries_replayed as f64),
                    field_num("wal_bytes_dropped", report.wal_bytes_dropped as f64),
                ],
            });
        }

        let (writer_tx, writer_rx) = mpsc::channel::<WriterJob>();
        let writer = {
            let shared = Arc::clone(&shared);
            let state = WriterState {
                clean: shared.current().model.clone(),
                unapplied: Delta::new(),
                log,
                snapshot: config.snapshot.clone(),
                compact_every: config.compact_every,
                base: config.solver.clone(),
                epoch: 1,
            };
            std::thread::Builder::new()
                .name("flixd-writer".into())
                .spawn(move || writer_loop(shared, state, writer_rx))
                .map_err(StartError::Io)?
        };

        let acceptor = {
            let shared = Arc::clone(&shared);
            let tx = writer_tx.clone();
            let socket = config.socket.clone();
            std::thread::Builder::new()
                .name("flixd-acceptor".into())
                .spawn(move || accept_loop(listener, socket, shared, tx))
                .map_err(StartError::Io)?
        };

        Ok(Server {
            shared,
            writer_tx,
            acceptor: Some(acceptor),
            writer: Some(writer),
            logger,
            socket: config.socket,
            recovery,
        })
    }

    /// The socket path the server is listening on.
    pub fn socket(&self) -> &Path {
        &self.socket
    }

    /// The currently published epoch.
    pub fn epoch(&self) -> u64 {
        self.shared.current().epoch
    }

    /// Initiates shutdown exactly as the protocol `shutdown` op does:
    /// stops admitting work, drains the writer, unbinds the socket.
    /// Idempotent; does not wait — follow with [`Server::join`].
    pub fn shutdown(&self) {
        if !self.shared.shutting_down.swap(true, Ordering::SeqCst) {
            let _ = self.writer_tx.send(WriterJob::Shutdown);
            // Unblock the acceptor's blocking `accept`.
            let _ = UnixStream::connect(&self.socket);
        }
    }

    /// Waits for the acceptor and writer threads to finish. Connection
    /// threads are detached; in-flight reads complete against their
    /// pinned epochs regardless.
    pub fn join(mut self) {
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        if let Some(h) = self.writer.take() {
            let _ = h.join();
        }
        // The logger drains *after* the writer has joined: the channel
        // is FIFO, so every `batch_applied` the writer emitted is on
        // disk (in publish order) when `finish` returns. Events from
        // still-detached connection threads may land after
        // `server_stop` or be dropped — lifecycle noise, by design.
        self.shared.emit(Event {
            level: EventLevel::Info,
            name: "server_stop",
            fields: vec![field_num("epoch", self.shared.current().epoch as f64)],
        });
        if let Some(logger) = self.logger.take() {
            logger.finish();
        }
    }
}

fn accept_loop(
    listener: UnixListener,
    socket: PathBuf,
    shared: Arc<Shared>,
    writer_tx: Sender<WriterJob>,
) {
    for stream in listener.incoming() {
        if shared.shutting_down.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let shared = Arc::clone(&shared);
        let writer_tx = writer_tx.clone();
        let spawned = std::thread::Builder::new()
            .name("flixd-conn".into())
            .spawn(move || serve_connection(stream, shared, writer_tx));
        // Thread exhaustion: drop the connection rather than the server.
        drop(spawned);
    }
    let _ = std::fs::remove_file(&socket);
}

fn serve_connection(stream: UnixStream, shared: Arc<Shared>, writer_tx: Sender<WriterJob>) {
    let conn = shared.next_conn_id.fetch_add(1, Ordering::Relaxed);
    shared.telemetry.connection_opened();
    shared.emit(Event {
        level: EventLevel::Debug,
        name: "conn_open",
        fields: vec![field_num("conn", conn as f64)],
    });
    connection_loop(stream, &shared, &writer_tx);
    shared.telemetry.connection_closed();
    shared.emit(Event {
        level: EventLevel::Debug,
        name: "conn_close",
        fields: vec![field_num("conn", conn as f64)],
    });
}

fn connection_loop(mut stream: UnixStream, shared: &Arc<Shared>, writer_tx: &Sender<WriterJob>) {
    let hello = {
        let published = shared.current();
        Hello {
            proto: proto::PROTOCOL.to_string(),
            epoch: published.epoch,
            facts: published.model.total_facts() as u64,
            fingerprint: shared.fingerprint.clone(),
        }
    };
    if proto::write_frame(&mut stream, hello.to_json().as_bytes()).is_err() {
        return;
    }
    loop {
        let frame = match proto::read_frame(&mut stream) {
            Ok(Some(frame)) => frame,
            Ok(None) | Err(_) => return,
        };
        let started = Instant::now();
        let (reply, last, kind) = match Request::from_json(&frame) {
            Ok(request) => {
                let kind = request_kind(&request);
                let slow_atom = slow_query_atom(shared, &request);
                let (reply, last) = handle_request(shared, writer_tx, &mut stream, request);
                if let Some(atom) = slow_atom {
                    observe_slow_query(shared, kind, &atom, &reply, started.elapsed());
                }
                (reply, last, Some(kind))
            }
            Err(e) => {
                shared.telemetry.record_proto_error();
                (error_reply(shared, ErrorCode::Proto, e), false, None)
            }
        };
        let payload = reply.to_json();
        if let Some(kind) = kind {
            shared.telemetry.record_request(RequestSample {
                kind,
                latency_ns: started.elapsed().as_nanos() as u64,
                bytes_in: frame.len() as u64,
                bytes_out: payload.len() as u64,
                error: match &reply.body {
                    ReplyBody::Error { code, .. } => Some(*code),
                    _ => None,
                },
            });
        }
        let sent = proto::write_frame(&mut stream, payload.as_bytes()).is_ok();
        if last {
            // Only now tear the server down: this thread is detached,
            // and the process may exit the moment the acceptor and
            // writer observe the flag — the acknowledgement must
            // already sit in the peer's socket buffer by then.
            trigger_shutdown(shared, writer_tx);
            return;
        }
        if !sent {
            return;
        }
    }
}

fn request_kind(request: &Request) -> RequestKind {
    match request {
        Request::Query { .. } => RequestKind::Query,
        Request::Facts { .. } => RequestKind::Facts,
        Request::Explain { .. } => RequestKind::Explain,
        Request::Metrics => RequestKind::Metrics,
        Request::Trace => RequestKind::Trace,
        Request::Status => RequestKind::Status,
        Request::Stats { .. } => RequestKind::Stats,
        Request::Update { .. } => RequestKind::Update,
        Request::Compact => RequestKind::Compact,
        Request::Shutdown => RequestKind::Shutdown,
    }
}

/// For read ops under a `--slow-query-ms` threshold, the atom (or
/// predicate) to name in the `slow_query` event; `None` when the op is
/// not slow-query-tracked or no threshold is set.
fn slow_query_atom(shared: &Shared, request: &Request) -> Option<String> {
    shared.slow_query_ns?;
    match request {
        Request::Query { atom } | Request::Explain { atom } => Some(atom.clone()),
        Request::Facts { predicate } => Some(predicate.clone().unwrap_or_else(|| "*".to_string())),
        _ => None,
    }
}

fn observe_slow_query(
    shared: &Shared,
    kind: RequestKind,
    atom: &str,
    reply: &Reply,
    elapsed: Duration,
) {
    let threshold = shared.slow_query_ns.unwrap_or(u64::MAX);
    if (elapsed.as_nanos() as u64) < threshold {
        return;
    }
    shared.telemetry.record_slow_query();
    shared.emit(Event {
        level: EventLevel::Warn,
        name: "slow_query",
        fields: vec![
            field("op", kind.as_str()),
            field("atom", atom),
            field_num("epoch", reply.epoch as f64),
            field_num("ms", elapsed.as_secs_f64() * 1e3),
        ],
    });
}

fn error_reply(shared: &Shared, code: ErrorCode, message: String) -> Reply {
    Reply {
        epoch: shared.current().epoch,
        body: ReplyBody::Error { code, message },
    }
}

/// Dispatches one request. Returns the reply plus whether the
/// connection should close after sending it (shutdown acknowledgement).
fn handle_request(
    shared: &Arc<Shared>,
    writer_tx: &Sender<WriterJob>,
    _stream: &mut UnixStream,
    request: Request,
) -> (Reply, bool) {
    match request {
        Request::Query { atom } => (handle_query(shared, &atom), false),
        Request::Facts { predicate } => (handle_facts(shared, predicate.as_deref()), false),
        Request::Explain { atom } => (handle_explain(shared, &atom), false),
        Request::Metrics => (handle_metrics(shared), false),
        Request::Trace => (handle_trace(shared), false),
        Request::Status => (handle_status(shared), false),
        Request::Stats { prometheus } => (handle_stats(shared, prometheus), false),
        Request::Update { text, timeout_secs } => {
            (handle_update(shared, writer_tx, &text, timeout_secs), false)
        }
        Request::Compact => (handle_compact(shared, writer_tx), false),
        Request::Shutdown => {
            // The teardown itself happens in `serve_connection`, after
            // the acknowledgement is on the wire.
            let reply = Reply {
                epoch: shared.current().epoch,
                body: ReplyBody::Stopping,
            };
            (reply, true)
        }
    }
}

fn trigger_shutdown(shared: &Shared, writer_tx: &Sender<WriterJob>) {
    if !shared.shutting_down.swap(true, Ordering::SeqCst) {
        let _ = writer_tx.send(WriterJob::Shutdown);
        // The acceptor is parked in `accept`; a throwaway connection
        // unparks it so it can observe the flag.
        let _ = UnixStream::connect(&shared.socket);
    }
}

fn render_fact_lines(
    model: &Solution,
    predicate: &str,
    filter: Option<&Query>,
) -> Option<Vec<String>> {
    let facts = model.facts(predicate)?;
    let mut lines: Vec<String> = facts
        .filter(|f| filter.is_none_or(|q| q.matches(f)))
        .map(|f| format!("{predicate}({f})"))
        .collect();
    lines.sort();
    Some(lines)
}

fn handle_query(shared: &Shared, atom: &str) -> Reply {
    shared.queries_served.fetch_add(1, Ordering::Relaxed);
    let (predicate, pattern) = match (shared.hooks.parse_query)(atom) {
        Ok(parsed) => parsed,
        Err(e) => return error_reply(shared, ErrorCode::Parse, e),
    };
    let published = shared.current();
    let Some(pred_id) = shared.program.predicate(&predicate) else {
        return error_reply(
            shared,
            ErrorCode::Query,
            format!("unknown predicate {predicate:?}"),
        );
    };
    let arity = shared.program.decl(pred_id).arity();
    if pattern.len() != arity {
        return error_reply(
            shared,
            ErrorCode::Query,
            format!(
                "{predicate} takes {arity} argument{}, pattern has {}",
                if arity == 1 { "" } else { "s" },
                pattern.len()
            ),
        );
    }
    let query = Query::new(predicate.clone(), pattern);
    let lines = render_fact_lines(&published.model, &predicate, Some(&query)).unwrap_or_default();
    Reply {
        epoch: published.epoch,
        body: ReplyBody::Answers(lines),
    }
}

fn handle_facts(shared: &Shared, predicate: Option<&str>) -> Reply {
    shared.queries_served.fetch_add(1, Ordering::Relaxed);
    let published = shared.current();
    let lines = match predicate {
        Some(name) => match render_fact_lines(&published.model, name, None) {
            Some(lines) => lines,
            None => {
                return error_reply(
                    shared,
                    ErrorCode::Query,
                    format!("unknown predicate {name:?}"),
                )
            }
        },
        None => {
            let snapshot = published.model.snapshot();
            let mut lines = Vec::with_capacity(published.model.total_facts());
            for name in snapshot.predicate_names() {
                lines.extend(render_fact_lines(&published.model, name, None).unwrap_or_default());
            }
            // The per-predicate lists are already sorted; sort the full
            // dump too so clients see one deterministic order.
            lines.sort();
            lines
        }
    };
    Reply {
        epoch: published.epoch,
        body: ReplyBody::Facts(lines),
    }
}

fn handle_explain(shared: &Shared, atom: &str) -> Reply {
    shared.queries_served.fetch_add(1, Ordering::Relaxed);
    if !shared.provenance {
        return error_reply(
            shared,
            ErrorCode::Unsupported,
            "the server is not recording provenance (start flixd with --explainable)".into(),
        );
    }
    let (predicate, values) = match (shared.hooks.parse_atom)(atom) {
        Ok(parsed) => parsed,
        Err(e) => return error_reply(shared, ErrorCode::Parse, e),
    };
    let published = shared.current();
    if published.model.predicate(&predicate).is_none() {
        return error_reply(
            shared,
            ErrorCode::Query,
            format!("unknown predicate {predicate:?}"),
        );
    }
    match published.model.explain(&predicate, &values) {
        Some(tree) => Reply {
            epoch: published.epoch,
            body: ReplyBody::Explain(tree.to_string()),
        },
        None => error_reply(
            shared,
            ErrorCode::Absent,
            format!("{atom} is not in the model at epoch {}", published.epoch),
        ),
    }
}

fn handle_metrics(shared: &Shared) -> Reply {
    shared.queries_served.fetch_add(1, Ordering::Relaxed);
    let published = shared.current();
    // The report is a pure function of the published model, so render
    // it at most once per epoch; `publish` clears the cache.
    let doc = {
        let mut cache = shared.metrics_cache.lock().expect("metrics cache");
        match cache.as_ref() {
            Some((epoch, doc)) if *epoch == published.epoch => {
                shared.telemetry.record_metrics_cache_hit();
                Arc::clone(doc)
            }
            _ => {
                let doc = Arc::new(render_metrics_json(&[MetricsReport {
                    name: "flixd",
                    strategy: shared.strategy_name,
                    threads: shared.threads,
                    stats: published.model.stats(),
                }]));
                *cache = Some((published.epoch, Arc::clone(&doc)));
                doc
            }
        }
    };
    Reply {
        epoch: published.epoch,
        body: ReplyBody::Metrics(doc.as_ref().clone()),
    }
}

fn handle_stats(shared: &Shared, prometheus: bool) -> Reply {
    shared.queries_served.fetch_add(1, Ordering::Relaxed);
    if !shared.telemetry.enabled() {
        return error_reply(
            shared,
            ErrorCode::Unsupported,
            "the server is not recording telemetry (started with --no-telemetry)".into(),
        );
    }
    let cx = shared.stats_context();
    let body = if prometheus {
        ReplyBody::Prom(shared.telemetry.render_prometheus(&cx))
    } else {
        ReplyBody::Stats(shared.telemetry.render_stats_json(&cx))
    };
    Reply {
        epoch: cx.epoch,
        body,
    }
}

fn handle_trace(shared: &Shared) -> Reply {
    shared.queries_served.fetch_add(1, Ordering::Relaxed);
    let published = shared.current();
    match published.model.trace() {
        Some(trace) => Reply {
            epoch: published.epoch,
            body: ReplyBody::Trace(trace.to_chrome_json()),
        },
        None => error_reply(
            shared,
            ErrorCode::Unsupported,
            "the server is not recording execution traces (start flixd with --traced)".into(),
        ),
    }
}

fn handle_status(shared: &Shared) -> Reply {
    let published = shared.current();
    Reply {
        epoch: published.epoch,
        body: ReplyBody::Status(Status {
            facts: published.model.total_facts() as u64,
            updates_applied: shared.updates_applied.load(Ordering::Relaxed),
            batches_applied: shared.batches_applied.load(Ordering::Relaxed),
            queries_served: shared.queries_served.load(Ordering::Relaxed),
            pending_updates: shared.pending_updates.load(Ordering::Relaxed),
            unapplied_durable: shared.unapplied_durable.load(Ordering::Relaxed),
            uptime_secs: shared.started.elapsed().as_secs_f64(),
        }),
    }
}

fn handle_update(
    shared: &Shared,
    writer_tx: &Sender<WriterJob>,
    text: &str,
    timeout_secs: Option<f64>,
) -> Reply {
    if shared.shutting_down.load(Ordering::SeqCst) {
        return error_reply(
            shared,
            ErrorCode::ShuttingDown,
            "the server is shutting down".into(),
        );
    }
    let delta = match (shared.hooks.compile_update)(text) {
        Ok(delta) => delta,
        Err(e) => return error_reply(shared, ErrorCode::Parse, e),
    };
    // Reject deltas that do not fit the program *before* they reach the
    // write-ahead log — a bad request must never poison the batch it
    // would have ridden in.
    if let Err(e) = shared.program.with_delta(&delta) {
        return error_reply(shared, ErrorCode::Delta, e.to_string());
    }
    // Admission control: bound the queue, not the caller's patience.
    if shared.pending_updates.fetch_add(1, Ordering::SeqCst) >= shared.max_pending {
        shared.pending_updates.fetch_sub(1, Ordering::SeqCst);
        return error_reply(
            shared,
            ErrorCode::Busy,
            format!("update queue is full ({} pending)", shared.max_pending),
        );
    }
    let requested = timeout_secs.filter(|s| s.is_finite() && *s > 0.0);
    let deadline = match (requested, shared.max_update_secs) {
        (Some(r), Some(cap)) => Some(Duration::from_secs_f64(r.min(cap))),
        (Some(r), None) => Some(Duration::from_secs_f64(r)),
        (None, cap) => cap.map(Duration::from_secs_f64),
    };
    let entries = delta.len() as u64;
    let (reply_tx, reply_rx) = mpsc::sync_channel(1);
    let job = WriterJob::Update {
        delta,
        entries,
        deadline,
        reply: reply_tx,
    };
    if writer_tx.send(job).is_err() {
        shared.pending_updates.fetch_sub(1, Ordering::SeqCst);
        return error_reply(
            shared,
            ErrorCode::ShuttingDown,
            "the server is shutting down".into(),
        );
    }
    reply_rx.recv().unwrap_or_else(|_| {
        error_reply(
            shared,
            ErrorCode::ShuttingDown,
            "the server shut down before applying the update".into(),
        )
    })
}

fn handle_compact(shared: &Shared, writer_tx: &Sender<WriterJob>) -> Reply {
    if !shared.persistent {
        return error_reply(
            shared,
            ErrorCode::Unsupported,
            "compaction requires the server to run with both --snapshot and --wal".into(),
        );
    }
    let (reply_tx, reply_rx) = mpsc::sync_channel(1);
    if writer_tx
        .send(WriterJob::Compact { reply: reply_tx })
        .is_err()
    {
        return error_reply(
            shared,
            ErrorCode::ShuttingDown,
            "the server is shutting down".into(),
        );
    }
    reply_rx.recv().unwrap_or_else(|_| {
        error_reply(
            shared,
            ErrorCode::ShuttingDown,
            "the server shut down before compacting".into(),
        )
    })
}

/// State owned by the writer thread.
struct WriterState {
    /// The last successfully published model — resumes start here.
    clean: Arc<Solution>,
    /// Durable (WAL-logged) delta entries not yet in `clean`; non-empty
    /// only after a guarded resume failure.
    unapplied: Delta,
    log: Option<DeltaLog>,
    snapshot: Option<PathBuf>,
    compact_every: Option<u64>,
    base: SolverConfig,
    epoch: u64,
}

fn writer_loop(shared: Arc<Shared>, mut state: WriterState, rx: Receiver<WriterJob>) {
    loop {
        let first = match rx.recv() {
            Ok(job) => job,
            Err(_) => return,
        };
        // Batch: drain everything already queued behind the first job.
        let mut batch = vec![first];
        while let Ok(job) = rx.try_recv() {
            batch.push(job);
        }
        let mut updates = Vec::new();
        let mut compacts = Vec::new();
        let mut stop = false;
        for job in batch {
            match job {
                WriterJob::Update {
                    delta,
                    entries,
                    deadline,
                    reply,
                } => updates.push((delta, entries, deadline, reply)),
                WriterJob::Compact { reply } => compacts.push(reply),
                WriterJob::Shutdown => stop = true,
            }
        }
        if !updates.is_empty() {
            apply_batch(&shared, &mut state, updates);
        }
        for reply in compacts {
            let response = compact(&shared, &mut state);
            let _ = reply.send(response);
        }
        if stop {
            return;
        }
    }
}

type PendingUpdate = (Delta, u64, Option<Duration>, SyncSender<Reply>);

fn apply_batch(shared: &Shared, state: &mut WriterState, updates: Vec<PendingUpdate>) {
    let batched = updates.len() as u64;
    let mut combined_new = Delta::new();
    for (delta, _, _, _) in &updates {
        combined_new.extend_from(delta);
    }

    let finish = |reply: Reply, updates: &[PendingUpdate]| {
        for (_, _, _, tx) in updates {
            let _ = tx.send(reply.clone());
        }
        shared
            .pending_updates
            .fetch_sub(updates.len() as u64, Ordering::SeqCst);
    };

    // Log-then-apply: the combined delta becomes durable *before* the
    // resume runs, so a crash mid-resume replays it at restart. An
    // append failure aborts the batch before any solving — durability
    // and the resident model stay in lockstep.
    if let Some(log) = &mut state.log {
        let wal_started = Instant::now();
        let appended = log.append(&combined_new);
        shared
            .telemetry
            .record_wal_append(wal_started.elapsed().as_nanos() as u64);
        if let Err(e) = appended {
            let reply = Reply {
                epoch: state.epoch,
                body: ReplyBody::Error {
                    code: ErrorCode::Persist,
                    message: format!("write-ahead log append failed: {e}"),
                },
            };
            shared.emit(Event {
                level: EventLevel::Warn,
                name: "batch_failed",
                fields: vec![
                    field("code", ErrorCode::Persist.as_str()),
                    field_num("epoch", state.epoch as f64),
                    field_num("riders", batched as f64),
                    field("error", e.to_string()),
                ],
            });
            finish(reply, &updates);
            return;
        }
    }

    // The resume covers the durable debt of earlier failed batches too.
    let mut full = state.unapplied.clone();
    full.extend_from(&combined_new);

    // The batch deadline is the tightest requested by any rider: a
    // caller who asked for 2 s should not wait 30 because a slow
    // request got batched with theirs.
    let deadline = updates.iter().filter_map(|(_, _, d, _)| *d).min();
    let mut config = state.base.clone();
    if let Some(d) = deadline {
        config.budget = Budget::new().deadline(d);
    }
    let solver = match Solver::with_config(config) {
        Ok(solver) => solver,
        Err(e) => {
            // Unreachable: `base` was validated at startup and the only
            // edit was the budget. Handled anyway — a writer must not
            // panic with replies outstanding.
            let reply = Reply {
                epoch: state.epoch,
                body: ReplyBody::Error {
                    code: ErrorCode::Solve,
                    message: e.to_string(),
                },
            };
            finish(reply, &updates);
            return;
        }
    };

    let total_entries = full.len() as u64;
    let resume_started = Instant::now();
    match solver.resume(&shared.program, &state.clean, &full) {
        Ok(next) => {
            let resume_ns = resume_started.elapsed().as_nanos() as u64;
            state.clean = Arc::new(next);
            state.unapplied = Delta::new();
            state.epoch += 1;
            shared.unapplied_durable.store(0, Ordering::SeqCst);
            shared.publish(state.epoch, Arc::clone(&state.clean));
            shared.updates_applied.fetch_add(batched, Ordering::Relaxed);
            shared.batches_applied.fetch_add(1, Ordering::Relaxed);
            shared
                .telemetry
                .record_batch_applied(batched, total_entries, resume_ns);
            shared.emit(Event {
                level: EventLevel::Info,
                name: "batch_applied",
                fields: vec![
                    field_num("epoch", state.epoch as f64),
                    field_num("entries", total_entries as f64),
                    field_num("riders", batched as f64),
                    field_num("resume_ms", resume_ns as f64 / 1e6),
                ],
            });
            for (_, entries, _, tx) in &updates {
                let _ = tx.send(Reply {
                    epoch: state.epoch,
                    body: ReplyBody::Updated {
                        applied: *entries,
                        batched,
                    },
                });
            }
            shared.pending_updates.fetch_sub(batched, Ordering::SeqCst);
            maybe_autocompact(shared, state);
        }
        Err(failure) => {
            // The entries are durable but not applied: carry them into
            // the next batch (and into restart replay) rather than
            // letting the WAL run ahead of what we ever apply.
            let code = match &failure.error {
                SolveError::BudgetExceeded { .. } | SolveError::RoundLimitExceeded { .. } => {
                    ErrorCode::Budget
                }
                SolveError::Delta(_) => ErrorCode::Delta,
                _ => ErrorCode::Solve,
            };
            state.unapplied = full;
            shared
                .unapplied_durable
                .store(state.unapplied.len() as u64, Ordering::SeqCst);
            shared.telemetry.record_batch_failed();
            shared.emit(Event {
                level: EventLevel::Warn,
                name: "batch_failed",
                fields: vec![
                    field("code", code.as_str()),
                    field_num("epoch", state.epoch as f64),
                    field_num("entries", total_entries as f64),
                    field_num("riders", batched as f64),
                    field("error", failure.error.to_string()),
                ],
            });
            let reply = Reply {
                epoch: state.epoch,
                body: ReplyBody::Error {
                    code,
                    message: format!(
                        "update logged but not applied (will retry with the next batch): {}",
                        failure.error
                    ),
                },
            };
            finish(reply, &updates);
        }
    }
}

fn compact(shared: &Shared, state: &mut WriterState) -> Reply {
    if !state.unapplied.is_empty() {
        return Reply {
            epoch: state.epoch,
            body: ReplyBody::Error {
                code: ErrorCode::Busy,
                message: format!(
                    "{} durable delta entries await application; retry after the next \
                     successful update",
                    state.unapplied.len()
                ),
            },
        };
    }
    let (Some(log), Some(snapshot)) = (&mut state.log, &state.snapshot) else {
        return Reply {
            epoch: state.epoch,
            body: ReplyBody::Error {
                code: ErrorCode::Unsupported,
                message: "compaction requires both --snapshot and --wal".into(),
            },
        };
    };
    let frames = log.frames();
    match log.compact_into(snapshot, &shared.program, &state.clean) {
        Ok(()) => {
            shared.telemetry.record_compaction(true);
            shared.emit(Event {
                level: EventLevel::Info,
                name: "compaction",
                fields: vec![
                    field_num("epoch", state.epoch as f64),
                    field_num("frames_absorbed", frames as f64),
                ],
            });
            Reply {
                epoch: state.epoch,
                body: ReplyBody::Compacted {
                    frames_absorbed: frames,
                },
            }
        }
        Err(e) => {
            shared.telemetry.record_compaction(false);
            shared.emit(Event {
                level: EventLevel::Warn,
                name: "compaction_failed",
                fields: vec![
                    field_num("epoch", state.epoch as f64),
                    field("error", e.to_string()),
                ],
            });
            Reply {
                epoch: state.epoch,
                body: ReplyBody::Error {
                    code: ErrorCode::Persist,
                    message: format!("compaction failed: {e}"),
                },
            }
        }
    }
}

fn maybe_autocompact(shared: &Shared, state: &mut WriterState) {
    let Some(threshold) = state.compact_every else {
        return;
    };
    if !state.unapplied.is_empty() {
        return;
    }
    let due = state.log.as_ref().is_some_and(|l| l.frames() >= threshold);
    if due && state.snapshot.is_some() {
        // Best-effort: a failed auto-compaction leaves the WAL longer
        // than ideal, never incorrect. The explicit `compact` op
        // surfaces errors to a caller who can act on them.
        let _ = compact(shared, state);
    }
}
