//! A blocking `flixd/1` client over a Unix domain socket.
//!
//! One [`Client`] is one connection: it validates the server's hello
//! frame at connect time and then drives a strict request/response
//! alternation. A client is cheap — `flixr --connect` opens one per
//! invocation — and is *not* shareable across threads mid-request; open
//! one connection per concurrent caller instead (the server multiplexes
//! them against the same resident model).

use crate::proto::{self, Hello, Reply, Request};
use std::os::unix::net::UnixStream;
use std::path::Path;
use std::time::Duration;

/// A connected `flixd/1` client.
#[derive(Debug)]
pub struct Client {
    stream: UnixStream,
    hello: Hello,
}

/// Why a client call failed — transport problems, not server-side
/// errors (those arrive as [`ReplyBody::Error`](crate::ReplyBody::Error)
/// replies with an [`ErrorCode`](crate::ErrorCode)).
#[derive(Debug)]
pub enum ClientError {
    /// The socket could not be connected, read, or written.
    Io(std::io::Error),
    /// The peer spoke something other than `flixd/1`, or sent a frame
    /// that does not parse.
    Protocol(String),
    /// The peer closed the connection where a reply was due.
    Disconnected,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "socket error: {e}"),
            ClientError::Protocol(e) => write!(f, "protocol error: {e}"),
            ClientError::Disconnected => write!(f, "server closed the connection"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

impl Client {
    /// Connects to a flixd socket and validates its hello frame.
    pub fn connect(socket: impl AsRef<Path>) -> Result<Client, ClientError> {
        let mut stream = UnixStream::connect(socket.as_ref())?;
        let frame = proto::read_frame(&mut stream)?.ok_or(ClientError::Disconnected)?;
        let hello = Hello::from_json(&frame).map_err(ClientError::Protocol)?;
        if hello.proto != proto::PROTOCOL {
            return Err(ClientError::Protocol(format!(
                "server speaks {:?}, this client speaks {:?}",
                hello.proto,
                proto::PROTOCOL
            )));
        }
        Ok(Client { stream, hello })
    }

    /// The hello frame the server sent at connect time.
    pub fn hello(&self) -> &Hello {
        &self.hello
    }

    /// Sets a read timeout on replies, so a caller with a deadline is
    /// not held hostage by a long resume ahead of its request.
    pub fn set_reply_timeout(&self, timeout: Option<Duration>) -> Result<(), ClientError> {
        self.stream.set_read_timeout(timeout)?;
        Ok(())
    }

    /// Sends one request and blocks for its reply.
    pub fn request(&mut self, request: &Request) -> Result<Reply, ClientError> {
        proto::write_frame(&mut self.stream, request.to_json().as_bytes())?;
        let frame = proto::read_frame(&mut self.stream)?.ok_or(ClientError::Disconnected)?;
        Reply::from_json(&frame).map_err(ClientError::Protocol)
    }
}
