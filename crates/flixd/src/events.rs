//! Structured JSONL event log.
//!
//! `flixd --log-json PATH` appends one JSON object per line describing
//! service lifecycle: connections opening and closing, batches applied
//! or failed, slow queries, compaction and recovery outcomes. The hot
//! path never blocks on I/O: [`EventLogger::emit`] pushes onto a
//! bounded channel with `try_send`, and a dedicated logger thread
//! drains the channel and writes lines. When the channel is full the
//! event is *dropped* and counted (`events.dropped` in `flixd-stats/1`)
//! — losing a log line is always preferable to stalling a reader or
//! the writer thread.
//!
//! Ordering: the channel is a FIFO, so events emitted by one thread
//! appear in emission order. The server drops the logger (flushing and
//! joining the thread) only after the writer thread has joined, so a
//! shutdown-clean log always contains every `batch_applied` event in
//! publish order — the replay property the stress test pins.

use std::io::Write;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, SyncSender, TrySendError};
use std::sync::Arc;
use std::time::{SystemTime, UNIX_EPOCH};

/// How many events may sit in the channel before emitters start
/// dropping. Sized for bursts (a busy writer publishes well under a
/// thousand batches a second; the logger drains far faster than that).
const CHANNEL_BOUND: usize = 1024;

/// Event severity, least to most severe. A logger configured at level
/// `L` writes events at `L` and above.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum EventLevel {
    /// High-volume lifecycle noise: connection open/close.
    Debug,
    /// Normal operation: batches applied, compactions, recovery,
    /// server start/stop.
    Info,
    /// Something an operator should look at: slow queries, failed
    /// batches, failed compactions.
    Warn,
}

impl EventLevel {
    /// The level name as written in the log and accepted by
    /// `--log-level`.
    pub fn as_str(&self) -> &'static str {
        match self {
            EventLevel::Debug => "debug",
            EventLevel::Info => "info",
            EventLevel::Warn => "warn",
        }
    }

    /// Parses a `--log-level` argument.
    pub fn parse(text: &str) -> Option<EventLevel> {
        match text {
            "debug" => Some(EventLevel::Debug),
            "info" => Some(EventLevel::Info),
            "warn" => Some(EventLevel::Warn),
            _ => None,
        }
    }
}

/// Where and how verbosely to log, carried on
/// [`ServerConfig`](crate::ServerConfig).
#[derive(Debug, Clone)]
pub struct EventLogConfig {
    /// File the JSONL lines are appended to (created if absent).
    pub path: PathBuf,
    /// Minimum level written; defaults to [`EventLevel::Info`].
    pub level: EventLevel,
}

impl EventLogConfig {
    /// Logs to `path` at the default `info` level.
    pub fn new(path: impl Into<PathBuf>) -> EventLogConfig {
        EventLogConfig {
            path: path.into(),
            level: EventLevel::Info,
        }
    }
}

/// One event: a name plus flat string/number fields, rendered as a
/// single JSON object line.
#[derive(Debug)]
pub struct Event {
    /// Severity.
    pub level: EventLevel,
    /// Event name, e.g. `batch_applied`.
    pub name: &'static str,
    /// Flat key/value payload; values are pre-stringified by
    /// [`field`]/[`field_num`] so the logger thread does no rendering
    /// decisions of its own.
    pub fields: Vec<(&'static str, FieldValue)>,
}

/// A field value: a string (JSON-escaped at write time) or a raw
/// number.
#[derive(Debug)]
pub enum FieldValue {
    /// Escaped and quoted on output.
    Str(String),
    /// Written verbatim (finite numbers only).
    Num(f64),
}

/// Builds a string field.
pub fn field(key: &'static str, value: impl Into<String>) -> (&'static str, FieldValue) {
    (key, FieldValue::Str(value.into()))
}

/// Builds a numeric field.
pub fn field_num(key: &'static str, value: f64) -> (&'static str, FieldValue) {
    (key, FieldValue::Num(value))
}

enum Message {
    Event(Event),
    Shutdown,
}

/// The shared handle connection threads and the writer emit through.
/// Cloned freely; the logger thread itself is owned by the server and
/// joined at shutdown via [`LoggerThread::finish`].
pub struct EventLogger {
    sender: SyncSender<Message>,
    level: EventLevel,
    logged: Arc<AtomicU64>,
    dropped: Arc<AtomicU64>,
}

impl std::fmt::Debug for EventLogger {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventLogger")
            .field("level", &self.level)
            .finish_non_exhaustive()
    }
}

impl Clone for EventLogger {
    fn clone(&self) -> EventLogger {
        EventLogger {
            sender: self.sender.clone(),
            level: self.level,
            logged: Arc::clone(&self.logged),
            dropped: Arc::clone(&self.dropped),
        }
    }
}

/// Owns the logger thread; dropping or calling
/// [`LoggerThread::finish`] flushes and joins it.
pub struct LoggerThread {
    sender: SyncSender<Message>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for LoggerThread {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LoggerThread").finish_non_exhaustive()
    }
}

impl EventLogger {
    /// Opens `config.path` for append and spawns the logger thread.
    /// Returns the emit handle and the thread owner.
    pub fn start(config: &EventLogConfig) -> std::io::Result<(EventLogger, LoggerThread)> {
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&config.path)?;
        let (sender, receiver) = sync_channel::<Message>(CHANNEL_BOUND);
        let logged = Arc::new(AtomicU64::new(0));
        let dropped = Arc::new(AtomicU64::new(0));
        let handle = std::thread::Builder::new()
            .name("flixd-logger".into())
            .spawn(move || {
                let mut out = std::io::BufWriter::new(file);
                while let Ok(message) = receiver.recv() {
                    match message {
                        Message::Event(event) => {
                            let line = render_line(&event);
                            // A full disk is not worth crashing the
                            // daemon over; the line is simply lost.
                            let _ = out.write_all(line.as_bytes());
                            let _ = out.write_all(b"\n");
                            let _ = out.flush();
                        }
                        Message::Shutdown => break,
                    }
                }
                let _ = out.flush();
            })?;
        let logger = EventLogger {
            sender: sender.clone(),
            level: config.level,
            logged,
            dropped,
        };
        let thread = LoggerThread {
            sender,
            handle: Some(handle),
        };
        Ok((logger, thread))
    }

    /// Emits one event. Never blocks: a full channel drops the event
    /// and bumps the dropped counter instead.
    pub fn emit(&self, event: Event) {
        if event.level < self.level {
            return;
        }
        match self.sender.try_send(Message::Event(event)) {
            Ok(()) => {
                self.logged.fetch_add(1, Ordering::Relaxed);
            }
            Err(TrySendError::Full(_)) | Err(TrySendError::Disconnected(_)) => {
                self.dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Events accepted onto the channel so far.
    pub fn logged(&self) -> u64 {
        self.logged.load(Ordering::Relaxed)
    }

    /// Events dropped because the channel was full (or closed).
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

impl LoggerThread {
    /// Flushes everything queued so far and joins the thread. The
    /// channel is FIFO, so every event emitted before this call (and
    /// accepted) is on disk when it returns.
    pub fn finish(mut self) {
        self.finish_inner();
    }

    fn finish_inner(&mut self) {
        if let Some(handle) = self.handle.take() {
            // `send` (not try_send) — the sentinel must get through
            // even when the channel is momentarily full.
            let _ = self.sender.send(Message::Shutdown);
            let _ = handle.join();
        }
    }
}

impl Drop for LoggerThread {
    fn drop(&mut self) {
        self.finish_inner();
    }
}

/// Milliseconds since the Unix epoch, the `ts_ms` stamp on every line.
fn now_ms() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

fn render_line(event: &Event) -> String {
    use crate::json::Json;
    let mut fields: Vec<(String, Json)> = vec![
        ("ts_ms".into(), Json::Num(now_ms() as f64)),
        ("level".into(), Json::Str(event.level.as_str().into())),
        ("event".into(), Json::Str(event.name.into())),
    ];
    for (key, value) in &event.fields {
        let v = match value {
            FieldValue::Str(s) => Json::Str(s.clone()),
            FieldValue::Num(n) => Json::Num(*n),
        };
        fields.push(((*key).into(), v));
    }
    Json::Obj(fields).render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{parse, Json};

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("flixd-events-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("scratch dir");
        dir
    }

    #[test]
    fn events_render_as_one_json_object_per_line() {
        let dir = scratch("render");
        let path = dir.join("events.jsonl");
        let (logger, thread) =
            EventLogger::start(&EventLogConfig::new(&path)).expect("logger starts");
        logger.emit(Event {
            level: EventLevel::Info,
            name: "batch_applied",
            fields: vec![field_num("epoch", 2.0), field("note", "has \"quotes\"")],
        });
        logger.emit(Event {
            level: EventLevel::Warn,
            name: "slow_query",
            fields: vec![field("atom", "Path 0 _"), field_num("ms", 12.5)],
        });
        thread.finish();
        let text = std::fs::read_to_string(&path).expect("log exists");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        let first = parse(lines[0]).expect("line 1 is JSON");
        assert_eq!(
            first.get("event").and_then(Json::as_str),
            Some("batch_applied")
        );
        assert_eq!(first.get("epoch").and_then(Json::as_u64), Some(2));
        assert_eq!(
            first.get("note").and_then(Json::as_str),
            Some("has \"quotes\"")
        );
        assert!(first.get("ts_ms").and_then(Json::as_u64).is_some());
        let second = parse(lines[1]).expect("line 2 is JSON");
        assert_eq!(second.get("level").and_then(Json::as_str), Some("warn"));
        assert_eq!(logger.logged(), 2);
        assert_eq!(logger.dropped(), 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn level_filter_suppresses_quieter_events() {
        let dir = scratch("level");
        let path = dir.join("events.jsonl");
        let config = EventLogConfig {
            path: path.clone(),
            level: EventLevel::Warn,
        };
        let (logger, thread) = EventLogger::start(&config).expect("logger starts");
        logger.emit(Event {
            level: EventLevel::Debug,
            name: "conn_open",
            fields: vec![],
        });
        logger.emit(Event {
            level: EventLevel::Info,
            name: "batch_applied",
            fields: vec![],
        });
        logger.emit(Event {
            level: EventLevel::Warn,
            name: "slow_query",
            fields: vec![],
        });
        thread.finish();
        let text = std::fs::read_to_string(&path).expect("log exists");
        assert_eq!(text.lines().count(), 1);
        assert!(text.contains("slow_query"));
        assert_eq!(logger.logged(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn levels_order_and_parse() {
        assert!(EventLevel::Debug < EventLevel::Info);
        assert!(EventLevel::Info < EventLevel::Warn);
        assert_eq!(EventLevel::parse("info"), Some(EventLevel::Info));
        assert_eq!(EventLevel::parse("warn"), Some(EventLevel::Warn));
        assert_eq!(EventLevel::parse("debug"), Some(EventLevel::Debug));
        assert_eq!(EventLevel::parse("loud"), None);
    }
}
