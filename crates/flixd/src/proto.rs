//! The `flixd/1` wire protocol: length-prefixed JSON frames over a Unix
//! domain socket.
//!
//! # Framing
//!
//! Every message — in either direction — is one *frame*: a 4-byte
//! big-endian unsigned length followed by exactly that many bytes of
//! UTF-8 JSON. Frames longer than [`MAX_FRAME`] are rejected before
//! allocation, so a corrupt or hostile peer cannot make the daemon
//! reserve gigabytes from four bytes of garbage.
//!
//! # Conversation
//!
//! On accept the server sends one *hello* frame:
//!
//! ```json
//! {"proto":"flixd/1","epoch":3,"facts":1234,"fingerprint":"0x93ad…"}
//! ```
//!
//! after which the client drives a strict request/response alternation.
//! Every response carries `"ok"` and `"epoch"` — the epoch of the
//! resident model the response was served from (for updates: the epoch
//! the update's batch *published*). Errors are
//! `{"ok":false,"epoch":E,"code":"…","error":"…"}` with a closed set of
//! machine-readable codes ([`ErrorCode`]).
//!
//! The full request vocabulary, response shapes, and the epoch /
//! snapshot-isolation semantics are specified in DESIGN.md §17.

use crate::json::{self, Json};
use std::io::{Read, Write};

/// The protocol identifier sent in the hello frame and bumped on any
/// incompatible change.
pub const PROTOCOL: &str = "flixd/1";

/// Upper bound on one frame's payload, in bytes. Large enough for a
/// full-model `facts` dump of every committed workload, small enough to
/// bound what a malformed length prefix can make either side allocate.
pub const MAX_FRAME: usize = 64 << 20;

/// Reads one length-prefixed frame. Returns `Ok(None)` on a clean EOF
/// *before* the length prefix (the peer hung up between messages); a
/// truncation inside a frame is an error.
pub fn read_frame(r: &mut impl Read) -> std::io::Result<Option<Vec<u8>>> {
    let mut len = [0u8; 4];
    match r.read_exact(&mut len) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_be_bytes(len) as usize;
    if len > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {MAX_FRAME}-byte limit"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// Writes one length-prefixed frame and flushes it.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> std::io::Result<()> {
    if payload.len() > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!(
                "frame of {} bytes exceeds the {MAX_FRAME}-byte limit",
                payload.len()
            ),
        ));
    }
    w.write_all(&(payload.len() as u32).to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// A client request, one per frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Match a pattern (`Dist("a", _)`) against the resident model and
    /// return the matching facts.
    Query {
        /// The atom pattern, in flixr `--query` syntax.
        atom: String,
    },
    /// Dump the facts of one predicate, or of the whole model.
    Facts {
        /// The predicate to dump; `None` dumps every predicate.
        predicate: Option<String>,
    },
    /// Return the derivation tree of a fact (requires the server to run
    /// with provenance recording).
    Explain {
        /// The ground atom, in flixr `--explain` syntax.
        atom: String,
    },
    /// Return the `flix-metrics/1` report of the solve/resume that
    /// produced the current epoch.
    Metrics,
    /// Return the Chrome trace-event JSON of the solve/resume that
    /// produced the current epoch (requires the server to run with
    /// tracing).
    Trace,
    /// Liveness and progress counters.
    Status,
    /// The service telemetry registry: a `flixd-stats/1` JSON document,
    /// or a Prometheus-style text exposition of the same numbers.
    Stats {
        /// `true` requests the Prometheus text form
        /// (`{"op":"stats","format":"prometheus"}` on the wire).
        prometheus: bool,
    },
    /// Apply a delta: the text of an update file in flixr `--update`
    /// syntax (redeclaring the predicates it touches; `-P(..)` /
    /// `retract P(..)` lines retract). Batched with concurrently queued
    /// updates into one resume; the reply carries the published epoch.
    Update {
        /// The update-file text.
        text: String,
        /// Per-request deadline on the resume, in seconds; the server
        /// caps it at its configured maximum.
        timeout_secs: Option<f64>,
    },
    /// Fold the write-ahead log into a fresh snapshot
    /// (requires the server to run with both `--wal` and `--snapshot`).
    Compact,
    /// Stop accepting connections and exit once in-flight work drains.
    Shutdown,
}

impl Request {
    /// Renders the request as its JSON wire form.
    pub fn to_json(&self) -> String {
        let mut fields: Vec<(String, Json)> = Vec::new();
        let op = |name: &str| ("op".to_string(), Json::Str(name.to_string()));
        match self {
            Request::Query { atom } => {
                fields.push(op("query"));
                fields.push(("atom".into(), Json::Str(atom.clone())));
            }
            Request::Facts { predicate } => {
                fields.push(op("facts"));
                if let Some(p) = predicate {
                    fields.push(("predicate".into(), Json::Str(p.clone())));
                }
            }
            Request::Explain { atom } => {
                fields.push(op("explain"));
                fields.push(("atom".into(), Json::Str(atom.clone())));
            }
            Request::Metrics => fields.push(op("metrics")),
            Request::Trace => fields.push(op("trace")),
            Request::Status => fields.push(op("status")),
            Request::Stats { prometheus } => {
                fields.push(op("stats"));
                if *prometheus {
                    fields.push(("format".into(), Json::Str("prometheus".into())));
                }
            }
            Request::Update { text, timeout_secs } => {
                fields.push(op("update"));
                fields.push(("text".into(), Json::Str(text.clone())));
                if let Some(secs) = timeout_secs {
                    fields.push(("timeout_secs".into(), Json::Num(*secs)));
                }
            }
            Request::Compact => fields.push(op("compact")),
            Request::Shutdown => fields.push(op("shutdown")),
        }
        Json::Obj(fields).render()
    }

    /// Parses a request frame. Errors name what was malformed; the
    /// server maps them to [`ErrorCode::Proto`].
    pub fn from_json(payload: &[u8]) -> Result<Request, String> {
        let text = std::str::from_utf8(payload).map_err(|_| "frame is not UTF-8".to_string())?;
        let doc = json::parse(text)?;
        let op = doc
            .get("op")
            .and_then(Json::as_str)
            .ok_or("missing \"op\" field")?;
        let str_field = |name: &str| -> Result<String, String> {
            doc.get(name)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or(format!("op {op:?} requires a string {name:?} field"))
        };
        match op {
            "query" => Ok(Request::Query {
                atom: str_field("atom")?,
            }),
            "facts" => Ok(Request::Facts {
                predicate: doc
                    .get("predicate")
                    .and_then(Json::as_str)
                    .map(str::to_string),
            }),
            "explain" => Ok(Request::Explain {
                atom: str_field("atom")?,
            }),
            "metrics" => Ok(Request::Metrics),
            "trace" => Ok(Request::Trace),
            "status" => Ok(Request::Status),
            "stats" => {
                let prometheus = match doc.get("format").and_then(Json::as_str) {
                    None | Some("json") => false,
                    Some("prometheus") => true,
                    Some(other) => {
                        return Err(format!("unknown stats format {other:?}"));
                    }
                };
                Ok(Request::Stats { prometheus })
            }
            "update" => Ok(Request::Update {
                text: str_field("text")?,
                timeout_secs: doc.get("timeout_secs").and_then(Json::as_f64),
            }),
            "compact" => Ok(Request::Compact),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(format!("unknown op {other:?}")),
        }
    }
}

/// The closed set of machine-readable error codes a response can carry.
/// Clients (and the `flixr --connect` exit-code mapping) switch on
/// these, never on message text.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The frame or its JSON was malformed, or the op is unknown.
    Proto,
    /// An atom, pattern, or update text failed to parse or compile.
    Parse,
    /// A query or explain named an unknown predicate or used the wrong
    /// arity.
    Query,
    /// The fact to explain is not in the resident model.
    Absent,
    /// The update delta does not fit the program (unknown predicate,
    /// arity mismatch — [`flix_core::DeltaError`]).
    Delta,
    /// The update's resume exhausted its budget/deadline; the delta is
    /// durable (WAL-logged) but not yet published.
    Budget,
    /// The update's resume failed (function panic, safety sentinel, …).
    Solve,
    /// A persistence operation (WAL append, compaction) failed.
    Persist,
    /// The request needs a capability the server was not started with
    /// (provenance, tracing, snapshot/WAL paths).
    Unsupported,
    /// Admission control rejected the request (update queue full, or a
    /// compaction requested while unpublished durable deltas exist).
    Busy,
    /// The server is shutting down.
    ShuttingDown,
}

impl ErrorCode {
    /// The wire form of the code.
    pub fn as_str(&self) -> &'static str {
        match self {
            ErrorCode::Proto => "proto",
            ErrorCode::Parse => "parse",
            ErrorCode::Query => "query",
            ErrorCode::Absent => "absent",
            ErrorCode::Delta => "delta",
            ErrorCode::Budget => "budget",
            ErrorCode::Solve => "solve",
            ErrorCode::Persist => "persist",
            ErrorCode::Unsupported => "unsupported",
            ErrorCode::Busy => "busy",
            ErrorCode::ShuttingDown => "shutting-down",
        }
    }

    /// Parses the wire form back.
    pub fn from_wire(s: &str) -> Option<ErrorCode> {
        Some(match s {
            "proto" => ErrorCode::Proto,
            "parse" => ErrorCode::Parse,
            "query" => ErrorCode::Query,
            "absent" => ErrorCode::Absent,
            "delta" => ErrorCode::Delta,
            "budget" => ErrorCode::Budget,
            "solve" => ErrorCode::Solve,
            "persist" => ErrorCode::Persist,
            "unsupported" => ErrorCode::Unsupported,
            "busy" => ErrorCode::Busy,
            "shutting-down" => ErrorCode::ShuttingDown,
            _ => return None,
        })
    }
}

impl std::fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A server response: the epoch it was served from plus the op-specific
/// body.
#[derive(Debug, Clone, PartialEq)]
pub struct Reply {
    /// The epoch of the resident model this response describes.
    pub epoch: u64,
    /// The op-specific payload.
    pub body: ReplyBody,
}

/// The op-specific payload of a [`Reply`].
#[derive(Debug, Clone, PartialEq)]
pub enum ReplyBody {
    /// `query`: the matching facts, rendered `Pred(a, b)`, sorted.
    Answers(Vec<String>),
    /// `facts`: the requested facts, rendered `Pred(a, b)`, sorted.
    Facts(Vec<String>),
    /// `explain`: the rendered derivation tree.
    Explain(String),
    /// `metrics`: a `flix-metrics/1` document (pre-rendered JSON).
    Metrics(String),
    /// `trace`: a Chrome trace-event document (pre-rendered JSON).
    Trace(String),
    /// `status`: liveness counters.
    Status(Status),
    /// `stats`: a `flixd-stats/1` document (pre-rendered JSON).
    Stats(String),
    /// `stats` with `format:"prometheus"`: a text exposition.
    Prom(String),
    /// `update`: the batch published; `applied` delta entries rode in a
    /// batch of `batched` requests.
    Updated {
        /// Delta entries in this request's update.
        applied: u64,
        /// Update requests folded into the same published batch.
        batched: u64,
    },
    /// `compact`: the WAL was folded into the snapshot.
    Compacted {
        /// Frames absorbed into the snapshot.
        frames_absorbed: u64,
    },
    /// `shutdown`: acknowledged; the server is stopping.
    Stopping,
    /// Any op: the request failed.
    Error {
        /// The machine-readable code.
        code: ErrorCode,
        /// The human-readable message.
        message: String,
    },
}

/// The `status` counters.
#[derive(Debug, Clone, PartialEq)]
pub struct Status {
    /// Total facts in the resident model.
    pub facts: u64,
    /// Update *requests* folded into batches published since startup.
    /// A recovered daemon restarts this at 0 even though its epoch does
    /// not; pair with `epoch` (on the [`Reply`]) and `batches_applied`.
    pub updates_applied: u64,
    /// Update *batches* published since startup (several queued
    /// requests can fold into one batch).
    pub batches_applied: u64,
    /// Read requests served since startup.
    pub queries_served: u64,
    /// Update requests currently queued or mid-resume.
    pub pending_updates: u64,
    /// Durable (WAL-logged) delta entries not yet published — non-zero
    /// only after a guarded resume failure; see DESIGN.md §17.
    pub unapplied_durable: u64,
    /// Seconds since the server finished loading.
    pub uptime_secs: f64,
}

impl Reply {
    /// Renders the reply as its JSON wire form.
    pub fn to_json(&self) -> String {
        let mut fields: Vec<(String, Json)> = Vec::new();
        let ok = !matches!(self.body, ReplyBody::Error { .. });
        fields.push(("ok".into(), Json::Bool(ok)));
        fields.push(("epoch".into(), Json::Num(self.epoch as f64)));
        let strings = |xs: &[String]| Json::Arr(xs.iter().cloned().map(Json::Str).collect());
        match &self.body {
            ReplyBody::Answers(xs) => fields.push(("answers".into(), strings(xs))),
            ReplyBody::Facts(xs) => fields.push(("facts".into(), strings(xs))),
            ReplyBody::Explain(tree) => fields.push(("tree".into(), Json::Str(tree.clone()))),
            ReplyBody::Metrics(doc) => fields.push(("metrics".into(), Json::Raw(doc.clone()))),
            ReplyBody::Trace(doc) => fields.push(("trace".into(), Json::Raw(doc.clone()))),
            ReplyBody::Status(s) => {
                fields.push(("facts".into(), Json::Num(s.facts as f64)));
                fields.push((
                    "updates_applied".into(),
                    Json::Num(s.updates_applied as f64),
                ));
                fields.push((
                    "batches_applied".into(),
                    Json::Num(s.batches_applied as f64),
                ));
                fields.push(("queries_served".into(), Json::Num(s.queries_served as f64)));
                fields.push((
                    "pending_updates".into(),
                    Json::Num(s.pending_updates as f64),
                ));
                fields.push((
                    "unapplied_durable".into(),
                    Json::Num(s.unapplied_durable as f64),
                ));
                fields.push(("uptime_secs".into(), Json::Num(s.uptime_secs)));
            }
            ReplyBody::Stats(doc) => fields.push(("stats".into(), Json::Raw(doc.clone()))),
            ReplyBody::Prom(text) => fields.push(("prom".into(), Json::Str(text.clone()))),
            ReplyBody::Updated { applied, batched } => {
                fields.push(("applied".into(), Json::Num(*applied as f64)));
                fields.push(("batched".into(), Json::Num(*batched as f64)));
            }
            ReplyBody::Compacted { frames_absorbed } => {
                fields.push(("frames_absorbed".into(), Json::Num(*frames_absorbed as f64)));
            }
            ReplyBody::Stopping => fields.push(("stopping".into(), Json::Bool(true))),
            ReplyBody::Error { code, message } => {
                fields.push(("code".into(), Json::Str(code.as_str().to_string())));
                fields.push(("error".into(), Json::Str(message.clone())));
            }
        }
        Json::Obj(fields).render()
    }

    /// Parses a response frame back into a [`Reply`]. The body variant
    /// is keyed off the fields present, mirroring `to_json`.
    pub fn from_json(payload: &[u8]) -> Result<Reply, String> {
        let text = std::str::from_utf8(payload).map_err(|_| "frame is not UTF-8".to_string())?;
        let doc = json::parse(text)?;
        let epoch = doc
            .get("epoch")
            .and_then(Json::as_u64)
            .ok_or("missing \"epoch\" field")?;
        let ok = doc
            .get("ok")
            .and_then(Json::as_bool)
            .ok_or("missing \"ok\" field")?;
        let string_list = |key: &str| -> Option<Vec<String>> {
            doc.get(key).and_then(Json::as_array).map(|xs| {
                xs.iter()
                    .filter_map(Json::as_str)
                    .map(str::to_string)
                    .collect()
            })
        };
        let body = if !ok {
            let code = doc
                .get("code")
                .and_then(Json::as_str)
                .and_then(ErrorCode::from_wire)
                .ok_or("error reply carries no known \"code\"")?;
            let message = doc
                .get("error")
                .and_then(Json::as_str)
                .unwrap_or_default()
                .to_string();
            ReplyBody::Error { code, message }
        } else if let Some(xs) = string_list("answers") {
            ReplyBody::Answers(xs)
        } else if let Some(xs) = string_list("facts") {
            // `status` also carries a numeric "facts"; disambiguated by
            // the array type here and the counters below.
            ReplyBody::Facts(xs)
        } else if let Some(tree) = doc.get("tree").and_then(Json::as_str) {
            ReplyBody::Explain(tree.to_string())
        } else if let Some(metrics) = doc.get("metrics") {
            ReplyBody::Metrics(metrics.render())
        } else if let Some(trace) = doc.get("trace") {
            ReplyBody::Trace(trace.render())
        } else if let Some(stats) = doc.get("stats") {
            ReplyBody::Stats(stats.render())
        } else if let Some(prom) = doc.get("prom").and_then(Json::as_str) {
            ReplyBody::Prom(prom.to_string())
        } else if doc.get("uptime_secs").is_some() {
            let counter = |key: &str| doc.get(key).and_then(Json::as_u64).unwrap_or(0);
            ReplyBody::Status(Status {
                facts: counter("facts"),
                updates_applied: counter("updates_applied"),
                batches_applied: counter("batches_applied"),
                queries_served: counter("queries_served"),
                pending_updates: counter("pending_updates"),
                unapplied_durable: counter("unapplied_durable"),
                uptime_secs: doc.get("uptime_secs").and_then(Json::as_f64).unwrap_or(0.0),
            })
        } else if doc.get("applied").is_some() {
            ReplyBody::Updated {
                applied: doc.get("applied").and_then(Json::as_u64).unwrap_or(0),
                batched: doc.get("batched").and_then(Json::as_u64).unwrap_or(1),
            }
        } else if let Some(frames) = doc.get("frames_absorbed").and_then(Json::as_u64) {
            ReplyBody::Compacted {
                frames_absorbed: frames,
            }
        } else if doc.get("stopping").is_some() {
            ReplyBody::Stopping
        } else {
            return Err("reply has no recognizable body".into());
        };
        Ok(Reply { epoch, body })
    }
}

/// The hello frame the server sends on accept.
#[derive(Debug, Clone, PartialEq)]
pub struct Hello {
    /// The protocol identifier; clients reject anything but
    /// [`PROTOCOL`].
    pub proto: String,
    /// The epoch of the resident model at accept time.
    pub epoch: u64,
    /// Total facts in the resident model at accept time.
    pub facts: u64,
    /// The program fingerprint (`flix_core::program_fingerprint`),
    /// rendered `0x…`, so clients can detect talking to a daemon
    /// serving a different program.
    pub fingerprint: String,
}

impl Hello {
    /// Renders the hello as its JSON wire form.
    pub fn to_json(&self) -> String {
        Json::Obj(vec![
            ("proto".into(), Json::Str(self.proto.clone())),
            ("epoch".into(), Json::Num(self.epoch as f64)),
            ("facts".into(), Json::Num(self.facts as f64)),
            ("fingerprint".into(), Json::Str(self.fingerprint.clone())),
        ])
        .render()
    }

    /// Parses a hello frame.
    pub fn from_json(payload: &[u8]) -> Result<Hello, String> {
        let text = std::str::from_utf8(payload).map_err(|_| "frame is not UTF-8".to_string())?;
        let doc = json::parse(text)?;
        Ok(Hello {
            proto: doc
                .get("proto")
                .and_then(Json::as_str)
                .ok_or("missing \"proto\"")?
                .to_string(),
            epoch: doc.get("epoch").and_then(Json::as_u64).unwrap_or(0),
            facts: doc.get("facts").and_then(Json::as_u64).unwrap_or(0),
            fingerprint: doc
                .get("fingerprint")
                .and_then(Json::as_str)
                .unwrap_or_default()
                .to_string(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip() {
        let requests = [
            Request::Query {
                atom: "Dist(\"a\", _)".into(),
            },
            Request::Facts { predicate: None },
            Request::Facts {
                predicate: Some("Path".into()),
            },
            Request::Explain {
                atom: "Path(1, 3)".into(),
            },
            Request::Metrics,
            Request::Trace,
            Request::Status,
            Request::Stats { prometheus: false },
            Request::Stats { prometheus: true },
            Request::Update {
                text: "rel Edge(x: Int, y: Int);\nEdge(1, 2).\n".into(),
                timeout_secs: Some(2.5),
            },
            Request::Compact,
            Request::Shutdown,
        ];
        for req in requests {
            let wire = req.to_json();
            assert_eq!(Request::from_json(wire.as_bytes()).expect("parses"), req);
        }
    }

    #[test]
    fn replies_round_trip() {
        let replies = [
            Reply {
                epoch: 7,
                body: ReplyBody::Answers(vec!["Dist(\"a\", MinCost(0))".into()]),
            },
            Reply {
                epoch: 7,
                body: ReplyBody::Facts(vec!["Edge(1, 2)".into(), "Path(1, 2)".into()]),
            },
            Reply {
                epoch: 1,
                body: ReplyBody::Explain("Path(1, 2)\n└─ Edge(1, 2)\n".into()),
            },
            Reply {
                epoch: 2,
                body: ReplyBody::Status(Status {
                    facts: 10,
                    updates_applied: 1,
                    batches_applied: 1,
                    queries_served: 3,
                    pending_updates: 0,
                    unapplied_durable: 0,
                    uptime_secs: 1.25,
                }),
            },
            Reply {
                epoch: 2,
                // Raw splice round-trips through a parse + re-render, so
                // the fixture must already be in canonical compact form.
                body: ReplyBody::Stats("{\"schema\":\"flixd-stats/1\",\"epoch\":2}".to_string()),
            },
            Reply {
                epoch: 2,
                body: ReplyBody::Prom(
                    "flixd_epoch 2\nflixd_requests_total{op=\"query\"} 1\n".into(),
                ),
            },
            Reply {
                epoch: 3,
                body: ReplyBody::Updated {
                    applied: 2,
                    batched: 1,
                },
            },
            Reply {
                epoch: 3,
                body: ReplyBody::Compacted { frames_absorbed: 5 },
            },
            Reply {
                epoch: 3,
                body: ReplyBody::Stopping,
            },
            Reply {
                epoch: 3,
                body: ReplyBody::Error {
                    code: ErrorCode::Busy,
                    message: "update queue is full".into(),
                },
            },
        ];
        for reply in replies {
            let wire = reply.to_json();
            assert_eq!(Reply::from_json(wire.as_bytes()).expect("parses"), reply);
        }
    }

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"{\"op\":\"status\"}").expect("writes");
        write_frame(&mut buf, b"").expect("writes");
        let mut r = &buf[..];
        assert_eq!(
            read_frame(&mut r).expect("reads").as_deref(),
            Some(&b"{\"op\":\"status\"}"[..])
        );
        assert_eq!(
            read_frame(&mut r).expect("reads").as_deref(),
            Some(&b""[..])
        );
        assert_eq!(read_frame(&mut r).expect("reads"), None);
    }

    #[test]
    fn oversized_frame_is_rejected_before_allocation() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(u32::MAX).to_be_bytes());
        assert!(read_frame(&mut &buf[..]).is_err());
    }

    #[test]
    fn truncated_frame_is_an_error_not_eof() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"abcdef").expect("writes");
        buf.truncate(buf.len() - 2);
        assert!(read_frame(&mut &buf[..]).is_err());
    }
}
