//! Service telemetry: a lock-light registry of request, connection, and
//! write-path metrics, rendered on demand as a `flixd-stats/1` JSON
//! document or a Prometheus-style text exposition.
//!
//! The design follows the discipline the solver's own profiles
//! established (DESIGN.md §10): recording must be cheap enough to leave
//! on in production, strategy-invariant, and *zero-cost when off*. Every
//! counter is an [`AtomicU64`] bumped with relaxed ordering; latencies
//! and batch shapes go into fixed-size log-scale [`Histogram`]s (no
//! allocation, no locks on the record path); the only mutexes guard the
//! two rarely-touched wall-clock anchors (last publish, carry-over
//! start). When the registry is built disabled
//! ([`Telemetry::disabled`]), every record method returns after one
//! branch — the compiled-off path the idle-overhead A/B in CI pins
//! against the instrumented one.
//!
//! Rendering is pull-only: nothing is aggregated in the background. A
//! `stats` request walks the registry once and renders what it finds,
//! so an idle daemon does no telemetry work at all.

use crate::json::Json;
use crate::proto::ErrorCode;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// The schema identifier carried by every rendered stats document.
pub const STATS_SCHEMA: &str = "flixd-stats/1";

/// Number of log-scale histogram buckets. Bucket `i` counts samples `v`
/// with `2^i <= v < 2^(i+1)` (bucket 0 also takes `v <= 1`); the top
/// bucket saturates, absorbing everything at or above `2^39` — about
/// 9 minutes when the unit is nanoseconds, far beyond any sane request.
pub const HISTOGRAM_BUCKETS: usize = 40;

/// A fixed-bucket log-scale histogram recording `u64` samples
/// (typically nanoseconds) from any number of threads concurrently.
///
/// Recording order is bucket → sum → count, and snapshotting reads
/// count *first*: any snapshot therefore observes
/// `count <= sum(buckets)` — a sample is never counted before it is
/// bucketed — and once recorders quiesce the two are equal. The
/// concurrent-stress test in `tests/telemetry.rs` pins this invariant.
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// The bucket a sample lands in: 0 for `v <= 1`, otherwise
/// `floor(log2 v)`, clamped to the saturating top bucket.
pub fn bucket_index(v: u64) -> usize {
    if v <= 1 {
        0
    } else {
        ((63 - v.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
    }
}

/// The exclusive upper bound of bucket `i` (`None` for the saturating
/// top bucket, whose bound is +∞).
pub fn bucket_upper_bound(i: usize) -> Option<u64> {
    if i + 1 >= HISTOGRAM_BUCKETS {
        None
    } else {
        Some(1u64 << (i + 1))
    }
}

impl Histogram {
    /// Records one sample. Wait-free; safe from any thread.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
        // Count last, so a concurrent snapshot (which reads count
        // first) never sees a counted-but-unbucketed sample.
        self.count.fetch_add(1, Ordering::Release);
    }

    /// Takes a point-in-time copy. Reads `count` before the buckets, so
    /// `snapshot.count <= snapshot.buckets.iter().sum()` always holds.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count.load(Ordering::Acquire);
        HistogramSnapshot {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

/// A point-in-time copy of a [`Histogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Samples recorded (bucketed *and* counted) at snapshot time.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Largest sample seen.
    pub max: u64,
    /// Per-bucket counts; bucket bounds per [`bucket_upper_bound`].
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Estimates the `q`-quantile (`0.0..=1.0`) from the bucket counts:
    /// the upper bound of the first bucket at which the cumulative
    /// count reaches `q * count`. `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let target = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some(bucket_upper_bound(i).unwrap_or(self.max));
            }
        }
        Some(self.max)
    }

    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("count".into(), Json::Num(self.count as f64)),
            ("sum".into(), Json::Num(self.sum as f64)),
            ("max".into(), Json::Num(self.max as f64)),
            (
                "buckets".into(),
                Json::Arr(self.buckets.iter().map(|&c| Json::Num(c as f64)).collect()),
            ),
        ])
    }
}

/// The request vocabulary, one slot per protocol op, used to index the
/// per-kind counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestKind {
    /// The `query` op.
    Query,
    /// The `facts` op.
    Facts,
    /// The `explain` op.
    Explain,
    /// The `metrics` op.
    Metrics,
    /// The `trace` op.
    Trace,
    /// The `status` op.
    Status,
    /// The `stats` op (this telemetry layer's own endpoint).
    Stats,
    /// The `update` op.
    Update,
    /// The `compact` op.
    Compact,
    /// The `shutdown` op.
    Shutdown,
}

impl RequestKind {
    /// Every kind, in wire-name order — the iteration order of the
    /// rendered document.
    pub const ALL: [RequestKind; 10] = [
        RequestKind::Query,
        RequestKind::Facts,
        RequestKind::Explain,
        RequestKind::Metrics,
        RequestKind::Trace,
        RequestKind::Status,
        RequestKind::Stats,
        RequestKind::Update,
        RequestKind::Compact,
        RequestKind::Shutdown,
    ];

    /// The op name as it appears on the wire and in rendered stats.
    pub fn as_str(&self) -> &'static str {
        match self {
            RequestKind::Query => "query",
            RequestKind::Facts => "facts",
            RequestKind::Explain => "explain",
            RequestKind::Metrics => "metrics",
            RequestKind::Trace => "trace",
            RequestKind::Status => "status",
            RequestKind::Stats => "stats",
            RequestKind::Update => "update",
            RequestKind::Compact => "compact",
            RequestKind::Shutdown => "shutdown",
        }
    }

    fn index(&self) -> usize {
        *self as usize
    }
}

/// All error codes, in wire order, for the per-kind error counters.
const ERROR_CODES: [ErrorCode; 11] = [
    ErrorCode::Proto,
    ErrorCode::Parse,
    ErrorCode::Query,
    ErrorCode::Absent,
    ErrorCode::Delta,
    ErrorCode::Budget,
    ErrorCode::Solve,
    ErrorCode::Persist,
    ErrorCode::Unsupported,
    ErrorCode::Busy,
    ErrorCode::ShuttingDown,
];

fn error_index(code: ErrorCode) -> usize {
    ERROR_CODES
        .iter()
        .position(|c| *c == code)
        .expect("every code is listed")
}

/// Per-request-kind counters: volume, error codes, payload bytes, and a
/// latency histogram.
#[derive(Debug, Default)]
struct RequestStats {
    count: AtomicU64,
    errors: [AtomicU64; 11],
    bytes_in: AtomicU64,
    bytes_out: AtomicU64,
    latency_ns: Histogram,
}

/// What one recorded request looked like, handed to
/// [`Telemetry::record_request`] by the connection loop.
#[derive(Debug, Clone, Copy)]
pub struct RequestSample {
    /// Which op was served.
    pub kind: RequestKind,
    /// Wall time from frame decode to reply render, nanoseconds.
    pub latency_ns: u64,
    /// Request frame payload size.
    pub bytes_in: u64,
    /// Reply frame payload size.
    pub bytes_out: u64,
    /// The error code of the reply, when it was an error.
    pub error: Option<ErrorCode>,
}

/// What startup recovery found, copied out of the core
/// [`RecoveryReport`](flix_core::RecoveryReport) once, before serving.
#[derive(Debug, Clone, Default)]
pub struct RecoveryStats {
    /// Recovery ran at all (the server was started with persistence).
    pub performed: bool,
    /// The snapshot loaded and verified cleanly.
    pub snapshot_loaded: bool,
    /// The base model came from a scratch solve.
    pub scratch_solve: bool,
    /// Checksummed frames replayed from the WAL.
    pub wal_frames_replayed: u64,
    /// Delta entries those frames carried.
    pub wal_entries_replayed: u64,
    /// Bytes truncated from a corrupt WAL tail.
    pub wal_bytes_dropped: u64,
}

/// Live service-level gauges the registry does not own — the caller
/// (the server) passes them at render time so the document is one
/// consistent pull.
#[derive(Debug, Clone, Copy, Default)]
pub struct StatsContext {
    /// The currently published epoch.
    pub epoch: u64,
    /// Total facts in the resident model.
    pub facts: u64,
    /// Update requests queued or mid-resume.
    pub pending_updates: u64,
    /// Durable delta entries not yet published.
    pub unapplied_durable: u64,
    /// Events written to the JSONL log so far.
    pub events_logged: u64,
    /// Events dropped because the logger channel was full.
    pub events_dropped: u64,
}

/// The telemetry registry. One per server, shared by every connection
/// thread and the writer.
#[derive(Debug)]
pub struct Telemetry {
    enabled: bool,
    started: Instant,
    // Connection lifecycle.
    connections_opened: AtomicU64,
    connections_closed: AtomicU64,
    // Per-kind request counters, indexed by `RequestKind::index`.
    requests: [RequestStats; 10],
    // Frames that never became a request (bad JSON, unknown op).
    proto_errors: AtomicU64,
    slow_queries: AtomicU64,
    metrics_cache_hits: AtomicU64,
    // Writer thread.
    batches_applied: AtomicU64,
    batches_failed: AtomicU64,
    updates_applied: AtomicU64,
    entries_per_batch: Histogram,
    riders_per_batch: Histogram,
    resume_ns: Histogram,
    wal_append_ns: Histogram,
    publish_gap_ns: Histogram,
    last_publish: Mutex<Option<Instant>>,
    carryover_since: Mutex<Option<Instant>>,
    // Compaction & recovery.
    compactions: AtomicU64,
    compaction_failures: AtomicU64,
    recovery: RecoveryStats,
}

impl Telemetry {
    /// An enabled registry, optionally primed with what startup
    /// recovery found.
    pub fn new(recovery: RecoveryStats) -> Telemetry {
        Telemetry::build(true, recovery)
    }

    /// The compiled-off path: every record method returns after one
    /// branch, and `stats` requests are refused upstream.
    pub fn disabled() -> Telemetry {
        Telemetry::build(false, RecoveryStats::default())
    }

    fn build(enabled: bool, recovery: RecoveryStats) -> Telemetry {
        Telemetry {
            enabled,
            started: Instant::now(),
            connections_opened: AtomicU64::new(0),
            connections_closed: AtomicU64::new(0),
            requests: Default::default(),
            proto_errors: AtomicU64::new(0),
            slow_queries: AtomicU64::new(0),
            metrics_cache_hits: AtomicU64::new(0),
            batches_applied: AtomicU64::new(0),
            batches_failed: AtomicU64::new(0),
            updates_applied: AtomicU64::new(0),
            entries_per_batch: Histogram::default(),
            riders_per_batch: Histogram::default(),
            resume_ns: Histogram::default(),
            wal_append_ns: Histogram::default(),
            publish_gap_ns: Histogram::default(),
            last_publish: Mutex::new(None),
            carryover_since: Mutex::new(None),
            compactions: AtomicU64::new(0),
            compaction_failures: AtomicU64::new(0),
            recovery,
        }
    }

    /// Whether recording is live (`false` for [`Telemetry::disabled`]).
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// A connection was accepted.
    pub fn connection_opened(&self) {
        if !self.enabled {
            return;
        }
        self.connections_opened.fetch_add(1, Ordering::Relaxed);
    }

    /// A connection thread finished.
    pub fn connection_closed(&self) {
        if !self.enabled {
            return;
        }
        self.connections_closed.fetch_add(1, Ordering::Relaxed);
    }

    /// One request was served (successfully or with an error reply).
    pub fn record_request(&self, sample: RequestSample) {
        if !self.enabled {
            return;
        }
        let slot = &self.requests[sample.kind.index()];
        slot.count.fetch_add(1, Ordering::Relaxed);
        slot.bytes_in.fetch_add(sample.bytes_in, Ordering::Relaxed);
        slot.bytes_out
            .fetch_add(sample.bytes_out, Ordering::Relaxed);
        slot.latency_ns.record(sample.latency_ns);
        if let Some(code) = sample.error {
            slot.errors[error_index(code)].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// A frame arrived that never parsed into a request.
    pub fn record_proto_error(&self) {
        if !self.enabled {
            return;
        }
        self.proto_errors.fetch_add(1, Ordering::Relaxed);
    }

    /// A read op exceeded the slow-query threshold.
    pub fn record_slow_query(&self) {
        if !self.enabled {
            return;
        }
        self.slow_queries.fetch_add(1, Ordering::Relaxed);
    }

    /// A `metrics` request was answered from the per-epoch cache.
    pub fn record_metrics_cache_hit(&self) {
        if !self.enabled {
            return;
        }
        self.metrics_cache_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// The writer published a batch: `riders` update requests folded
    /// into `entries` delta entries, resumed in `resume_ns`.
    pub fn record_batch_applied(&self, riders: u64, entries: u64, resume_ns: u64) {
        if !self.enabled {
            return;
        }
        self.batches_applied.fetch_add(1, Ordering::Relaxed);
        self.updates_applied.fetch_add(riders, Ordering::Relaxed);
        self.riders_per_batch.record(riders);
        self.entries_per_batch.record(entries);
        self.resume_ns.record(resume_ns);
        let mut last = self.last_publish.lock().expect("publish clock");
        let now = Instant::now();
        if let Some(prev) = last.replace(now) {
            self.publish_gap_ns
                .record(now.duration_since(prev).as_nanos() as u64);
        }
        *self.carryover_since.lock().expect("carryover clock") = None;
    }

    /// A batch's resume failed; its entries stay as durable carry-over.
    pub fn record_batch_failed(&self) {
        if !self.enabled {
            return;
        }
        self.batches_failed.fetch_add(1, Ordering::Relaxed);
        let mut since = self.carryover_since.lock().expect("carryover clock");
        // Keep the *oldest* debt's timestamp: age measures how long any
        // durable entry has waited, not when the latest failure hit.
        since.get_or_insert_with(Instant::now);
    }

    /// One WAL append (including its fsync) took `ns`.
    pub fn record_wal_append(&self, ns: u64) {
        if !self.enabled {
            return;
        }
        self.wal_append_ns.record(ns);
    }

    /// A compaction finished.
    pub fn record_compaction(&self, ok: bool) {
        if !self.enabled {
            return;
        }
        if ok {
            self.compactions.fetch_add(1, Ordering::Relaxed);
        } else {
            self.compaction_failures.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Seconds the oldest unapplied durable entry has waited (0 when
    /// there is no carry-over debt).
    pub fn carryover_age_secs(&self) -> f64 {
        self.carryover_since
            .lock()
            .expect("carryover clock")
            .map(|at| at.elapsed().as_secs_f64())
            .unwrap_or(0.0)
    }

    fn request_json(&self, kind: RequestKind) -> Json {
        let slot = &self.requests[kind.index()];
        let errors: Vec<(String, Json)> = ERROR_CODES
            .iter()
            .enumerate()
            .filter_map(|(i, code)| {
                let n = slot.errors[i].load(Ordering::Relaxed);
                (n > 0).then(|| (code.as_str().to_string(), Json::Num(n as f64)))
            })
            .collect();
        Json::Obj(vec![
            (
                "count".into(),
                Json::Num(slot.count.load(Ordering::Relaxed) as f64),
            ),
            (
                "bytes_in".into(),
                Json::Num(slot.bytes_in.load(Ordering::Relaxed) as f64),
            ),
            (
                "bytes_out".into(),
                Json::Num(slot.bytes_out.load(Ordering::Relaxed) as f64),
            ),
            ("errors".into(), Json::Obj(errors)),
            ("latency_ns".into(), slot.latency_ns.snapshot().to_json()),
        ])
    }

    /// Renders the whole registry as a `flixd-stats/1` JSON document.
    /// The schema is specified in DESIGN.md §17.6.
    pub fn render_stats_json(&self, cx: &StatsContext) -> String {
        let opened = self.connections_opened.load(Ordering::Relaxed);
        let closed = self.connections_closed.load(Ordering::Relaxed);
        let requests: Vec<(String, Json)> = RequestKind::ALL
            .iter()
            .map(|kind| (kind.as_str().to_string(), self.request_json(*kind)))
            .collect();
        let writer = Json::Obj(vec![
            (
                "batches_applied".into(),
                Json::Num(self.batches_applied.load(Ordering::Relaxed) as f64),
            ),
            (
                "batches_failed".into(),
                Json::Num(self.batches_failed.load(Ordering::Relaxed) as f64),
            ),
            (
                "updates_applied".into(),
                Json::Num(self.updates_applied.load(Ordering::Relaxed) as f64),
            ),
            (
                "pending_updates".into(),
                Json::Num(cx.pending_updates as f64),
            ),
            (
                "unapplied_durable".into(),
                Json::Num(cx.unapplied_durable as f64),
            ),
            (
                "carryover_age_secs".into(),
                Json::Num(self.carryover_age_secs()),
            ),
            (
                "entries_per_batch".into(),
                self.entries_per_batch.snapshot().to_json(),
            ),
            (
                "riders_per_batch".into(),
                self.riders_per_batch.snapshot().to_json(),
            ),
            ("resume_ns".into(), self.resume_ns.snapshot().to_json()),
            (
                "wal_append_ns".into(),
                self.wal_append_ns.snapshot().to_json(),
            ),
            (
                "publish_gap_ns".into(),
                self.publish_gap_ns.snapshot().to_json(),
            ),
        ]);
        let recovery = Json::Obj(vec![
            ("performed".into(), Json::Bool(self.recovery.performed)),
            (
                "snapshot_loaded".into(),
                Json::Bool(self.recovery.snapshot_loaded),
            ),
            (
                "scratch_solve".into(),
                Json::Bool(self.recovery.scratch_solve),
            ),
            (
                "wal_frames_replayed".into(),
                Json::Num(self.recovery.wal_frames_replayed as f64),
            ),
            (
                "wal_entries_replayed".into(),
                Json::Num(self.recovery.wal_entries_replayed as f64),
            ),
            (
                "wal_bytes_dropped".into(),
                Json::Num(self.recovery.wal_bytes_dropped as f64),
            ),
        ]);
        Json::Obj(vec![
            ("schema".into(), Json::Str(STATS_SCHEMA.into())),
            ("epoch".into(), Json::Num(cx.epoch as f64)),
            (
                "uptime_secs".into(),
                Json::Num(self.started.elapsed().as_secs_f64()),
            ),
            ("facts".into(), Json::Num(cx.facts as f64)),
            (
                "connections".into(),
                Json::Obj(vec![
                    ("opened".into(), Json::Num(opened as f64)),
                    ("closed".into(), Json::Num(closed as f64)),
                    (
                        "active".into(),
                        Json::Num(opened.saturating_sub(closed) as f64),
                    ),
                ]),
            ),
            ("requests".into(), Json::Obj(requests)),
            (
                "proto_errors".into(),
                Json::Num(self.proto_errors.load(Ordering::Relaxed) as f64),
            ),
            (
                "slow_queries".into(),
                Json::Num(self.slow_queries.load(Ordering::Relaxed) as f64),
            ),
            (
                "metrics_cache_hits".into(),
                Json::Num(self.metrics_cache_hits.load(Ordering::Relaxed) as f64),
            ),
            ("writer".into(), writer),
            (
                "compaction".into(),
                Json::Obj(vec![
                    (
                        "count".into(),
                        Json::Num(self.compactions.load(Ordering::Relaxed) as f64),
                    ),
                    (
                        "failed".into(),
                        Json::Num(self.compaction_failures.load(Ordering::Relaxed) as f64),
                    ),
                ]),
            ),
            ("recovery".into(), recovery),
            (
                "events".into(),
                Json::Obj(vec![
                    ("logged".into(), Json::Num(cx.events_logged as f64)),
                    ("dropped".into(), Json::Num(cx.events_dropped as f64)),
                ]),
            ),
        ])
        .render()
    }

    /// Renders the registry as a Prometheus-style text exposition —
    /// the same numbers as [`Telemetry::render_stats_json`], shaped for
    /// a scrape endpoint (`flixr --connect S --stats --prom`).
    pub fn render_prometheus(&self, cx: &StatsContext) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let opened = self.connections_opened.load(Ordering::Relaxed);
        let closed = self.connections_closed.load(Ordering::Relaxed);
        let _ = writeln!(out, "# TYPE flixd_uptime_seconds gauge");
        let _ = writeln!(
            out,
            "flixd_uptime_seconds {}",
            self.started.elapsed().as_secs_f64()
        );
        let _ = writeln!(out, "# TYPE flixd_epoch gauge\nflixd_epoch {}", cx.epoch);
        let _ = writeln!(
            out,
            "# TYPE flixd_resident_facts gauge\nflixd_resident_facts {}",
            cx.facts
        );
        let _ = writeln!(
            out,
            "# TYPE flixd_connections_opened_total counter\n\
             flixd_connections_opened_total {opened}"
        );
        let _ = writeln!(
            out,
            "# TYPE flixd_connections_active gauge\nflixd_connections_active {}",
            opened.saturating_sub(closed)
        );
        let _ = writeln!(out, "# TYPE flixd_requests_total counter");
        for kind in RequestKind::ALL {
            let slot = &self.requests[kind.index()];
            let _ = writeln!(
                out,
                "flixd_requests_total{{op=\"{}\"}} {}",
                kind.as_str(),
                slot.count.load(Ordering::Relaxed)
            );
        }
        let _ = writeln!(out, "# TYPE flixd_request_errors_total counter");
        for kind in RequestKind::ALL {
            let slot = &self.requests[kind.index()];
            for (i, code) in ERROR_CODES.iter().enumerate() {
                let n = slot.errors[i].load(Ordering::Relaxed);
                if n > 0 {
                    let _ = writeln!(
                        out,
                        "flixd_request_errors_total{{op=\"{}\",code=\"{}\"}} {n}",
                        kind.as_str(),
                        code.as_str()
                    );
                }
            }
        }
        let _ = writeln!(out, "# TYPE flixd_request_bytes_total counter");
        for kind in RequestKind::ALL {
            let slot = &self.requests[kind.index()];
            let _ = writeln!(
                out,
                "flixd_request_bytes_total{{op=\"{}\",direction=\"in\"}} {}",
                kind.as_str(),
                slot.bytes_in.load(Ordering::Relaxed)
            );
            let _ = writeln!(
                out,
                "flixd_request_bytes_total{{op=\"{}\",direction=\"out\"}} {}",
                kind.as_str(),
                slot.bytes_out.load(Ordering::Relaxed)
            );
        }
        let _ = writeln!(out, "# TYPE flixd_request_latency_seconds histogram");
        for kind in RequestKind::ALL {
            let snap = self.requests[kind.index()].latency_ns.snapshot();
            write_prom_histogram(
                &mut out,
                "flixd_request_latency_seconds",
                kind.as_str(),
                &snap,
            );
        }
        let _ = writeln!(
            out,
            "# TYPE flixd_batches_applied_total counter\nflixd_batches_applied_total {}",
            self.batches_applied.load(Ordering::Relaxed)
        );
        let _ = writeln!(
            out,
            "# TYPE flixd_batches_failed_total counter\nflixd_batches_failed_total {}",
            self.batches_failed.load(Ordering::Relaxed)
        );
        let _ = writeln!(
            out,
            "# TYPE flixd_updates_applied_total counter\nflixd_updates_applied_total {}",
            self.updates_applied.load(Ordering::Relaxed)
        );
        let _ = writeln!(
            out,
            "# TYPE flixd_pending_updates gauge\nflixd_pending_updates {}",
            cx.pending_updates
        );
        let _ = writeln!(
            out,
            "# TYPE flixd_unapplied_durable gauge\nflixd_unapplied_durable {}",
            cx.unapplied_durable
        );
        let _ = writeln!(
            out,
            "# TYPE flixd_carryover_age_seconds gauge\nflixd_carryover_age_seconds {}",
            self.carryover_age_secs()
        );
        let _ = writeln!(out, "# TYPE flixd_resume_seconds histogram");
        write_prom_histogram(
            &mut out,
            "flixd_resume_seconds",
            "",
            &self.resume_ns.snapshot(),
        );
        let _ = writeln!(out, "# TYPE flixd_wal_append_seconds histogram");
        write_prom_histogram(
            &mut out,
            "flixd_wal_append_seconds",
            "",
            &self.wal_append_ns.snapshot(),
        );
        let _ = writeln!(
            out,
            "# TYPE flixd_slow_queries_total counter\nflixd_slow_queries_total {}",
            self.slow_queries.load(Ordering::Relaxed)
        );
        let _ = writeln!(
            out,
            "# TYPE flixd_compactions_total counter\nflixd_compactions_total {}",
            self.compactions.load(Ordering::Relaxed)
        );
        let _ = writeln!(
            out,
            "# TYPE flixd_events_dropped_total counter\nflixd_events_dropped_total {}",
            cx.events_dropped
        );
        out
    }
}

/// Writes one Prometheus histogram (cumulative `_bucket` lines plus
/// `_sum`/`_count`), converting nanosecond samples to seconds. An empty
/// `op` label renders unlabeled series.
fn write_prom_histogram(out: &mut String, name: &str, op: &str, snap: &HistogramSnapshot) {
    use std::fmt::Write as _;
    let label = |le: &str| {
        if op.is_empty() {
            format!("{{le=\"{le}\"}}")
        } else {
            format!("{{op=\"{op}\",le=\"{le}\"}}")
        }
    };
    let plain = if op.is_empty() {
        String::new()
    } else {
        format!("{{op=\"{op}\"}}")
    };
    let mut cumulative = 0u64;
    for (i, &c) in snap.buckets.iter().enumerate() {
        cumulative += c;
        // Only emit the buckets that move the cumulative count (plus
        // +Inf below): full 40-bucket series per op would be noise.
        if c == 0 {
            continue;
        }
        let le = match bucket_upper_bound(i) {
            Some(ns) => format!("{}", ns as f64 / 1e9),
            None => "+Inf".into(),
        };
        let _ = writeln!(out, "{name}_bucket{} {cumulative}", label(&le));
    }
    let _ = writeln!(out, "{name}_bucket{} {cumulative}", label("+Inf"));
    let _ = writeln!(out, "{name}_sum{plain} {}", snap.sum as f64 / 1e9);
    let _ = writeln!(out, "{name}_count{plain} {}", snap.count);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_duration_samples_land_in_bucket_zero() {
        let h = Histogram::default();
        h.record(0);
        h.record(1);
        let snap = h.snapshot();
        assert_eq!(snap.count, 2);
        assert_eq!(snap.sum, 1);
        assert_eq!(snap.buckets[0], 2);
        assert_eq!(snap.buckets.iter().sum::<u64>(), 2);
    }

    #[test]
    fn top_bucket_saturates() {
        let h = Histogram::default();
        h.record(u64::MAX);
        h.record(1u64 << 39);
        h.record(1u64 << 62);
        let snap = h.snapshot();
        assert_eq!(snap.buckets[HISTOGRAM_BUCKETS - 1], 3);
        assert_eq!(snap.max, u64::MAX);
        assert_eq!(snap.count, 3);
    }

    #[test]
    fn bucket_bounds_are_powers_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 1);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(1023), 9);
        assert_eq!(bucket_index(1024), 10);
        assert_eq!(bucket_upper_bound(0), Some(2));
        assert_eq!(bucket_upper_bound(10), Some(2048));
        assert_eq!(bucket_upper_bound(HISTOGRAM_BUCKETS - 1), None);
    }

    #[test]
    fn quantiles_walk_the_cumulative_counts() {
        let h = Histogram::default();
        for _ in 0..90 {
            h.record(100); // bucket 6, upper bound 128
        }
        for _ in 0..10 {
            h.record(1_000_000); // bucket 19
        }
        let snap = h.snapshot();
        assert_eq!(snap.quantile(0.5), Some(128));
        assert_eq!(snap.quantile(0.99), Some(1 << 20));
        assert_eq!(Histogram::default().snapshot().quantile(0.5), None);
    }

    #[test]
    fn disabled_registry_records_nothing() {
        let t = Telemetry::disabled();
        t.connection_opened();
        t.record_request(RequestSample {
            kind: RequestKind::Query,
            latency_ns: 123,
            bytes_in: 10,
            bytes_out: 20,
            error: None,
        });
        t.record_batch_applied(1, 2, 3);
        assert!(!t.enabled());
        assert_eq!(t.connections_opened.load(Ordering::Relaxed), 0);
        assert_eq!(t.batches_applied.load(Ordering::Relaxed), 0);
        assert_eq!(t.requests[0].count.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn stats_document_carries_the_schema_and_counters() {
        let t = Telemetry::new(RecoveryStats::default());
        t.connection_opened();
        t.record_request(RequestSample {
            kind: RequestKind::Query,
            latency_ns: 1_000,
            bytes_in: 32,
            bytes_out: 64,
            error: None,
        });
        t.record_request(RequestSample {
            kind: RequestKind::Query,
            latency_ns: 2_000,
            bytes_in: 32,
            bytes_out: 48,
            error: Some(ErrorCode::Parse),
        });
        let doc = t.render_stats_json(&StatsContext {
            epoch: 3,
            facts: 42,
            ..StatsContext::default()
        });
        let parsed = crate::json::parse(&doc).expect("stats render parses");
        assert_eq!(
            parsed.get("schema").and_then(Json::as_str),
            Some(STATS_SCHEMA)
        );
        assert_eq!(parsed.get("epoch").and_then(Json::as_u64), Some(3));
        let query = parsed
            .get("requests")
            .and_then(|r| r.get("query"))
            .expect("query slot");
        assert_eq!(query.get("count").and_then(Json::as_u64), Some(2));
        assert_eq!(query.get("bytes_in").and_then(Json::as_u64), Some(64));
        assert_eq!(
            query
                .get("errors")
                .and_then(|e| e.get("parse"))
                .and_then(Json::as_u64),
            Some(1)
        );
        let latency = query.get("latency_ns").expect("latency histogram");
        assert_eq!(latency.get("count").and_then(Json::as_u64), Some(2));
        assert_eq!(latency.get("sum").and_then(Json::as_u64), Some(3_000));
    }

    #[test]
    fn prometheus_exposition_includes_counters_and_histograms() {
        let t = Telemetry::new(RecoveryStats::default());
        t.record_request(RequestSample {
            kind: RequestKind::Query,
            latency_ns: 1_000,
            bytes_in: 32,
            bytes_out: 64,
            error: None,
        });
        t.record_batch_applied(2, 5, 10_000);
        let text = t.render_prometheus(&StatsContext::default());
        assert!(
            text.contains("flixd_requests_total{op=\"query\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("flixd_request_latency_seconds_count{op=\"query\"} 1"),
            "{text}"
        );
        assert!(text.contains("le=\"+Inf\""), "{text}");
        assert!(text.contains("flixd_batches_applied_total 1"), "{text}");
        assert!(text.contains("flixd_updates_applied_total 2"), "{text}");
    }
}
