//! Language hooks: the parsing and compilation callbacks the daemon
//! needs but cannot link against directly.
//!
//! `flixd` sits *below* `flix-lang` in the dependency graph (the
//! `flixr` client mode lives in `flix-lang`, and `flix-bench` — a
//! `flix-lang` dependency — benchmarks the daemon), so the surface
//! language cannot be a dependency of this crate. Everything that needs
//! the language — turning `--query` atoms into demand patterns, update
//! files into deltas — is injected here as boxed closures. The `flixd`
//! binary (in `flix-lang`) wires them to the real compiler; tests wire
//! tiny hand-rolled parsers.

use flix_core::{Delta, Value};

/// A parsed query pattern: predicate name plus one binding per column
/// (`None` is a wildcard).
pub type QueryPattern = (String, Vec<Option<Value>>);

/// A parsed ground atom: predicate name plus one value per column.
pub type GroundAtom = (String, Vec<Value>);

/// Parses a `--query`-syntax pattern such as `Dist("a", _)`.
pub type ParseQueryFn = dyn Fn(&str) -> Result<QueryPattern, String> + Send + Sync;

/// Parses an `--explain`-syntax ground atom such as `Path(1, 3)`.
pub type ParseAtomFn = dyn Fn(&str) -> Result<GroundAtom, String> + Send + Sync;

/// Compiles `--update`-syntax file text (declarations plus fact,
/// `-Fact(..)`, and `retract Fact(..)` lines) into a [`Delta`].
pub type CompileUpdateFn = dyn Fn(&str) -> Result<Delta, String> + Send + Sync;

/// The language callbacks a [`Server`](crate::Server) runs with.
///
/// Every error string is surfaced to the requesting client verbatim
/// under [`ErrorCode::Parse`](crate::ErrorCode::Parse).
pub struct Hooks {
    /// Parses query patterns for the `query` op.
    pub parse_query: Box<ParseQueryFn>,
    /// Parses ground atoms for the `explain` op.
    pub parse_atom: Box<ParseAtomFn>,
    /// Compiles update text for the `update` op.
    pub compile_update: Box<CompileUpdateFn>,
}

impl std::fmt::Debug for Hooks {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Hooks").finish_non_exhaustive()
    }
}
