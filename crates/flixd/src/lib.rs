//! flixd — a resident fixed-point service for FLIX models.
//!
//! Solving a large program from scratch to answer one query wastes the
//! fixed point: the model is discarded the moment the process exits,
//! and the next question pays the full solve again. `flixd` keeps the
//! solved model *resident*: a daemon loads a program (plus its snapshot
//! and write-ahead log) once, solves or recovers it, and then serves
//! queries and live updates over a Unix domain socket for as long as it
//! runs.
//!
//! The concurrency contract is *snapshot isolation by epoch*:
//!
//! * every published fixed point gets a monotonically increasing epoch
//!   number, starting at 1 for the startup model;
//! * reads pin the current epoch's [`Arc<Solution>`][flix_core::Solution]
//!   for their whole lifetime and never observe a mid-update state —
//!   the reply names the epoch it was served from;
//! * updates are serialized through one writer thread that batches
//!   concurrently queued deltas, appends the combined delta to the
//!   write-ahead log *first* (log-then-apply), resumes the solver from
//!   the previous fixed point, and atomically publishes the result as
//!   the next epoch.
//!
//! The wire protocol (`flixd/1`, length-prefixed JSON frames) is
//! implemented std-only in [`proto`] and specified in DESIGN.md §17;
//! [`Client`] is the matching blocking client used by
//! `flixr --connect`. The daemon binary itself lives in `flix-lang`
//! (which owns the surface-language compiler) and injects parsing via
//! [`Hooks`] — this crate deliberately sits just above `flix-core` so
//! benchmarks and the CLI can both build on it.
//!
//! # Example
//!
//! ```
//! use flix_core::{Delta, ProgramBuilder, Value};
//! use flixd::{Client, Hooks, Reply, ReplyBody, Request, Server, ServerConfig};
//! use std::sync::Arc;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = ProgramBuilder::new();
//! let edge = b.relation("Edge", 2);
//! b.fact(edge, vec![1.into(), 2.into()]);
//! let program = Arc::new(b.build()?);
//!
//! let dir = std::env::temp_dir().join(format!("flixd-doc-{}", std::process::id()));
//! std::fs::create_dir_all(&dir)?;
//! let server = Server::start(
//!     Arc::clone(&program),
//!     ServerConfig::new(dir.join("doc.sock")),
//!     Hooks {
//!         parse_query: Box::new(|_| Err("no query parser in this example".into())),
//!         parse_atom: Box::new(|_| Err("no atom parser in this example".into())),
//!         compile_update: Box::new(|_| Ok(Delta::new().insert("Edge", vec![2.into(), 3.into()]))),
//!     },
//! )?;
//!
//! let mut client = Client::connect(server.socket())?;
//! assert_eq!(client.hello().epoch, 1);
//! let reply = client.request(&Request::Facts { predicate: Some("Edge".into()) })?;
//! assert_eq!(reply.body, ReplyBody::Facts(vec!["Edge(1, 2)".into()]));
//!
//! let reply = client.request(&Request::Update { text: String::new(), timeout_secs: None })?;
//! assert_eq!(reply.epoch, 2);
//!
//! client.request(&Request::Shutdown)?;
//! server.join();
//! # std::fs::remove_dir_all(&dir)?;
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod events;
pub mod hooks;
pub mod json;
pub mod proto;
pub mod server;
pub mod telemetry;

pub use client::{Client, ClientError};
pub use events::{EventLevel, EventLogConfig};
pub use hooks::{GroundAtom, Hooks, QueryPattern};
pub use proto::{ErrorCode, Hello, Reply, ReplyBody, Request, Status, MAX_FRAME, PROTOCOL};
pub use server::{Server, ServerConfig, StartError};
pub use telemetry::{Telemetry, STATS_SCHEMA};
