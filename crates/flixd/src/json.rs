//! JSON reading and writing for the `flixd/1` wire protocol.
//!
//! The workspace builds offline with no serialisation dependency, so the
//! protocol layer carries its own reader and writer, mirroring the
//! hand-rolled pair the observability layer uses
//! ([`flix_core::render_metrics_json`] renders, `flix_bench::json`
//! reads). The reader parses the full RFC 8259 grammar into an untyped
//! [`Json`] tree with a recursion-depth guard (a hostile client must not
//! be able to blow the daemon's stack with `[[[[…`); the writer escapes
//! strings per the RFC and can splice a pre-rendered document verbatim
//! ([`Json::Raw`]), which is how `flix-metrics/1` reports and Chrome
//! trace exports ride inside a response without being re-parsed.

use std::fmt::Write as _;

/// Parsed documents deeper than this are rejected — far beyond any
/// legitimate `flixd/1` message (requests nest two or three levels) but
/// low enough that parsing cannot exhaust the stack.
const MAX_DEPTH: usize = 64;

/// An untyped JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number; exact for integers below 2⁵³ (every counter the
    /// protocol carries stays far below that).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
    /// Write-only: a pre-rendered JSON document spliced verbatim into
    /// the output. Never produced by the parser.
    Raw(String),
}

impl Json {
    /// Looks up `key` in an object; `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The contents of a string; `None` on non-strings.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements of an array; `None` on non-arrays.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The boolean value; `None` on non-booleans.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The numeric value; `None` on non-numbers.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric value as a non-negative integer, when it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// Renders the value as compact JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, key);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
            Json::Raw(doc) => out.push_str(doc),
        }
    }
}

/// Escapes and quotes `s` per RFC 8259.
fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a JSON document, requiring it to span the whole input.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos, 0)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing bytes at offset {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    if depth > MAX_DEPTH {
        return Err(format!("nesting exceeds the {MAX_DEPTH}-level limit"));
    }
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos, depth + 1)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at offset {pos}")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at offset {pos}"));
                }
                *pos += 1;
                let value = parse_value(bytes, pos, depth + 1)?;
                fields.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at offset {pos}")),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at offset {pos}"))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|_| "invalid utf-8 in number")?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("invalid number {text:?} at offset {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at offset {pos}"));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let hex = std::str::from_utf8(hex).map_err(|_| "invalid \\u escape")?;
                        let code =
                            u32::from_str_radix(hex, 16).map_err(|_| "invalid \\u escape")?;
                        *pos += 4;
                        // Surrogate pairs: a high surrogate must be
                        // followed by an escaped low surrogate.
                        let c = if (0xD800..0xDC00).contains(&code) {
                            if bytes.get(*pos + 1..*pos + 3) != Some(b"\\u") {
                                return Err("unpaired surrogate".into());
                            }
                            let lo_hex = bytes
                                .get(*pos + 3..*pos + 7)
                                .ok_or("truncated surrogate pair")?;
                            let lo_hex =
                                std::str::from_utf8(lo_hex).map_err(|_| "invalid surrogate")?;
                            let lo =
                                u32::from_str_radix(lo_hex, 16).map_err(|_| "invalid surrogate")?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err("unpaired surrogate".into());
                            }
                            *pos += 6;
                            0x10000 + ((code - 0xD800) << 10) + (lo - 0xDC00)
                        } else {
                            code
                        };
                        out.push(char::from_u32(c).ok_or("invalid \\u escape")?);
                    }
                    _ => return Err(format!("invalid escape at offset {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar.
                let rest =
                    std::str::from_utf8(&bytes[*pos..]).map_err(|_| "invalid utf-8 in string")?;
                let c = rest.chars().next().expect("non-empty");
                if (c as u32) < 0x20 {
                    return Err(format!("unescaped control character at offset {pos}"));
                }
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        let doc = Json::Obj(vec![
            ("op".into(), Json::Str("query".into())),
            ("atom".into(), Json::Str("Dist(\"a\", _)".into())),
            ("n".into(), Json::Num(42.0)),
            (
                "xs".into(),
                Json::Arr(vec![Json::Null, Json::Bool(true), Json::Num(-1.5)]),
            ),
        ]);
        let text = doc.render();
        assert_eq!(parse(&text).expect("parses"), doc);
    }

    #[test]
    fn escapes_and_unescapes() {
        let doc = Json::Str("a\"b\\c\nd\te\u{1}f — π".into());
        assert_eq!(parse(&doc.render()).expect("parses"), doc);
    }

    #[test]
    fn raw_splices_verbatim() {
        let doc = Json::Obj(vec![(
            "metrics".into(),
            Json::Raw("{\"schema\":\"flix-metrics/1\"}".into()),
        )]);
        assert_eq!(
            doc.render(),
            "{\"metrics\":{\"schema\":\"flix-metrics/1\"}}"
        );
    }

    #[test]
    fn depth_bomb_is_rejected() {
        let bomb = "[".repeat(10_000);
        assert!(parse(&bomb).is_err());
    }

    #[test]
    fn junk_is_rejected() {
        for junk in ["", "{", "{\"a\":}", "[1,]", "nul", "\"\\q\"", "1 2"] {
            assert!(parse(junk).is_err(), "{junk:?} should not parse");
        }
    }
}
