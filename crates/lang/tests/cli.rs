//! End-to-end tests of the `flixr` command-line interface.

use std::process::Command;

fn flixr() -> Command {
    Command::new(env!("CARGO_BIN_EXE_flixr"))
}

fn write_temp(name: &str, content: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!("flixr-test-{}-{name}", std::process::id()));
    std::fs::write(&path, content).expect("write temp file");
    path
}

const PATHS: &str = "
    rel Edge(x: Int, y: Int);
    rel Path(x: Int, y: Int);
    Edge(1, 2). Edge(2, 3).
    Path(x, y) :- Edge(x, y).
    Path(x, z) :- Path(x, y), Edge(y, z).
";

#[test]
fn solves_and_prints_deterministically() {
    let file = write_temp("paths.flix", PATHS);
    let output = flixr().arg(&file).output().expect("runs");
    assert!(output.status.success());
    let stdout = String::from_utf8(output.stdout).expect("utf8");
    assert_eq!(
        stdout.lines().collect::<Vec<_>>(),
        vec![
            "Edge(1, 2)",
            "Edge(2, 3)",
            "Path(1, 2)",
            "Path(1, 3)",
            "Path(2, 3)",
        ]
    );
}

#[test]
fn print_filter_limits_output() {
    let file = write_temp("filter.flix", PATHS);
    let output = flixr()
        .args(["--print", "Path"])
        .arg(&file)
        .output()
        .expect("runs");
    let stdout = String::from_utf8(output.stdout).expect("utf8");
    assert!(stdout.lines().all(|l| l.starts_with("Path(")));
    assert_eq!(stdout.lines().count(), 3);
}

#[test]
fn stats_go_to_stderr() {
    let file = write_temp("stats.flix", PATHS);
    let output = flixr().arg("--stats").arg(&file).output().expect("runs");
    let stderr = String::from_utf8(output.stderr).expect("utf8");
    assert!(stderr.contains("rounds:"), "{stderr}");
    assert!(stderr.contains("facts inserted:"), "{stderr}");
}

#[test]
fn multiple_files_are_concatenated() {
    let rules = write_temp(
        "rules.flix",
        "rel Edge(x: Int, y: Int);
         rel Path(x: Int, y: Int);
         Path(x, y) :- Edge(x, y).
         Path(x, z) :- Path(x, y), Edge(y, z).",
    );
    let facts = write_temp("facts.flix", "Edge(7, 8). Edge(8, 9).");
    let output = flixr()
        .args(["--print", "Path"])
        .arg(&rules)
        .arg(&facts)
        .output()
        .expect("runs");
    let stdout = String::from_utf8(output.stdout).expect("utf8");
    assert!(stdout.contains("Path(7, 9)"), "{stdout}");
}

#[test]
fn type_errors_fail_with_diagnostics() {
    let file = write_temp("bad.flix", "rel A(x: Int);\nA(\"nope\").");
    let output = flixr().arg(&file).output().expect("runs");
    assert_eq!(output.status.code(), Some(2), "type errors exit with 2");
    let stderr = String::from_utf8(output.stderr).expect("utf8");
    assert!(stderr.contains("type error"), "{stderr}");
}

#[test]
fn parse_errors_exit_with_code_2() {
    let file = write_temp("syntax.flix", "rel A(x Int;");
    let output = flixr().arg(&file).output().expect("runs");
    assert_eq!(output.status.code(), Some(2));
}

#[test]
fn usage_errors_exit_with_code_1() {
    let output = flixr().arg("--frobnicate").output().expect("runs");
    assert_eq!(output.status.code(), Some(1));
    let output = flixr().args(["--timeout", "-3"]).output().expect("runs");
    assert_eq!(output.status.code(), Some(1));
    let stderr = String::from_utf8(output.stderr).expect("utf8");
    assert!(stderr.contains("positive"), "{stderr}");
}

#[test]
fn zero_threads_is_a_usage_error() {
    let file = write_temp("zero-threads.flix", PATHS);
    let output = flixr()
        .args(["--threads", "0"])
        .arg(&file)
        .output()
        .expect("runs");
    assert_eq!(output.status.code(), Some(1), "--threads 0 exits with 1");
    let stderr = String::from_utf8(output.stderr).expect("utf8");
    assert!(stderr.contains("--threads must be at least 1"), "{stderr}");
    // Nothing was solved or printed.
    assert!(output.stdout.is_empty());
}

#[test]
fn metrics_json_misuse_is_a_usage_error() {
    let file = write_temp("metrics-misuse.flix", PATHS);
    // Missing path entirely.
    let output = flixr()
        .arg(&file)
        .arg("--metrics-json")
        .output()
        .expect("runs");
    assert_eq!(output.status.code(), Some(1));
    let stderr = String::from_utf8(output.stderr).expect("utf8");
    assert!(stderr.contains("requires an output path"), "{stderr}");
    // Next option swallowed as the path.
    let output = flixr()
        .args(["--metrics-json", "--stats"])
        .arg(&file)
        .output()
        .expect("runs");
    assert_eq!(output.status.code(), Some(1));
    let stderr = String::from_utf8(output.stderr).expect("utf8");
    assert!(stderr.contains("got option --stats"), "{stderr}");
}

#[test]
fn profile_prints_a_ranked_rule_table() {
    let file = write_temp("profile.flix", PATHS);
    let output = flixr().arg("--profile").arg(&file).output().expect("runs");
    assert!(output.status.success());
    let stderr = String::from_utf8(output.stderr).expect("utf8");
    assert!(stderr.contains("rule"), "{stderr}");
    assert!(stderr.contains("Path"), "{stderr}");
    assert!(stderr.contains("total"), "{stderr}");
    // The model still prints normally on stdout.
    let stdout = String::from_utf8(output.stdout).expect("utf8");
    assert!(stdout.contains("Path(1, 3)"), "{stdout}");
}

#[test]
fn metrics_json_writes_a_stable_report() {
    let file = write_temp("metrics.flix", PATHS);
    let out = std::env::temp_dir().join(format!("flixr-test-{}-metrics.json", std::process::id()));
    let output = flixr()
        .args(["--metrics-json", out.to_str().expect("utf8 path")])
        .arg(&file)
        .output()
        .expect("runs");
    assert!(output.status.success());
    let json = std::fs::read_to_string(&out).expect("metrics file written");
    assert!(json.contains("\"schema\": \"flix-metrics/1\""), "{json}");
    assert!(json.contains("\"strategy\": \"semi-naive\""), "{json}");
    assert!(json.contains("\"threads\": 1"), "{json}");
    assert!(json.contains("\"per_rule\""), "{json}");
    assert!(json.contains("\"per_stratum\""), "{json}");
    assert!(json.contains("\"head\": \"Path\""), "{json}");
    std::fs::remove_file(&out).ok();
}

#[test]
fn metrics_json_fires_on_guarded_failures_too() {
    let file = write_temp("metrics-fail.flix", PATHS);
    let out = std::env::temp_dir().join(format!(
        "flixr-test-{}-metrics-fail.json",
        std::process::id()
    ));
    let output = flixr()
        .args([
            "--max-rounds",
            "1",
            "--metrics-json",
            out.to_str().expect("utf8 path"),
        ])
        .arg(&file)
        .output()
        .expect("runs");
    assert_eq!(output.status.code(), Some(4));
    let json = std::fs::read_to_string(&out).expect("metrics file written on failure");
    assert!(json.contains("\"schema\": \"flix-metrics/1\""), "{json}");
    std::fs::remove_file(&out).ok();
}

#[test]
fn round_limit_exits_with_code_4_and_prints_the_partial_model() {
    let file = write_temp("rounds.flix", PATHS);
    let output = flixr()
        .args(["--max-rounds", "1"])
        .arg(&file)
        .output()
        .expect("runs");
    assert_eq!(
        output.status.code(),
        Some(4),
        "budget exhaustion exits with 4"
    );
    let stderr = String::from_utf8(output.stderr).expect("utf8");
    assert!(stderr.contains("fixed point not reached"), "{stderr}");
    assert!(stderr.contains("partial model"), "{stderr}");
    // The extensional facts derived before the limit are still printed.
    let stdout = String::from_utf8(output.stdout).expect("utf8");
    assert!(stdout.contains("Edge(1, 2)"), "{stdout}");
}

#[test]
fn expired_timeout_exits_with_code_4() {
    let file = write_temp("timeout.flix", PATHS);
    let output = flixr()
        .args(["--timeout", "0.000001"])
        .arg(&file)
        .output()
        .expect("runs");
    assert_eq!(output.status.code(), Some(4));
    let stderr = String::from_utf8(output.stderr).expect("utf8");
    assert!(stderr.contains("wall-clock budget"), "{stderr}");
}

#[test]
fn panicking_function_exits_with_code_3_and_names_the_function() {
    // `partial` has a non-exhaustive match: applying it to E.B panics in
    // the interpreter, and the guarded solver reports it instead of
    // crashing the process.
    let file = write_temp(
        "panic.flix",
        "
        enum E { case A, case B }
        def partial(x: E): Bool = match x with { case E.A => true }
        rel P(x: E);
        rel Q(x: E);
        P(E.B).
        Q(x) :- P(x), partial(x).
        ",
    );
    let output = flixr().arg(&file).output().expect("runs");
    assert_eq!(output.status.code(), Some(3), "solve failures exit with 3");
    let stderr = String::from_utf8(output.stderr).expect("utf8");
    assert!(stderr.contains("partial panicked"), "{stderr}");
    assert!(stderr.contains("non-exhaustive match"), "{stderr}");
    // The extensional fact P(E.B) survives into the printed partial model.
    let stdout = String::from_utf8(output.stdout).expect("utf8");
    assert!(stdout.contains("P(B)"), "{stdout}");
}

#[test]
fn verify_rejects_unlawful_lattices() {
    let file = write_temp(
        "broken.flix",
        r#"
        enum P { case Top, case A, case B, case Bot }
        def leq(x: P, y: P): Bool = match (x, y) with {
          case (P.Bot, _) => true
          case (_, P.Top) => true
          case (P.A, P.A) => true
          case (P.B, P.B) => true
          case _ => false
        }
        def lub(x: P, y: P): P = match (x, y) with {
          case (P.Bot, z) => z
          case (z, P.Bot) => z
          case _ => P.Bot
        }
        def glb(x: P, y: P): P = x
        let P<> = (P.Bot, P.Top, leq, lub, glb);
        lat L(k: Int, P<>);
        L(1, P.A).
        "#,
    );
    let output = flixr().arg("--verify").arg(&file).output().expect("runs");
    assert!(!output.status.success());
    let stderr = String::from_utf8(output.stderr).expect("utf8");
    assert!(stderr.contains("not a lattice"), "{stderr}");
    // Without --verify the unlawful program still "solves" (garbage in,
    // garbage out — exactly why §7 wants the check).
    let output = flixr().arg(&file).output().expect("runs");
    assert!(output.status.success());
}

#[test]
fn missing_file_is_reported() {
    let output = flixr()
        .arg("/nonexistent/nope.flix")
        .output()
        .expect("runs");
    assert!(!output.status.success());
    let stderr = String::from_utf8(output.stderr).expect("utf8");
    assert!(stderr.contains("cannot read"), "{stderr}");
}

#[test]
fn update_prints_both_models_with_headers() {
    let file = write_temp("update-base.flix", PATHS);
    let update = write_temp(
        "update-delta.flix",
        "rel Edge(x: Int, y: Int);
         Edge(3, 4).",
    );
    let output = flixr()
        .arg(&file)
        .arg("--update")
        .arg(&update)
        .output()
        .expect("runs");
    assert!(output.status.success());
    let stdout = String::from_utf8(output.stdout).expect("utf8");
    let lines: Vec<&str> = stdout.lines().collect();
    let initial_at = lines
        .iter()
        .position(|l| *l == "== initial model ==")
        .expect("initial header");
    let updated_at = lines
        .iter()
        .position(|l| *l == "== updated model ==")
        .expect("updated header");
    assert!(initial_at < updated_at);
    let initial = &lines[initial_at + 1..updated_at];
    let updated = &lines[updated_at + 1..];
    // The initial model does not know about the new edge...
    assert!(!initial.contains(&"Edge(3, 4)"));
    assert!(!initial.contains(&"Path(1, 4)"));
    // ...the updated model does, with the transitive consequences.
    assert!(updated.contains(&"Edge(3, 4)"), "{stdout}");
    assert!(updated.contains(&"Path(1, 4)"), "{stdout}");
    assert!(updated.contains(&"Path(2, 4)"), "{stdout}");
    assert!(updated.contains(&"Path(3, 4)"), "{stdout}");
}

#[test]
fn update_with_unknown_predicate_exits_with_code_2() {
    let file = write_temp("update-unknown-base.flix", PATHS);
    let update = write_temp(
        "update-unknown-delta.flix",
        "rel Missing(x: Int);
         Missing(1).",
    );
    let output = flixr()
        .arg(&file)
        .arg("--update")
        .arg(&update)
        .output()
        .expect("runs");
    assert_eq!(output.status.code(), Some(2), "delta mismatch exits with 2");
    let stderr = String::from_utf8(output.stderr).expect("utf8");
    assert!(stderr.contains("unknown predicate Missing"), "{stderr}");
    // No models are printed for a statically rejected update.
    assert!(output.stdout.is_empty());
}

#[test]
fn update_file_that_fails_to_parse_exits_with_code_2() {
    let file = write_temp("update-parse-base.flix", PATHS);
    let update = write_temp("update-parse-delta.flix", "rel Edge(x Int;");
    let output = flixr()
        .arg(&file)
        .arg("--update")
        .arg(&update)
        .output()
        .expect("runs");
    assert_eq!(output.status.code(), Some(2));
}

#[test]
fn explain_after_update_targets_the_updated_model() {
    let file = write_temp("update-explain-base.flix", PATHS);
    let update = write_temp(
        "update-explain-delta.flix",
        "rel Edge(x: Int, y: Int);
         Edge(3, 4).",
    );
    // Path(1, 4) only exists after the update.
    let output = flixr()
        .arg(&file)
        .args(["--explain", "Path(1, 4)"])
        .arg("--update")
        .arg(&update)
        .output()
        .expect("runs");
    assert!(output.status.success(), "{output:?}");
    let stdout = String::from_utf8(output.stdout).expect("utf8");
    assert!(stdout.contains("Path(1, 4)  [rule 1]"), "{stdout}");
    assert!(stdout.contains("Edge(3, 4)  [fact]"), "{stdout}");
}

#[test]
fn explain_prints_a_derivation_tree() {
    let file = write_temp("explain.flix", PATHS);
    let output = flixr()
        .args(["--explain", "Path(1, 3)"])
        .arg(&file)
        .output()
        .expect("runs");
    assert!(output.status.success());
    let stdout = String::from_utf8(output.stdout).expect("utf8");
    assert!(stdout.contains("Path(1, 3)  [rule 1]"), "{stdout}");
    assert!(stdout.contains("Edge(1, 2)  [fact]"), "{stdout}");

    // Underivable facts are reported as such.
    let output = flixr()
        .args(["--explain", "Path(3, 1)"])
        .arg(&file)
        .output()
        .expect("runs");
    assert!(!output.status.success());
    let stderr = String::from_utf8(output.stderr).expect("utf8");
    assert!(stderr.contains("not in the minimal model"), "{stderr}");
}

/// The tall-chain example checked into the repo: a max-of-ints counter
/// that climbs one lattice step per round up to 100.
const TALL_CHAIN: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../examples/flix/tall_chain.flix"
);

#[test]
fn trace_writes_chrome_json_and_folded_stacks() {
    let file = write_temp("trace.flix", PATHS);
    let json_out = write_temp("trace-out.json", "");
    let folded_out = write_temp("trace-out.folded", "");
    let output = flixr()
        .arg("--trace")
        .arg(&json_out)
        .arg("--trace-folded")
        .arg(&folded_out)
        .arg(&file)
        .output()
        .expect("runs");
    assert!(output.status.success(), "{output:?}");

    let json = std::fs::read_to_string(&json_out).expect("trace file written");
    assert!(json.contains("\"traceEvents\""), "{json}");
    assert!(json.contains("\"ph\": \"X\""), "{json}");
    assert!(json.contains("\"displayTimeUnit\": \"ms\""), "{json}");
    assert!(json.contains("\"thread_name\""), "{json}");

    let stacks = std::fs::read_to_string(&folded_out).expect("folded file written");
    assert!(!stacks.is_empty());
    for line in stacks.lines() {
        assert!(
            line.starts_with("solve;"),
            "folded stack roots at solve: {line}"
        );
        let (_, value) = line.rsplit_once(' ').expect("stack <space> value");
        value
            .parse::<u64>()
            .expect("folded value is integral nanoseconds");
    }
    std::fs::remove_file(&json_out).ok();
    std::fs::remove_file(&folded_out).ok();
}

#[test]
fn ascent_report_prints_the_chain_height_histogram() {
    let output = flixr()
        .arg("--ascent-report")
        .arg(TALL_CHAIN)
        .output()
        .expect("runs");
    assert!(output.status.success(), "{output:?}");
    let stderr = String::from_utf8(output.stderr).expect("utf8");
    assert!(stderr.contains("lattice ascent:"), "{stderr}");
    assert!(stderr.contains("chain-height histogram:"), "{stderr}");
    assert!(
        stderr.contains("max chain height per lattice type:"),
        "{stderr}"
    );
    assert!(stderr.contains("Count"), "names the lattice type: {stderr}");
}

#[test]
fn ascent_threshold_warns_on_stderr_without_aborting() {
    let output = flixr()
        .args(["--ascent-threshold", "50"])
        .arg(TALL_CHAIN)
        .output()
        .expect("runs");
    // The warning is advisory: the solve still runs to its fixed point.
    assert!(output.status.success(), "{output:?}");
    let stdout = String::from_utf8(output.stdout).expect("utf8");
    assert!(stdout.contains("Counter(\"c\", At(100))"), "{stdout}");
    let stderr = String::from_utf8(output.stderr).expect("utf8");
    assert!(stderr.contains("flixr: warning:"), "{stderr}");
    assert!(stderr.contains("height 50"), "{stderr}");
    assert!(stderr.contains("threshold 50"), "{stderr}");
    assert_eq!(
        stderr.matches("flixr: warning:").count(),
        1,
        "one warning per cell, not one per join: {stderr}"
    );
}

#[test]
fn progress_heartbeat_lands_on_stderr() {
    let file = write_temp("progress.flix", PATHS);
    let output = flixr().arg("--progress").arg(&file).output().expect("runs");
    assert!(output.status.success(), "{output:?}");
    let stderr = String::from_utf8(output.stderr).expect("utf8");
    assert!(stderr.contains("flixr: progress: done"), "{stderr}");
    // The heartbeat never contaminates the model printed on stdout.
    let stdout = String::from_utf8(output.stdout).expect("utf8");
    assert!(!stdout.contains("progress"), "{stdout}");
}

#[test]
fn trace_composes_with_query() {
    let file = write_temp("trace-query.flix", PATHS);
    let json_out = write_temp("trace-query-out.json", "");
    let output = flixr()
        .arg("--trace")
        .arg(&json_out)
        .args(["--query", "Path(1, _)"])
        .arg(&file)
        .output()
        .expect("runs");
    assert!(output.status.success(), "{output:?}");
    // Only the demanded answers on stdout; the demand machinery's rules
    // are collapsed onto the user's rules in the trace.
    let stdout = String::from_utf8(output.stdout).expect("utf8");
    assert!(
        stdout.lines().all(|l| l.starts_with("Path(1, ")),
        "{stdout}"
    );
    let json = std::fs::read_to_string(&json_out).expect("trace file written");
    assert!(json.contains("\"traceEvents\""), "{json}");
    assert!(
        !json.contains("demand$"),
        "demand rules stay invisible: {json}"
    );
    std::fs::remove_file(&json_out).ok();
}

#[test]
fn guarded_failure_still_writes_the_partial_trace() {
    let file = write_temp("trace-budget.flix", PATHS);
    let json_out = write_temp("trace-budget-out.json", "");
    let output = flixr()
        .args(["--max-rounds", "1", "--trace"])
        .arg(&json_out)
        .arg(&file)
        .output()
        .expect("runs");
    assert_eq!(
        output.status.code(),
        Some(4),
        "budget exhaustion exits with 4"
    );
    let json = std::fs::read_to_string(&json_out).expect("partial trace written");
    assert!(json.contains("\"traceEvents\""), "{json}");
    assert!(
        json.contains("\"cat\": \"round\""),
        "the round that ran is recorded: {json}"
    );
    std::fs::remove_file(&json_out).ok();
}

// ---------------------------------------------------------------------
// Persistence: --save / --load / --wal / --compact-every.
// ---------------------------------------------------------------------

/// The worked example of Figure 2 (points-to + parity + div-by-zero),
/// checked into the repo — the persistence round-trip fixture.
const PARITY: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../examples/flix/parity.flix"
);

/// A fresh per-test scratch directory, removed on drop.
struct Scratch(std::path::PathBuf);

impl Scratch {
    fn new(test: &str) -> Scratch {
        let dir = std::env::temp_dir().join(format!("flixr-cli-{}-{test}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        Scratch(dir)
    }

    fn path(&self, name: &str) -> std::path::PathBuf {
        self.0.join(name)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

#[test]
fn io_errors_name_the_path_and_the_operation() {
    // Missing input file.
    let output = flixr().arg("/no/such/input.flix").output().expect("runs");
    assert_eq!(output.status.code(), Some(1));
    let stderr = String::from_utf8(output.stderr).expect("utf8");
    assert!(
        stderr.contains("flixr: cannot read /no/such/input.flix: "),
        "the message names the operation and the path: {stderr}"
    );

    // Missing --update file: same pinned format.
    let file = write_temp("io-err.flix", PATHS);
    let output = flixr()
        .args(["--update", "/no/such/delta.flix"])
        .arg(&file)
        .output()
        .expect("runs");
    assert_eq!(output.status.code(), Some(1));
    let stderr = String::from_utf8(output.stderr).expect("utf8");
    assert!(
        stderr.contains("flixr: cannot read /no/such/delta.flix: "),
        "{stderr}"
    );
}

#[test]
fn save_load_save_round_trips_the_worked_example_byte_identically() {
    let scratch = Scratch::new("roundtrip");
    let first = scratch.path("parity.snap");
    let second = scratch.path("parity2.snap");

    let output = flixr()
        .arg("--save")
        .arg(&first)
        .arg(PARITY)
        .output()
        .expect("runs");
    assert!(output.status.success(), "{output:?}");
    let direct = String::from_utf8(output.stdout).expect("utf8");

    let output = flixr()
        .arg("--load")
        .arg(&first)
        .arg("--save")
        .arg(&second)
        .arg(PARITY)
        .output()
        .expect("runs");
    assert!(output.status.success(), "{output:?}");
    let stderr = String::from_utf8(output.stderr).expect("utf8");
    assert!(
        !stderr.contains("warning"),
        "the snapshot loaded cleanly: {stderr}"
    );
    let reloaded = String::from_utf8(output.stdout).expect("utf8");

    assert_eq!(direct, reloaded, "the loaded model prints identically");
    let a = std::fs::read(&first).expect("first snapshot");
    let b = std::fs::read(&second).expect("second snapshot");
    assert_eq!(a, b, "save -> load -> save is byte-identical");
}

#[test]
fn corrupt_snapshot_degrades_to_a_scratch_solve() {
    let scratch = Scratch::new("corrupt-snap");
    let snap = scratch.path("model.snap");
    let file = write_temp("corrupt-snap.flix", PATHS);

    let output = flixr()
        .arg("--save")
        .arg(&snap)
        .arg(&file)
        .output()
        .expect("runs");
    assert!(output.status.success(), "{output:?}");
    let clean = String::from_utf8(output.stdout).expect("utf8");

    // Flip one byte in the middle of the file.
    let mut bytes = std::fs::read(&snap).expect("snapshot");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&snap, &bytes).expect("corrupt snapshot");

    let output = flixr()
        .arg("--load")
        .arg(&snap)
        .arg(&file)
        .output()
        .expect("runs");
    assert!(output.status.success(), "corruption never aborts the run");
    let stderr = String::from_utf8(output.stderr).expect("utf8");
    assert!(
        stderr.contains("warning") && stderr.contains("solving from scratch"),
        "{stderr}"
    );
    let stdout = String::from_utf8(output.stdout).expect("utf8");
    assert_eq!(stdout, clean, "the scratch solve reproduces the model");
}

#[test]
fn kill_mid_update_is_recovered_from_the_write_ahead_log() {
    let scratch = Scratch::new("kill-mid-update");
    let snap = scratch.path("base.snap");
    let wal = scratch.path("deltas.wal");
    let file = write_temp("kill-mid.flix", PATHS);
    let upd = write_temp(
        "kill-mid-upd.flix",
        "rel Edge(x: Int, y: Int);\nEdge(3, 4).",
    );

    // Save the base model, then apply an update through the log.
    let output = flixr()
        .arg("--save")
        .arg(&snap)
        .arg(&file)
        .output()
        .expect("runs");
    assert!(output.status.success(), "{output:?}");
    let output = flixr()
        .arg("--load")
        .arg(&snap)
        .arg("--wal")
        .arg(&wal)
        .arg("--update")
        .arg(&upd)
        .arg(&file)
        .output()
        .expect("runs");
    assert!(output.status.success(), "{output:?}");
    let updated: Vec<String> = String::from_utf8(output.stdout)
        .expect("utf8")
        .lines()
        .skip_while(|l| *l != "== updated model ==")
        .skip(1)
        .map(str::to_string)
        .collect();
    assert!(updated.contains(&"Path(1, 4)".to_string()), "{updated:?}");

    // "Crash" after the append: the snapshot is stale, only the log
    // knows about the delta. A plain re-run recovers the pre-crash
    // fixed point from snapshot + log.
    let output = flixr()
        .arg("--load")
        .arg(&snap)
        .arg("--wal")
        .arg(&wal)
        .arg(&file)
        .output()
        .expect("runs");
    assert!(output.status.success(), "{output:?}");
    let stdout = String::from_utf8(output.stdout).expect("utf8");
    assert!(stdout.contains("Path(1, 4)"), "recovered: {stdout}");

    // Torn append: chop bytes off the log tail mid-frame. The next run
    // warns, truncates, and still replays the intact prefix (here:
    // nothing, so the base model comes back).
    let bytes = std::fs::read(&wal).expect("log");
    std::fs::write(&wal, &bytes[..bytes.len() - 3]).expect("tear log tail");
    let output = flixr()
        .arg("--load")
        .arg(&snap)
        .arg("--wal")
        .arg(&wal)
        .arg(&file)
        .output()
        .expect("runs");
    assert!(output.status.success(), "a torn log never aborts the run");
    let stderr = String::from_utf8(output.stderr).expect("utf8");
    assert!(
        stderr.contains("truncated") && stderr.contains("corrupt trailing byte"),
        "{stderr}"
    );
    let stdout = String::from_utf8(output.stdout).expect("utf8");
    assert!(
        !stdout.contains("Path(1, 4)"),
        "the torn frame is gone: {stdout}"
    );
    assert!(stdout.contains("Path(1, 3)"), "{stdout}");
}

#[test]
fn compaction_absorbs_the_log_into_the_snapshot() {
    let scratch = Scratch::new("compaction");
    let snap = scratch.path("model.snap");
    let wal = scratch.path("deltas.wal");
    let file = write_temp("compaction.flix", PATHS);
    let upd = write_temp(
        "compaction-upd.flix",
        "rel Edge(x: Int, y: Int);\nEdge(3, 4).",
    );

    let output = flixr()
        .arg("--save")
        .arg(&snap)
        .arg(&file)
        .output()
        .expect("runs");
    assert!(output.status.success(), "{output:?}");

    // One update through the log, compaction threshold 1: the run must
    // absorb the log into the snapshot and reset the log to empty.
    let output = flixr()
        .arg("--load")
        .arg(&snap)
        .arg("--wal")
        .arg(&wal)
        .arg("--save")
        .arg(&snap)
        .args(["--compact-every", "1"])
        .arg("--update")
        .arg(&upd)
        .arg(&file)
        .output()
        .expect("runs");
    assert!(output.status.success(), "{output:?}");
    let stderr = String::from_utf8(output.stderr).expect("utf8");
    assert!(stderr.contains("compacted the write-ahead log"), "{stderr}");

    // The updated model now lives in the snapshot alone.
    let output = flixr()
        .arg("--load")
        .arg(&snap)
        .arg(&file)
        .output()
        .expect("runs");
    assert!(output.status.success(), "{output:?}");
    let stdout = String::from_utf8(output.stdout).expect("utf8");
    assert!(stdout.contains("Path(1, 4)"), "{stdout}");
    let stderr = String::from_utf8(output.stderr).expect("utf8");
    assert!(!stderr.contains("warning"), "{stderr}");
}

#[test]
fn persistence_flags_are_usage_errors_with_query_or_alone() {
    let file = write_temp("persist-usage.flix", PATHS);
    for flags in [
        vec!["--save", "/tmp/x.snap", "--query", "Path(1, _)"],
        vec!["--load", "/tmp/x.snap", "--query", "Path(1, _)"],
        vec!["--wal", "/tmp/x.wal", "--query", "Path(1, _)"],
        vec!["--compact-every", "4"], // missing --wal and --save
        vec!["--wal", "/tmp/x.wal", "--compact-every", "4"], // missing --save
        vec![
            "--compact-every",
            "0",
            "--wal",
            "/tmp/x.wal",
            "--save",
            "/tmp/x.snap",
        ],
    ] {
        let output = flixr().args(&flags).arg(&file).output().expect("runs");
        assert_eq!(output.status.code(), Some(1), "{flags:?}");
    }
}

#[test]
fn quiet_model_suppresses_model_printing() {
    let file = write_temp("quiet.flix", PATHS);
    let output = flixr()
        .arg("--quiet-model")
        .arg(&file)
        .output()
        .expect("runs");
    assert!(output.status.success(), "{output:?}");
    assert!(output.stdout.is_empty(), "{output:?}");

    // With --update, neither model nor the `== ... ==` headers print,
    // but explicit --query output still does.
    let update = write_temp(
        "quiet-delta.flix",
        "rel Edge(x: Int, y: Int);
         Edge(3, 4).",
    );
    let output = flixr()
        .arg("--quiet-model")
        .arg(&file)
        .arg("--update")
        .arg(&update)
        .output()
        .expect("runs");
    assert!(output.status.success(), "{output:?}");
    assert!(output.stdout.is_empty(), "{output:?}");

    let output = flixr()
        .arg("--quiet-model")
        .args(["--query", "Path(1, _)"])
        .arg(&file)
        .arg("--update")
        .arg(&update)
        .output()
        .expect("runs");
    assert!(output.status.success(), "{output:?}");
    let stdout = String::from_utf8(output.stdout).expect("utf8");
    assert_eq!(
        stdout.lines().collect::<Vec<_>>(),
        vec!["Path(1, 2)", "Path(1, 3)", "Path(1, 4)"],
        "{stdout}"
    );
}

#[test]
fn client_only_flags_require_connect() {
    let file = write_temp("client-usage.flix", PATHS);
    for flag in ["--status", "--compact", "--shutdown"] {
        let output = flixr().arg(flag).arg(&file).output().expect("runs");
        assert_eq!(output.status.code(), Some(1), "{flag}");
        let stderr = String::from_utf8(output.stderr).expect("utf8");
        assert!(stderr.contains("--connect"), "{flag}: {stderr}");
    }
    // ...and persistence stays daemon-side in client mode.
    let output = flixr()
        .args(["--connect", "/tmp/nope.sock", "--save", "/tmp/x.snap"])
        .output()
        .expect("runs");
    assert_eq!(output.status.code(), Some(1), "{output:?}");
}

/// End-to-end service smoke: start a real `flixd` on a temp socket,
/// drive it with `flixr --connect` through queries, a retraction-ful
/// update, status, and error mapping, then shut it down and check the
/// daemon exits 0.
#[test]
fn flixd_serves_flixr_clients_end_to_end() {
    let file = write_temp("daemon.flix", PATHS);
    let socket =
        std::env::temp_dir().join(format!("flixr-test-{}-daemon.sock", std::process::id()));
    let _ = std::fs::remove_file(&socket);

    let mut daemon = Command::new(env!("CARGO_BIN_EXE_flixd"))
        .arg("--socket")
        .arg(&socket)
        .arg(&file)
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("flixd starts");

    // The daemon binds the socket before serving; wait for it.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
    while !socket.exists() {
        assert!(
            std::time::Instant::now() < deadline,
            "flixd never bound its socket"
        );
        std::thread::sleep(std::time::Duration::from_millis(20));
    }

    let connect = |extra: &[&str]| {
        let mut cmd = flixr();
        cmd.arg("--connect").arg(&socket);
        cmd.args(extra);
        cmd.output().expect("flixr runs")
    };

    // Query the initial model.
    let output = connect(&["--query", "Path(1, _)"]);
    assert!(output.status.success(), "{output:?}");
    let stdout = String::from_utf8(output.stdout).expect("utf8");
    assert_eq!(
        stdout.lines().collect::<Vec<_>>(),
        vec!["Path(1, 2)", "Path(1, 3)"]
    );

    // A live update with a retraction; --quiet-model keeps stdout empty.
    let update = write_temp(
        "daemon-delta.flix",
        "rel Edge(x: Int, y: Int);
         Edge(3, 4).
         -Edge(1, 2)",
    );
    let update = update.to_str().expect("utf8 path").to_string();
    let output = connect(&["--update", &update, "--quiet-model"]);
    assert!(output.status.success(), "{output:?}");
    assert!(output.stdout.is_empty(), "{output:?}");
    let stderr = String::from_utf8(output.stderr).expect("utf8");
    assert!(stderr.contains("update applied at epoch 2"), "{stderr}");

    // Reads see the new epoch: the retracted edge's paths are gone, the
    // inserted edge's appeared.
    let output = connect(&["--print", "Path"]);
    assert!(output.status.success(), "{output:?}");
    let stdout = String::from_utf8(output.stdout).expect("utf8");
    assert_eq!(
        stdout.lines().collect::<Vec<_>>(),
        vec!["Path(2, 3)", "Path(2, 4)", "Path(3, 4)"]
    );

    let output = connect(&["--status"]);
    assert!(output.status.success(), "{output:?}");
    let stdout = String::from_utf8(output.stdout).expect("utf8");
    assert!(stdout.contains("epoch: 2"), "{stdout}");
    assert!(stdout.contains("updates_applied: 1"), "{stdout}");
    assert!(stdout.contains("batches_applied: 1"), "{stdout}");

    // Telemetry round trip: the stats document reflects the requests
    // this test already made, in both JSON and Prometheus form.
    let output = connect(&["--stats"]);
    assert!(output.status.success(), "{output:?}");
    let stdout = String::from_utf8(output.stdout).expect("utf8");
    assert!(stdout.contains("\"schema\":\"flixd-stats/1\""), "{stdout}");
    assert!(stdout.contains("\"batches_applied\":1"), "{stdout}");
    let output = connect(&["--stats", "--prom"]);
    assert!(output.status.success(), "{output:?}");
    let stdout = String::from_utf8(output.stdout).expect("utf8");
    assert!(
        stdout.contains("flixd_requests_total{op=\"query\"}"),
        "{stdout}"
    );
    assert!(stdout.contains("flixd_batches_applied_total 1"), "{stdout}");

    // --watch polls stats into a table: a header plus one row per poll.
    let output = connect(&["--watch", "--watch-count", "2", "--interval", "0.05"]);
    assert!(output.status.success(), "{output:?}");
    let stdout = String::from_utf8(output.stdout).expect("utf8");
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 3, "{stdout}");
    assert!(lines[0].contains("epoch"), "{stdout}");
    assert!(lines[0].contains("q-p99"), "{stdout}");
    assert!(lines[1].trim_start().starts_with('2'), "{stdout}");

    // Error mapping: daemon-side language errors come back as exit 2,
    // capability errors (no persistence configured) as exit 1.
    let output = connect(&["--query", "Nope(_)"]);
    assert_eq!(output.status.code(), Some(2), "{output:?}");
    let stderr = String::from_utf8(output.stderr).expect("utf8");
    assert!(stderr.contains("flixd replied"), "{stderr}");
    let output = connect(&["--compact"]);
    assert_eq!(output.status.code(), Some(1), "{output:?}");

    // Shut down and reap the daemon.
    let output = connect(&["--shutdown"]);
    assert!(output.status.success(), "{output:?}");
    let stderr = String::from_utf8(output.stderr).expect("utf8");
    assert!(stderr.contains("acknowledged shutdown"), "{stderr}");
    let status = daemon.wait().expect("flixd exits");
    assert!(status.success(), "flixd exit: {status:?}");
    assert!(!socket.exists(), "the daemon unlinks its socket");
}

/// A `busy` refusal (admission control) exits 1: retrying is an
/// operator decision, not a language or budget problem. Pinned against
/// a real daemon whose update queue admits nothing.
#[test]
fn connect_busy_refusal_exits_one() {
    let file = write_temp("busy.flix", PATHS);
    let socket = std::env::temp_dir().join(format!("flixr-test-{}-busy.sock", std::process::id()));
    let _ = std::fs::remove_file(&socket);
    let mut daemon = Command::new(env!("CARGO_BIN_EXE_flixd"))
        .arg("--socket")
        .arg(&socket)
        .args(["--max-pending", "0"])
        .arg(&file)
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("flixd starts");
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
    while !socket.exists() {
        assert!(
            std::time::Instant::now() < deadline,
            "flixd never bound its socket"
        );
        std::thread::sleep(std::time::Duration::from_millis(20));
    }

    let update = write_temp(
        "busy-delta.flix",
        "rel Edge(x: Int, y: Int);
         Edge(3, 4).",
    );
    let output = flixr()
        .arg("--connect")
        .arg(&socket)
        .arg("--update")
        .arg(&update)
        .output()
        .expect("flixr runs");
    assert_eq!(output.status.code(), Some(1), "{output:?}");
    let stderr = String::from_utf8(output.stderr).expect("utf8");
    assert!(stderr.contains("[busy]"), "{stderr}");
    assert!(stderr.contains("queue is full"), "{stderr}");

    let output = flixr()
        .arg("--connect")
        .arg(&socket)
        .arg("--shutdown")
        .output()
        .expect("flixr runs");
    assert!(output.status.success(), "{output:?}");
    let status = daemon.wait().expect("flixd exits");
    assert!(status.success(), "flixd exit: {status:?}");
}

/// A `shutting-down` refusal also exits 1. No live daemon ever holds
/// still in that state long enough to test against, so a fake daemon
/// speaks just enough `flixd/1` to refuse one request.
#[test]
fn connect_shutting_down_refusal_exits_one() {
    use std::os::unix::net::UnixListener;
    let socket = std::env::temp_dir().join(format!("flixr-test-{}-fake.sock", std::process::id()));
    let _ = std::fs::remove_file(&socket);
    let listener = UnixListener::bind(&socket).expect("binds fake socket");
    let server = std::thread::spawn(move || {
        let (mut stream, _) = listener.accept().expect("accepts");
        flixd::proto::write_frame(
            &mut stream,
            br#"{"proto":"flixd/1","epoch":1,"facts":0,"fingerprint":"0x0"}"#,
        )
        .expect("writes hello");
        let frame = flixd::proto::read_frame(&mut stream)
            .expect("reads")
            .expect("request frame");
        assert!(
            String::from_utf8(frame).expect("utf8").contains("status"),
            "the client sent its one request"
        );
        flixd::proto::write_frame(
            &mut stream,
            br#"{"ok":false,"epoch":1,"code":"shutting-down","error":"draining connections"}"#,
        )
        .expect("writes refusal");
    });

    let output = flixr()
        .arg("--connect")
        .arg(&socket)
        .arg("--status")
        .output()
        .expect("flixr runs");
    server.join().expect("fake daemon thread");
    assert_eq!(output.status.code(), Some(1), "{output:?}");
    let stderr = String::from_utf8(output.stderr).expect("utf8");
    assert!(stderr.contains("[shutting-down]"), "{stderr}");
    assert!(stderr.contains("draining connections"), "{stderr}");
    let _ = std::fs::remove_file(&socket);
}
