//! End-to-end tests of the surface language: parse → type check → lower →
//! solve, on the programs of the paper's figures.

use flix_core::{Solver, Strategy, Value};

/// The parity lattice prelude shared by several tests — essentially
/// lines 5–33 of Figure 2 of the paper.
const PARITY_PRELUDE: &str = r#"
    // the elements of the parity lattice.
    enum Parity {
      case Top,
      case Even, case Odd,
      case Bot
    }

    // the partial order of the parity lattice.
    def leq(e1: Parity, e2: Parity): Bool =
      match (e1, e2) with {
        case (Parity.Bot, _) => true
        case (Parity.Even, Parity.Even) => true
        case (Parity.Odd, Parity.Odd) => true
        case (_, Parity.Top) => true
        case _ => false
      }

    def lub(e1: Parity, e2: Parity): Parity =
      match (e1, e2) with {
        case (Parity.Bot, x) => x
        case (x, Parity.Bot) => x
        case (Parity.Even, Parity.Even) => Parity.Even
        case (Parity.Odd, Parity.Odd) => Parity.Odd
        case _ => Parity.Top
      }

    def glb(e1: Parity, e2: Parity): Parity =
      match (e1, e2) with {
        case (Parity.Top, x) => x
        case (x, Parity.Top) => x
        case (Parity.Even, Parity.Even) => Parity.Even
        case (Parity.Odd, Parity.Odd) => Parity.Odd
        case _ => Parity.Bot
      }

    // association of the lattice operations with the parity type.
    let Parity<> = (Parity.Bot, Parity.Top, leq, lub, glb);

    // monotone filter and transfer functions.
    def isMaybeZero(e: Parity): Bool =
      match e with {
        case Parity.Even => true
        case Parity.Top => true
        case _ => false
      }

    def sum(e1: Parity, e2: Parity): Parity =
      match (e1, e2) with {
        case (Parity.Bot, _) => Parity.Bot
        case (_, Parity.Bot) => Parity.Bot
        case (Parity.Top, _) => Parity.Top
        case (_, Parity.Top) => Parity.Top
        case (Parity.Even, Parity.Even) => Parity.Even
        case (Parity.Odd, Parity.Odd) => Parity.Even
        case _ => Parity.Odd
      }
"#;

fn v(s: &str) -> Value {
    Value::from(s)
}

fn parity(name: &str) -> Value {
    Value::tag0(name)
}

#[test]
fn figure_2_combined_points_to_and_dataflow() {
    // The full program of Figure 2: points-to rules plus the parity
    // dataflow rules plus the division-by-zero client.
    let source = format!(
        r#"{PARITY_PRELUDE}
        // declaration of relations.
        rel New(var: Str, obj: Str);
        rel Assign(lhs: Str, rhs: Str);
        rel Load(var: Str, base: Str, field: Str);
        rel Store(base: Str, field: Str, rhs: Str);
        rel VarPointsTo(var: Str, obj: Str);
        rel HeapPointsTo(obj: Str, field: Str, target: Str);
        rel Int(var: Str, val: Str);
        rel AddExp(res: Str, v1: Str, v2: Str);
        rel DivExp(res: Str, v1: Str, v2: Str);
        rel ArithmeticError(res: Str);

        // declaration of lattices.
        lat IntVar(var: Str, Parity<>);
        lat IntField(obj: Str, field: Str, Parity<>);

        // VarPointsTo and HeapPointsTo rules.
        VarPointsTo(v1, h1) :- New(v1, h1).
        VarPointsTo(v1, h2) :- Assign(v1, v2), VarPointsTo(v2, h2).
        VarPointsTo(v1, h2) :- Load(v1, v2, f),
                               VarPointsTo(v2, h1),
                               HeapPointsTo(h1, f, h2).
        HeapPointsTo(h1, f, h2) :- Store(v1, f, v2),
                                   VarPointsTo(v1, h1),
                                   VarPointsTo(v2, h2).

        // dataflow analysis rules (lines 49-56 of Figure 2); Int facts
        // seed parities directly here.
        IntVar(v, i) :- Assign(v, v2), IntVar(v2, i).
        IntVar(v, i) :- Load(v, v2, f),
                        VarPointsTo(v2, h),
                        IntField(h, f, i).
        IntField(h, f, i) :- Store(v1, f, v2),
                             VarPointsTo(v1, h),
                             IntVar(v2, i).

        // rule for addition of parity elements.
        IntVar(r, sum(i1, i2)) :- AddExp(r, v1, v2),
                                  IntVar(v1, i1),
                                  IntVar(v2, i2).

        // rule for potential division-by-zero errors.
        ArithmeticError(r) :- DivExp(r, v1, v2),
                              IntVar(v2, i2),
                              isMaybeZero(i2).

        // program facts: o stores an odd value into o.f; q loads it,
        // adds it to itself (odd + odd = even), and divides by the sum.
        New("o", "H").
        IntVar("a", Parity.Odd).
        Store("o", "f", "a").
        Load("b", "o", "f").
        AddExp("c", "b", "b").
        DivExp("d", "x", "c").
        DivExp("e", "x", "b").
        "#
    );
    let solution = flix_lang::run(&source).expect("compiles and solves");

    assert!(solution.contains("VarPointsTo", &[v("o"), v("H")]));
    assert_eq!(
        solution.lattice_value("IntField", &[v("H"), v("f")]),
        Some(parity("Odd"))
    );
    assert_eq!(
        solution.lattice_value("IntVar", &[v("b")]),
        Some(parity("Odd"))
    );
    // Odd + Odd = Even.
    assert_eq!(
        solution.lattice_value("IntVar", &[v("c")]),
        Some(parity("Even"))
    );
    // Dividing by c (Even, maybe zero) is flagged; by b (Odd) is not.
    assert!(solution.contains("ArithmeticError", &[v("d")]));
    assert!(!solution.contains("ArithmeticError", &[v("e")]));
}

#[test]
fn section_3_7_semi_naive_example() {
    let source = format!(
        r#"{PARITY_PRELUDE}
        lat A(Parity<>);
        lat B(Parity<>);
        lat R(Parity<>);
        A(Parity.Odd).
        B(Parity.Even).
        A(x) :- B(x).
        R(x) :- isMaybeZero(x), A(x).
        "#
    );
    let solution = flix_lang::run(&source).expect("compiles and solves");
    assert_eq!(solution.lattice_value("A", &[]), Some(parity("Top")));
    assert_eq!(solution.lattice_value("R", &[]), Some(parity("Top")));
}

#[test]
fn unary_lattice_predicates_join_facts() {
    // The §3.2 example: A(Even). A(Odd). B(Odd). → A(⊤), B(Odd).
    let source = format!(
        r#"{PARITY_PRELUDE}
        lat A(Parity<>);
        lat B(Parity<>);
        A(Parity.Even).
        A(Parity.Odd).
        B(Parity.Odd).
        "#
    );
    let solution = flix_lang::run(&source).expect("compiles and solves");
    assert_eq!(solution.lattice_value("A", &[]), Some(parity("Top")));
    assert_eq!(solution.lattice_value("B", &[]), Some(parity("Odd")));
}

#[test]
fn shortest_paths_section_4_4() {
    // §4.4 with the (N ∪ ∞, min) lattice encoded as an enum. The paper
    // writes `Dist(y, d + c)`; here the extension function is `plus`.
    let source = r#"
        enum Dist { case Fin(Int), case Inf }

        def leq(a: Dist, b: Dist): Bool =
          match (a, b) with {
            case (Dist.Inf, _) => true
            case (_, Dist.Inf) => false
            case (Dist.Fin(x), Dist.Fin(y)) => x >= y
          }

        def lub(a: Dist, b: Dist): Dist =
          match (a, b) with {
            case (Dist.Inf, x) => x
            case (x, Dist.Inf) => x
            case (Dist.Fin(x), Dist.Fin(y)) => if (x <= y) Dist.Fin(x) else Dist.Fin(y)
          }

        def glb(a: Dist, b: Dist): Dist =
          match (a, b) with {
            case (Dist.Inf, _) => Dist.Inf
            case (_, Dist.Inf) => Dist.Inf
            case (Dist.Fin(x), Dist.Fin(y)) => if (x >= y) Dist.Fin(x) else Dist.Fin(y)
          }

        let Dist<> = (Dist.Inf, Dist.Fin(0), leq, lub, glb);

        def plus(d: Dist, c: Int): Dist =
          match d with {
            case Dist.Inf => Dist.Inf
            case Dist.Fin(x) => Dist.Fin(x + c)
          }

        rel Edge(x: Str, y: Str, c: Int);
        lat Reach(node: Str, Dist<>);

        Reach("a", Dist.Fin(0)).
        Edge("a", "b", 1).
        Edge("b", "c", 1).
        Edge("c", "a", 1).
        Edge("a", "c", 5).

        Reach(y, plus(d, c)) :- Reach(x, d), Edge(x, y, c).
    "#;
    let solution = flix_lang::run(source).expect("compiles and solves");
    assert_eq!(
        solution.lattice_value("Reach", &[v("c")]),
        Some(Value::tag("Fin", Value::Int(2)))
    );
    assert_eq!(
        solution.lattice_value("Reach", &[v("a")]),
        Some(Value::tag("Fin", Value::Int(0)))
    );
}

#[test]
fn choice_bindings_from_surface_language() {
    let source = r#"
        def succs(n: Int): Set(Int) = if (n < 3) Set(n + 1, n + 2) else Set()

        rel Seed(n: Int);
        rel Reached(n: Int);

        Seed(0).
        Reached(n) :- Seed(n).
        Reached(m) :- Reached(n), m <- succs(n).
    "#;
    let solution = flix_lang::run(source).expect("compiles and solves");
    // 0 -> {1,2} -> {2,3,4} -> {3,4,5}? No: succs(3)=∅, succs(4)=∅.
    for n in 0..=4 {
        assert!(
            solution.contains("Reached", &[n.into()]),
            "node {n} must be reached"
        );
    }
    assert_eq!(solution.len("Reached"), Some(5));
}

#[test]
fn stratified_negation_from_surface_language() {
    let source = r#"
        rel Node(n: Int);
        rel Edge(x: Int, y: Int);
        rel Reach(n: Int);
        rel Unreach(n: Int);

        Node(1). Node(2). Node(3).
        Edge(1, 2).
        Reach(1).
        Reach(y) :- Reach(x), Edge(x, y).
        Unreach(n) :- Node(n), !Reach(n).
    "#;
    let solution = flix_lang::run(source).expect("compiles and solves");
    assert!(solution.contains("Unreach", &[3.into()]));
    assert!(!solution.contains("Unreach", &[2.into()]));
}

#[test]
fn naive_strategy_agrees_via_cli_path() {
    let source = r#"
        rel Edge(x: Int, y: Int);
        rel Path(x: Int, y: Int);
        Edge(1, 2). Edge(2, 3). Edge(3, 4).
        Path(x, y) :- Edge(x, y).
        Path(x, z) :- Path(x, y), Edge(y, z).
    "#;
    let program = flix_lang::compile(source).expect("compiles");
    let semi = Solver::new().solve(&program).expect("solves");
    let naive = Solver::new()
        .strategy(Strategy::Naive)
        .solve(&program)
        .expect("solves");
    assert_eq!(semi.len("Path"), naive.len("Path"));
    assert_eq!(semi.len("Path"), Some(6));
}

#[test]
fn type_errors_are_reported_with_positions() {
    let err = flix_lang::compile("rel A(x: Int);\nA(\"nope\").").expect_err("rejects");
    let msg = err.to_string();
    assert!(msg.contains("type error"), "{msg}");
    assert!(msg.contains("2:"), "position should be on line 2: {msg}");
}

#[test]
fn unstratifiable_surface_program_fails_at_solve_time() {
    let source = r#"
        rel N(x: Int);
        rel A(x: Int);
        rel B(x: Int);
        N(1).
        A(x) :- N(x), !B(x).
        B(x) :- N(x), !A(x).
    "#;
    let program = flix_lang::compile(source).expect("compiles");
    let err = Solver::new().solve(&program).expect_err("not stratifiable");
    assert!(err.to_string().contains("not stratifiable"));
}
