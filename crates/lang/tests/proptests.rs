//! Property tests for the surface-language pipeline: randomly generated
//! Datalog programs are rendered to concrete syntax, compiled, and solved
//! under both strategies; the pipeline must agree with the Rust-API route
//! and with itself across strategies, and the pretty-printer must
//! round-trip every generated program.

use flix_core::{Solver, Strategy as EvalStrategy};
use flix_lattice::rng::SmallRng;
use std::fmt::Write;

const CASES: usize = 48;

/// A random small edge set over nodes 0..6.
fn arb_edges(rng: &mut SmallRng) -> Vec<(i64, i64)> {
    let n = rng.gen_range(0usize..15);
    (0..n)
        .map(|_| (rng.gen_range(0i64..6), rng.gen_range(0i64..6)))
        .collect()
}

/// Renders a transitive-closure program with the given facts as FLIX
/// source text.
fn closure_source(edges: &[(i64, i64)]) -> String {
    let mut src = String::from(
        "rel Edge(x: Int, y: Int);\n\
         rel Path(x: Int, y: Int);\n\
         Path(x, y) :- Edge(x, y).\n\
         Path(x, z) :- Path(x, y), Edge(y, z).\n",
    );
    for (x, y) in edges {
        let _ = writeln!(src, "Edge({x}, {y}).");
    }
    src
}

/// The Rust-API equivalent of [`closure_source`].
fn closure_api(edges: &[(i64, i64)]) -> flix_core::Program {
    use flix_core::{BodyItem, Head, HeadTerm, ProgramBuilder, Term};
    let mut b = ProgramBuilder::new();
    let e = b.relation("Edge", 2);
    let p = b.relation("Path", 2);
    for &(x, y) in edges {
        b.fact(e, vec![x.into(), y.into()]);
    }
    b.rule(
        Head::new(p, [HeadTerm::var("x"), HeadTerm::var("y")]),
        [BodyItem::atom(e, [Term::var("x"), Term::var("y")])],
    );
    b.rule(
        Head::new(p, [HeadTerm::var("x"), HeadTerm::var("z")]),
        [
            BodyItem::atom(p, [Term::var("x"), Term::var("y")]),
            BodyItem::atom(e, [Term::var("y"), Term::var("z")]),
        ],
    );
    b.build().expect("valid")
}

fn paths(solution: &flix_core::Solution) -> Vec<Vec<flix_core::Value>> {
    let mut rows: Vec<Vec<flix_core::Value>> = solution
        .relation("Path")
        .expect("declared")
        .map(|r| r.to_vec())
        .collect();
    rows.sort();
    rows
}

/// Surface-compiled programs agree with API-built programs.
#[test]
fn surface_route_equals_api_route() {
    let mut rng = SmallRng::seed_from_u64(0x1A06_0001);
    for _ in 0..CASES {
        let edges = arb_edges(&mut rng);
        let surface = flix_lang::compile(&closure_source(&edges)).expect("compiles");
        let api = closure_api(&edges);
        let s1 = Solver::new().solve(&surface).expect("solves");
        let s2 = Solver::new().solve(&api).expect("solves");
        assert_eq!(paths(&s1), paths(&s2), "edges={edges:?}");
    }
}

/// Naïve and semi-naïve agree on compiled surface programs.
#[test]
fn strategies_agree_on_surface_programs() {
    let mut rng = SmallRng::seed_from_u64(0x1A06_0002);
    for _ in 0..CASES {
        let edges = arb_edges(&mut rng);
        let program = flix_lang::compile(&closure_source(&edges)).expect("compiles");
        let semi = Solver::new().solve(&program).expect("solves");
        let naive = Solver::new()
            .strategy(EvalStrategy::Naive)
            .solve(&program)
            .expect("solves");
        assert_eq!(paths(&semi), paths(&naive), "edges={edges:?}");
    }
}

/// The pretty-printer round-trips every generated program, and the
/// reprinted program solves to the same model.
#[test]
fn pretty_print_round_trip() {
    let mut rng = SmallRng::seed_from_u64(0x1A06_0003);
    for _ in 0..CASES {
        let edges = arb_edges(&mut rng);
        let src = closure_source(&edges);
        let parsed = flix_lang::parse(&src).expect("parses");
        let printed = flix_lang::pretty::program(&parsed);
        let reparsed = flix_lang::parse(&printed).expect("printed output parses");
        assert_eq!(&printed, &flix_lang::pretty::program(&reparsed));

        let original = Solver::new()
            .solve(&flix_lang::compile(&src).expect("compiles"))
            .expect("solves");
        let reprinted = Solver::new()
            .solve(&flix_lang::compile(&printed).expect("compiles"))
            .expect("solves");
        assert_eq!(paths(&original), paths(&reprinted), "edges={edges:?}");
    }
}

/// Random integer arithmetic expressions evaluate like Rust's own
/// (wrapping) arithmetic: the interpreter as an oracle test.
#[test]
fn interpreter_matches_rust_arithmetic() {
    let mut rng = SmallRng::seed_from_u64(0x1A06_0004);
    for _ in 0..CASES {
        let a = rng.gen_range(-100i64..100);
        let b = rng.gen_range(1i64..100);
        let c = rng.gen_range(-100i64..100);
        let src = format!("def f(): Int = ({a} + {b}) * {c} - {a} / {b} + {a} % {b}");
        let parsed = flix_lang::parse(&src).expect("parses");
        let checked = std::sync::Arc::new(flix_lang::check(&parsed).expect("checks"));
        let interp = flix_lang::Interpreter::new(checked);
        let expected = (a.wrapping_add(b))
            .wrapping_mul(c)
            .wrapping_sub(a.wrapping_div(b))
            .wrapping_add(a.wrapping_rem(b));
        assert_eq!(
            interp.call("f", &[]),
            flix_core::Value::Int(expected),
            "a={a} b={b} c={c}"
        );
    }
}
