//! Safety checking of surface-language lattice bindings (§7 of the
//! paper).
//!
//! A `let T<> = (bot, top, leq, lub, glb)` binding is trusted by the
//! solver; if the user's functions do not form a complete lattice, "the
//! semantics of the FLIX program is undefined" (§2.2). This module makes
//! the check §7 proposes: it enumerates sample elements of each lattice
//! enum (all nullary cases, plus payload-bearing cases instantiated with
//! small sample payloads) and runs the engine-level law checker
//! [`flix_core::verify::check_lattice_ops`] against the interpreted
//! operations.
//!
//! Exposed on the CLI as `flixr --verify`.

use crate::interp::Interpreter;
use crate::lower;
use crate::typeck::{CheckedProgram, Type};
use crate::LangError;
use flix_core::{verify, Value};
use std::sync::Arc;

/// Maximum number of sample elements generated per lattice (the law check
/// is cubic in this number).
const MAX_SAMPLES: usize = 12;

/// Checks every lattice binding of a checked program against the
/// complete-lattice laws, over generated sample elements.
///
/// # Errors
///
/// Returns a [`LangError`] naming the lattice type and the violated law.
pub fn check_lattices(checked: &Arc<CheckedProgram>) -> Result<(), LangError> {
    let interp = Interpreter::new(Arc::clone(checked));
    for (ty, bind) in &checked.lattices {
        let ops = lower::ops_for_binding(&interp, ty, bind);
        let samples = sample_elements(checked, ty);
        if let Err(violation) = verify::check_lattice_ops(&ops, &samples) {
            return Err(LangError::ty(
                bind.pos,
                format!("the {ty}<> binding is not a lattice: {violation}"),
            ));
        }
    }
    Ok(())
}

/// Generates sample elements of an enum type: every case, instantiated
/// with small payload samples, capped at [`MAX_SAMPLES`].
fn sample_elements(checked: &CheckedProgram, enum_name: &str) -> Vec<Value> {
    let Some(info) = checked.enums.get(enum_name) else {
        return Vec::new();
    };
    let mut out = Vec::new();
    let mut cases: Vec<_> = info.cases.iter().collect();
    cases.sort_by_key(|(name, _)| (*name).clone());
    for (case, payload) in cases {
        for combo in payload_samples(checked, payload, 2) {
            let value = match combo.len() {
                0 => Value::tag0(case.as_str()),
                1 => Value::tag(case.as_str(), combo.into_iter().next().expect("len 1")),
                _ => Value::tag(case.as_str(), Value::tuple(combo)),
            };
            out.push(value);
            if out.len() >= MAX_SAMPLES {
                return out;
            }
        }
    }
    out
}

/// Small sample values per type, combined across a payload (odometer over
/// `per_type` choices per field).
fn payload_samples(checked: &CheckedProgram, payload: &[Type], per_type: usize) -> Vec<Vec<Value>> {
    let choices: Vec<Vec<Value>> = payload
        .iter()
        .map(|t| type_samples(checked, t, per_type))
        .collect();
    let mut out = vec![Vec::new()];
    for field in choices {
        let mut next = Vec::new();
        for prefix in &out {
            for v in &field {
                let mut row = prefix.clone();
                row.push(v.clone());
                next.push(row);
            }
        }
        out = next;
    }
    out
}

fn type_samples(checked: &CheckedProgram, t: &Type, per_type: usize) -> Vec<Value> {
    let all = match t {
        Type::Int => vec![Value::Int(0), Value::Int(1), Value::Int(-1)],
        Type::Str => vec![Value::from("a"), Value::from("b")],
        Type::Bool => vec![Value::Bool(false), Value::Bool(true)],
        Type::Unit => vec![Value::Unit],
        Type::Enum(name) => {
            // Nested enums contribute their nullary cases only.
            let mut vals = Vec::new();
            if let Some(info) = checked.enums.get(name) {
                let mut cases: Vec<_> = info.cases.iter().collect();
                cases.sort_by_key(|(n, _)| (*n).clone());
                for (case, payload) in cases {
                    if payload.is_empty() {
                        vals.push(Value::tag0(case.as_str()));
                    }
                }
            }
            vals
        }
        Type::Tuple(items) => {
            return payload_samples(checked, items, per_type)
                .into_iter()
                .map(Value::tuple)
                .take(per_type)
                .collect()
        }
        Type::Set(_) | Type::Never => vec![Value::set([])],
    };
    all.into_iter().take(per_type).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::typeck::check;

    fn checked(src: &str) -> Arc<CheckedProgram> {
        Arc::new(check(&parse(src).expect("parses")).expect("checks"))
    }

    const GOOD_PARITY: &str = r#"
        enum Parity { case Top, case Even, case Odd, case Bot }
        def leq(e1: Parity, e2: Parity): Bool = match (e1, e2) with {
          case (Parity.Bot, _) => true
          case (Parity.Even, Parity.Even) => true
          case (Parity.Odd, Parity.Odd) => true
          case (_, Parity.Top) => true
          case _ => false
        }
        def lub(e1: Parity, e2: Parity): Parity = match (e1, e2) with {
          case (Parity.Bot, x) => x
          case (x, Parity.Bot) => x
          case (Parity.Even, Parity.Even) => Parity.Even
          case (Parity.Odd, Parity.Odd) => Parity.Odd
          case _ => Parity.Top
        }
        def glb(e1: Parity, e2: Parity): Parity = match (e1, e2) with {
          case (Parity.Top, x) => x
          case (x, Parity.Top) => x
          case (Parity.Even, Parity.Even) => Parity.Even
          case (Parity.Odd, Parity.Odd) => Parity.Odd
          case _ => Parity.Bot
        }
        let Parity<> = (Parity.Bot, Parity.Top, leq, lub, glb);
    "#;

    #[test]
    fn lawful_lattice_passes() {
        check_lattices(&checked(GOOD_PARITY)).expect("parity is lawful");
    }

    #[test]
    fn broken_lub_is_rejected_with_position() {
        // A lub that returns Bot for incomparable elements is not an
        // upper bound operator at all.
        let src = r#"
            enum P { case Top, case A, case B, case Bot }
            def leq(x: P, y: P): Bool = match (x, y) with {
              case (P.Bot, _) => true
              case (_, P.Top) => true
              case (P.A, P.A) => true
              case (P.B, P.B) => true
              case _ => false
            }
            def lub(x: P, y: P): P = match (x, y) with {
              case (P.Bot, z) => z
              case (z, P.Bot) => z
              case _ => P.Bot
            }
            def glb(x: P, y: P): P = match (x, y) with {
              case (P.Top, z) => z
              case (z, P.Top) => z
              case _ => P.Bot
            }
            let P<> = (P.Bot, P.Top, leq, lub, glb);
        "#;
        let err = check_lattices(&checked(src)).expect_err("must reject");
        assert!(err.to_string().contains("not a lattice"), "{err}");
        assert!(err.to_string().contains("upper bound"), "{err}");
    }

    #[test]
    fn payload_cases_are_sampled() {
        // The SULattice with Single(Str): samples must include Single("a")
        // and Single("b") so the flat-lattice structure is exercised.
        let src = r#"
            enum S { case Top, case Single(Str), case Bottom }
            def leq(x: S, y: S): Bool = match (x, y) with {
              case (S.Bottom, _) => true
              case (_, S.Top) => true
              case (S.Single(a), S.Single(b)) => a == b
              case _ => false
            }
            def lub(x: S, y: S): S = match (x, y) with {
              case (S.Bottom, z) => z
              case (z, S.Bottom) => z
              case (S.Single(a), S.Single(b)) => if (a == b) S.Single(a) else S.Top
              case _ => S.Top
            }
            def glb(x: S, y: S): S = match (x, y) with {
              case (S.Top, z) => z
              case (z, S.Top) => z
              case (S.Single(a), S.Single(b)) => if (a == b) S.Single(a) else S.Bottom
              case _ => S.Bottom
            }
            let S<> = (S.Bottom, S.Top, leq, lub, glb);
        "#;
        check_lattices(&checked(src)).expect("SULattice is lawful");
    }
}
