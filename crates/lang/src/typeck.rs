//! Type checking and name resolution for the FLIX surface language.
//!
//! The checker resolves enum cases, function signatures, lattice bindings,
//! and predicate schemas; types every function body; and types every
//! constraint, resolving the parser's ambiguity between body atoms and
//! filter applications (both look like `name(args)`) by name kind.

use crate::ast::*;
use crate::error::LangError;
use crate::token::Pos;
use std::collections::HashMap;

/// A resolved semantic type.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Type {
    /// 64-bit integers.
    Int,
    /// Strings.
    Str,
    /// Booleans.
    Bool,
    /// Unit.
    Unit,
    /// A declared enum type.
    Enum(String),
    /// A tuple.
    Tuple(Vec<Type>),
    /// A finite set.
    Set(Box<Type>),
    /// The empty type, inferred only for the empty set literal `Set()`;
    /// `Set(Never)` is compatible with every set type.
    Never,
}

impl std::fmt::Display for Type {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Type::Int => f.write_str("Int"),
            Type::Str => f.write_str("Str"),
            Type::Bool => f.write_str("Bool"),
            Type::Unit => f.write_str("Unit"),
            Type::Enum(n) => f.write_str(n),
            Type::Tuple(items) => {
                f.write_str("(")?;
                for (i, t) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{t}")?;
                }
                f.write_str(")")
            }
            Type::Set(t) => write!(f, "Set({t})"),
            Type::Never => f.write_str("Never"),
        }
    }
}

/// Directed compatibility: `got` may flow where `want` is expected.
/// Identical types always flow; the empty set `Set(Never)` flows into any
/// set type.
fn compatible(got: &Type, want: &Type) -> bool {
    got == want || matches!((got, want), (Type::Set(g), Type::Set(_)) if **g == Type::Never)
}

/// The least common type of two branches, if any.
fn join_types(a: &Type, b: &Type) -> Option<Type> {
    if a == b {
        Some(a.clone())
    } else if compatible(a, b) {
        Some(b.clone())
    } else if compatible(b, a) {
        Some(a.clone())
    } else {
        None
    }
}

/// A resolved enum: case name to payload types.
#[derive(Clone, Debug)]
pub struct EnumInfo {
    /// Case name → payload types.
    pub cases: HashMap<String, Vec<Type>>,
}

/// A resolved function: signature plus body AST (interpreted at runtime).
#[derive(Clone, Debug)]
pub struct DefInfo {
    /// Parameter names and types.
    pub params: Vec<(String, Type)>,
    /// Return type.
    pub ret: Type,
    /// The body expression.
    pub body: Expr,
}

/// A resolved predicate schema.
#[derive(Clone, Debug)]
pub struct PredSig {
    /// Column types.
    pub attrs: Vec<Type>,
    /// `true` for `lat` predicates.
    pub is_lattice: bool,
    /// For `lat` predicates: the enum type of the value column.
    pub lattice_ty: Option<String>,
}

/// A type-checked body item (atoms and filters disambiguated).
#[derive(Clone, Debug)]
pub enum CheckedBodyItem {
    /// A positive atom.
    Atom(Atom),
    /// A negated atom.
    NegAtom(Atom),
    /// A filter application.
    Filter {
        /// The filter function name.
        func: String,
        /// The arguments.
        args: Vec<RuleTerm>,
    },
    /// A choice binding.
    Choose {
        /// Bound variable names.
        binds: Vec<String>,
        /// The set-returning function name.
        func: String,
        /// The arguments.
        args: Vec<RuleTerm>,
    },
}

/// A type-checked constraint.
#[derive(Clone, Debug)]
pub struct CheckedConstraint {
    /// The head atom.
    pub head: Atom,
    /// The resolved body.
    pub body: Vec<CheckedBodyItem>,
}

/// A fully resolved and type-checked program, ready for lowering.
#[derive(Clone, Debug, Default)]
pub struct CheckedProgram {
    /// Enum table.
    pub enums: HashMap<String, EnumInfo>,
    /// Function table.
    pub defs: HashMap<String, DefInfo>,
    /// Lattice bindings by enum type name.
    pub lattices: HashMap<String, LatticeBind>,
    /// Predicate table.
    pub preds: HashMap<String, PredSig>,
    /// Predicate declaration order (for stable output).
    pub pred_order: Vec<String>,
    /// The constraints.
    pub constraints: Vec<CheckedConstraint>,
}

/// Type-checks a parsed program.
///
/// # Errors
///
/// Returns the first [`LangError`] found: unknown names, arity and type
/// mismatches, missing lattice bindings for `lat` columns, non-ground
/// facts, or misplaced function applications.
pub fn check(program: &SourceProgram) -> Result<CheckedProgram, LangError> {
    let mut cx = Checker::default();

    // Pass 1: collect enum names (so payloads may reference each other),
    // then their cases; collect def signatures; lattice binds; predicates.
    for decl in &program.decls {
        if let Decl::Enum(e) = decl {
            if cx.out.enums.contains_key(&e.name) {
                return Err(LangError::ty(e.pos, format!("duplicate enum {}", e.name)));
            }
            cx.out.enums.insert(
                e.name.clone(),
                EnumInfo {
                    cases: HashMap::new(),
                },
            );
        }
    }
    for decl in &program.decls {
        match decl {
            Decl::Enum(e) => {
                let mut cases = HashMap::new();
                for case in &e.cases {
                    let payload: Vec<Type> = case
                        .payload
                        .iter()
                        .map(|t| cx.resolve_type(t, case.pos))
                        .collect::<Result<_, _>>()?;
                    if cases.insert(case.name.clone(), payload).is_some() {
                        return Err(LangError::ty(
                            case.pos,
                            format!("duplicate case {} in enum {}", case.name, e.name),
                        ));
                    }
                }
                cx.out
                    .enums
                    .get_mut(&e.name)
                    .expect("inserted in pass 1")
                    .cases = cases;
            }
            Decl::Def(d) => {
                let params: Vec<(String, Type)> = d
                    .params
                    .iter()
                    .map(|p| Ok((p.name.clone(), cx.resolve_type(&p.ty, d.pos)?)))
                    .collect::<Result<_, LangError>>()?;
                let ret = cx.resolve_type(&d.ret, d.pos)?;
                if cx
                    .out
                    .defs
                    .insert(
                        d.name.clone(),
                        DefInfo {
                            params,
                            ret,
                            body: d.body.clone(),
                        },
                    )
                    .is_some()
                {
                    return Err(LangError::ty(d.pos, format!("duplicate def {}", d.name)));
                }
            }
            Decl::Lattice(l) => {
                if !cx.out.enums.contains_key(&l.ty) {
                    return Err(LangError::ty(
                        l.pos,
                        format!("lattice binding for unknown type {}", l.ty),
                    ));
                }
                cx.out.lattices.insert(l.ty.clone(), l.clone());
            }
            Decl::Pred(p) => {
                let mut attrs = Vec::new();
                let mut lattice_ty = None;
                for (i, attr) in p.attributes.iter().enumerate() {
                    let ty = cx.resolve_type(&attr.ty, p.pos)?;
                    let last = i == p.attributes.len() - 1;
                    if attr.is_lattice || (p.is_lattice && last) {
                        if !(p.is_lattice && last) {
                            return Err(LangError::ty(
                                p.pos,
                                format!(
                                    "lattice column in non-final position of predicate {}",
                                    p.name
                                ),
                            ));
                        }
                        let Type::Enum(name) = &ty else {
                            return Err(LangError::ty(
                                p.pos,
                                format!(
                                    "the value column of lat {} must be an enum type with a \
                                     lattice binding",
                                    p.name
                                ),
                            ));
                        };
                        lattice_ty = Some(name.clone());
                    }
                    attrs.push(ty);
                }
                if p.is_lattice && lattice_ty.is_none() {
                    return Err(LangError::ty(
                        p.pos,
                        format!("lat {} has no lattice value column", p.name),
                    ));
                }
                if cx
                    .out
                    .preds
                    .insert(
                        p.name.clone(),
                        PredSig {
                            attrs,
                            is_lattice: p.is_lattice,
                            lattice_ty,
                        },
                    )
                    .is_some()
                {
                    return Err(LangError::ty(
                        p.pos,
                        format!("duplicate predicate {}", p.name),
                    ));
                }
                cx.out.pred_order.push(p.name.clone());
            }
            Decl::Constraint(_) => {}
        }
    }

    // Pass 2: check def bodies.
    let defs_snapshot: Vec<(String, DefInfo)> = cx
        .out
        .defs
        .iter()
        .map(|(k, v)| (k.clone(), v.clone()))
        .collect();
    for (name, info) in &defs_snapshot {
        let mut env: HashMap<String, Type> = info.params.iter().cloned().collect();
        let actual = cx.infer_expr(&info.body, &mut env)?;
        if !compatible(&actual, &info.ret) {
            return Err(LangError::ty(
                info.body.pos(),
                format!(
                    "function {name} declares return type {} but its body has type {actual}",
                    info.ret
                ),
            ));
        }
    }

    // Pass 3: check lattice bindings.
    let lattices: Vec<LatticeBind> = cx.out.lattices.values().cloned().collect();
    for l in &lattices {
        let elem = Type::Enum(l.ty.clone());
        let mut env = HashMap::new();
        for (what, e) in [("bottom", &l.bot), ("top", &l.top)] {
            let t = cx.infer_expr(e, &mut env)?;
            if t != elem {
                return Err(LangError::ty(
                    e.pos(),
                    format!(
                        "the {what} element of {}<> has type {t}, expected {elem}",
                        l.ty
                    ),
                ));
            }
        }
        for (what, fname, ret) in [
            ("leq", &l.leq, Type::Bool),
            ("lub", &l.lub, elem.clone()),
            ("glb", &l.glb, elem.clone()),
        ] {
            let Some(def) = cx.out.defs.get(fname) else {
                return Err(LangError::ty(
                    l.pos,
                    format!("unknown {what} function {fname} in {}<> binding", l.ty),
                ));
            };
            let want: Vec<Type> = vec![elem.clone(), elem.clone()];
            let have: Vec<Type> = def.params.iter().map(|(_, t)| t.clone()).collect();
            if have != want || def.ret != ret {
                return Err(LangError::ty(
                    l.pos,
                    format!("{what} function {fname} must have type ({elem}, {elem}) -> {ret}"),
                ));
            }
        }
    }

    // Pass 4: check constraints.
    for decl in &program.decls {
        if let Decl::Constraint(c) = decl {
            let checked = cx.check_constraint(c)?;
            cx.out.constraints.push(checked);
        }
    }

    Ok(cx.out)
}

#[derive(Default)]
struct Checker {
    out: CheckedProgram,
}

impl Checker {
    fn resolve_type(&self, t: &TypeExpr, pos: Pos) -> Result<Type, LangError> {
        Ok(match t {
            TypeExpr::Int => Type::Int,
            TypeExpr::Str => Type::Str,
            TypeExpr::Bool => Type::Bool,
            TypeExpr::Unit => Type::Unit,
            TypeExpr::Named(name) if name == "Set" => {
                return Err(LangError::ty(pos, "Set requires an element type: Set(T)"))
            }
            TypeExpr::Named(name) => {
                if !self.out.enums.contains_key(name) {
                    return Err(LangError::ty(pos, format!("unknown type {name}")));
                }
                Type::Enum(name.clone())
            }
            TypeExpr::Tuple(items) => Type::Tuple(
                items
                    .iter()
                    .map(|t| self.resolve_type(t, pos))
                    .collect::<Result<_, _>>()?,
            ),
            TypeExpr::Set(elem) => Type::Set(Box::new(self.resolve_type(elem, pos)?)),
        })
    }

    fn infer_expr(&self, expr: &Expr, env: &mut HashMap<String, Type>) -> Result<Type, LangError> {
        match expr {
            Expr::Lit(l, _) => Ok(lit_type(l)),
            Expr::Var(name, pos) => env
                .get(name)
                .cloned()
                .ok_or_else(|| LangError::ty(*pos, format!("unknown variable {name}"))),
            Expr::Ctor {
                enum_name,
                case,
                args,
                pos,
            } => {
                if enum_name == "Set" {
                    return Err(LangError::ty(*pos, "Set is not an enum type"));
                }
                let payload = self.case_payload(enum_name, case, *pos)?.to_vec();
                if payload.len() != args.len() {
                    return Err(LangError::ty(
                        *pos,
                        format!(
                            "case {enum_name}.{case} takes {} arguments, found {}",
                            payload.len(),
                            args.len()
                        ),
                    ));
                }
                for (arg, want) in args.iter().zip(&payload) {
                    let got = self.infer_expr(arg, env)?;
                    if !compatible(&got, want) {
                        return Err(LangError::ty(
                            arg.pos(),
                            format!("expected {want}, found {got}"),
                        ));
                    }
                }
                Ok(Type::Enum(enum_name.clone()))
            }
            Expr::Call { func, args, pos } => {
                let def = self
                    .out
                    .defs
                    .get(func)
                    .ok_or_else(|| LangError::ty(*pos, format!("unknown function {func}")))?
                    .clone();
                if def.params.len() != args.len() {
                    return Err(LangError::ty(
                        *pos,
                        format!(
                            "function {func} takes {} arguments, found {}",
                            def.params.len(),
                            args.len()
                        ),
                    ));
                }
                for (arg, (pname, want)) in args.iter().zip(&def.params) {
                    let got = self.infer_expr(arg, env)?;
                    if !compatible(&got, want) {
                        return Err(LangError::ty(
                            arg.pos(),
                            format!("argument {pname} of {func}: expected {want}, found {got}"),
                        ));
                    }
                }
                Ok(def.ret)
            }
            Expr::Tuple(items, _) => Ok(Type::Tuple(
                items
                    .iter()
                    .map(|e| self.infer_expr(e, env))
                    .collect::<Result<_, _>>()?,
            )),
            Expr::SetLit(items, pos) => {
                let mut elem = Type::Never;
                for e in items {
                    let t = self.infer_expr(e, env)?;
                    elem = join_types(&elem, &t)
                        .or_else(|| {
                            if elem == Type::Never {
                                Some(t.clone())
                            } else {
                                None
                            }
                        })
                        .ok_or_else(|| {
                            LangError::ty(
                                *pos,
                                "set literal elements have inconsistent types".to_string(),
                            )
                        })?;
                }
                Ok(Type::Set(Box::new(elem)))
            }
            Expr::Unary { op, expr, pos } => {
                let t = self.infer_expr(expr, env)?;
                match op {
                    UnOp::Not if t == Type::Bool => Ok(Type::Bool),
                    UnOp::Neg if t == Type::Int => Ok(Type::Int),
                    _ => Err(LangError::ty(
                        *pos,
                        format!("operator {op:?} cannot be applied to {t}"),
                    )),
                }
            }
            Expr::Binary { op, lhs, rhs, pos } => {
                let lt = self.infer_expr(lhs, env)?;
                let rt = self.infer_expr(rhs, env)?;
                use BinOp::*;
                match op {
                    Add | Sub | Mul | Div | Rem => {
                        if lt == Type::Int && rt == Type::Int {
                            Ok(Type::Int)
                        } else {
                            Err(LangError::ty(
                                *pos,
                                format!("arithmetic requires Int operands, found {lt} and {rt}"),
                            ))
                        }
                    }
                    Lt | Le | Gt | Ge => {
                        if lt == Type::Int && rt == Type::Int {
                            Ok(Type::Bool)
                        } else {
                            Err(LangError::ty(
                                *pos,
                                format!("comparison requires Int operands, found {lt} and {rt}"),
                            ))
                        }
                    }
                    Eq | Ne => {
                        if lt == rt {
                            Ok(Type::Bool)
                        } else {
                            Err(LangError::ty(
                                *pos,
                                format!("cannot compare {lt} with {rt}"),
                            ))
                        }
                    }
                    And | Or => {
                        if lt == Type::Bool && rt == Type::Bool {
                            Ok(Type::Bool)
                        } else {
                            Err(LangError::ty(
                                *pos,
                                format!(
                                    "logical operator requires Bool operands, found {lt} and {rt}"
                                ),
                            ))
                        }
                    }
                }
            }
            Expr::If {
                cond,
                then,
                otherwise,
                pos,
            } => {
                let ct = self.infer_expr(cond, env)?;
                if ct != Type::Bool {
                    return Err(LangError::ty(
                        *pos,
                        format!("if condition must be Bool, found {ct}"),
                    ));
                }
                let tt = self.infer_expr(then, env)?;
                let et = self.infer_expr(otherwise, env)?;
                join_types(&tt, &et).ok_or_else(|| {
                    LangError::ty(
                        *pos,
                        format!("if branches have different types: {tt} vs {et}"),
                    )
                })
            }
            Expr::Let {
                name, bound, body, ..
            } => {
                let bt = self.infer_expr(bound, env)?;
                let saved = env.insert(name.clone(), bt);
                let result = self.infer_expr(body, env);
                match saved {
                    Some(prev) => {
                        env.insert(name.clone(), prev);
                    }
                    None => {
                        env.remove(name);
                    }
                }
                result
            }
            Expr::Match {
                scrutinee,
                arms,
                pos,
            } => {
                let st = self.infer_expr(scrutinee, env)?;
                if arms.is_empty() {
                    return Err(LangError::ty(*pos, "match with no arms"));
                }
                let mut result: Option<Type> = None;
                for arm in arms {
                    let mut arm_env = env.clone();
                    self.check_pattern(&arm.pat, &st, &mut arm_env)?;
                    let bt = self.infer_expr(&arm.body, &mut arm_env)?;
                    match &result {
                        None => result = Some(bt),
                        Some(prev) => match join_types(prev, &bt) {
                            Some(joined) => result = Some(joined),
                            None => {
                                return Err(LangError::ty(
                                    arm.body.pos(),
                                    format!("match arms have different types: {prev} vs {bt}"),
                                ))
                            }
                        },
                    }
                }
                Ok(result.expect("at least one arm"))
            }
        }
    }

    fn case_payload(&self, enum_name: &str, case: &str, pos: Pos) -> Result<&[Type], LangError> {
        let info = self
            .out
            .enums
            .get(enum_name)
            .ok_or_else(|| LangError::ty(pos, format!("unknown enum {enum_name}")))?;
        info.cases
            .get(case)
            .map(|v| v.as_slice())
            .ok_or_else(|| LangError::ty(pos, format!("enum {enum_name} has no case {case}")))
    }

    fn check_pattern(
        &self,
        pat: &Pattern,
        expected: &Type,
        env: &mut HashMap<String, Type>,
    ) -> Result<(), LangError> {
        match pat {
            Pattern::Wildcard(_) => Ok(()),
            Pattern::Var(name, _) => {
                env.insert(name.clone(), expected.clone());
                Ok(())
            }
            Pattern::Lit(l, pos) => {
                let t = lit_type(l);
                if &t == expected {
                    Ok(())
                } else {
                    Err(LangError::ty(
                        *pos,
                        format!("literal pattern has type {t}, expected {expected}"),
                    ))
                }
            }
            Pattern::Ctor {
                enum_name,
                case,
                args,
                pos,
            } => {
                if expected != &Type::Enum(enum_name.clone()) {
                    return Err(LangError::ty(
                        *pos,
                        format!("pattern {enum_name}.{case} cannot match a {expected}"),
                    ));
                }
                let payload = self.case_payload(enum_name, case, *pos)?.to_vec();
                if payload.len() != args.len() {
                    return Err(LangError::ty(
                        *pos,
                        format!(
                            "case {enum_name}.{case} has {} payload fields, pattern binds {}",
                            payload.len(),
                            args.len()
                        ),
                    ));
                }
                for (p, t) in args.iter().zip(&payload) {
                    self.check_pattern(p, t, env)?;
                }
                Ok(())
            }
            Pattern::Tuple(items, pos) => {
                let Type::Tuple(types) = expected else {
                    return Err(LangError::ty(
                        *pos,
                        format!("tuple pattern cannot match a {expected}"),
                    ));
                };
                if items.len() != types.len() {
                    return Err(LangError::ty(
                        *pos,
                        format!(
                            "tuple pattern has {} elements, expected {}",
                            items.len(),
                            types.len()
                        ),
                    ));
                }
                for (p, t) in items.iter().zip(types) {
                    self.check_pattern(p, t, env)?;
                }
                Ok(())
            }
        }
    }

    // ---- constraints -------------------------------------------------------

    fn check_constraint(&self, c: &Constraint) -> Result<CheckedConstraint, LangError> {
        let mut vars: HashMap<String, Type> = HashMap::new();
        let mut body = Vec::new();
        for item in &c.body {
            match item {
                BodyItem::Atom(atom) => {
                    if self.out.preds.contains_key(&atom.pred) {
                        self.check_atom(atom, &mut vars, false)?;
                        body.push(CheckedBodyItem::Atom(atom.clone()));
                    } else if let Some(def) = self.out.defs.get(&atom.pred) {
                        // A filter application.
                        if def.ret != Type::Bool {
                            return Err(LangError::ty(
                                atom.pos,
                                format!(
                                    "filter function {} must return Bool, returns {}",
                                    atom.pred, def.ret
                                ),
                            ));
                        }
                        self.check_call_terms(&atom.pred, &atom.terms, &mut vars, atom.pos)?;
                        body.push(CheckedBodyItem::Filter {
                            func: atom.pred.clone(),
                            args: atom.terms.clone(),
                        });
                    } else {
                        return Err(LangError::ty(
                            atom.pos,
                            format!("unknown predicate or function {}", atom.pred),
                        ));
                    }
                }
                BodyItem::NegAtom(atom) => {
                    if !self.out.preds.contains_key(&atom.pred) {
                        return Err(LangError::ty(
                            atom.pos,
                            format!("unknown predicate {}", atom.pred),
                        ));
                    }
                    self.check_atom(atom, &mut vars, false)?;
                    body.push(CheckedBodyItem::NegAtom(atom.clone()));
                }
                BodyItem::Choose {
                    binds,
                    func,
                    args,
                    pos,
                } => {
                    let def =
                        self.out.defs.get(func).ok_or_else(|| {
                            LangError::ty(*pos, format!("unknown function {func}"))
                        })?;
                    let Type::Set(elem) = &def.ret else {
                        return Err(LangError::ty(
                            *pos,
                            format!(
                                "choice function {func} must return Set(T), returns {}",
                                def.ret
                            ),
                        ));
                    };
                    self.check_call_terms(func, args, &mut vars, *pos)?;
                    let bind_types: Vec<Type> = if binds.len() == 1 {
                        vec![(**elem).clone()]
                    } else {
                        let Type::Tuple(items) = &**elem else {
                            return Err(LangError::ty(
                                *pos,
                                format!(
                                    "choice destructures {} variables but {func} yields \
                                     elements of type {elem}",
                                    binds.len()
                                ),
                            ));
                        };
                        if items.len() != binds.len() {
                            return Err(LangError::ty(
                                *pos,
                                format!(
                                    "choice destructures {} variables but elements are \
                                     {}-tuples",
                                    binds.len(),
                                    items.len()
                                ),
                            ));
                        }
                        items.clone()
                    };
                    for (name, t) in binds.iter().zip(bind_types) {
                        bind_var(&mut vars, name, t, *pos)?;
                    }
                    body.push(CheckedBodyItem::Choose {
                        binds: binds.clone(),
                        func: func.clone(),
                        args: args.clone(),
                    });
                }
            }
        }

        // The head.
        if !self.out.preds.contains_key(&c.head.pred) {
            return Err(LangError::ty(
                c.head.pos,
                format!("unknown predicate {}", c.head.pred),
            ));
        }
        self.check_atom(&c.head, &mut vars, true)?;
        if c.body.is_empty() {
            // Facts must be ground.
            for t in &c.head.terms {
                if !is_ground(t) {
                    return Err(LangError::ty(
                        t.pos(),
                        "facts must be ground (no variables, wildcards, or function \
                         applications)",
                    ));
                }
            }
        }
        Ok(CheckedConstraint {
            head: c.head.clone(),
            body,
        })
    }

    /// Checks an atom's terms against the predicate schema.
    fn check_atom(
        &self,
        atom: &Atom,
        vars: &mut HashMap<String, Type>,
        is_head: bool,
    ) -> Result<(), LangError> {
        let sig = self
            .out
            .preds
            .get(&atom.pred)
            .expect("caller checked")
            .clone();
        if sig.attrs.len() != atom.terms.len() {
            return Err(LangError::ty(
                atom.pos,
                format!(
                    "predicate {} has arity {}, used with {} terms",
                    atom.pred,
                    sig.attrs.len(),
                    atom.terms.len()
                ),
            ));
        }
        let last = atom.terms.len().saturating_sub(1);
        for (i, (term, want)) in atom.terms.iter().zip(&sig.attrs).enumerate() {
            if let RuleTerm::App { .. } = term {
                if !is_head || i != last {
                    return Err(LangError::ty(
                        term.pos(),
                        "function applications may only appear as the last term of a rule \
                         head (§3.3 of the paper)",
                    ));
                }
            }
            if is_head {
                if let RuleTerm::Wildcard(pos) = term {
                    return Err(LangError::ty(
                        *pos,
                        "wildcards cannot appear in a rule head",
                    ));
                }
            }
            self.check_term(term, want, vars)?;
        }
        Ok(())
    }

    /// Checks filter/choice arguments against the function signature.
    fn check_call_terms(
        &self,
        func: &str,
        args: &[RuleTerm],
        vars: &mut HashMap<String, Type>,
        pos: Pos,
    ) -> Result<(), LangError> {
        let def = self.out.defs.get(func).expect("caller checked").clone();
        if def.params.len() != args.len() {
            return Err(LangError::ty(
                pos,
                format!(
                    "function {func} takes {} arguments, found {}",
                    def.params.len(),
                    args.len()
                ),
            ));
        }
        for (term, (_, want)) in args.iter().zip(&def.params) {
            if let RuleTerm::App { pos, .. } = term {
                return Err(LangError::ty(
                    *pos,
                    "nested function applications are not allowed in rule bodies",
                ));
            }
            self.check_term(term, want, vars)?;
        }
        Ok(())
    }

    fn check_term(
        &self,
        term: &RuleTerm,
        expected: &Type,
        vars: &mut HashMap<String, Type>,
    ) -> Result<(), LangError> {
        match term {
            RuleTerm::Wildcard(_) => Ok(()),
            RuleTerm::Var(name, pos) => bind_var(vars, name, expected.clone(), *pos),
            RuleTerm::Lit(l, pos) => {
                let t = lit_type(l);
                if &t == expected {
                    Ok(())
                } else {
                    Err(LangError::ty(
                        *pos,
                        format!("term has type {t}, expected {expected}"),
                    ))
                }
            }
            RuleTerm::Ctor {
                enum_name,
                case,
                args,
                pos,
            } => {
                if expected != &Type::Enum(enum_name.clone()) {
                    return Err(LangError::ty(
                        *pos,
                        format!(
                            "term {enum_name}.{case} has type {enum_name}, expected {expected}"
                        ),
                    ));
                }
                let payload = self.case_payload(enum_name, case, *pos)?.to_vec();
                if payload.len() != args.len() {
                    return Err(LangError::ty(
                        *pos,
                        format!(
                            "case {enum_name}.{case} takes {} arguments, found {}",
                            payload.len(),
                            args.len()
                        ),
                    ));
                }
                for (arg, want) in args.iter().zip(&payload) {
                    self.check_term(arg, want, vars)?;
                }
                Ok(())
            }
            RuleTerm::App { func, args, pos } => {
                let def = self
                    .out
                    .defs
                    .get(func)
                    .ok_or_else(|| LangError::ty(*pos, format!("unknown function {func}")))?;
                if &def.ret != expected {
                    return Err(LangError::ty(
                        *pos,
                        format!(
                            "head function {func} returns {}, the column expects {expected}",
                            def.ret
                        ),
                    ));
                }
                let params: Vec<Type> = def.params.iter().map(|(_, t)| t.clone()).collect();
                if params.len() != args.len() {
                    return Err(LangError::ty(
                        *pos,
                        format!(
                            "function {func} takes {} arguments, found {}",
                            params.len(),
                            args.len()
                        ),
                    ));
                }
                for (arg, want) in args.iter().zip(&params) {
                    if matches!(arg, RuleTerm::App { .. } | RuleTerm::Wildcard(_)) {
                        return Err(LangError::ty(
                            arg.pos(),
                            "arguments of a head function application must be variables or \
                             ground terms",
                        ));
                    }
                    self.check_term(arg, want, vars)?;
                }
                Ok(())
            }
        }
    }
}

fn bind_var(
    vars: &mut HashMap<String, Type>,
    name: &str,
    ty: Type,
    pos: Pos,
) -> Result<(), LangError> {
    match vars.get(name) {
        None => {
            vars.insert(name.to_string(), ty);
            Ok(())
        }
        Some(prev) if *prev == ty => Ok(()),
        Some(prev) => Err(LangError::ty(
            pos,
            format!("variable {name} used at type {ty} but previously at {prev}"),
        )),
    }
}

fn lit_type(l: &Lit) -> Type {
    match l {
        Lit::Unit => Type::Unit,
        Lit::Bool(_) => Type::Bool,
        Lit::Int(_) => Type::Int,
        Lit::Str(_) => Type::Str,
    }
}

fn is_ground(t: &RuleTerm) -> bool {
    match t {
        RuleTerm::Lit(_, _) => true,
        RuleTerm::Ctor { args, .. } => args.iter().all(is_ground),
        RuleTerm::Var(_, _) | RuleTerm::Wildcard(_) | RuleTerm::App { .. } => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn check_src(src: &str) -> Result<CheckedProgram, LangError> {
        check(&parse(src).expect("parses"))
    }

    const PARITY_PRELUDE: &str = r#"
        enum Parity { case Top, case Even, case Odd, case Bot }
        def leq(e1: Parity, e2: Parity): Bool = match (e1, e2) with {
          case (Parity.Bot, _) => true
          case (Parity.Even, Parity.Even) => true
          case (Parity.Odd, Parity.Odd) => true
          case (_, Parity.Top) => true
          case _ => false
        }
        def lub(e1: Parity, e2: Parity): Parity = match (e1, e2) with {
          case (Parity.Bot, x) => x
          case (x, Parity.Bot) => x
          case (Parity.Even, Parity.Even) => Parity.Even
          case (Parity.Odd, Parity.Odd) => Parity.Odd
          case _ => Parity.Top
        }
        def glb(e1: Parity, e2: Parity): Parity = match (e1, e2) with {
          case (Parity.Top, x) => x
          case (x, Parity.Top) => x
          case (Parity.Even, Parity.Even) => Parity.Even
          case (Parity.Odd, Parity.Odd) => Parity.Odd
          case _ => Parity.Bot
        }
        let Parity<> = (Parity.Bot, Parity.Top, leq, lub, glb);
    "#;

    #[test]
    fn parity_prelude_checks() {
        let src = format!("{PARITY_PRELUDE} lat IntVar(v: Str, Parity<>);");
        let checked = check_src(&src).expect("checks");
        assert!(checked.preds["IntVar"].is_lattice);
        assert_eq!(
            checked.preds["IntVar"].lattice_ty.as_deref(),
            Some("Parity")
        );
    }

    #[test]
    fn filter_resolution_distinguishes_predicates_from_functions() {
        let src = format!(
            "{PARITY_PRELUDE}
             def isMaybeZero(e: Parity): Bool = match e with {{
               case Parity.Even => true case Parity.Top => true case _ => false
             }}
             rel Err(v: Str);
             lat IntVar(v: Str, Parity<>);
             Err(v) :- IntVar(v, i), isMaybeZero(i)."
        );
        let checked = check_src(&src).expect("checks");
        let c = &checked.constraints[0];
        assert!(matches!(&c.body[0], CheckedBodyItem::Atom(_)));
        assert!(
            matches!(&c.body[1], CheckedBodyItem::Filter { func, .. } if func == "isMaybeZero")
        );
    }

    #[test]
    fn wrong_return_type_is_rejected() {
        let err = check_src("def f(x: Int): Bool = x + 1").expect_err("rejects");
        assert!(err.to_string().contains("return type"));
    }

    #[test]
    fn arity_mismatch_in_atom_is_rejected() {
        let err = check_src("rel A(x: Int, y: Int); A(1).").expect_err("rejects");
        assert!(err.to_string().contains("arity"));
    }

    #[test]
    fn inconsistent_variable_types_are_rejected() {
        let err = check_src(
            "rel A(x: Int); rel B(x: Str); rel C(x: Int);
             C(v) :- A(v), B(v).",
        )
        .expect_err("rejects");
        assert!(err.to_string().contains("previously"));
    }

    #[test]
    fn non_ground_fact_is_rejected() {
        let err = check_src("rel A(x: Int); A(x).").expect_err("rejects");
        assert!(err.to_string().contains("ground"));
    }

    #[test]
    fn app_outside_head_last_is_rejected() {
        let src = format!(
            "{PARITY_PRELUDE}
             lat A(v: Str, Parity<>);
             rel E(v: Str, w: Str);
             A(sum(i, i), v) :- E(v, w), A(w, i)."
        );
        // `sum` is not even defined, but the positional check fires first.
        let err = check_src(&src).expect_err("rejects");
        assert!(err.to_string().contains("last term"));
    }

    #[test]
    fn filter_must_return_bool() {
        let src = format!(
            "{PARITY_PRELUDE}
             rel Err(v: Str);
             lat IntVar(v: Str, Parity<>);
             Err(v) :- IntVar(v, i), lub(i, i)."
        );
        let err = check_src(&src).expect_err("rejects");
        assert!(err.to_string().contains("must return Bool"));
    }

    #[test]
    fn lattice_binding_signature_is_enforced() {
        let src = r#"
            enum P { case A, case B }
            def leq(x: P): Bool = true
            def lub(x: P, y: P): P = x
            def glb(x: P, y: P): P = x
            let P<> = (P.A, P.B, leq, lub, glb);
        "#;
        let err = check_src(src).expect_err("rejects unary leq");
        assert!(err.to_string().contains("leq"));
    }

    #[test]
    fn match_arm_type_mismatch_is_rejected() {
        let err = check_src("def f(x: Int): Int = match x with { case 0 => 1 case _ => \"no\" }")
            .expect_err("rejects");
        assert!(err.to_string().contains("different types"));
    }
}
