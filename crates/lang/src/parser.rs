//! Recursive-descent parser for the FLIX surface language.
//!
//! The grammar follows the concrete syntax of the paper's figures:
//! Figure 2 (enums, defs, lattice bindings, `rel`/`lat` declarations,
//! rules with transfer and filter functions), Figure 4 (match-based filter
//! functions), and Figures 5–6 (`<-` choice bindings).

use crate::ast::*;
use crate::error::LangError;
use crate::lexer::lex;
use crate::token::{Pos, Tok, Token};

/// Parses FLIX source text into a [`SourceProgram`].
///
/// # Errors
///
/// Returns the first lexical or syntactic [`LangError`].
pub fn parse(src: &str) -> Result<SourceProgram, LangError> {
    let tokens = lex(src)?;
    Parser { tokens, at: 0 }.program()
}

struct Parser {
    tokens: Vec<Token>,
    at: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.tokens[self.at].tok
    }

    fn peek2(&self) -> &Tok {
        let i = (self.at + 1).min(self.tokens.len() - 1);
        &self.tokens[i].tok
    }

    fn pos(&self) -> Pos {
        self.tokens[self.at].pos
    }

    fn bump(&mut self) -> Tok {
        let t = self.tokens[self.at].tok.clone();
        if self.at + 1 < self.tokens.len() {
            self.at += 1;
        }
        t
    }

    fn eat(&mut self, tok: &Tok) -> bool {
        if self.peek() == tok {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, tok: &Tok) -> Result<(), LangError> {
        if self.eat(tok) {
            Ok(())
        } else {
            Err(LangError::parse(
                self.pos(),
                format!("expected `{tok}`, found `{}`", self.peek()),
            ))
        }
    }

    fn lower_ident(&mut self, what: &str) -> Result<String, LangError> {
        match self.peek().clone() {
            Tok::LowerIdent(s) => {
                self.bump();
                Ok(s)
            }
            other => Err(LangError::parse(
                self.pos(),
                format!("expected {what}, found `{other}`"),
            )),
        }
    }

    fn upper_ident(&mut self, what: &str) -> Result<String, LangError> {
        match self.peek().clone() {
            Tok::UpperIdent(s) => {
                self.bump();
                Ok(s)
            }
            other => Err(LangError::parse(
                self.pos(),
                format!("expected {what}, found `{other}`"),
            )),
        }
    }

    fn program(mut self) -> Result<SourceProgram, LangError> {
        let mut decls = Vec::new();
        loop {
            match self.peek() {
                Tok::Eof => return Ok(SourceProgram { decls }),
                Tok::Enum => decls.push(Decl::Enum(self.enum_def()?)),
                Tok::Def => decls.push(Decl::Def(self.def_def()?)),
                Tok::Let => decls.push(Decl::Lattice(self.lattice_bind()?)),
                Tok::Rel => decls.push(Decl::Pred(self.pred_decl(false)?)),
                Tok::Lat => decls.push(Decl::Pred(self.pred_decl(true)?)),
                Tok::UpperIdent(_) => decls.push(Decl::Constraint(self.constraint()?)),
                Tok::Semi => {
                    self.bump();
                }
                other => {
                    return Err(LangError::parse(
                        self.pos(),
                        format!("expected a declaration, found `{other}`"),
                    ))
                }
            }
        }
    }

    fn enum_def(&mut self) -> Result<EnumDef, LangError> {
        let pos = self.pos();
        self.expect(&Tok::Enum)?;
        let name = self.upper_ident("an enum name")?;
        self.expect(&Tok::LBrace)?;
        let mut cases = Vec::new();
        while !self.eat(&Tok::RBrace) {
            let case_pos = self.pos();
            self.expect(&Tok::Case)?;
            let case_name = self.upper_ident("a case name")?;
            let mut payload = Vec::new();
            if self.eat(&Tok::LParen) {
                loop {
                    payload.push(self.type_expr()?);
                    if !self.eat(&Tok::Comma) {
                        break;
                    }
                }
                self.expect(&Tok::RParen)?;
            }
            cases.push(EnumCase {
                name: case_name,
                payload,
                pos: case_pos,
            });
            // Commas between cases are optional (the paper uses both
            // styles within one figure).
            self.eat(&Tok::Comma);
        }
        Ok(EnumDef { name, cases, pos })
    }

    fn def_def(&mut self) -> Result<DefDef, LangError> {
        let pos = self.pos();
        self.expect(&Tok::Def)?;
        let name = self.lower_ident("a function name")?;
        self.expect(&Tok::LParen)?;
        let mut params = Vec::new();
        if self.peek() != &Tok::RParen {
            loop {
                let pname = self.lower_ident("a parameter name")?;
                self.expect(&Tok::Colon)?;
                let ty = self.type_expr()?;
                params.push(Param { name: pname, ty });
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
        }
        self.expect(&Tok::RParen)?;
        self.expect(&Tok::Colon)?;
        let ret = self.type_expr()?;
        self.expect(&Tok::Eq)?;
        let body = self.expr()?;
        self.eat(&Tok::Semi);
        Ok(DefDef {
            name,
            params,
            ret,
            body,
            pos,
        })
    }

    fn lattice_bind(&mut self) -> Result<LatticeBind, LangError> {
        let pos = self.pos();
        self.expect(&Tok::Let)?;
        let ty = self.upper_ident("a lattice type name")?;
        self.expect(&Tok::Diamond)?;
        self.expect(&Tok::Eq)?;
        self.expect(&Tok::LParen)?;
        let bot = self.expr()?;
        self.expect(&Tok::Comma)?;
        let top = self.expr()?;
        self.expect(&Tok::Comma)?;
        let leq = self.lower_ident("the leq function name")?;
        self.expect(&Tok::Comma)?;
        let lub = self.lower_ident("the lub function name")?;
        self.expect(&Tok::Comma)?;
        let glb = self.lower_ident("the glb function name")?;
        self.expect(&Tok::RParen)?;
        self.eat(&Tok::Semi);
        Ok(LatticeBind {
            ty,
            bot,
            top,
            leq,
            lub,
            glb,
            pos,
        })
    }

    fn pred_decl(&mut self, is_lattice: bool) -> Result<PredDecl, LangError> {
        let pos = self.pos();
        self.bump(); // rel / lat
        let name = self.upper_ident("a predicate name")?;
        self.expect(&Tok::LParen)?;
        let mut attributes = Vec::new();
        if self.peek() != &Tok::RParen {
            loop {
                attributes.push(self.attribute(attributes.len())?);
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
        }
        self.expect(&Tok::RParen)?;
        self.eat(&Tok::Semi);
        Ok(PredDecl {
            name,
            attributes,
            is_lattice,
            pos,
        })
    }

    /// Parses `name: Type`, `name: Type<>`, or the unnamed `Type<>` form
    /// used for the final column of `lat` declarations in Figure 2
    /// (`lat IntVar(var: Str, Parity<>)`).
    fn attribute(&mut self, index: usize) -> Result<Attribute, LangError> {
        if let Tok::LowerIdent(_) = self.peek() {
            let name = self.lower_ident("an attribute name")?;
            self.expect(&Tok::Colon)?;
            let ty = self.type_expr()?;
            let is_lattice = self.eat(&Tok::Diamond);
            return Ok(Attribute {
                name,
                ty,
                is_lattice,
            });
        }
        let ty = self.type_expr()?;
        let is_lattice = self.eat(&Tok::Diamond);
        Ok(Attribute {
            name: format!("_{index}"),
            ty,
            is_lattice,
        })
    }

    fn type_expr(&mut self) -> Result<TypeExpr, LangError> {
        match self.peek().clone() {
            Tok::UpperIdent(name) if name == "Set" && self.peek2() == &Tok::LParen => {
                self.bump();
                self.bump();
                let elem = self.type_expr()?;
                self.expect(&Tok::RParen)?;
                Ok(TypeExpr::Set(Box::new(elem)))
            }
            Tok::UpperIdent(name) => {
                self.bump();
                Ok(match name.as_str() {
                    "Int" => TypeExpr::Int,
                    "Str" => TypeExpr::Str,
                    "Bool" => TypeExpr::Bool,
                    "Unit" => TypeExpr::Unit,
                    _ => TypeExpr::Named(name),
                })
            }
            Tok::LParen => {
                self.bump();
                if self.eat(&Tok::RParen) {
                    return Ok(TypeExpr::Unit);
                }
                let mut items = vec![self.type_expr()?];
                while self.eat(&Tok::Comma) {
                    items.push(self.type_expr()?);
                }
                self.expect(&Tok::RParen)?;
                if items.len() == 1 {
                    Ok(items.pop().expect("checked"))
                } else {
                    Ok(TypeExpr::Tuple(items))
                }
            }
            other => Err(LangError::parse(
                self.pos(),
                format!("expected a type, found `{other}`"),
            )),
        }
    }

    // ---- constraints -----------------------------------------------------

    fn constraint(&mut self) -> Result<Constraint, LangError> {
        let pos = self.pos();
        let head = self.atom()?;
        let mut body = Vec::new();
        if self.eat(&Tok::ColonDash) {
            loop {
                body.push(self.body_item()?);
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
        }
        self.expect(&Tok::Dot)?;
        Ok(Constraint { head, body, pos })
    }

    fn atom(&mut self) -> Result<Atom, LangError> {
        let pos = self.pos();
        let pred = self.upper_ident("a predicate name")?;
        self.expect(&Tok::LParen)?;
        let mut terms = Vec::new();
        if self.peek() != &Tok::RParen {
            loop {
                terms.push(self.rule_term()?);
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
        }
        self.expect(&Tok::RParen)?;
        Ok(Atom { pred, terms, pos })
    }

    fn body_item(&mut self) -> Result<BodyItem, LangError> {
        let pos = self.pos();
        match self.peek().clone() {
            Tok::Bang => {
                self.bump();
                Ok(BodyItem::NegAtom(self.atom()?))
            }
            Tok::UpperIdent(_) => Ok(BodyItem::Atom(self.atom()?)),
            // `x <- f(args)` — single-variable choice binding.
            Tok::LowerIdent(name) if self.peek2() == &Tok::BackArrow => {
                self.bump();
                self.bump();
                let func = self.lower_ident("a set-returning function name")?;
                let args = self.call_args()?;
                Ok(BodyItem::Choose {
                    binds: vec![name],
                    func,
                    args,
                    pos,
                })
            }
            // `f(args)` — a filter application; represented as an Atom
            // with a lowercase "predicate" name, resolved by the checker.
            Tok::LowerIdent(name) => {
                self.bump();
                let args = self.call_args()?;
                Ok(BodyItem::Atom(Atom {
                    pred: name,
                    terms: args,
                    pos,
                }))
            }
            // `(x, y) <- f(args)` — tuple-destructuring choice binding.
            Tok::LParen => {
                self.bump();
                let mut binds = vec![self.lower_ident("a variable")?];
                while self.eat(&Tok::Comma) {
                    binds.push(self.lower_ident("a variable")?);
                }
                self.expect(&Tok::RParen)?;
                self.expect(&Tok::BackArrow)?;
                let func = self.lower_ident("a set-returning function name")?;
                let args = self.call_args()?;
                Ok(BodyItem::Choose {
                    binds,
                    func,
                    args,
                    pos,
                })
            }
            other => Err(LangError::parse(
                pos,
                format!("expected a body atom, filter, or choice, found `{other}`"),
            )),
        }
    }

    fn call_args(&mut self) -> Result<Vec<RuleTerm>, LangError> {
        self.expect(&Tok::LParen)?;
        let mut args = Vec::new();
        if self.peek() != &Tok::RParen {
            loop {
                args.push(self.rule_term()?);
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
        }
        self.expect(&Tok::RParen)?;
        Ok(args)
    }

    fn rule_term(&mut self) -> Result<RuleTerm, LangError> {
        let pos = self.pos();
        match self.peek().clone() {
            Tok::Underscore => {
                self.bump();
                Ok(RuleTerm::Wildcard(pos))
            }
            Tok::Int(n) => {
                self.bump();
                Ok(RuleTerm::Lit(Lit::Int(n), pos))
            }
            Tok::Minus => {
                self.bump();
                match self.bump() {
                    Tok::Int(n) => Ok(RuleTerm::Lit(Lit::Int(-n), pos)),
                    other => Err(LangError::parse(
                        pos,
                        format!("expected an integer after `-`, found `{other}`"),
                    )),
                }
            }
            Tok::Str(s) => {
                self.bump();
                Ok(RuleTerm::Lit(Lit::Str(s), pos))
            }
            Tok::True => {
                self.bump();
                Ok(RuleTerm::Lit(Lit::Bool(true), pos))
            }
            Tok::False => {
                self.bump();
                Ok(RuleTerm::Lit(Lit::Bool(false), pos))
            }
            Tok::LowerIdent(name) => {
                self.bump();
                if self.peek() == &Tok::LParen {
                    let args = self.call_args()?;
                    Ok(RuleTerm::App {
                        func: name,
                        args,
                        pos,
                    })
                } else {
                    Ok(RuleTerm::Var(name, pos))
                }
            }
            Tok::UpperIdent(enum_name) => {
                self.bump();
                self.expect(&Tok::Dot)?;
                let case = self.upper_ident("an enum case name")?;
                let mut args = Vec::new();
                if self.peek() == &Tok::LParen {
                    args = self.call_args()?;
                }
                Ok(RuleTerm::Ctor {
                    enum_name,
                    case,
                    args,
                    pos,
                })
            }
            other => Err(LangError::parse(
                pos,
                format!("expected a term, found `{other}`"),
            )),
        }
    }

    // ---- expressions ------------------------------------------------------

    fn expr(&mut self) -> Result<Expr, LangError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, LangError> {
        let mut lhs = self.and_expr()?;
        while self.peek() == &Tok::OrOr {
            let pos = self.pos();
            self.bump();
            let rhs = self.and_expr()?;
            lhs = Expr::Binary {
                op: BinOp::Or,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                pos,
            };
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, LangError> {
        let mut lhs = self.cmp_expr()?;
        while self.peek() == &Tok::AndAnd {
            let pos = self.pos();
            self.bump();
            let rhs = self.cmp_expr()?;
            lhs = Expr::Binary {
                op: BinOp::And,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                pos,
            };
        }
        Ok(lhs)
    }

    fn cmp_expr(&mut self) -> Result<Expr, LangError> {
        let lhs = self.add_expr()?;
        let op = match self.peek() {
            Tok::EqEq => BinOp::Eq,
            Tok::BangEq => BinOp::Ne,
            Tok::Lt => BinOp::Lt,
            Tok::Le => BinOp::Le,
            Tok::Gt => BinOp::Gt,
            Tok::Ge => BinOp::Ge,
            _ => return Ok(lhs),
        };
        let pos = self.pos();
        self.bump();
        let rhs = self.add_expr()?;
        Ok(Expr::Binary {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
            pos,
        })
    }

    fn add_expr(&mut self) -> Result<Expr, LangError> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Tok::Plus => BinOp::Add,
                Tok::Minus => BinOp::Sub,
                _ => return Ok(lhs),
            };
            let pos = self.pos();
            self.bump();
            let rhs = self.mul_expr()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                pos,
            };
        }
    }

    fn mul_expr(&mut self) -> Result<Expr, LangError> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                Tok::Star => BinOp::Mul,
                Tok::Slash => BinOp::Div,
                Tok::Percent => BinOp::Rem,
                _ => return Ok(lhs),
            };
            let pos = self.pos();
            self.bump();
            let rhs = self.unary_expr()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                pos,
            };
        }
    }

    fn unary_expr(&mut self) -> Result<Expr, LangError> {
        let pos = self.pos();
        match self.peek() {
            Tok::Bang => {
                self.bump();
                Ok(Expr::Unary {
                    op: UnOp::Not,
                    expr: Box::new(self.unary_expr()?),
                    pos,
                })
            }
            Tok::Minus => {
                self.bump();
                Ok(Expr::Unary {
                    op: UnOp::Neg,
                    expr: Box::new(self.unary_expr()?),
                    pos,
                })
            }
            _ => self.primary_expr(),
        }
    }

    fn primary_expr(&mut self) -> Result<Expr, LangError> {
        let pos = self.pos();
        match self.peek().clone() {
            Tok::Int(n) => {
                self.bump();
                Ok(Expr::Lit(Lit::Int(n), pos))
            }
            Tok::Str(s) => {
                self.bump();
                Ok(Expr::Lit(Lit::Str(s), pos))
            }
            Tok::True => {
                self.bump();
                Ok(Expr::Lit(Lit::Bool(true), pos))
            }
            Tok::False => {
                self.bump();
                Ok(Expr::Lit(Lit::Bool(false), pos))
            }
            Tok::LParen => {
                self.bump();
                if self.eat(&Tok::RParen) {
                    return Ok(Expr::Lit(Lit::Unit, pos));
                }
                let mut items = vec![self.expr()?];
                while self.eat(&Tok::Comma) {
                    items.push(self.expr()?);
                }
                self.expect(&Tok::RParen)?;
                if items.len() == 1 {
                    Ok(items.pop().expect("checked"))
                } else {
                    Ok(Expr::Tuple(items, pos))
                }
            }
            Tok::LowerIdent(name) => {
                self.bump();
                if self.peek() == &Tok::LParen {
                    self.bump();
                    let mut args = Vec::new();
                    if self.peek() != &Tok::RParen {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat(&Tok::Comma) {
                                break;
                            }
                        }
                    }
                    self.expect(&Tok::RParen)?;
                    Ok(Expr::Call {
                        func: name,
                        args,
                        pos,
                    })
                } else {
                    Ok(Expr::Var(name, pos))
                }
            }
            Tok::UpperIdent(enum_name) if enum_name == "Set" && self.peek2() == &Tok::LParen => {
                self.bump();
                self.bump();
                let mut items = Vec::new();
                if self.peek() != &Tok::RParen {
                    loop {
                        items.push(self.expr()?);
                        if !self.eat(&Tok::Comma) {
                            break;
                        }
                    }
                }
                self.expect(&Tok::RParen)?;
                Ok(Expr::SetLit(items, pos))
            }
            Tok::UpperIdent(enum_name) => {
                self.bump();
                self.expect(&Tok::Dot)?;
                let case = self.upper_ident("an enum case name")?;
                let mut args = Vec::new();
                if self.peek() == &Tok::LParen {
                    self.bump();
                    if self.peek() != &Tok::RParen {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat(&Tok::Comma) {
                                break;
                            }
                        }
                    }
                    self.expect(&Tok::RParen)?;
                }
                Ok(Expr::Ctor {
                    enum_name,
                    case,
                    args,
                    pos,
                })
            }
            Tok::Let => {
                self.bump();
                let name = self.lower_ident("a binding name")?;
                self.expect(&Tok::Eq)?;
                let bound = self.expr()?;
                self.expect(&Tok::Semi)?;
                let body = self.expr()?;
                Ok(Expr::Let {
                    name,
                    bound: Box::new(bound),
                    body: Box::new(body),
                    pos,
                })
            }
            Tok::If => {
                self.bump();
                self.expect(&Tok::LParen)?;
                let cond = self.expr()?;
                self.expect(&Tok::RParen)?;
                let then = self.expr()?;
                self.expect(&Tok::Else)?;
                let otherwise = self.expr()?;
                Ok(Expr::If {
                    cond: Box::new(cond),
                    then: Box::new(then),
                    otherwise: Box::new(otherwise),
                    pos,
                })
            }
            Tok::Match => {
                self.bump();
                let scrutinee = self.expr()?;
                self.expect(&Tok::With)?;
                self.expect(&Tok::LBrace)?;
                let mut arms = Vec::new();
                while !self.eat(&Tok::RBrace) {
                    self.expect(&Tok::Case)?;
                    let pat = self.pattern()?;
                    self.expect(&Tok::FatArrow)?;
                    let body = self.expr()?;
                    arms.push(MatchArm { pat, body });
                    self.eat(&Tok::Comma);
                }
                Ok(Expr::Match {
                    scrutinee: Box::new(scrutinee),
                    arms,
                    pos,
                })
            }
            other => Err(LangError::parse(
                pos,
                format!("expected an expression, found `{other}`"),
            )),
        }
    }

    fn pattern(&mut self) -> Result<Pattern, LangError> {
        let pos = self.pos();
        match self.peek().clone() {
            Tok::Underscore => {
                self.bump();
                Ok(Pattern::Wildcard(pos))
            }
            Tok::Int(n) => {
                self.bump();
                Ok(Pattern::Lit(Lit::Int(n), pos))
            }
            Tok::Minus => {
                self.bump();
                match self.bump() {
                    Tok::Int(n) => Ok(Pattern::Lit(Lit::Int(-n), pos)),
                    other => Err(LangError::parse(
                        pos,
                        format!("expected an integer after `-`, found `{other}`"),
                    )),
                }
            }
            Tok::Str(s) => {
                self.bump();
                Ok(Pattern::Lit(Lit::Str(s), pos))
            }
            Tok::True => {
                self.bump();
                Ok(Pattern::Lit(Lit::Bool(true), pos))
            }
            Tok::False => {
                self.bump();
                Ok(Pattern::Lit(Lit::Bool(false), pos))
            }
            Tok::LowerIdent(name) => {
                self.bump();
                Ok(Pattern::Var(name, pos))
            }
            Tok::LParen => {
                self.bump();
                if self.eat(&Tok::RParen) {
                    return Ok(Pattern::Lit(Lit::Unit, pos));
                }
                let mut items = vec![self.pattern()?];
                while self.eat(&Tok::Comma) {
                    items.push(self.pattern()?);
                }
                self.expect(&Tok::RParen)?;
                if items.len() == 1 {
                    Ok(items.pop().expect("checked"))
                } else {
                    Ok(Pattern::Tuple(items, pos))
                }
            }
            Tok::UpperIdent(enum_name) => {
                self.bump();
                self.expect(&Tok::Dot)?;
                let case = self.upper_ident("an enum case name")?;
                let mut args = Vec::new();
                if self.peek() == &Tok::LParen {
                    self.bump();
                    if self.peek() != &Tok::RParen {
                        loop {
                            args.push(self.pattern()?);
                            if !self.eat(&Tok::Comma) {
                                break;
                            }
                        }
                    }
                    self.expect(&Tok::RParen)?;
                }
                Ok(Pattern::Ctor {
                    enum_name,
                    case,
                    args,
                    pos,
                })
            }
            other => Err(LangError::parse(
                pos,
                format!("expected a pattern, found `{other}`"),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_figure_2_style_program() {
        let src = r#"
            // an almost complete Flix program.
            enum Parity {
              case Top,
              case Even, case Odd,
              case Bot
            }

            def leq(e1: Parity, e2: Parity): Bool =
              match (e1, e2) with {
                case (Parity.Bot, _) => true
                case (Parity.Even, Parity.Even) => true
                case (Parity.Odd, Parity.Odd) => true
                case (_, Parity.Top) => true
                case _ => false
              }

            def lub(e1: Parity, e2: Parity): Parity =
              match (e1, e2) with {
                case (Parity.Bot, x) => x
                case (x, Parity.Bot) => x
                case (Parity.Even, Parity.Even) => Parity.Even
                case (Parity.Odd, Parity.Odd) => Parity.Odd
                case _ => Parity.Top
              }

            def glb(e1: Parity, e2: Parity): Parity =
              match (e1, e2) with {
                case (Parity.Top, x) => x
                case (x, Parity.Top) => x
                case (Parity.Even, Parity.Even) => Parity.Even
                case (Parity.Odd, Parity.Odd) => Parity.Odd
                case _ => Parity.Bot
              }

            let Parity<> = (Parity.Bot, Parity.Top, leq, lub, glb);

            def isMaybeZero(e: Parity): Bool =
              match e with {
                case Parity.Even => true
                case Parity.Top => true
                case _ => false
              }

            rel AddExp(r: Str, v1: Str, v2: Str);
            rel DivExp(r: Str, v1: Str, v2: Str);
            rel ArithmeticError(r: Str);
            lat IntVar(var: Str, Parity<>);

            IntVar("x", Parity.Odd).
            IntVar(r, sum(i1, i2)) :- AddExp(r, v1, v2),
                                      IntVar(v1, i1),
                                      IntVar(v2, i2).
            ArithmeticError(r) :- DivExp(r, v1, v2),
                                  IntVar(v2, i2),
                                  isMaybeZero(i2).
        "#;
        let prog = parse(src).expect("parses");
        assert_eq!(prog.decls.len(), 13);
        let kinds: Vec<&str> = prog
            .decls
            .iter()
            .map(|d| match d {
                Decl::Enum(_) => "enum",
                Decl::Def(_) => "def",
                Decl::Lattice(_) => "lat-bind",
                Decl::Pred(_) => "pred",
                Decl::Constraint(_) => "constraint",
            })
            .collect();
        assert_eq!(
            kinds,
            vec![
                "enum",
                "def",
                "def",
                "def",
                "lat-bind",
                "def",
                "pred",
                "pred",
                "pred",
                "pred",
                "constraint",
                "constraint",
                "constraint"
            ]
        );
    }

    #[test]
    fn parses_choice_bindings() {
        let src = r#"
            rel CFG(n: Int, m: Int);
            rel PathEdge(d1: Int, n: Int, d2: Int);
            PathEdge(d1, m, d3) :- CFG(n, m),
                                   PathEdge(d1, n, d2),
                                   d3 <- eshIntra(n, d2).
            JumpFn(d1, m, d3) :- CFG(n, m),
                                 (d3, short) <- eshIntra(n, d2).
        "#;
        let prog = parse(src).expect("parses");
        let Decl::Constraint(c) = &prog.decls[2] else {
            panic!("expected constraint")
        };
        assert!(matches!(&c.body[2], BodyItem::Choose { binds, .. } if binds == &["d3"]));
        let Decl::Constraint(c2) = &prog.decls[3] else {
            panic!("expected constraint")
        };
        assert!(matches!(&c2.body[1], BodyItem::Choose { binds, .. } if binds == &["d3", "short"]));
    }

    #[test]
    fn parses_negated_atoms_and_wildcards() {
        let src = r#"
            rel A(x: Int);
            rel B(x: Int, y: Int);
            A(x) :- B(x, _), !B(x, 3).
        "#;
        let prog = parse(src).expect("parses");
        let Decl::Constraint(c) = &prog.decls[2] else {
            panic!("expected constraint")
        };
        assert!(matches!(&c.body[0], BodyItem::Atom(a) if a.pred == "B"));
        assert!(matches!(&c.body[1], BodyItem::NegAtom(a) if a.pred == "B"));
    }

    #[test]
    fn operator_precedence() {
        let src = "def f(x: Int, y: Int): Int = x + y * 2";
        let prog = parse(src).expect("parses");
        let Decl::Def(d) = &prog.decls[0] else {
            panic!("expected def")
        };
        // x + (y * 2)
        let Expr::Binary {
            op: BinOp::Add,
            rhs,
            ..
        } = &d.body
        else {
            panic!("expected +: {:?}", d.body)
        };
        assert!(matches!(&**rhs, Expr::Binary { op: BinOp::Mul, .. }));
    }

    #[test]
    fn if_expression() {
        let src = "def f(x: Int): Int = if (x > 0) x else -x";
        let prog = parse(src).expect("parses");
        let Decl::Def(d) = &prog.decls[0] else {
            panic!("expected def")
        };
        assert!(matches!(&d.body, Expr::If { .. }));
    }

    #[test]
    fn error_messages_carry_positions() {
        let err = parse("rel A(").expect_err("incomplete");
        assert!(err.to_string().contains("parse error"));
    }

    #[test]
    fn negative_literals_in_facts() {
        let src = "rel A(x: Int); A(-3).";
        let prog = parse(src).expect("parses");
        let Decl::Constraint(c) = &prog.decls[1] else {
            panic!("expected constraint")
        };
        assert!(matches!(&c.head.terms[0], RuleTerm::Lit(Lit::Int(-3), _)));
    }
}
