//! The AST interpreter for the pure functional fragment of FLIX.
//!
//! The paper's implementation evaluates functions "using an AST-based
//! interpreter" (§4.5); this module is the same design. Values are the
//! engine's dynamic [`Value`]s, so interpreted lattice operations and
//! transfer functions plug directly into [`flix_core::LatticeOps`] and
//! [`flix_core::ProgramBuilder::function`].

use crate::ast::{BinOp, Expr, Lit, Pattern, UnOp};
use crate::typeck::CheckedProgram;
use flix_core::Value;
use std::sync::Arc;

/// An interpreter over a checked program's function table.
///
/// Cloning is cheap (the program is shared); the interpreter is `Send +
/// Sync` so closures built from it can run inside the parallel solver.
#[derive(Clone, Debug)]
pub struct Interpreter {
    program: Arc<CheckedProgram>,
}

impl Interpreter {
    /// Creates an interpreter for the checked program.
    pub fn new(program: Arc<CheckedProgram>) -> Interpreter {
        Interpreter { program }
    }

    /// Calls a named function with the given argument values.
    ///
    /// # Panics
    ///
    /// Panics on unknown function names or arity mismatches — both are
    /// ruled out by the type checker, so hitting one indicates a caller
    /// bug, and on a `match` expression with no matching arm (the surface
    /// language does not check exhaustiveness, mirroring the paper's
    /// implementation).
    pub fn call(&self, name: &str, args: &[Value]) -> Value {
        let def = self
            .program
            .defs
            .get(name)
            .unwrap_or_else(|| panic!("call to unknown function {name}"));
        assert_eq!(
            def.params.len(),
            args.len(),
            "function {name} called with wrong arity"
        );
        let mut env: Vec<(String, Value)> = def
            .params
            .iter()
            .map(|(p, _)| p.clone())
            .zip(args.iter().cloned())
            .collect();
        self.eval(&def.body, &mut env)
    }

    /// Evaluates a closed expression (no free variables).
    pub fn eval_closed(&self, expr: &Expr) -> Value {
        self.eval(expr, &mut Vec::new())
    }

    fn eval(&self, expr: &Expr, env: &mut Vec<(String, Value)>) -> Value {
        match expr {
            Expr::Lit(l, _) => lit_value(l),
            Expr::Var(name, _) => env
                .iter()
                .rev()
                .find(|(n, _)| n == name)
                .map(|(_, v)| v.clone())
                .unwrap_or_else(|| panic!("unbound variable {name} (checker bug)")),
            Expr::Ctor { case, args, .. } => {
                let payload = match args.len() {
                    0 => Value::Unit,
                    1 => self.eval(&args[0], env),
                    _ => Value::tuple(args.iter().map(|a| self.eval(a, env))),
                };
                Value::tag(case.as_str(), payload)
            }
            Expr::Call { func, args, .. } => {
                let vals: Vec<Value> = args.iter().map(|a| self.eval(a, env)).collect();
                self.call(func, &vals)
            }
            Expr::Tuple(items, _) => Value::tuple(items.iter().map(|e| self.eval(e, env))),
            Expr::SetLit(items, _) => Value::set(items.iter().map(|e| self.eval(e, env))),
            Expr::Unary { op, expr, .. } => {
                let v = self.eval(expr, env);
                match op {
                    UnOp::Not => Value::Bool(!v.as_bool().expect("typechecked Bool")),
                    UnOp::Neg => Value::Int(-v.as_int().expect("typechecked Int")),
                }
            }
            Expr::Binary { op, lhs, rhs, .. } => {
                // Short-circuit the boolean connectives.
                match op {
                    BinOp::And => {
                        return if self.eval(lhs, env).is_true() {
                            self.eval(rhs, env)
                        } else {
                            Value::Bool(false)
                        }
                    }
                    BinOp::Or => {
                        return if self.eval(lhs, env).is_true() {
                            Value::Bool(true)
                        } else {
                            self.eval(rhs, env)
                        }
                    }
                    _ => {}
                }
                let a = self.eval(lhs, env);
                let b = self.eval(rhs, env);
                match op {
                    BinOp::Eq => Value::Bool(a == b),
                    BinOp::Ne => Value::Bool(a != b),
                    _ => {
                        let x = a.as_int().expect("typechecked Int");
                        let y = b.as_int().expect("typechecked Int");
                        match op {
                            BinOp::Add => Value::Int(x.wrapping_add(y)),
                            BinOp::Sub => Value::Int(x.wrapping_sub(y)),
                            BinOp::Mul => Value::Int(x.wrapping_mul(y)),
                            BinOp::Div => Value::Int(if y == 0 { 0 } else { x.wrapping_div(y) }),
                            BinOp::Rem => Value::Int(if y == 0 { 0 } else { x.wrapping_rem(y) }),
                            BinOp::Lt => Value::Bool(x < y),
                            BinOp::Le => Value::Bool(x <= y),
                            BinOp::Gt => Value::Bool(x > y),
                            BinOp::Ge => Value::Bool(x >= y),
                            BinOp::And | BinOp::Or | BinOp::Eq | BinOp::Ne => {
                                unreachable!("handled above")
                            }
                        }
                    }
                }
            }
            Expr::If {
                cond,
                then,
                otherwise,
                ..
            } => {
                if self.eval(cond, env).is_true() {
                    self.eval(then, env)
                } else {
                    self.eval(otherwise, env)
                }
            }
            Expr::Let {
                name, bound, body, ..
            } => {
                let value = self.eval(bound, env);
                env.push((name.clone(), value));
                let result = self.eval(body, env);
                env.pop();
                result
            }
            Expr::Match {
                scrutinee, arms, ..
            } => {
                let value = self.eval(scrutinee, env);
                for arm in arms {
                    let mark = env.len();
                    if match_pattern(&arm.pat, &value, env) {
                        let result = self.eval(&arm.body, env);
                        env.truncate(mark);
                        return result;
                    }
                    env.truncate(mark);
                }
                panic!(
                    "non-exhaustive match at {}: no arm matches {value}",
                    expr.pos()
                )
            }
        }
    }
}

/// Converts a surface literal to a runtime value.
pub fn lit_value(l: &Lit) -> Value {
    match l {
        Lit::Unit => Value::Unit,
        Lit::Bool(b) => Value::Bool(*b),
        Lit::Int(n) => Value::Int(*n),
        Lit::Str(s) => Value::str(s.as_str()),
    }
}

fn match_pattern(pat: &Pattern, value: &Value, env: &mut Vec<(String, Value)>) -> bool {
    match pat {
        Pattern::Wildcard(_) => true,
        Pattern::Var(name, _) => {
            env.push((name.clone(), value.clone()));
            true
        }
        Pattern::Lit(l, _) => lit_value(l) == *value,
        Pattern::Ctor { case, args, .. } => {
            let Some(tag) = value.tag_name() else {
                return false;
            };
            if tag != case {
                return false;
            }
            let payload = value.tag_payload().expect("tags carry payloads");
            match args.len() {
                0 => *payload == Value::Unit,
                1 => match_pattern(&args[0], payload, env),
                n => match payload.as_tuple() {
                    Some(items) if items.len() == n => args
                        .iter()
                        .zip(items)
                        .all(|(p, v)| match_pattern(p, v, env)),
                    _ => false,
                },
            }
        }
        Pattern::Tuple(pats, _) => match value.as_tuple() {
            Some(items) if items.len() == pats.len() => pats
                .iter()
                .zip(items)
                .all(|(p, v)| match_pattern(p, v, env)),
            _ => false,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::typeck::check;

    fn interp_of(src: &str) -> Interpreter {
        let checked = check(&parse(src).expect("parses")).expect("checks");
        Interpreter::new(Arc::new(checked))
    }

    #[test]
    fn arithmetic_and_comparison() {
        let i = interp_of("def f(x: Int, y: Int): Int = (x + y) * 2 - x / 2");
        assert_eq!(i.call("f", &[Value::Int(4), Value::Int(3)]), Value::Int(12));
    }

    #[test]
    fn division_by_zero_yields_zero() {
        // Total semantics: the pure language cannot fail at runtime.
        let i = interp_of("def f(x: Int): Int = x / 0 + x % 0");
        assert_eq!(i.call("f", &[Value::Int(7)]), Value::Int(0));
    }

    #[test]
    fn short_circuit_connectives() {
        let i = interp_of(
            "def f(x: Int): Bool = x != 0 && 10 / x > 1
             def g(x: Int): Bool = x == 0 || 10 / x > 1",
        );
        assert_eq!(i.call("f", &[Value::Int(0)]), Value::Bool(false));
        assert_eq!(i.call("g", &[Value::Int(0)]), Value::Bool(true));
    }

    #[test]
    fn match_on_enums_with_payload() {
        let i = interp_of(
            r#"
            enum SULattice { case Top, case Single(Str), case Bottom }
            def filter(t: SULattice, b: Str): Bool =
              match t with {
                case SULattice.Bottom => false
                case SULattice.Single(p) => b == p
                case SULattice.Top => true
              }
            "#,
        );
        let single = Value::tag("Single", Value::from("p"));
        assert_eq!(
            i.call("filter", &[single.clone(), Value::from("p")]),
            Value::Bool(true)
        );
        assert_eq!(
            i.call("filter", &[single, Value::from("q")]),
            Value::Bool(false)
        );
        assert_eq!(
            i.call("filter", &[Value::tag0("Top"), Value::from("x")]),
            Value::Bool(true)
        );
    }

    #[test]
    fn recursion_works() {
        let i = interp_of("def fact(n: Int): Int = if (n <= 1) 1 else n * fact(n - 1)");
        assert_eq!(i.call("fact", &[Value::Int(6)]), Value::Int(720));
    }

    #[test]
    fn set_literals() {
        let i = interp_of("def f(x: Int): Set(Int) = Set(x, x + 1, x)");
        assert_eq!(
            i.call("f", &[Value::Int(5)]),
            Value::set([Value::Int(5), Value::Int(6)])
        );
        let empty = interp_of("def e(): Set(Int) = Set()");
        assert_eq!(empty.call("e", &[]), Value::set([]));
    }

    #[test]
    fn tuple_patterns_bind_components() {
        let i = interp_of(
            "def swap(p: (Int, Str)): (Str, Int) = match p with { case (a, b) => (b, a) }",
        );
        let arg = Value::tuple([Value::Int(1), Value::from("x")]);
        assert_eq!(
            i.call("swap", &[arg]),
            Value::tuple([Value::from("x"), Value::Int(1)])
        );
    }

    #[test]
    fn let_bindings_scope_and_shadow() {
        let i = interp_of("def f(x: Int): Int = let y = x + 1; let x = y * 2; x + y");
        // y = 4, inner x = 8, result 12.
        assert_eq!(i.call("f", &[Value::Int(3)]), Value::Int(12));
    }

    #[test]
    #[should_panic(expected = "non-exhaustive match")]
    fn non_exhaustive_match_panics() {
        let i = interp_of("def f(x: Int): Int = match x with { case 0 => 1 }");
        i.call("f", &[Value::Int(5)]);
    }
}
