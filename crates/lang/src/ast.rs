//! The abstract syntax tree of the FLIX surface language.
//!
//! The shape follows Figure 2 of the paper: a program is a sequence of
//! `enum` definitions, `def` function definitions, `let T<> = (...)`
//! lattice bindings, `rel`/`lat` predicate declarations, and constraints
//! (facts and rules).

use crate::token::Pos;

/// A surface type annotation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum TypeExpr {
    /// `Int`
    Int,
    /// `Str`
    Str,
    /// `Bool`
    Bool,
    /// `Unit`
    Unit,
    /// A named enum type, e.g. `Parity`.
    Named(String),
    /// A tuple type, e.g. `(Int, Str)`.
    Tuple(Vec<TypeExpr>),
    /// A set type, e.g. `Set(Int)`.
    Set(Box<TypeExpr>),
}

/// One case of an `enum` definition, e.g. `case Single(Str)`.
#[derive(Clone, Debug)]
pub struct EnumCase {
    /// The case name.
    pub name: String,
    /// Payload types (empty for nullary cases).
    pub payload: Vec<TypeExpr>,
    /// Source position.
    pub pos: Pos,
}

/// An `enum` definition.
#[derive(Clone, Debug)]
pub struct EnumDef {
    /// The enum type name.
    pub name: String,
    /// The cases.
    pub cases: Vec<EnumCase>,
    /// Source position.
    pub pos: Pos,
}

/// A function parameter with type annotation.
#[derive(Clone, Debug)]
pub struct Param {
    /// The parameter name.
    pub name: String,
    /// Its declared type.
    pub ty: TypeExpr,
}

/// A `def` function definition.
#[derive(Clone, Debug)]
pub struct DefDef {
    /// The function name.
    pub name: String,
    /// Parameters.
    pub params: Vec<Param>,
    /// Declared return type.
    pub ret: TypeExpr,
    /// The body expression.
    pub body: Expr,
    /// Source position.
    pub pos: Pos,
}

/// A lattice binding `let T<> = (bot, top, leq, lub, glb);`.
#[derive(Clone, Debug)]
pub struct LatticeBind {
    /// The enum type equipped with the lattice.
    pub ty: String,
    /// Expression for `⊥`.
    pub bot: Expr,
    /// Expression for `⊤`.
    pub top: Expr,
    /// Name of the `⊑` function.
    pub leq: String,
    /// Name of the `⊔` function.
    pub lub: String,
    /// Name of the `⊓` function.
    pub glb: String,
    /// Source position.
    pub pos: Pos,
}

/// An attribute (column) of a predicate declaration.
#[derive(Clone, Debug)]
pub struct Attribute {
    /// The attribute name (may be synthesised for unnamed lattice columns).
    pub name: String,
    /// The attribute type.
    pub ty: TypeExpr,
    /// Whether this column was written with the `T<>` lattice marker.
    pub is_lattice: bool,
}

/// A `rel` or `lat` predicate declaration.
#[derive(Clone, Debug)]
pub struct PredDecl {
    /// The predicate name.
    pub name: String,
    /// The columns.
    pub attributes: Vec<Attribute>,
    /// `true` for `lat` declarations.
    pub is_lattice: bool,
    /// Source position.
    pub pos: Pos,
}

/// An expression of the pure functional language.
#[derive(Clone, Debug)]
pub enum Expr {
    /// A literal value.
    Lit(Lit, Pos),
    /// A variable reference.
    Var(String, Pos),
    /// An enum constructor, e.g. `Parity.Odd` or `SULattice.Single(e)`.
    Ctor {
        /// The enum type name.
        enum_name: String,
        /// The case name.
        case: String,
        /// Payload arguments.
        args: Vec<Expr>,
        /// Source position.
        pos: Pos,
    },
    /// A function call `f(e1, ..., en)`.
    Call {
        /// The function name.
        func: String,
        /// Arguments.
        args: Vec<Expr>,
        /// Source position.
        pos: Pos,
    },
    /// A tuple `(e1, ..., en)` with `n >= 2`.
    Tuple(Vec<Expr>, Pos),
    /// A set literal `Set(e1, ..., en)`.
    SetLit(Vec<Expr>, Pos),
    /// A unary operation.
    Unary {
        /// The operator.
        op: UnOp,
        /// The operand.
        expr: Box<Expr>,
        /// Source position.
        pos: Pos,
    },
    /// A binary operation.
    Binary {
        /// The operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
        /// Source position.
        pos: Pos,
    },
    /// `if cond { then } else { otherwise }` (brace-free form accepted).
    If {
        /// The condition.
        cond: Box<Expr>,
        /// The then-branch.
        then: Box<Expr>,
        /// The else-branch.
        otherwise: Box<Expr>,
        /// Source position.
        pos: Pos,
    },
    /// `let x = bound; body` — a local binding.
    Let {
        /// The bound variable name.
        name: String,
        /// The bound expression.
        bound: Box<Expr>,
        /// The body in which the binding is visible.
        body: Box<Expr>,
        /// Source position.
        pos: Pos,
    },
    /// `match scrutinee with { case pat => expr ... }`.
    Match {
        /// The matched expression.
        scrutinee: Box<Expr>,
        /// The arms, tried in order.
        arms: Vec<MatchArm>,
        /// Source position.
        pos: Pos,
    },
}

impl Expr {
    /// The source position of the expression.
    pub fn pos(&self) -> Pos {
        match self {
            Expr::Lit(_, p)
            | Expr::Var(_, p)
            | Expr::Tuple(_, p)
            | Expr::SetLit(_, p)
            | Expr::Ctor { pos: p, .. }
            | Expr::Call { pos: p, .. }
            | Expr::Unary { pos: p, .. }
            | Expr::Binary { pos: p, .. }
            | Expr::If { pos: p, .. }
            | Expr::Let { pos: p, .. }
            | Expr::Match { pos: p, .. } => *p,
        }
    }
}

/// A literal.
#[derive(Clone, PartialEq, Debug)]
pub enum Lit {
    /// Unit `()`.
    Unit,
    /// A boolean.
    Bool(bool),
    /// An integer.
    Int(i64),
    /// A string.
    Str(String),
}

/// A unary operator.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum UnOp {
    /// Boolean negation `!`.
    Not,
    /// Arithmetic negation `-`.
    Neg,
}

/// A binary operator.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&`
    And,
    /// `||`
    Or,
}

/// One arm of a `match` expression.
#[derive(Clone, Debug)]
pub struct MatchArm {
    /// The pattern.
    pub pat: Pattern,
    /// The arm body.
    pub body: Expr,
}

/// A pattern.
#[derive(Clone, Debug)]
pub enum Pattern {
    /// `_`
    Wildcard(Pos),
    /// A binder.
    Var(String, Pos),
    /// A literal pattern.
    Lit(Lit, Pos),
    /// An enum constructor pattern, e.g. `Parity.Odd` or
    /// `SULattice.Single(p)`.
    Ctor {
        /// The enum type name.
        enum_name: String,
        /// The case name.
        case: String,
        /// Payload patterns.
        args: Vec<Pattern>,
        /// Source position.
        pos: Pos,
    },
    /// A tuple pattern.
    Tuple(Vec<Pattern>, Pos),
}

/// A term in a constraint atom.
#[derive(Clone, Debug)]
pub enum RuleTerm {
    /// A variable.
    Var(String, Pos),
    /// A literal.
    Lit(Lit, Pos),
    /// An enum constructor with *ground* payload terms.
    Ctor {
        /// The enum type name.
        enum_name: String,
        /// The case name.
        case: String,
        /// Payload terms.
        args: Vec<RuleTerm>,
        /// Source position.
        pos: Pos,
    },
    /// A function application (only allowed as the last term of a head
    /// atom).
    App {
        /// The function name.
        func: String,
        /// Argument terms.
        args: Vec<RuleTerm>,
        /// Source position.
        pos: Pos,
    },
    /// `_`
    Wildcard(Pos),
}

impl RuleTerm {
    /// The source position of the term.
    pub fn pos(&self) -> Pos {
        match self {
            RuleTerm::Var(_, p) | RuleTerm::Lit(_, p) | RuleTerm::Wildcard(p) => *p,
            RuleTerm::Ctor { pos, .. } | RuleTerm::App { pos, .. } => *pos,
        }
    }
}

/// An atom `P(t1, ..., tn)` in a constraint.
#[derive(Clone, Debug)]
pub struct Atom {
    /// The predicate name.
    pub pred: String,
    /// The terms.
    pub terms: Vec<RuleTerm>,
    /// Source position.
    pub pos: Pos,
}

/// One item of a rule body.
#[derive(Clone, Debug)]
pub enum BodyItem {
    /// A positive atom (or, after resolution, possibly a filter
    /// application — the parser cannot distinguish `P(x)` from `f(x)`;
    /// the type checker resolves by name).
    Atom(Atom),
    /// A negated atom `!P(...)`.
    NegAtom(Atom),
    /// A choice binding `x <- f(args)` or `(x, y) <- f(args)`.
    Choose {
        /// The bound variable names.
        binds: Vec<String>,
        /// The set-returning function name.
        func: String,
        /// The function arguments.
        args: Vec<RuleTerm>,
        /// Source position.
        pos: Pos,
    },
}

/// A constraint: a fact (empty body) or a rule.
#[derive(Clone, Debug)]
pub struct Constraint {
    /// The head atom.
    pub head: Atom,
    /// The body items (empty for facts).
    pub body: Vec<BodyItem>,
    /// Source position.
    pub pos: Pos,
}

/// A top-level declaration.
#[derive(Clone, Debug)]
pub enum Decl {
    /// An `enum` definition.
    Enum(EnumDef),
    /// A `def` function definition.
    Def(DefDef),
    /// A `let T<> = ...` lattice binding.
    Lattice(LatticeBind),
    /// A `rel`/`lat` predicate declaration.
    Pred(PredDecl),
    /// A fact or rule.
    Constraint(Constraint),
}

/// A parsed program: the declaration list.
#[derive(Clone, Debug, Default)]
pub struct SourceProgram {
    /// The declarations in source order.
    pub decls: Vec<Decl>,
}
