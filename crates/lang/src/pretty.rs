//! Pretty-printing of surface-language ASTs back to concrete FLIX syntax.
//!
//! The printer produces parseable text: `parse(print(parse(src)))` prints
//! identically to `print(parse(src))` (checked by the round-trip tests),
//! which makes it usable for program transformation tooling and for
//! normalising test fixtures.

use crate::ast::*;
use std::fmt::Write;

/// Pretty-prints a whole program.
pub fn program(p: &SourceProgram) -> String {
    let mut out = String::new();
    for decl in &p.decls {
        match decl {
            Decl::Enum(e) => enum_def(&mut out, e),
            Decl::Def(d) => def_def(&mut out, d),
            Decl::Lattice(l) => lattice_bind(&mut out, l),
            Decl::Pred(p) => pred_decl(&mut out, p),
            Decl::Constraint(c) => constraint(&mut out, c),
        }
        out.push('\n');
    }
    out
}

fn enum_def(out: &mut String, e: &EnumDef) {
    let _ = writeln!(out, "enum {} {{", e.name);
    for case in &e.cases {
        let _ = write!(out, "  case {}", case.name);
        if !case.payload.is_empty() {
            let items: Vec<String> = case.payload.iter().map(type_expr).collect();
            let _ = write!(out, "({})", items.join(", "));
        }
        out.push_str(",\n");
    }
    out.push_str("}\n");
}

fn def_def(out: &mut String, d: &DefDef) {
    let params: Vec<String> = d
        .params
        .iter()
        .map(|p| format!("{}: {}", p.name, type_expr(&p.ty)))
        .collect();
    let _ = write!(
        out,
        "def {}({}): {} = ",
        d.name,
        params.join(", "),
        type_expr(&d.ret)
    );
    expr(out, &d.body, 1);
    out.push('\n');
}

fn lattice_bind(out: &mut String, l: &LatticeBind) {
    let _ = write!(out, "let {}<> = (", l.ty);
    expr(out, &l.bot, 0);
    out.push_str(", ");
    expr(out, &l.top, 0);
    let _ = writeln!(out, ", {}, {}, {});", l.leq, l.lub, l.glb);
}

fn pred_decl(out: &mut String, p: &PredDecl) {
    let kw = if p.is_lattice { "lat" } else { "rel" };
    let attrs: Vec<String> = p
        .attributes
        .iter()
        .map(|a| {
            let base = if a.name.starts_with('_') {
                type_expr(&a.ty)
            } else {
                format!("{}: {}", a.name, type_expr(&a.ty))
            };
            if a.is_lattice {
                format!("{base}<>")
            } else {
                base
            }
        })
        .collect();
    let _ = writeln!(out, "{kw} {}({});", p.name, attrs.join(", "));
}

fn constraint(out: &mut String, c: &Constraint) {
    atom(out, &c.head);
    if !c.body.is_empty() {
        out.push_str(" :- ");
        for (i, item) in c.body.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            body_item(out, item);
        }
    }
    out.push_str(".\n");
}

fn atom(out: &mut String, a: &Atom) {
    let _ = write!(out, "{}(", a.pred);
    for (i, t) in a.terms.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        rule_term(out, t);
    }
    out.push(')');
}

fn body_item(out: &mut String, item: &BodyItem) {
    match item {
        BodyItem::Atom(a) => atom(out, a),
        BodyItem::NegAtom(a) => {
            out.push('!');
            atom(out, a);
        }
        BodyItem::Choose {
            binds, func, args, ..
        } => {
            if binds.len() == 1 {
                out.push_str(&binds[0]);
            } else {
                let _ = write!(out, "({})", binds.join(", "));
            }
            let _ = write!(out, " <- {func}(");
            for (i, t) in args.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                rule_term(out, t);
            }
            out.push(')');
        }
    }
}

fn rule_term(out: &mut String, t: &RuleTerm) {
    match t {
        RuleTerm::Var(name, _) => out.push_str(name),
        RuleTerm::Lit(l, _) => lit(out, l),
        RuleTerm::Wildcard(_) => out.push('_'),
        RuleTerm::Ctor {
            enum_name,
            case,
            args,
            ..
        } => {
            let _ = write!(out, "{enum_name}.{case}");
            if !args.is_empty() {
                out.push('(');
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    rule_term(out, a);
                }
                out.push(')');
            }
        }
        RuleTerm::App { func, args, .. } => {
            let _ = write!(out, "{func}(");
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                rule_term(out, a);
            }
            out.push(')');
        }
    }
}

/// Renders a type annotation.
pub fn type_expr(t: &TypeExpr) -> String {
    match t {
        TypeExpr::Int => "Int".into(),
        TypeExpr::Str => "Str".into(),
        TypeExpr::Bool => "Bool".into(),
        TypeExpr::Unit => "Unit".into(),
        TypeExpr::Named(n) => n.clone(),
        TypeExpr::Tuple(items) => {
            let inner: Vec<String> = items.iter().map(type_expr).collect();
            format!("({})", inner.join(", "))
        }
        TypeExpr::Set(elem) => format!("Set({})", type_expr(elem)),
    }
}

fn lit(out: &mut String, l: &Lit) {
    match l {
        Lit::Unit => out.push_str("()"),
        Lit::Bool(b) => {
            let _ = write!(out, "{b}");
        }
        Lit::Int(n) if *n < 0 => {
            // Parenthesise so `f(-3)` round-trips as a term but binary
            // contexts don't glue the minus onto an operator.
            let _ = write!(out, "{n}");
        }
        Lit::Int(n) => {
            let _ = write!(out, "{n}");
        }
        Lit::Str(s) => {
            let _ = write!(out, "{:?}", s);
        }
    }
}

fn expr(out: &mut String, e: &Expr, depth: usize) {
    match e {
        Expr::Lit(l, _) => lit(out, l),
        Expr::Var(name, _) => out.push_str(name),
        Expr::Ctor {
            enum_name,
            case,
            args,
            ..
        } => {
            let _ = write!(out, "{enum_name}.{case}");
            if !args.is_empty() {
                out.push('(');
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    expr(out, a, depth);
                }
                out.push(')');
            }
        }
        Expr::Call { func, args, .. } => {
            let _ = write!(out, "{func}(");
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                expr(out, a, depth);
            }
            out.push(')');
        }
        Expr::Tuple(items, _) => {
            out.push('(');
            for (i, a) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                expr(out, a, depth);
            }
            out.push(')');
        }
        Expr::SetLit(items, _) => {
            out.push_str("Set(");
            for (i, a) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                expr(out, a, depth);
            }
            out.push(')');
        }
        Expr::Unary {
            op, expr: inner, ..
        } => {
            out.push(match op {
                UnOp::Not => '!',
                UnOp::Neg => '-',
            });
            paren_expr(out, inner, depth);
        }
        Expr::Binary { op, lhs, rhs, .. } => {
            paren_expr(out, lhs, depth);
            let _ = write!(out, " {} ", bin_op(*op));
            paren_expr(out, rhs, depth);
        }
        Expr::If {
            cond,
            then,
            otherwise,
            ..
        } => {
            out.push_str("if (");
            expr(out, cond, depth);
            out.push_str(") ");
            paren_expr(out, then, depth);
            out.push_str(" else ");
            paren_expr(out, otherwise, depth);
        }
        Expr::Let {
            name, bound, body, ..
        } => {
            let _ = write!(out, "let {name} = ");
            expr(out, bound, depth);
            out.push_str("; ");
            expr(out, body, depth);
        }
        Expr::Match {
            scrutinee, arms, ..
        } => {
            out.push_str("match ");
            paren_expr(out, scrutinee, depth);
            out.push_str(" with {\n");
            let indent = "  ".repeat(depth + 1);
            for arm in arms {
                out.push_str(&indent);
                out.push_str("case ");
                pattern(out, &arm.pat);
                out.push_str(" => ");
                expr(out, &arm.body, depth + 1);
                out.push('\n');
            }
            out.push_str(&"  ".repeat(depth));
            out.push('}');
        }
    }
}

/// Parenthesises compound sub-expressions so precedence survives the
/// round trip without tracking operator levels.
fn paren_expr(out: &mut String, e: &Expr, depth: usize) {
    let needs_parens = matches!(
        e,
        Expr::Binary { .. } | Expr::If { .. } | Expr::Unary { .. }
    ) || matches!(e, Expr::Lit(Lit::Int(n), _) if *n < 0);
    if needs_parens {
        out.push('(');
        expr(out, e, depth);
        out.push(')');
    } else {
        expr(out, e, depth);
    }
}

fn pattern(out: &mut String, p: &Pattern) {
    match p {
        Pattern::Wildcard(_) => out.push('_'),
        Pattern::Var(name, _) => out.push_str(name),
        Pattern::Lit(l, _) => lit(out, l),
        Pattern::Ctor {
            enum_name,
            case,
            args,
            ..
        } => {
            let _ = write!(out, "{enum_name}.{case}");
            if !args.is_empty() {
                out.push('(');
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    pattern(out, a);
                }
                out.push(')');
            }
        }
        Pattern::Tuple(items, _) => {
            out.push('(');
            for (i, a) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                pattern(out, a);
            }
            out.push(')');
        }
    }
}

fn bin_op(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "+",
        BinOp::Sub => "-",
        BinOp::Mul => "*",
        BinOp::Div => "/",
        BinOp::Rem => "%",
        BinOp::Eq => "==",
        BinOp::Ne => "!=",
        BinOp::Lt => "<",
        BinOp::Le => "<=",
        BinOp::Gt => ">",
        BinOp::Ge => ">=",
        BinOp::And => "&&",
        BinOp::Or => "||",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    /// Round trip: printing is a fixed point of parse∘print.
    fn assert_round_trip(src: &str) {
        let once = program(&parse(src).expect("source parses"));
        let twice =
            program(&parse(&once).unwrap_or_else(|e| {
                panic!("printed output must parse: {e}\n--- printed ---\n{once}")
            }));
        assert_eq!(once, twice, "print∘parse must be idempotent");
    }

    #[test]
    fn round_trips_datalog() {
        assert_round_trip(
            "rel Edge(x: Int, y: Int);
             rel Path(x: Int, y: Int);
             Edge(1, 2). Edge(2, -3).
             Path(x, y) :- Edge(x, y).
             Path(x, z) :- Path(x, y), Edge(y, z), !Edge(z, x).",
        );
    }

    #[test]
    fn round_trips_figure_2_fragment() {
        assert_round_trip(
            r#"
            enum Parity { case Top, case Even, case Odd, case Bot }
            def leq(e1: Parity, e2: Parity): Bool =
              match (e1, e2) with {
                case (Parity.Bot, _) => true
                case (Parity.Even, Parity.Even) => true
                case _ => false
              }
            def lub(e1: Parity, e2: Parity): Parity = Parity.Top
            def glb(e1: Parity, e2: Parity): Parity = Parity.Bot
            let Parity<> = (Parity.Bot, Parity.Top, leq, lub, glb);
            lat IntVar(v: Str, Parity<>);
            IntVar("x", Parity.Odd).
            "#,
        );
    }

    #[test]
    fn round_trips_expressions() {
        assert_round_trip(
            r#"
            def f(x: Int, y: Int): Int = if (x > 0 && y != 0) x + y * 2 else -x
            def g(s: (Int, Str)): Set(Int) =
              match s with { case (n, _) => Set(n, n + 1) }
            def h(b: Bool): Bool = !b || b
            "#,
        );
    }

    #[test]
    fn round_trips_choice_and_wildcards() {
        assert_round_trip(
            "def succs(n: Int): Set(Int) = Set(n + 1)
             def pairs(n: Int): Set((Int, Int)) = Set((n, n))
             rel P(x: Int);
             rel Q(x: Int);
             rel R(x: Int, y: Int);
             Q(y) :- P(_), P(x), y <- succs(x).
             R(a, b) :- P(x), (a, b) <- pairs(x).",
        );
    }

    #[test]
    fn round_trips_let_expressions() {
        assert_round_trip("def f(x: Int): Int = let y = x + 1; y * y");
    }

    #[test]
    fn printed_programs_still_solve() {
        let src = "rel Edge(x: Int, y: Int);
                   rel Path(x: Int, y: Int);
                   Edge(1, 2). Edge(2, 3).
                   Path(x, y) :- Edge(x, y).
                   Path(x, z) :- Path(x, y), Edge(y, z).";
        let printed = program(&parse(src).expect("parses"));
        let solution = crate::compile(&printed)
            .and_then(|p| {
                flix_core::Solver::new()
                    .solve(&p)
                    .map_err(|e| crate::LangError::lower(Default::default(), e.to_string()))
            })
            .expect("printed program compiles and solves");
        assert!(solution.contains("Path", &[1.into(), 3.into()]));
    }
}
