//! Diagnostics for the FLIX surface language toolchain.

use crate::token::Pos;
use std::fmt;

/// The compilation phase that produced a diagnostic.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Phase {
    /// Lexical analysis.
    Lex,
    /// Parsing.
    Parse,
    /// Type checking and resolution.
    Type,
    /// Lowering to the fixed-point engine.
    Lower,
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Phase::Lex => f.write_str("lex"),
            Phase::Parse => f.write_str("parse"),
            Phase::Type => f.write_str("type"),
            Phase::Lower => f.write_str("lower"),
        }
    }
}

/// A diagnostic with phase, position, and message.
#[derive(Clone, Debug)]
pub struct LangError {
    /// The phase that failed.
    pub phase: Phase,
    /// The source position (best effort for lowering errors).
    pub pos: Pos,
    /// The human-readable message.
    pub message: String,
}

impl LangError {
    /// Creates a lexer error.
    pub fn lex(pos: Pos, message: impl Into<String>) -> LangError {
        LangError {
            phase: Phase::Lex,
            pos,
            message: message.into(),
        }
    }

    /// Creates a parser error.
    pub fn parse(pos: Pos, message: impl Into<String>) -> LangError {
        LangError {
            phase: Phase::Parse,
            pos,
            message: message.into(),
        }
    }

    /// Creates a type error.
    pub fn ty(pos: Pos, message: impl Into<String>) -> LangError {
        LangError {
            phase: Phase::Type,
            pos,
            message: message.into(),
        }
    }

    /// Creates a lowering error.
    pub fn lower(pos: Pos, message: impl Into<String>) -> LangError {
        LangError {
            phase: Phase::Lower,
            pos,
            message: message.into(),
        }
    }
}

impl fmt::Display for LangError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} error at {}: {}", self.phase, self.pos, self.message)
    }
}

impl std::error::Error for LangError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_phase_and_position() {
        let e = LangError::ty(Pos { line: 3, col: 7 }, "mismatched types");
        assert_eq!(e.to_string(), "type error at 3:7: mismatched types");
    }
}
