//! The hand-written lexer for the FLIX surface language.

use crate::error::LangError;
use crate::token::{Pos, Tok, Token};

/// Tokenises FLIX source text.
///
/// # Errors
///
/// Returns a [`LangError`] on unterminated strings, malformed numbers, or
/// unexpected characters, with the source position.
pub fn lex(src: &str) -> Result<Vec<Token>, LangError> {
    Lexer {
        chars: src.chars().collect(),
        at: 0,
        pos: Pos { line: 1, col: 1 },
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    at: usize,
    pos: Pos,
}

impl Lexer {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.at).copied()
    }

    fn peek2(&self) -> Option<char> {
        self.chars.get(self.at + 1).copied()
    }

    fn advance(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.at += 1;
        if c == '\n' {
            self.pos.line += 1;
            self.pos.col = 1;
        } else {
            self.pos.col += 1;
        }
        Some(c)
    }

    fn run(mut self) -> Result<Vec<Token>, LangError> {
        let mut out = Vec::new();
        loop {
            self.skip_trivia();
            let pos = self.pos;
            let Some(c) = self.peek() else {
                out.push(Token { tok: Tok::Eof, pos });
                return Ok(out);
            };
            let tok = match c {
                '(' => self.single(Tok::LParen),
                ')' => self.single(Tok::RParen),
                '{' => self.single(Tok::LBrace),
                '}' => self.single(Tok::RBrace),
                ',' => self.single(Tok::Comma),
                ';' => self.single(Tok::Semi),
                '.' => self.single(Tok::Dot),
                '+' => self.single(Tok::Plus),
                '*' => self.single(Tok::Star),
                '/' => self.single(Tok::Slash),
                '%' => self.single(Tok::Percent),
                ':' => {
                    self.advance();
                    if self.peek() == Some('-') {
                        self.advance();
                        Tok::ColonDash
                    } else {
                        Tok::Colon
                    }
                }
                '=' => {
                    self.advance();
                    match self.peek() {
                        Some('>') => {
                            self.advance();
                            Tok::FatArrow
                        }
                        Some('=') => {
                            self.advance();
                            Tok::EqEq
                        }
                        _ => Tok::Eq,
                    }
                }
                '!' => {
                    self.advance();
                    if self.peek() == Some('=') {
                        self.advance();
                        Tok::BangEq
                    } else {
                        Tok::Bang
                    }
                }
                '<' => {
                    self.advance();
                    match self.peek() {
                        Some('-') => {
                            self.advance();
                            Tok::BackArrow
                        }
                        Some('=') => {
                            self.advance();
                            Tok::Le
                        }
                        Some('>') => {
                            self.advance();
                            Tok::Diamond
                        }
                        _ => Tok::Lt,
                    }
                }
                '>' => {
                    self.advance();
                    if self.peek() == Some('=') {
                        self.advance();
                        Tok::Ge
                    } else {
                        Tok::Gt
                    }
                }
                '&' => {
                    self.advance();
                    if self.peek() == Some('&') {
                        self.advance();
                        Tok::AndAnd
                    } else {
                        return Err(LangError::lex(pos, "expected `&&`"));
                    }
                }
                '|' => {
                    self.advance();
                    if self.peek() == Some('|') {
                        self.advance();
                        Tok::OrOr
                    } else {
                        return Err(LangError::lex(pos, "expected `||`"));
                    }
                }
                '-' => {
                    self.advance();
                    Tok::Minus
                }
                '"' => self.string(pos)?,
                c if c.is_ascii_digit() => self.number(pos)?,
                c if c == '_' && !matches!(self.peek2(), Some(c2) if ident_char(c2)) => {
                    self.single(Tok::Underscore)
                }
                c if c.is_alphabetic() || c == '_' => self.ident(),
                other => {
                    return Err(LangError::lex(
                        pos,
                        format!("unexpected character {other:?}"),
                    ))
                }
            };
            out.push(Token { tok, pos });
        }
    }

    fn single(&mut self, tok: Tok) -> Tok {
        self.advance();
        tok
    }

    fn skip_trivia(&mut self) {
        loop {
            match self.peek() {
                Some(c) if c.is_whitespace() => {
                    self.advance();
                }
                Some('/') if self.peek2() == Some('/') => {
                    while let Some(c) = self.peek() {
                        if c == '\n' {
                            break;
                        }
                        self.advance();
                    }
                }
                _ => return,
            }
        }
    }

    fn string(&mut self, pos: Pos) -> Result<Tok, LangError> {
        self.advance(); // opening quote
        let mut s = String::new();
        loop {
            match self.advance() {
                None => return Err(LangError::lex(pos, "unterminated string literal")),
                Some('"') => return Ok(Tok::Str(s)),
                Some('\\') => match self.advance() {
                    Some('n') => s.push('\n'),
                    Some('t') => s.push('\t'),
                    Some('\\') => s.push('\\'),
                    Some('"') => s.push('"'),
                    other => {
                        return Err(LangError::lex(
                            pos,
                            format!("invalid escape sequence \\{}", other.unwrap_or(' ')),
                        ))
                    }
                },
                Some(c) => s.push(c),
            }
        }
    }

    fn number(&mut self, pos: Pos) -> Result<Tok, LangError> {
        let mut s = String::new();
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() {
                s.push(c);
                self.advance();
            } else {
                break;
            }
        }
        s.parse::<i64>()
            .map(Tok::Int)
            .map_err(|_| LangError::lex(pos, format!("integer literal {s} out of range")))
    }

    fn ident(&mut self) -> Tok {
        let mut s = String::new();
        while let Some(c) = self.peek() {
            if ident_char(c) {
                s.push(c);
                self.advance();
            } else {
                break;
            }
        }
        match s.as_str() {
            "enum" => Tok::Enum,
            "case" => Tok::Case,
            "def" => Tok::Def,
            "let" => Tok::Let,
            "rel" => Tok::Rel,
            "lat" => Tok::Lat,
            "match" => Tok::Match,
            "with" => Tok::With,
            "if" => Tok::If,
            "else" => Tok::Else,
            "true" => Tok::True,
            "false" => Tok::False,
            _ => {
                if s.chars().next().is_some_and(|c| c.is_uppercase()) {
                    Tok::UpperIdent(s)
                } else {
                    Tok::LowerIdent(s)
                }
            }
        }
    }
}

fn ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src)
            .expect("lexes")
            .into_iter()
            .map(|t| t.tok)
            .collect()
    }

    #[test]
    fn keywords_and_idents() {
        assert_eq!(
            toks("enum Parity case def foo Bar"),
            vec![
                Tok::Enum,
                Tok::UpperIdent("Parity".into()),
                Tok::Case,
                Tok::Def,
                Tok::LowerIdent("foo".into()),
                Tok::UpperIdent("Bar".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn multi_char_operators() {
        assert_eq!(
            toks(":- <- <> => == != <= >= && || < >"),
            vec![
                Tok::ColonDash,
                Tok::BackArrow,
                Tok::Diamond,
                Tok::FatArrow,
                Tok::EqEq,
                Tok::BangEq,
                Tok::Le,
                Tok::Ge,
                Tok::AndAnd,
                Tok::OrOr,
                Tok::Lt,
                Tok::Gt,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn literals() {
        assert_eq!(
            toks(r#"42 "hi\n" true false"#),
            vec![
                Tok::Int(42),
                Tok::Str("hi\n".into()),
                Tok::True,
                Tok::False,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            toks("1 // comment\n2"),
            vec![Tok::Int(1), Tok::Int(2), Tok::Eof]
        );
    }

    #[test]
    fn wildcard_vs_identifier() {
        assert_eq!(
            toks("_ _x"),
            vec![Tok::Underscore, Tok::LowerIdent("_x".into()), Tok::Eof]
        );
    }

    #[test]
    fn unterminated_string_is_an_error() {
        assert!(lex("\"oops").is_err());
    }

    #[test]
    fn positions_track_lines() {
        let tokens = lex("a\n  b").expect("lexes");
        assert_eq!(tokens[0].pos, Pos { line: 1, col: 1 });
        assert_eq!(tokens[1].pos, Pos { line: 2, col: 3 });
    }

    #[test]
    fn stray_character_is_an_error() {
        assert!(lex("a @ b").is_err());
        assert!(lex("a & b").is_err());
    }
}
