//! The FLIX surface language: lexer, parser, type checker, interpreter,
//! and lowering to the [`flix_core`] fixed-point engine.
//!
//! This crate is the "compiler and runtime" of §4 of the reproduced paper
//! (Madsen, Yee, Lhoták, PLDI 2016): "The toolchain includes a parser, a
//! type checker, an interpreter, an indexed database, and a semi-naïve
//! fixed-point solver" — the database and solver live in [`flix_core`];
//! everything else is here, plus the `flixr` CLI binary.
//!
//! # Example
//!
//! Compile and solve a FLIX program from source:
//!
//! ```
//! use flix_core::Solver;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let source = r#"
//!     rel Edge(x: Int, y: Int);
//!     rel Path(x: Int, y: Int);
//!
//!     Edge(1, 2).
//!     Edge(2, 3).
//!
//!     Path(x, y) :- Edge(x, y).
//!     Path(x, z) :- Path(x, y), Edge(y, z).
//! "#;
//! let program = flix_lang::compile(source)?;
//! let solution = Solver::new().solve(&program)?;
//! assert!(solution.contains("Path", &[1.into(), 3.into()]));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod error;
pub mod interp;
mod lexer;
mod lower;
mod parser;
pub mod pretty;
pub mod token;
pub mod typeck;
pub mod verify;

use std::sync::Arc;

pub use error::LangError;
pub use interp::Interpreter;
pub use lexer::lex;
pub use lower::lower;
pub use parser::parse;
pub use typeck::{check, CheckedProgram};

/// Compiles FLIX source text to an executable engine program.
///
/// Runs the full pipeline: lex → parse → type check → lower. Solve the
/// result with [`flix_core::Solver`].
///
/// # Errors
///
/// Returns the first [`LangError`] from any phase.
pub fn compile(source: &str) -> Result<flix_core::Program, LangError> {
    let parsed = parse(source)?;
    let checked = check(&parsed)?;
    lower(Arc::new(checked))
}

/// Parses a single ground atom like `Path(1, "a")` into its predicate
/// name and values — the query syntax of `flixr --explain`.
///
/// # Errors
///
/// Returns a [`LangError`] if the text is not a single ground atom.
pub fn parse_ground_atom(text: &str) -> Result<(String, Vec<flix_core::Value>), LangError> {
    let trimmed = text.trim().trim_end_matches('.');
    let source = format!("{trimmed}.");
    let parsed = parse(&source)?;
    let [ast::Decl::Constraint(c)] = parsed.decls.as_slice() else {
        return Err(LangError::parse(
            Default::default(),
            "expected exactly one ground atom, e.g. Path(1, 2)",
        ));
    };
    if !c.body.is_empty() {
        return Err(LangError::parse(
            c.pos,
            "expected a ground atom, found a rule",
        ));
    }
    let values = c
        .head
        .terms
        .iter()
        .map(|t| match t {
            ast::RuleTerm::Lit(l, _) => Ok(interp::lit_value(l)),
            ast::RuleTerm::Ctor { .. } => Ok(ground_ctor(t)),
            other => Err(LangError::parse(
                other.pos(),
                "explain queries must be ground (no variables or wildcards)",
            )),
        })
        .collect::<Result<Vec<_>, _>>()?;
    Ok((c.head.pred.clone(), values))
}

fn ground_ctor(t: &ast::RuleTerm) -> flix_core::Value {
    match t {
        ast::RuleTerm::Lit(l, _) => interp::lit_value(l),
        ast::RuleTerm::Ctor { case, args, .. } => {
            let payload = match args.len() {
                0 => flix_core::Value::Unit,
                1 => ground_ctor(&args[0]),
                _ => flix_core::Value::tuple(args.iter().map(ground_ctor)),
            };
            flix_core::Value::tag(case.as_str(), payload)
        }
        _ => unreachable!("caller checks groundness"),
    }
}

/// Compiles and solves FLIX source text with the default solver.
///
/// # Errors
///
/// Returns a boxed error from compilation or solving.
pub fn run(source: &str) -> Result<flix_core::Solution, Box<dyn std::error::Error>> {
    let program = compile(source)?;
    Ok(flix_core::Solver::new().solve(&program)?)
}
