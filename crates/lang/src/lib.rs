//! The FLIX surface language: lexer, parser, type checker, interpreter,
//! and lowering to the [`flix_core`] fixed-point engine.
//!
//! This crate is the "compiler and runtime" of §4 of the reproduced paper
//! (Madsen, Yee, Lhoták, PLDI 2016): "The toolchain includes a parser, a
//! type checker, an interpreter, an indexed database, and a semi-naïve
//! fixed-point solver" — the database and solver live in [`flix_core`];
//! everything else is here, plus the `flixr` CLI binary.
//!
//! # Example
//!
//! Compile and solve a FLIX program from source:
//!
//! ```
//! use flix_core::Solver;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let source = r#"
//!     rel Edge(x: Int, y: Int);
//!     rel Path(x: Int, y: Int);
//!
//!     Edge(1, 2).
//!     Edge(2, 3).
//!
//!     Path(x, y) :- Edge(x, y).
//!     Path(x, z) :- Path(x, y), Edge(y, z).
//! "#;
//! let program = flix_lang::compile(source)?;
//! let solution = Solver::new().solve(&program)?;
//! assert!(solution.contains("Path", &[1.into(), 3.into()]));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod error;
pub mod interp;
mod lexer;
mod lower;
mod parser;
pub mod pretty;
pub mod token;
pub mod typeck;
pub mod verify;

use std::sync::Arc;

pub use error::LangError;
pub use interp::Interpreter;
pub use lexer::lex;
pub use lower::lower;
pub use parser::parse;
pub use typeck::{check, CheckedProgram};

/// Compiles FLIX source text to an executable engine program.
///
/// Runs the full pipeline: lex → parse → type check → lower. Solve the
/// result with [`flix_core::Solver`].
///
/// # Errors
///
/// Returns the first [`LangError`] from any phase.
pub fn compile(source: &str) -> Result<flix_core::Program, LangError> {
    let parsed = parse(source)?;
    let checked = check(&parsed)?;
    lower(Arc::new(checked))
}

/// Parses `text` as exactly one bodyless atom, returning its predicate
/// name and terms. Shared by the `flixr --explain` and `--query` atom
/// syntaxes; errors carry the source position within `text`.
fn parse_single_atom(text: &str, example: &str) -> Result<(String, Vec<ast::RuleTerm>), LangError> {
    let trimmed = text.trim().trim_end_matches('.');
    let source = format!("{trimmed}.");
    let parsed = parse(&source)?;
    let [ast::Decl::Constraint(c)] = parsed.decls.as_slice() else {
        return Err(LangError::parse(
            Default::default(),
            format!("expected exactly one atom, e.g. {example}"),
        ));
    };
    if !c.body.is_empty() {
        return Err(LangError::parse(c.pos, "expected an atom, found a rule"));
    }
    Ok((c.head.pred.clone(), c.head.terms.clone()))
}

/// Parses a single ground atom like `Path(1, "a")` into its predicate
/// name and values — the query syntax of `flixr --explain`.
///
/// # Errors
///
/// Returns a [`LangError`] if the text is not a single ground atom; a
/// `_` wildcard is rejected with its source position and a pointer to
/// `--query`, which accepts patterns.
pub fn parse_ground_atom(text: &str) -> Result<(String, Vec<flix_core::Value>), LangError> {
    let (pred, terms) = parse_single_atom(text, "Path(1, 2)")?;
    let values = terms
        .iter()
        .map(|t| match t {
            ast::RuleTerm::Lit(l, _) => Ok(interp::lit_value(l)),
            ast::RuleTerm::Ctor { .. } => Ok(ground_ctor(t)),
            ast::RuleTerm::Wildcard(pos) => Err(LangError::parse(
                *pos,
                "explain queries must be ground; replace `_` with a value \
                 (or use --query, which accepts `_` patterns)",
            )),
            other => Err(LangError::parse(
                other.pos(),
                "explain queries must be ground (no variables)",
            )),
        })
        .collect::<Result<Vec<_>, _>>()?;
    Ok((pred, values))
}

/// Parses a query atom like `Path(1, _)` into its predicate name and
/// bound/free pattern — the query syntax of `flixr --query`. A `_`
/// wildcard marks a free position (`None`); literals and enum
/// constructors are bound positions (`Some`).
///
/// # Errors
///
/// Returns a [`LangError`] (with the offending source position) if the
/// text is not a single atom of literals and wildcards.
pub fn parse_query_atom(text: &str) -> Result<(String, Vec<Option<flix_core::Value>>), LangError> {
    let (pred, terms) = parse_single_atom(text, "Path(1, _)")?;
    let pattern = terms
        .iter()
        .map(|t| match t {
            ast::RuleTerm::Wildcard(_) => Ok(None),
            ast::RuleTerm::Lit(l, _) => Ok(Some(interp::lit_value(l))),
            ast::RuleTerm::Ctor { .. } => Ok(Some(ground_ctor(t))),
            other => Err(LangError::parse(
                other.pos(),
                "query atoms take literals and `_` wildcards (no variables)",
            )),
        })
        .collect::<Result<Vec<_>, _>>()?;
    Ok((pred, pattern))
}

/// Compiles update-file text into a [`flix_core::Delta`] — the syntax
/// of `flixr --update` and of the daemon `update` op. The text is a
/// standalone FLIX file re-declaring the predicates its facts touch:
/// plain facts become insertions (lattice facts lub-raise), and a line
/// of the form `-Edge(1, 2).` or `retract Edge(1, 2).` becomes a
/// retraction — for a lattice predicate, a lower withdrawing that key's
/// asserted contribution. Retraction lines are extracted before the
/// rest of the text is compiled (blanked in place, so error positions
/// in the remainder keep their line numbers) and are ordered *after*
/// the text's assertions.
///
/// # Errors
///
/// Returns a [`LangError`] from compiling the assertions, or a parse
/// error carrying the line number of a malformed retraction.
pub fn compile_update(source: &str) -> Result<flix_core::Delta, LangError> {
    let mut kept = String::with_capacity(source.len());
    let mut retractions: Vec<(usize, String)> = Vec::new();
    for (idx, line) in source.lines().enumerate() {
        let trimmed = line.trim_start();
        let atom = if let Some(rest) = trimmed.strip_prefix('-') {
            // Only a minus directly before a predicate name marks a
            // retraction; anything else (a stray `-1`, say) falls
            // through to the compiler, whose error will point at it.
            rest.chars()
                .next()
                .is_some_and(|c| c.is_alphabetic())
                .then_some(rest)
        } else {
            trimmed.strip_prefix("retract ")
        };
        match atom {
            Some(text) => {
                retractions.push((idx + 1, text.trim().to_string()));
                kept.push('\n');
            }
            None => {
                kept.push_str(line);
                kept.push('\n');
            }
        }
    }
    let update_program = compile(&kept)?;
    let mut delta = flix_core::Delta::from_facts(&update_program);
    for (lineno, text) in retractions {
        let (predicate, tuple) = parse_ground_atom(&text).map_err(|e| {
            LangError::parse(
                token::Pos {
                    line: lineno as u32,
                    col: 1,
                },
                format!("in retraction on line {lineno}: {e}"),
            )
        })?;
        delta.push_op(flix_core::DeltaOp::Retract { predicate, tuple });
    }
    Ok(delta)
}

fn ground_ctor(t: &ast::RuleTerm) -> flix_core::Value {
    match t {
        ast::RuleTerm::Lit(l, _) => interp::lit_value(l),
        ast::RuleTerm::Ctor { case, args, .. } => {
            let payload = match args.len() {
                0 => flix_core::Value::Unit,
                1 => ground_ctor(&args[0]),
                _ => flix_core::Value::tuple(args.iter().map(ground_ctor)),
            };
            flix_core::Value::tag(case.as_str(), payload)
        }
        _ => unreachable!("caller checks groundness"),
    }
}

/// Compiles and solves FLIX source text with the default solver.
///
/// # Errors
///
/// Returns a boxed error from compilation or solving.
pub fn run(source: &str) -> Result<flix_core::Solution, Box<dyn std::error::Error>> {
    let program = compile(source)?;
    Ok(flix_core::Solver::new().solve(&program)?)
}
