//! `flixr` — compile and solve a FLIX program from the command line.
//!
//! Usage:
//!
//! ```text
//! flixr [--stats] [--naive] [--verify] [--threads N]
//!       [--print PRED[,PRED...]] [--explain "Fact(args)"]
//!       FILE.flix [MORE.flix ...]
//! ```
//!
//! Multiple input files are concatenated before compilation, so rules and
//! facts can live in separate files (the interoperability story of §1 of
//! the paper: feed extracted facts to the solver without a bespoke
//! serialisation step). `--verify` law-checks every lattice binding
//! before solving (§7 "Safety"); `--explain` prints the derivation tree of
//! a fact in the computed model.
//!
//! Prints every relation tuple and lattice cell of the minimal model (or
//! only the named predicates), one fact per line, in deterministic order.

use flix_core::{Solver, Strategy};
use std::process::ExitCode;

fn main() -> ExitCode {
    match run(std::env::args().skip(1).collect()) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("flixr: {message}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: Vec<String>) -> Result<(), String> {
    let mut files: Vec<String> = Vec::new();
    let mut stats = false;
    let mut verify = false;
    let mut strategy = Strategy::SemiNaive;
    let mut threads = 1usize;
    let mut print: Option<Vec<String>> = None;
    let mut explain: Option<String> = None;

    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--stats" => stats = true,
            "--verify" => verify = true,
            "--naive" => strategy = Strategy::Naive,
            "--threads" => {
                let n = it.next().ok_or("--threads requires a number")?;
                threads = n.parse().map_err(|_| format!("invalid thread count {n}"))?;
            }
            "--print" => {
                let list = it.next().ok_or("--print requires predicate names")?;
                print = Some(list.split(',').map(str::to_string).collect());
            }
            "--explain" => {
                explain = Some(it.next().ok_or("--explain requires a ground atom")?);
            }
            "--help" | "-h" => {
                println!(
                    "usage: flixr [--stats] [--naive] [--verify] [--threads N] \
                     [--print PREDS] FILE.flix [MORE.flix ...]"
                );
                return Ok(());
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown option {other}"));
            }
            path => files.push(path.to_string()),
        }
    }

    if files.is_empty() {
        return Err("no input file; see --help".into());
    }
    let mut source = String::new();
    for path in &files {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        source.push_str(&text);
        source.push('\n');
    }
    if verify {
        let parsed = flix_lang::parse(&source).map_err(|e| e.to_string())?;
        let checked = std::sync::Arc::new(flix_lang::check(&parsed).map_err(|e| e.to_string())?);
        flix_lang::verify::check_lattices(&checked).map_err(|e| e.to_string())?;
        eprintln!("flixr: all lattice bindings satisfy the lattice laws");
    }
    let program = flix_lang::compile(&source).map_err(|e| e.to_string())?;
    let solution = Solver::new()
        .strategy(strategy)
        .threads(threads)
        .record_provenance(explain.is_some())
        .solve(&program)
        .map_err(|e| e.to_string())?;

    if let Some(query) = &explain {
        let (pred, values) =
            flix_lang::parse_ground_atom(query).map_err(|e| e.to_string())?;
        match solution.explain(&pred, &values) {
            Some(tree) => {
                print!("{tree}");
                return Ok(());
            }
            None => return Err(format!("{query} is not in the minimal model")),
        }
    }

    // Collect and print facts in deterministic order.
    let mut names: Vec<String> = program
        .predicates()
        .map(|(_, decl)| decl.name().to_string())
        .collect();
    names.sort();
    for name in names {
        if let Some(filter) = &print {
            if !filter.contains(&name) {
                continue;
            }
        }
        let mut lines = Vec::new();
        if let Some(rows) = solution.relation(&name) {
            for row in rows {
                lines.push(format!(
                    "{name}({})",
                    row.iter()
                        .map(ToString::to_string)
                        .collect::<Vec<_>>()
                        .join(", ")
                ));
            }
        }
        if let Some(cells) = solution.lattice(&name) {
            for (key, value) in cells {
                let mut parts: Vec<String> = key.iter().map(ToString::to_string).collect();
                parts.push(value.to_string());
                lines.push(format!("{name}({})", parts.join(", ")));
            }
        }
        lines.sort();
        for line in lines {
            println!("{line}");
        }
    }

    if stats {
        let s = solution.stats();
        eprintln!(
            "rounds: {}  rule evaluations: {}  facts derived: {}  facts inserted: {}  \
             index probes: {}  scans: {}  total facts: {}",
            s.rounds,
            s.rule_evaluations,
            s.facts_derived,
            s.facts_inserted,
            s.index_probes,
            s.scan_fallbacks,
            s.total_facts
        );
    }
    Ok(())
}
