//! `flixr` — compile and solve a FLIX program from the command line.
//!
//! Usage:
//!
//! ```text
//! flixr [--stats] [--profile] [--metrics-json PATH]
//!       [--trace PATH] [--trace-folded PATH]
//!       [--ascent-report] [--ascent-threshold N] [--progress]
//!       [--naive] [--verify] [--threads N]
//!       [--max-rounds N] [--timeout SECS]
//!       [--print PRED[,PRED...]] [--explain "Fact(args)"]
//!       [--query "Pred(pattern)"] [--update FILE.flix]
//!       [--save SNAPSHOT] [--load SNAPSHOT]
//!       [--wal LOG] [--compact-every N]
//!       [--quiet-model]
//!       FILE.flix [MORE.flix ...]
//!
//! flixr --connect SOCKET [--query PATTERN] [--print PREDS]
//!       [--explain ATOM] [--update FILE.flix] [--timeout SECS]
//!       [--metrics-json PATH] [--status] [--stats [--prom]]
//!       [--watch [--interval SECS] [--watch-count N]]
//!       [--compact] [--shutdown] [--quiet-model]
//! ```
//!
//! `--quiet-model` suppresses printing the model itself (and, with
//! `--update`, both models) — the run still solves, persists, and
//! reports stats/diagnostics, so scripts that only care about side
//! effects or exit codes are not flooded by large fixed points.
//!
//! `--connect SOCKET` switches to *client mode* against a running
//! `flixd` daemon (see the `flixd` binary): no local compile or solve
//! happens; instead `--query`, `--print`, `--explain`, `--update`,
//! `--metrics-json`, `--status`, `--compact`, and `--shutdown` are sent
//! over the `flixd/1` protocol and rendered exactly as local mode
//! renders its own output. In client mode `--stats` fetches the
//! daemon's `flixd-stats/1` telemetry document (add `--prom` for the
//! Prometheus text exposition, e.g. to serve as a scrape target), and
//! `--watch` polls `stats` every `--interval` seconds (default 2) into
//! a live rate-and-latency view (`--watch-count N` stops after `N`
//! polls). `--update` prints the daemon's updated model
//! afterwards unless `--quiet-model` (or an explicit `--query`/
//! `--print`) narrows the output; `--timeout` becomes the update's
//! server-side resume deadline. Error replies map onto the same exit
//! codes as local failures: 2 for language-level rejections (parse,
//! unknown predicate, delta mismatch), 4 for exhausted budgets, 3 for
//! solver faults, 1 for operational errors (daemon busy, unsupported
//! capability, shutdown races). The protocol and its epoch/snapshot-
//! isolation semantics are specified in DESIGN.md §17.
//!
//! Multiple input files are concatenated before compilation, so rules and
//! facts can live in separate files (the interoperability story of §1 of
//! the paper: feed extracted facts to the solver without a bespoke
//! serialisation step). `--verify` law-checks every lattice binding
//! before solving (§7 "Safety"); `--explain` prints the derivation tree of
//! a fact in the computed model.
//!
//! `--query 'Dist("a", _)'` (repeatable) switches to demand-driven
//! evaluation: instead of computing the whole minimal model, the solver
//! runs the magic-set-style rewrite of `flix_core::demand` and derives
//! only the tuples and lattice cells the query patterns transitively
//! demand, then prints only the matching answers. A `_` marks a free
//! position; everything else must be a literal. Demanded answers are
//! identical to the full model's. `--explain` explains a fact within the
//! demanded model, `--stats`/`--profile`/`--metrics-json` describe the
//! (cheaper) query-directed run in the program's own rule and predicate
//! names, and `--update FILE` makes the queries ask about the *updated*
//! program without ever materializing either full model. A malformed
//! query pattern (syntax, unknown predicate, wrong arity) exits 2 with
//! the offending source position.
//!
//! `--save PATH` writes the final model (the updated model under
//! `--update`, otherwise the initial one) as a checksummed snapshot,
//! atomically. `--load PATH` replaces the initial solve with that
//! snapshot; a missing, corrupt, or mismatched snapshot degrades to a
//! scratch solve with a warning on stderr — it never aborts a run.
//! `--wal PATH` opens (or creates) a write-ahead delta log: surviving
//! logged deltas are replayed onto the base model before anything is
//! printed, and with `--update` the new delta is appended — durably —
//! *before* it is applied, so a crash mid-update is recoverable by the
//! next run. A corrupt log tail is truncated with a warning; a log
//! whose header is destroyed is recreated empty. `--compact-every N`
//! (requires `--wal` and `--save`) absorbs the log into a fresh
//! snapshot once it holds at least `N` deltas, instead of letting it
//! grow forever. All replays resume from the base model with every
//! surviving delta combined, so recovery always reproduces exactly the
//! fixed point of the base program plus the logged updates. The
//! persistence flags describe complete models and therefore cannot be
//! combined with `--query` (whose demanded model is deliberately
//! partial). Wire formats are specified byte-by-byte in DESIGN.md §14.
//!
//! `--update FILE` applies a delta after the initial solve: the update
//! file is compiled standalone (it re-declares the predicates its facts
//! touch) and its facts are fed to [`Solver::resume`], which
//! warm-starts the fixed point from the initial model instead of
//! solving from scratch. Plain facts assert (lattice facts lub-raise);
//! a line `-Edge(1, 2).` (equivalently `retract Edge(1, 2).`) retracts
//! an asserted fact, and the resume over-deletes its cone of
//! consequences and re-derives what survives — for a lattice
//! predicate the retracted key's cell re-settles at the lub of its
//! remaining justifications. Retractions apply after the same file's
//! assertions; a malformed retraction line exits 2 with its file and
//! line. Both models are printed, separated by `== initial model ==` /
//! `== updated model ==` headers; without `--update` the model is
//! printed headerless as before. `--explain` combined with `--update`
//! explains the fact in the *updated* model.
//!
//! Prints every relation tuple and lattice cell of the minimal model (or
//! only the named predicates), one fact per line, in deterministic order.
//!
//! `--profile` prints the per-rule work profile (evaluations, derived,
//! inserted, index probes, scans, cumulative time) as a ranked table on
//! stderr; `--metrics-json PATH` writes the same profile as a
//! `flix-metrics/1` JSON document (schema in DESIGN.md §10). Both also
//! fire on guarded failures, describing the partial run.
//!
//! `--trace PATH` records an execution trace (solve → stratum → round →
//! rule-evaluation spans, one track per worker thread) and writes it as
//! Chrome trace-event JSON loadable in Perfetto or `chrome://tracing`;
//! `--trace-folded PATH` writes the same trace as folded stacks for
//! `flamegraph.pl`/`inferno`. `--ascent-report` prints the
//! lattice-ascent diagnostic (chain-height histogram, hottest cells) on
//! stderr, and `--ascent-threshold N` warns — without aborting — as soon
//! as any lattice cell's ascending chain exceeds height `N` (the §3.2
//! termination argument needs finite chains; a runaway height is the
//! telltale of a missing widening). `--progress` prints a rate-limited
//! one-line progress heartbeat per round on stderr. All of these fire on
//! guarded failures too, describing the partial run.
//!
//! # Exit codes
//!
//! Failures are distinguishable by exit code so scripts can react without
//! scraping stderr:
//!
//! | code | meaning                                                        |
//! |------|----------------------------------------------------------------|
//! | 0    | solved; the minimal model was printed                          |
//! | 1    | usage or I/O error (bad flag, unreadable file, ...)            |
//! | 2    | the program failed to parse or type-check                      |
//! | 3    | solving failed (function panic, lattice-law violation, ...)    |
//! | 4    | a budget was exhausted (`--timeout`, `--max-rounds`)           |
//!
//! On exit codes 3 and 4 the facts derived before the fault are still
//! printed — the guarded execution layer returns the partial model, and
//! `flixr` surfaces it so long-running analyses degrade to best-effort
//! results instead of nothing.

use flix_core::{
    load_snapshot, render_ascent_report, save_snapshot, write_metrics_json, AscentConfig,
    AscentWarning, Budget, Delta, DeltaLog, Observer, OwnedMetricsReport, PersistError, Query,
    Solution, SolveError, Solver, SolverConfig, Strategy, TraceConfig,
};
use flixd::{Client, ErrorCode, Reply, ReplyBody, Request};
use std::collections::BTreeSet;
use std::process::ExitCode;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Usage or I/O problem (bad flag, unreadable input file).
const EXIT_USAGE: u8 = 1;
/// The program failed to parse or type-check, or the `--update` file was
/// rejected (parse error, unknown predicate, arity mismatch).
const EXIT_LANG: u8 = 2;
/// Solving failed: a user function panicked, a runtime safety sentinel
/// tripped, or the program was rejected by stratification.
const EXIT_SOLVE: u8 = 3;
/// A configured budget (deadline, round limit, fact or derivation cap)
/// was exhausted before the fixed point was reached.
const EXIT_BUDGET: u8 = 4;

struct Failure {
    code: u8,
    /// `None` when the diagnostic was already written to stderr.
    message: Option<String>,
}

impl Failure {
    fn usage(message: impl Into<String>) -> Failure {
        Failure {
            code: EXIT_USAGE,
            message: Some(message.into()),
        }
    }

    fn lang(message: impl Into<String>) -> Failure {
        Failure {
            code: EXIT_LANG,
            message: Some(message.into()),
        }
    }
}

fn main() -> ExitCode {
    // The guarded solver catches panics in user-supplied functions and
    // re-reports them with rule context, so the default panic hook would
    // only duplicate each caught panic as "thread panicked" noise.
    // Silence it; a panic that *escapes* `run` is a flixr bug and is
    // re-reported below as an internal error.
    std::panic::set_hook(Box::new(|_| {}));
    let args: Vec<String> = std::env::args().skip(1).collect();
    match std::panic::catch_unwind(|| run(args)) {
        Ok(Ok(())) => ExitCode::SUCCESS,
        Ok(Err(failure)) => {
            if let Some(message) = failure.message {
                eprintln!("flixr: {message}");
            }
            ExitCode::from(failure.code)
        }
        Err(payload) => {
            let message = payload
                .downcast_ref::<&str>()
                .map(ToString::to_string)
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".into());
            eprintln!("flixr: internal error: {message}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: Vec<String>) -> Result<(), Failure> {
    let mut files: Vec<String> = Vec::new();
    let mut stats = false;
    let mut profile = false;
    let mut metrics_json: Option<String> = None;
    let mut trace: Option<String> = None;
    let mut trace_folded: Option<String> = None;
    let mut ascent_report = false;
    let mut ascent_threshold: Option<u64> = None;
    let mut progress = false;
    let mut verify = false;
    let mut strategy = Strategy::SemiNaive;
    let mut threads = 1usize;
    let mut max_rounds: Option<u64> = None;
    let mut timeout: Option<Duration> = None;
    let mut print: Option<Vec<String>> = None;
    let mut explain: Option<String> = None;
    let mut queries: Vec<String> = Vec::new();
    let mut update: Option<String> = None;
    let mut save: Option<String> = None;
    let mut load: Option<String> = None;
    let mut wal: Option<String> = None;
    let mut compact_every: Option<u64> = None;
    let mut quiet_model = false;
    let mut connect: Option<String> = None;
    let mut status = false;
    let mut compact = false;
    let mut shutdown = false;
    let mut prom = false;
    let mut watch = false;
    let mut interval = 2.0f64;
    let mut watch_count: Option<u64> = None;

    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--stats" => stats = true,
            "--profile" => profile = true,
            "--metrics-json" => {
                let path = it
                    .next()
                    .ok_or_else(|| Failure::usage("--metrics-json requires an output path"))?;
                if path.starts_with('-') {
                    return Err(Failure::usage(format!(
                        "--metrics-json requires an output path, got option {path}"
                    )));
                }
                metrics_json = Some(path);
            }
            "--trace" => {
                let path = it
                    .next()
                    .ok_or_else(|| Failure::usage("--trace requires an output path"))?;
                if path.starts_with('-') {
                    return Err(Failure::usage(format!(
                        "--trace requires an output path, got option {path}"
                    )));
                }
                trace = Some(path);
            }
            "--trace-folded" => {
                let path = it
                    .next()
                    .ok_or_else(|| Failure::usage("--trace-folded requires an output path"))?;
                if path.starts_with('-') {
                    return Err(Failure::usage(format!(
                        "--trace-folded requires an output path, got option {path}"
                    )));
                }
                trace_folded = Some(path);
            }
            "--ascent-report" => ascent_report = true,
            "--ascent-threshold" => {
                let n = it
                    .next()
                    .ok_or_else(|| Failure::usage("--ascent-threshold requires a height"))?;
                ascent_threshold = Some(
                    n.parse()
                        .map_err(|_| Failure::usage(format!("invalid ascent threshold {n}")))?,
                );
            }
            "--progress" => progress = true,
            "--verify" => verify = true,
            "--naive" => strategy = Strategy::Naive,
            "--threads" => {
                let n = it
                    .next()
                    .ok_or_else(|| Failure::usage("--threads requires a number"))?;
                threads = n
                    .parse()
                    .map_err(|_| Failure::usage(format!("invalid thread count {n}")))?;
            }
            "--max-rounds" => {
                let n = it
                    .next()
                    .ok_or_else(|| Failure::usage("--max-rounds requires a number"))?;
                max_rounds = Some(
                    n.parse()
                        .map_err(|_| Failure::usage(format!("invalid round limit {n}")))?,
                );
            }
            "--timeout" => {
                let s = it
                    .next()
                    .ok_or_else(|| Failure::usage("--timeout requires seconds"))?;
                let secs: f64 = s
                    .parse()
                    .map_err(|_| Failure::usage(format!("invalid timeout {s}")))?;
                if !secs.is_finite() || secs <= 0.0 {
                    return Err(Failure::usage(format!(
                        "timeout must be a positive number of seconds, got {s}"
                    )));
                }
                timeout = Some(Duration::from_secs_f64(secs));
            }
            "--print" => {
                let list = it
                    .next()
                    .ok_or_else(|| Failure::usage("--print requires predicate names"))?;
                print = Some(list.split(',').map(str::to_string).collect());
            }
            "--explain" => {
                explain = Some(
                    it.next()
                        .ok_or_else(|| Failure::usage("--explain requires a ground atom"))?,
                );
            }
            "--query" => {
                queries.push(it.next().ok_or_else(|| {
                    Failure::usage("--query requires an atom pattern, e.g. 'Dist(\"a\", _)'")
                })?);
            }
            "--update" => {
                let path = it
                    .next()
                    .ok_or_else(|| Failure::usage("--update requires a .flix file of facts"))?;
                if path.starts_with('-') {
                    return Err(Failure::usage(format!(
                        "--update requires a .flix file of facts, got option {path}"
                    )));
                }
                update = Some(path);
            }
            "--save" => {
                let path = it
                    .next()
                    .ok_or_else(|| Failure::usage("--save requires a snapshot path"))?;
                if path.starts_with('-') {
                    return Err(Failure::usage(format!(
                        "--save requires a snapshot path, got option {path}"
                    )));
                }
                save = Some(path);
            }
            "--load" => {
                let path = it
                    .next()
                    .ok_or_else(|| Failure::usage("--load requires a snapshot path"))?;
                if path.starts_with('-') {
                    return Err(Failure::usage(format!(
                        "--load requires a snapshot path, got option {path}"
                    )));
                }
                load = Some(path);
            }
            "--wal" => {
                let path = it
                    .next()
                    .ok_or_else(|| Failure::usage("--wal requires a log path"))?;
                if path.starts_with('-') {
                    return Err(Failure::usage(format!(
                        "--wal requires a log path, got option {path}"
                    )));
                }
                wal = Some(path);
            }
            "--compact-every" => {
                let n = it
                    .next()
                    .ok_or_else(|| Failure::usage("--compact-every requires a frame count"))?;
                let every: u64 = n
                    .parse()
                    .map_err(|_| Failure::usage(format!("invalid compaction threshold {n}")))?;
                if every == 0 {
                    return Err(Failure::usage(
                        "--compact-every must be at least 1 (0 would compact an empty log)",
                    ));
                }
                compact_every = Some(every);
            }
            "--quiet-model" => quiet_model = true,
            "--connect" => {
                let path = it
                    .next()
                    .ok_or_else(|| Failure::usage("--connect requires a flixd socket path"))?;
                if path.starts_with('-') {
                    return Err(Failure::usage(format!(
                        "--connect requires a flixd socket path, got option {path}"
                    )));
                }
                connect = Some(path);
            }
            "--status" => status = true,
            "--compact" => compact = true,
            "--shutdown" => shutdown = true,
            "--prom" => prom = true,
            "--watch" => watch = true,
            "--interval" => {
                let s = it
                    .next()
                    .ok_or_else(|| Failure::usage("--interval requires seconds"))?;
                let secs: f64 = s
                    .parse()
                    .map_err(|_| Failure::usage(format!("invalid interval {s}")))?;
                if !secs.is_finite() || secs <= 0.0 {
                    return Err(Failure::usage(format!(
                        "--interval must be a positive number of seconds, got {s}"
                    )));
                }
                interval = secs;
            }
            "--watch-count" => {
                let n = it
                    .next()
                    .ok_or_else(|| Failure::usage("--watch-count requires a poll count"))?;
                watch_count = Some(
                    n.parse()
                        .map_err(|_| Failure::usage(format!("invalid poll count {n}")))?,
                );
            }
            "--help" | "-h" => {
                println!(
                    "usage: flixr [--stats] [--profile] [--metrics-json PATH] \
                     [--trace PATH] [--trace-folded PATH] \
                     [--ascent-report] [--ascent-threshold N] [--progress] \
                     [--naive] [--verify] [--threads N] \
                     [--max-rounds N] [--timeout SECS] [--print PREDS] \
                     [--explain ATOM] [--query PATTERN] [--update FILE.flix] \
                     [--save SNAPSHOT] [--load SNAPSHOT] [--wal LOG] [--compact-every N] \
                     [--quiet-model] FILE.flix [MORE.flix ...]\n\
                     \n\
                     client mode (against a running flixd daemon):\n\
                     flixr --connect SOCKET [--query PATTERN] [--print PREDS] \
                     [--explain ATOM] [--update FILE.flix] [--timeout SECS] \
                     [--metrics-json PATH] [--status] [--stats [--prom]] \
                     [--watch [--interval SECS] [--watch-count N]] \
                     [--compact] [--shutdown] [--quiet-model]"
                );
                return Ok(());
            }
            other if other.starts_with('-') => {
                return Err(Failure::usage(format!("unknown option {other}")));
            }
            path => files.push(path.to_string()),
        }
    }

    if let Some(socket) = connect {
        if save.is_some() || load.is_some() || wal.is_some() || verify {
            return Err(Failure::usage(
                "--save/--load/--wal/--verify are local-mode flags; the daemon owns \
                 persistence when using --connect (see --compact)",
            ));
        }
        if !files.is_empty() {
            return Err(Failure::usage(
                "--connect talks to a daemon that already loaded its program; \
                 drop the .flix file arguments",
            ));
        }
        if prom && !stats {
            return Err(Failure::usage(
                "--prom selects the Prometheus form of --stats; add --stats",
            ));
        }
        return run_connect(RunConnect {
            socket: &socket,
            queries: &queries,
            print: print.as_deref(),
            explain: explain.as_deref(),
            update: update.as_deref(),
            timeout,
            metrics_json: metrics_json.as_deref(),
            status,
            stats,
            prom,
            watch,
            interval,
            watch_count,
            compact,
            shutdown,
            quiet_model,
        });
    }
    if status || compact || shutdown || prom || watch || watch_count.is_some() {
        return Err(Failure::usage(
            "--status/--compact/--shutdown/--prom/--watch/--watch-count are client-mode \
             flags and require --connect SOCKET",
        ));
    }
    if files.is_empty() {
        return Err(Failure::usage("no input file; see --help"));
    }
    if !queries.is_empty() && (save.is_some() || load.is_some() || wal.is_some()) {
        return Err(Failure::usage(
            "--save/--load/--wal describe complete models and cannot be combined \
             with --query, whose demanded model is deliberately partial",
        ));
    }
    if compact_every.is_some() && (wal.is_none() || save.is_none()) {
        return Err(Failure::usage(
            "--compact-every requires both --wal (the log to compact) and \
             --save (the snapshot to compact it into)",
        ));
    }
    let mut source = String::new();
    for path in &files {
        let text = read_source(path)?;
        source.push_str(&text);
        source.push('\n');
    }
    if verify {
        let parsed = flix_lang::parse(&source).map_err(|e| Failure::lang(e.to_string()))?;
        let checked = std::sync::Arc::new(
            flix_lang::check(&parsed).map_err(|e| Failure::lang(e.to_string()))?,
        );
        flix_lang::verify::check_lattices(&checked).map_err(|e| Failure {
            code: EXIT_SOLVE,
            message: Some(e.to_string()),
        })?;
        eprintln!("flixr: all lattice bindings satisfy the lattice laws");
    }
    let program = flix_lang::compile(&source).map_err(|e| Failure::lang(e.to_string()))?;

    let mut budget = Budget::new();
    if let Some(deadline) = timeout {
        budget = budget.deadline(deadline);
    }
    let observer: Option<Arc<dyn Observer>> = (progress || ascent_threshold.is_some())
        .then(|| Arc::new(CliObserver::new(progress)) as Arc<dyn Observer>);
    let solver = Solver::with_config(SolverConfig {
        strategy,
        threads,
        max_rounds,
        budget,
        record_provenance: explain.is_some(),
        trace: (trace.is_some() || trace_folded.is_some()).then(TraceConfig::default),
        ascent: (ascent_report || ascent_threshold.is_some()).then(|| AscentConfig {
            warn_height: ascent_threshold,
            ..AscentConfig::default()
        }),
        observer,
        ..SolverConfig::default()
    })
    .map_err(|e| Failure::usage(format!("--{e}")))?;

    let emit = Emit {
        profile,
        metrics_json: metrics_json.as_deref(),
        trace: trace.as_deref(),
        trace_folded: trace_folded.as_deref(),
        ascent_report,
        name: &files[0],
        strategy,
        threads,
    };

    if !queries.is_empty() {
        return run_queries(RunQueries {
            program,
            solver,
            queries: &queries,
            explain: explain.as_deref(),
            update: update.as_deref(),
            stats,
            emit: &emit,
            print: print.as_deref(),
        });
    }

    // The base model: a usable `--load` snapshot, otherwise a scratch
    // solve. Snapshot problems degrade — a stale or corrupt snapshot
    // costs a warning and a re-solve, never the run.
    let loaded = match &load {
        Some(path) => match load_snapshot(path, &program) {
            Ok(base) => Some(base),
            Err(e) => {
                eprintln!(
                    "flixr: warning: snapshot {path} is unusable ({e}); solving from scratch"
                );
                None
            }
        },
        None => None,
    };
    let base = match loaded {
        Some(base) => base,
        None => match solver.solve(&program) {
            Ok(solution) => solution,
            Err(failure) => {
                let code = match &failure.error {
                    SolveError::BudgetExceeded { .. } | SolveError::RoundLimitExceeded { .. } => {
                        EXIT_BUDGET
                    }
                    _ => EXIT_SOLVE,
                };
                let retained = failure.partial.total_facts();
                eprintln!("flixr: {}", failure.error);
                eprintln!(
                    "flixr: printing the partial model \
                     ({retained} fact{} derived before the failure)",
                    if retained == 1 { "" } else { "s" }
                );
                print_model(&program, &failure.partial, print.as_deref());
                if stats {
                    print_stats(&failure.stats);
                }
                emit_observability(&emit, &failure.stats, &failure.partial)?;
                return Err(Failure {
                    code,
                    message: None,
                });
            }
        },
    };

    // The write-ahead log: salvage the valid frame prefix and fold it
    // into one combined delta to replay onto the base.
    let mut log: Option<DeltaLog> = None;
    let mut replayed = Delta::new();
    if let Some(wal_path) = &wal {
        match DeltaLog::open(wal_path, &program) {
            Ok((opened, recovery)) => {
                if recovery.dropped_bytes > 0 {
                    eprintln!(
                        "flixr: warning: write-ahead log {wal_path}: truncated {} corrupt \
                         trailing byte(s); replaying the {} intact frame(s)",
                        recovery.dropped_bytes,
                        recovery.deltas.len()
                    );
                }
                for delta in &recovery.deltas {
                    replayed.extend_from(delta);
                }
                log = Some(opened);
            }
            Err(e @ (PersistError::BadMagic { .. } | PersistError::CorruptHeader { .. })) => {
                // Nothing after a destroyed header is salvageable
                // (frame boundaries are only known by walking the
                // lengths), so recreating the log empty loses nothing
                // that was recoverable.
                eprintln!(
                    "flixr: warning: write-ahead log {wal_path} is unusable ({e}); \
                     starting a fresh log"
                );
                let fresh = DeltaLog::create_truncated(wal_path, &program)
                    .map_err(|e| Failure::usage(e.to_string()))?;
                log = Some(fresh);
            }
            // A version or fingerprint mismatch means the log belongs
            // to another program or build; silently recreating it
            // would destroy someone else's durable data.
            Err(e) => return Err(Failure::usage(e.to_string())),
        }
    }

    // Replay resumes from the *base* with every surviving delta
    // combined — never chained one resume at a time — so the result is
    // exactly the fixed point of the base program plus the log, even
    // when stratified negation forces a fallback re-solve.
    let initial = if replayed.is_empty() {
        base.clone()
    } else {
        match solver.resume(&program, &base, &replayed) {
            Ok(solution) => solution,
            Err(failure) => {
                let code = match &failure.error {
                    SolveError::BudgetExceeded { .. } | SolveError::RoundLimitExceeded { .. } => {
                        EXIT_BUDGET
                    }
                    _ => EXIT_SOLVE,
                };
                let retained = failure.partial.total_facts();
                eprintln!(
                    "flixr: {} (while replaying the write-ahead log)",
                    failure.error
                );
                eprintln!(
                    "flixr: printing the partial replayed model \
                     ({retained} fact{} retained or derived before the failure)",
                    if retained == 1 { "" } else { "s" }
                );
                print_model(&program, &failure.partial, print.as_deref());
                if stats {
                    print_stats(&failure.stats);
                }
                emit_observability(&emit, &failure.stats, &failure.partial)?;
                return Err(Failure {
                    code,
                    message: None,
                });
            }
        }
    };

    if let Some(update_path) = &update {
        let delta = compile_update(update_path)?;
        // Log before applying: once `append` returns, the delta is
        // durable, so a crash anywhere past this point is recoverable
        // by the next run's `--wal` replay.
        if let Some(log) = log.as_mut() {
            log.append(&delta)
                .map_err(|e| Failure::usage(e.to_string()))?;
        }
        // Like replay, the updated model resumes from the base with
        // everything combined (log + update), not from the replayed
        // model, for the same fallback-correctness reason.
        let mut combined = replayed;
        combined.extend_from(&delta);
        let updated = match solver.resume(&program, &base, &combined) {
            Ok(updated) => updated,
            Err(failure) => {
                eprintln!("flixr: {}", failure.error);
                if let SolveError::Delta(_) = &failure.error {
                    // The delta was rejected before any re-solving
                    // happened; this is a static mismatch between the
                    // update file and the program, like a type error.
                    return Err(Failure {
                        code: EXIT_LANG,
                        message: None,
                    });
                }
                let code = match &failure.error {
                    SolveError::BudgetExceeded { .. } | SolveError::RoundLimitExceeded { .. } => {
                        EXIT_BUDGET
                    }
                    _ => EXIT_SOLVE,
                };
                let retained = failure.partial.total_facts();
                eprintln!(
                    "flixr: printing the partial updated model \
                     ({retained} fact{} retained or derived before the failure)",
                    if retained == 1 { "" } else { "s" }
                );
                println!("== initial model ==");
                print_model(&program, &initial, print.as_deref());
                println!("== updated model ==");
                print_model(&program, &failure.partial, print.as_deref());
                if stats {
                    print_stats(&failure.stats);
                }
                emit_observability(&emit, &failure.stats, &failure.partial)?;
                return Err(Failure {
                    code,
                    message: None,
                });
            }
        };
        persist_finish(&mut log, compact_every, save.as_deref(), &program, &updated)?;
        if let Some(query) = &explain {
            return explain_fact(&updated, query, "updated model");
        }
        if !quiet_model {
            println!("== initial model ==");
            print_model(&program, &initial, print.as_deref());
        }
        if stats {
            print_stats(initial.stats());
        }
        if !quiet_model {
            println!("== updated model ==");
            print_model(&program, &updated, print.as_deref());
        }
        if stats {
            print_stats(updated.stats());
        }
        emit_observability(&emit, updated.stats(), &updated)?;
        return Ok(());
    }

    persist_finish(&mut log, compact_every, save.as_deref(), &program, &initial)?;
    if let Some(query) = &explain {
        return explain_fact(&initial, query, "minimal model");
    }

    if !quiet_model {
        print_model(&program, &initial, print.as_deref());
    }
    if stats {
        print_stats(initial.stats());
    }
    emit_observability(&emit, initial.stats(), &initial)?;
    Ok(())
}

/// Everything the `--connect` client mode needs from `run`.
struct RunConnect<'a> {
    socket: &'a str,
    queries: &'a [String],
    print: Option<&'a [String]>,
    explain: Option<&'a str>,
    update: Option<&'a str>,
    timeout: Option<Duration>,
    metrics_json: Option<&'a str>,
    status: bool,
    stats: bool,
    prom: bool,
    watch: bool,
    interval: f64,
    watch_count: Option<u64>,
    compact: bool,
    shutdown: bool,
    quiet_model: bool,
}

/// Maps a daemon error reply onto the local-mode exit codes, so scripts
/// driving `flixr --connect` can react exactly as they would to a local
/// run: 2 for language-level rejections, 4 for exhausted budgets, 3 for
/// solver faults, 1 for everything operational.
fn connect_failure(code: ErrorCode, message: String) -> Failure {
    let exit = match code {
        ErrorCode::Parse | ErrorCode::Query | ErrorCode::Delta => EXIT_LANG,
        ErrorCode::Budget => EXIT_BUDGET,
        ErrorCode::Solve => EXIT_SOLVE,
        ErrorCode::Proto
        | ErrorCode::Absent
        | ErrorCode::Persist
        | ErrorCode::Unsupported
        | ErrorCode::Busy
        | ErrorCode::ShuttingDown => EXIT_USAGE,
    };
    Failure {
        code: exit,
        message: Some(format!("flixd replied [{code}]: {message}")),
    }
}

/// The client mode: one connection to a running flixd daemon, driving
/// the requested operations in a fixed order — update, compact, queries
/// and fact dumps, explain, metrics, status, shutdown — and rendering
/// the replies exactly as local mode renders its own output (fact lines
/// on stdout, diagnostics on stderr).
fn run_connect(cx: RunConnect<'_>) -> Result<(), Failure> {
    let mut client = Client::connect(cx.socket)
        .map_err(|e| Failure::usage(format!("cannot connect to flixd at {}: {e}", cx.socket)))?;

    fn call(client: &mut Client, request: Request) -> Result<Reply, Failure> {
        let reply = client
            .request(&request)
            .map_err(|e| Failure::usage(format!("flixd connection lost: {e}")))?;
        if let ReplyBody::Error { code, message } = reply.body {
            return Err(connect_failure(code, message));
        }
        Ok(reply)
    }

    if let Some(path) = cx.update {
        let text = read_source(path)?;
        let reply = call(
            &mut client,
            Request::Update {
                text,
                timeout_secs: cx.timeout.map(|d| d.as_secs_f64()),
            },
        )?;
        if let ReplyBody::Updated { applied, batched } = reply.body {
            eprintln!(
                "flixr: update applied at epoch {} ({applied} delta entr{}, \
                 batched with {} other update{})",
                reply.epoch,
                if applied == 1 { "y" } else { "ies" },
                batched - 1,
                if batched == 2 { "" } else { "s" }
            );
        }
        // Local mode prints the updated model after an update; the
        // client asks the daemon for it instead, unless --quiet-model.
        if !cx.quiet_model && cx.queries.is_empty() && cx.print.is_none() {
            let reply = call(&mut client, Request::Facts { predicate: None })?;
            if let ReplyBody::Facts(lines) = reply.body {
                for line in lines {
                    println!("{line}");
                }
            }
        }
    }

    if cx.compact {
        let reply = call(&mut client, Request::Compact)?;
        if let ReplyBody::Compacted { frames_absorbed } = reply.body {
            eprintln!(
                "flixr: flixd compacted {frames_absorbed} write-ahead frame{} into its snapshot",
                if frames_absorbed == 1 { "" } else { "s" }
            );
        }
    }

    for pattern in cx.queries {
        let reply = call(
            &mut client,
            Request::Query {
                atom: pattern.clone(),
            },
        )?;
        if let ReplyBody::Answers(lines) = reply.body {
            for line in lines {
                println!("{line}");
            }
        }
    }

    if let Some(preds) = cx.print {
        for pred in preds {
            let reply = call(
                &mut client,
                Request::Facts {
                    predicate: Some(pred.clone()),
                },
            )?;
            if let ReplyBody::Facts(lines) = reply.body {
                for line in lines {
                    println!("{line}");
                }
            }
        }
    }

    if let Some(atom) = cx.explain {
        let reply = call(&mut client, Request::Explain { atom: atom.into() })?;
        if let ReplyBody::Explain(tree) = reply.body {
            print!("{tree}");
        }
    }

    if let Some(path) = cx.metrics_json {
        let reply = call(&mut client, Request::Metrics)?;
        if let ReplyBody::Metrics(doc) = reply.body {
            std::fs::write(path, doc)
                .map_err(|e| Failure::usage(format!("cannot write {path}: {e}")))?;
        }
    }

    if cx.status {
        let reply = call(&mut client, Request::Status)?;
        if let ReplyBody::Status(s) = reply.body {
            println!("epoch: {}", reply.epoch);
            println!("facts: {}", s.facts);
            println!("updates_applied: {}", s.updates_applied);
            println!("batches_applied: {}", s.batches_applied);
            println!("queries_served: {}", s.queries_served);
            println!("pending_updates: {}", s.pending_updates);
            println!("unapplied_durable: {}", s.unapplied_durable);
            println!("uptime_secs: {:.3}", s.uptime_secs);
        }
    }

    if cx.stats {
        let reply = call(
            &mut client,
            Request::Stats {
                prometheus: cx.prom,
            },
        )?;
        match reply.body {
            ReplyBody::Stats(doc) => println!("{doc}"),
            ReplyBody::Prom(text) => print!("{text}"),
            _ => {}
        }
    }

    if cx.watch {
        watch_stats(&mut client, cx.interval, cx.watch_count)?;
    }

    if cx.shutdown {
        call(&mut client, Request::Shutdown)?;
        eprintln!("flixr: flixd acknowledged shutdown");
    }

    Ok(())
}

/// One `--watch` poll's worth of counters, extracted from a
/// `flixd-stats/1` document.
struct WatchSample {
    epoch: u64,
    facts: u64,
    active_conns: u64,
    reads: u64,
    updates: u64,
    batches: u64,
    pending: u64,
    debt: u64,
    query_latency: (u64, Vec<u64>, u64),
}

fn watch_extract(doc: &flixd::json::Json) -> Option<WatchSample> {
    use flixd::json::Json;
    let num = |j: &Json, key: &str| j.get(key).and_then(Json::as_u64);
    let requests = doc.get("requests")?;
    let op_count = |op: &str| requests.get(op).and_then(|o| num(o, "count")).unwrap_or(0);
    let writer = doc.get("writer")?;
    let query = requests.get("query")?;
    let latency = query.get("latency_ns")?;
    let buckets: Vec<u64> = latency
        .get("buckets")
        .and_then(Json::as_array)
        .map(|xs| xs.iter().filter_map(Json::as_u64).collect())
        .unwrap_or_default();
    Some(WatchSample {
        epoch: num(doc, "epoch")?,
        facts: num(doc, "facts").unwrap_or(0),
        active_conns: doc
            .get("connections")
            .and_then(|c| num(c, "active"))
            .unwrap_or(0),
        reads: op_count("query") + op_count("facts") + op_count("explain"),
        updates: op_count("update"),
        batches: num(writer, "batches_applied").unwrap_or(0),
        pending: num(writer, "pending_updates").unwrap_or(0),
        debt: num(writer, "unapplied_durable").unwrap_or(0),
        query_latency: (
            num(latency, "count").unwrap_or(0),
            buckets,
            num(latency, "max").unwrap_or(0),
        ),
    })
}

/// Estimates the `q`-quantile of a log-scale histogram (bucket `i`
/// holds samples below `2^(i+1)` ns) as the upper bound of the bucket
/// where the cumulative count crosses `q * count`.
fn watch_quantile_ns(count: u64, buckets: &[u64], max: u64, q: f64) -> Option<u64> {
    if count == 0 {
        return None;
    }
    let target = (q * count as f64).ceil().max(1.0) as u64;
    let mut seen = 0u64;
    for (i, &c) in buckets.iter().enumerate() {
        seen += c;
        if seen >= target {
            return if i + 1 >= buckets.len() {
                Some(max)
            } else {
                Some(1u64 << (i + 1))
            };
        }
    }
    Some(max)
}

fn watch_format_ns(ns: u64) -> String {
    match ns {
        0..=999 => format!("{ns}ns"),
        1_000..=999_999 => format!("{}µs", ns / 1_000),
        1_000_000..=999_999_999 => format!("{}ms", ns / 1_000_000),
        _ => format!("{:.1}s", ns as f64 / 1e9),
    }
}

/// `--watch`: poll `stats` every `interval` seconds and print one line
/// per poll — epoch, model size, connections, request/update rates
/// since the previous poll, and query latency quantiles so far.
fn watch_stats(
    client: &mut Client,
    interval: f64,
    watch_count: Option<u64>,
) -> Result<(), Failure> {
    let mut previous: Option<WatchSample> = None;
    let mut polls = 0u64;
    println!(
        "{:>6} {:>9} {:>6} {:>8} {:>8} {:>8} {:>8} {:>8} {:>5} {:>5}",
        "epoch", "facts", "conns", "read/s", "upd/s", "batch/s", "q-p50", "q-p99", "pend", "debt"
    );
    loop {
        let reply = client
            .request(&Request::Stats { prometheus: false })
            .map_err(|e| Failure::usage(format!("flixd connection lost: {e}")))?;
        let doc = match reply.body {
            ReplyBody::Stats(doc) => doc,
            ReplyBody::Error { code, message } => return Err(connect_failure(code, message)),
            other => return Err(Failure::usage(format!("unexpected stats reply {other:?}"))),
        };
        let parsed = flixd::json::parse(&doc)
            .map_err(|e| Failure::usage(format!("malformed stats document: {e}")))?;
        let sample = watch_extract(&parsed)
            .ok_or_else(|| Failure::usage("stats document is missing expected fields"))?;
        let rate = |cur: u64, prev: u64| (cur.saturating_sub(prev)) as f64 / interval;
        let (reads_s, upd_s, batch_s) = match &previous {
            Some(prev) => (
                rate(sample.reads, prev.reads),
                rate(sample.updates, prev.updates),
                rate(sample.batches, prev.batches),
            ),
            // The first poll has no earlier sample to difference
            // against; rates start on the second line.
            None => (0.0, 0.0, 0.0),
        };
        let (count, buckets, max) = &sample.query_latency;
        let quant = |q: f64| {
            watch_quantile_ns(*count, buckets, *max, q)
                .map(watch_format_ns)
                .unwrap_or_else(|| "-".into())
        };
        println!(
            "{:>6} {:>9} {:>6} {:>8.1} {:>8.1} {:>8.1} {:>8} {:>8} {:>5} {:>5}",
            sample.epoch,
            sample.facts,
            sample.active_conns,
            reads_s,
            upd_s,
            batch_s,
            quant(0.5),
            quant(0.99),
            sample.pending,
            sample.debt,
        );
        previous = Some(sample);
        polls += 1;
        if watch_count.is_some_and(|n| polls >= n) {
            return Ok(());
        }
        std::thread::sleep(Duration::from_secs_f64(interval));
    }
}

/// Reads a source or fact file, wrapping failures with the path and
/// operation so the message pins down exactly what could not be done;
/// the format (`cannot read <path>: <cause>`) is pinned by a CLI test.
fn read_source(path: &str) -> Result<String, Failure> {
    std::fs::read_to_string(path).map_err(|e| Failure::usage(format!("cannot read {path}: {e}")))
}

/// Compiles an `--update` file into a [`Delta`]. Plain facts become
/// insertions (for lattice predicates: lub-raises). A line of the form
/// `-Edge(1, 2).` or `retract Edge(1, 2).` becomes a retraction — for
/// a lattice predicate, a lower withdrawing that key's asserted
/// contribution. Retraction lines are extracted before the rest of the
/// file is compiled (blanked in place, so error positions in the
/// remainder keep their line numbers) and are applied *after* the
/// file's assertions. A malformed retraction line fails with the file
/// path and line number, exit code 2.
fn compile_update(path: &str) -> Result<Delta, Failure> {
    let source = read_source(path)?;
    flix_lang::compile_update(&source).map_err(|e| Failure::lang(format!("{path}: {e}")))
}

/// The end-of-run persistence work: compact the write-ahead log into
/// the `--save` snapshot once it holds `--compact-every` frames, or
/// plainly save the final model when `--save` was given without a
/// pending compaction. Runs only on fully successful solves — a
/// guarded failure's partial model never overwrites a good snapshot.
fn persist_finish(
    log: &mut Option<DeltaLog>,
    compact_every: Option<u64>,
    save: Option<&str>,
    program: &flix_core::Program,
    model: &Solution,
) -> Result<(), Failure> {
    let mut saved = false;
    if let (Some(log), Some(every)) = (log.as_mut(), compact_every) {
        if log.frames() >= every {
            let path = save.expect("--compact-every requires --save; validated at parse");
            log.compact_into(path, program, model)
                .map_err(|e| Failure::usage(e.to_string()))?;
            eprintln!(
                "flixr: compacted the write-ahead log into snapshot {path} \
                 (the log is empty again)"
            );
            saved = true;
        }
    }
    if let Some(path) = save {
        if !saved {
            save_snapshot(path, program, model).map_err(|e| Failure::usage(e.to_string()))?;
        }
    }
    Ok(())
}

/// Everything the demand-driven `--query` path needs from `run`.
struct RunQueries<'a> {
    program: flix_core::Program,
    solver: Solver,
    queries: &'a [String],
    explain: Option<&'a str>,
    update: Option<&'a str>,
    stats: bool,
    emit: &'a Emit<'a>,
    print: Option<&'a [String]>,
}

/// The demand-driven path: parse the `--query` patterns, optionally fold
/// an `--update` delta into the program, run the query-directed solve,
/// and print only the matching answers (or the `--explain` derivation
/// within the demanded model).
fn run_queries(cx: RunQueries<'_>) -> Result<(), Failure> {
    let mut parsed: Vec<Query> = Vec::with_capacity(cx.queries.len());
    for text in cx.queries {
        let (pred, pattern) =
            flix_lang::parse_query_atom(text).map_err(|e| Failure::lang(e.to_string()))?;
        parsed.push(Query::new(pred, pattern));
    }

    // With --update, the queries ask about the updated world: fold the
    // delta's facts into the program and let the rewrite restrict the
    // combined solve — neither full model is ever materialized.
    let program = match cx.update {
        Some(update_path) => {
            let delta = compile_update(update_path)?;
            cx.program
                .with_delta(&delta)
                .map_err(|e| Failure::lang(e.to_string()))?
        }
        None => cx.program,
    };

    let result = match cx.solver.solve_query(&program, &parsed) {
        Ok(result) => result,
        Err(failure) => {
            eprintln!("flixr: {}", failure.error);
            if let SolveError::Demand(_) = &failure.error {
                // The query was rejected before any solving happened; a
                // static mismatch like a type error.
                return Err(Failure {
                    code: EXIT_LANG,
                    message: None,
                });
            }
            let code = match &failure.error {
                SolveError::BudgetExceeded { .. } | SolveError::RoundLimitExceeded { .. } => {
                    EXIT_BUDGET
                }
                _ => EXIT_SOLVE,
            };
            let retained = failure.partial.total_facts();
            eprintln!(
                "flixr: printing the partial demanded model \
                 ({retained} fact{} derived before the failure)",
                if retained == 1 { "" } else { "s" }
            );
            print_model(&program, &failure.partial, cx.print);
            if cx.stats {
                print_stats(&failure.stats);
            }
            emit_observability(cx.emit, &failure.stats, &failure.partial)?;
            return Err(Failure {
                code,
                message: None,
            });
        }
    };

    if let Some(query) = cx.explain {
        return explain_fact(result.solution(), query, "demanded model");
    }

    // Only the demanded answers, deduplicated across overlapping queries,
    // in deterministic order.
    let mut lines: BTreeSet<String> = BTreeSet::new();
    for (i, query) in result.queries().iter().enumerate() {
        for fact in result.answers(i) {
            lines.insert(format!("{}({fact})", query.predicate()));
        }
    }
    for line in &lines {
        println!("{line}");
    }
    if cx.stats {
        print_stats(result.stats());
    }
    emit_observability(cx.emit, result.stats(), result.solution())?;
    Ok(())
}

/// Parses `query` as a ground atom and prints its derivation tree in
/// `solution`, or fails with a usage error naming which model (`initial`
/// vs `updated`) the fact is missing from.
fn explain_fact(solution: &Solution, query: &str, model: &str) -> Result<(), Failure> {
    let (pred, values) =
        flix_lang::parse_ground_atom(query).map_err(|e| Failure::lang(e.to_string()))?;
    match solution.explain(&pred, &values) {
        Some(tree) => {
            print!("{tree}");
            Ok(())
        }
        None => Err(Failure::usage(format!("{query} is not in the {model}"))),
    }
}

/// The observability outputs requested on the command line, resolved
/// once in `run` and threaded to every exit path.
struct Emit<'a> {
    profile: bool,
    metrics_json: Option<&'a str>,
    trace: Option<&'a str>,
    trace_folded: Option<&'a str>,
    ascent_report: bool,
    name: &'a str,
    strategy: Strategy,
    threads: usize,
}

/// Writes the `--profile` table (stderr), the `--metrics-json` report,
/// the `--trace`/`--trace-folded` exports, and the `--ascent-report`
/// diagnostic, when requested. Shared by the success and guarded-failure
/// paths so partial runs are observable too — a budget-killed solve
/// still writes the trace of the work it did.
fn emit_observability(
    cx: &Emit<'_>,
    stats: &flix_core::SolveStats,
    solution: &Solution,
) -> Result<(), Failure> {
    if cx.profile {
        eprint!("{}", flix_core::render_profile_table(stats));
    }
    if let Some(path) = cx.metrics_json {
        let report = OwnedMetricsReport {
            name: cx.name.to_string(),
            strategy: cx.strategy.name().to_string(),
            threads: cx.threads,
            stats: stats.clone(),
        };
        write_metrics_json(path, &[report])
            .map_err(|e| Failure::usage(format!("cannot write {path}: {e}")))?;
    }
    if let Some(path) = cx.trace {
        match solution.trace() {
            Some(trace) => std::fs::write(path, trace.to_chrome_json())
                .map_err(|e| Failure::usage(format!("cannot write {path}: {e}")))?,
            None => eprintln!("flixr: no trace was recorded; not writing {path}"),
        }
    }
    if let Some(path) = cx.trace_folded {
        match solution.trace() {
            Some(trace) => std::fs::write(path, trace.to_folded())
                .map_err(|e| Failure::usage(format!("cannot write {path}: {e}")))?,
            None => eprintln!("flixr: no trace was recorded; not writing {path}"),
        }
    }
    if cx.ascent_report {
        match solution.ascent_report(10) {
            Some(report) => eprint!("{}", render_ascent_report(&report)),
            None => eprintln!("flixr: no ascent data was recorded (no lattice predicates?)"),
        }
    }
    Ok(())
}

/// The `--progress`/`--ascent-threshold` observer: a rate-limited
/// one-line-per-round heartbeat and an immediate printer for ascent
/// warnings, both on stderr.
struct CliObserver {
    progress: bool,
    last: Mutex<Option<Instant>>,
}

/// Minimum interval between `--progress` lines; rounds arriving faster
/// than this are silently skipped (the final summary line always
/// prints).
const PROGRESS_INTERVAL: Duration = Duration::from_millis(100);

impl CliObserver {
    fn new(progress: bool) -> CliObserver {
        CliObserver {
            progress,
            last: Mutex::new(None),
        }
    }
}

impl Observer for CliObserver {
    fn round_started(&self, stratum: usize, round: u64, facts: u64) {
        if !self.progress {
            return;
        }
        let mut last = self.last.lock().expect("progress clock");
        let now = Instant::now();
        if last.is_none_or(|at| now.duration_since(at) >= PROGRESS_INTERVAL) {
            *last = Some(now);
            eprintln!("flixr: progress: stratum {stratum} round {round} facts {facts}");
        }
    }

    fn solve_finished(&self, stats: &flix_core::SolveStats) {
        if self.progress {
            eprintln!(
                "flixr: progress: done — {} rounds, {} facts",
                stats.rounds, stats.total_facts
            );
        }
    }

    fn ascent_warning(&self, warning: &AscentWarning) {
        let key = warning
            .key
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join(", ");
        eprintln!(
            "flixr: warning: lattice cell {}({key}) reached ascending-chain height {} \
             (threshold {}); if the lattice has infinite ascending chains the solve \
             may not terminate",
            warning.predicate, warning.height, warning.threshold
        );
    }
}

/// Prints the facts of `solution` in deterministic order, optionally
/// restricted to the named predicates. Used for both the minimal model on
/// success and the partial model on a guarded failure.
fn print_model(program: &flix_core::Program, solution: &Solution, print: Option<&[String]>) {
    let mut names: Vec<String> = program
        .predicates()
        .map(|(_, decl)| decl.name().to_string())
        .collect();
    names.sort();
    for name in names {
        if let Some(filter) = print {
            if !filter.contains(&name) {
                continue;
            }
        }
        let facts = solution.facts(&name).expect("declared predicate");
        let mut lines: Vec<String> = facts.map(|fact| format!("{name}({fact})")).collect();
        lines.sort();
        for line in lines {
            println!("{line}");
        }
    }
}

fn print_stats(s: &flix_core::SolveStats) {
    eprintln!(
        "rounds: {}  rule evaluations: {}  facts derived: {}  facts inserted: {}  \
         index probes: {}  scans: {}  total facts: {}",
        s.rounds,
        s.rule_evaluations,
        s.facts_derived,
        s.facts_inserted,
        s.index_probes,
        s.scan_fallbacks,
        s.total_facts
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The full daemon-error → exit-code mapping, pinned code by code so
    /// adding an `ErrorCode` variant forces a decision here (and in the
    /// README table).
    #[test]
    fn connect_failure_exit_codes_cover_every_error_code() {
        let cases = [
            (ErrorCode::Parse, EXIT_LANG),
            (ErrorCode::Query, EXIT_LANG),
            (ErrorCode::Delta, EXIT_LANG),
            (ErrorCode::Budget, EXIT_BUDGET),
            (ErrorCode::Solve, EXIT_SOLVE),
            (ErrorCode::Proto, EXIT_USAGE),
            (ErrorCode::Absent, EXIT_USAGE),
            (ErrorCode::Persist, EXIT_USAGE),
            (ErrorCode::Unsupported, EXIT_USAGE),
            (ErrorCode::Busy, EXIT_USAGE),
            (ErrorCode::ShuttingDown, EXIT_USAGE),
        ];
        for (code, exit) in cases {
            let failure = connect_failure(code, "test".into());
            assert_eq!(failure.code, exit, "exit code for {code}");
            assert!(
                failure
                    .message
                    .as_deref()
                    .unwrap_or("")
                    .contains(code.as_str()),
                "message names the wire code for {code}"
            );
        }
    }

    #[test]
    fn watch_quantiles_estimate_from_log_buckets() {
        // 90 samples in bucket 6 (≤128 ns), 10 in bucket 19 (≤2^20 ns).
        let mut buckets = vec![0u64; 40];
        buckets[6] = 90;
        buckets[19] = 10;
        assert_eq!(watch_quantile_ns(100, &buckets, 900_000, 0.5), Some(128));
        assert_eq!(
            watch_quantile_ns(100, &buckets, 900_000, 0.99),
            Some(1 << 20)
        );
        assert_eq!(watch_quantile_ns(0, &buckets, 0, 0.5), None);
    }

    #[test]
    fn watch_latency_formatting_picks_sane_units() {
        assert_eq!(watch_format_ns(512), "512ns");
        assert_eq!(watch_format_ns(2_048), "2µs");
        assert_eq!(watch_format_ns(3_000_000), "3ms");
        assert_eq!(watch_format_ns(2_500_000_000), "2.5s");
    }
}
