//! `flixd` — run a FLIX program as a resident fixed-point service.
//!
//! Usage:
//!
//! ```text
//! flixd --socket PATH [--snapshot PATH] [--wal LOG]
//!       [--naive] [--threads N] [--explainable] [--traced]
//!       [--max-update-secs S] [--max-pending N] [--compact-every N]
//!       [--log-json PATH] [--log-level debug|info|warn]
//!       [--slow-query-ms MS] [--no-telemetry]
//!       FILE.flix [MORE.flix ...]
//! ```
//!
//! The daemon compiles the program, recovers its model (snapshot +
//! write-ahead log when `--snapshot`/`--wal` are given, scratch solve
//! otherwise), binds `--socket`, and serves the `flixd/1` protocol
//! until it receives a `shutdown` request — from `flixr --connect
//! SOCKET --shutdown`, or any other client. Reads are served
//! concurrently against epoch-pinned model snapshots; updates are
//! batched, WAL-logged before application, and published atomically.
//! DESIGN.md §17 specifies the protocol and its isolation and crash
//! semantics.
//!
//! `--explainable` records provenance so clients can use the `explain`
//! op (costs memory proportional to insertions); `--traced` records
//! execution spans for the `trace` op. `--max-update-secs S` caps every
//! update's resume deadline; `--max-pending N` bounds the update queue
//! (default 64); `--compact-every N` folds the write-ahead log into the
//! snapshot automatically once it holds `N` frames.
//!
//! Telemetry (the `stats` op, DESIGN.md §17.6) is on by default;
//! `--no-telemetry` disables recording entirely. `--log-json PATH`
//! appends structured JSONL events to `PATH` (`--log-level` filters;
//! default `info`); `--slow-query-ms MS` flags read requests slower
//! than `MS` milliseconds as `slow_query` events.
//!
//! # Exit codes
//!
//! | code | meaning                                              |
//! |------|------------------------------------------------------|
//! | 0    | clean shutdown via the `shutdown` op                 |
//! | 1    | usage error, unbindable socket, or unusable log      |
//! | 2    | the program failed to parse or type-check            |
//! | 3    | the startup solve failed                             |
//! | 4    | the startup solve exhausted a budget                 |

use flix_core::{SolveError, SolverConfig, Strategy, TraceConfig};
use flixd::{EventLevel, EventLogConfig, Hooks, Server, ServerConfig, StartError};
use std::process::ExitCode;
use std::sync::Arc;

const EXIT_USAGE: u8 = 1;
const EXIT_LANG: u8 = 2;
const EXIT_SOLVE: u8 = 3;
const EXIT_BUDGET: u8 = 4;

struct Failure {
    code: u8,
    message: String,
}

impl Failure {
    fn usage(message: impl Into<String>) -> Failure {
        Failure {
            code: EXIT_USAGE,
            message: message.into(),
        }
    }

    fn lang(message: impl Into<String>) -> Failure {
        Failure {
            code: EXIT_LANG,
            message: message.into(),
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(failure) => {
            eprintln!("flixd: {}", failure.message);
            ExitCode::from(failure.code)
        }
    }
}

fn run(args: Vec<String>) -> Result<(), Failure> {
    let mut files: Vec<String> = Vec::new();
    let mut socket: Option<String> = None;
    let mut snapshot: Option<String> = None;
    let mut wal: Option<String> = None;
    let mut strategy = Strategy::SemiNaive;
    let mut threads = 1usize;
    let mut explainable = false;
    let mut traced = false;
    let mut max_update_secs: Option<f64> = None;
    let mut max_pending = 64usize;
    let mut compact_every: Option<u64> = None;
    let mut log_json: Option<String> = None;
    let mut log_level = EventLevel::Info;
    let mut slow_query_ms: Option<f64> = None;
    let mut telemetry = true;

    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--socket" => socket = Some(path_arg(&mut it, "--socket", "a socket path")?),
            "--snapshot" => snapshot = Some(path_arg(&mut it, "--snapshot", "a snapshot path")?),
            "--wal" => wal = Some(path_arg(&mut it, "--wal", "a log path")?),
            "--naive" => strategy = Strategy::Naive,
            "--threads" => {
                let n = it
                    .next()
                    .ok_or_else(|| Failure::usage("--threads requires a number"))?;
                threads = n
                    .parse()
                    .map_err(|_| Failure::usage(format!("invalid thread count {n}")))?;
            }
            "--explainable" => explainable = true,
            "--traced" => traced = true,
            "--max-update-secs" => {
                let s = it
                    .next()
                    .ok_or_else(|| Failure::usage("--max-update-secs requires seconds"))?;
                let secs: f64 = s
                    .parse()
                    .map_err(|_| Failure::usage(format!("invalid deadline {s}")))?;
                if !secs.is_finite() || secs <= 0.0 {
                    return Err(Failure::usage(format!(
                        "--max-update-secs must be a positive number of seconds, got {s}"
                    )));
                }
                max_update_secs = Some(secs);
            }
            "--max-pending" => {
                let n = it
                    .next()
                    .ok_or_else(|| Failure::usage("--max-pending requires a count"))?;
                max_pending = n
                    .parse()
                    .map_err(|_| Failure::usage(format!("invalid pending bound {n}")))?;
            }
            "--compact-every" => {
                let n = it
                    .next()
                    .ok_or_else(|| Failure::usage("--compact-every requires a frame count"))?;
                let every: u64 = n
                    .parse()
                    .map_err(|_| Failure::usage(format!("invalid compaction threshold {n}")))?;
                if every == 0 {
                    return Err(Failure::usage(
                        "--compact-every must be at least 1 (0 would compact an empty log)",
                    ));
                }
                compact_every = Some(every);
            }
            "--log-json" => log_json = Some(path_arg(&mut it, "--log-json", "a log path")?),
            "--log-level" => {
                let level = it
                    .next()
                    .ok_or_else(|| Failure::usage("--log-level requires debug, info, or warn"))?;
                log_level = EventLevel::parse(&level).ok_or_else(|| {
                    Failure::usage(format!(
                        "unknown log level {level:?} (expected debug, info, or warn)"
                    ))
                })?;
            }
            "--slow-query-ms" => {
                let ms = it
                    .next()
                    .ok_or_else(|| Failure::usage("--slow-query-ms requires milliseconds"))?;
                let threshold: f64 = ms
                    .parse()
                    .map_err(|_| Failure::usage(format!("invalid threshold {ms}")))?;
                if !threshold.is_finite() || threshold < 0.0 {
                    return Err(Failure::usage(format!(
                        "--slow-query-ms must be a non-negative number of milliseconds, got {ms}"
                    )));
                }
                slow_query_ms = Some(threshold);
            }
            "--no-telemetry" => telemetry = false,
            "--help" | "-h" => {
                println!(
                    "usage: flixd --socket PATH [--snapshot PATH] [--wal LOG] \
                     [--naive] [--threads N] [--explainable] [--traced] \
                     [--max-update-secs S] [--max-pending N] [--compact-every N] \
                     [--log-json PATH] [--log-level debug|info|warn] \
                     [--slow-query-ms MS] [--no-telemetry] \
                     FILE.flix [MORE.flix ...]"
                );
                return Ok(());
            }
            other if other.starts_with('-') => {
                return Err(Failure::usage(format!("unknown option {other}")));
            }
            path => files.push(path.to_string()),
        }
    }

    let Some(socket) = socket else {
        return Err(Failure::usage("--socket is required; see --help"));
    };
    if files.is_empty() {
        return Err(Failure::usage("no input file; see --help"));
    }
    if compact_every.is_some() && (wal.is_none() || snapshot.is_none()) {
        return Err(Failure::usage(
            "--compact-every requires both --wal (the log to compact) and \
             --snapshot (the snapshot to compact it into)",
        ));
    }

    let mut source = String::new();
    for path in &files {
        let text = std::fs::read_to_string(path)
            .map_err(|e| Failure::usage(format!("cannot read {path}: {e}")))?;
        source.push_str(&text);
        source.push('\n');
    }
    let program = Arc::new(flix_lang::compile(&source).map_err(|e| Failure::lang(e.to_string()))?);

    let config = ServerConfig {
        socket: socket.clone().into(),
        snapshot: snapshot.map(Into::into),
        wal: wal.map(Into::into),
        solver: SolverConfig {
            strategy,
            threads,
            record_provenance: explainable,
            trace: traced.then(TraceConfig::default),
            ..SolverConfig::default()
        },
        max_update_secs,
        max_pending,
        compact_every,
        telemetry,
        event_log: log_json.map(|path| EventLogConfig {
            path: path.into(),
            level: log_level,
        }),
        slow_query_ms,
    };
    let hooks = Hooks {
        parse_query: Box::new(|text| flix_lang::parse_query_atom(text).map_err(|e| e.to_string())),
        parse_atom: Box::new(|text| flix_lang::parse_ground_atom(text).map_err(|e| e.to_string())),
        compile_update: Box::new(|text| flix_lang::compile_update(text).map_err(|e| e.to_string())),
    };

    let server = Server::start(program, config, hooks).map_err(|e| {
        let code = match &e {
            StartError::Solve(failure) => match &failure.error {
                SolveError::BudgetExceeded { .. } | SolveError::RoundLimitExceeded { .. } => {
                    EXIT_BUDGET
                }
                _ => EXIT_SOLVE,
            },
            _ => EXIT_USAGE,
        };
        Failure {
            code,
            message: e.to_string(),
        }
    })?;

    if let Some(report) = &server.recovery {
        if let Some(e) = &report.snapshot_error {
            eprintln!("flixd: warning: snapshot unusable ({e}); solved from scratch");
        }
        if let Some(e) = &report.wal_error {
            eprintln!("flixd: warning: write-ahead log unusable ({e}); nothing replayed");
        }
        if report.wal_bytes_dropped > 0 {
            eprintln!(
                "flixd: warning: truncated {} corrupt trailing byte(s) from the write-ahead log",
                report.wal_bytes_dropped
            );
        }
        if report.wal_entries_replayed > 0 {
            eprintln!(
                "flixd: replayed {} delta entr{} from {} write-ahead frame(s)",
                report.wal_entries_replayed,
                if report.wal_entries_replayed == 1 {
                    "y"
                } else {
                    "ies"
                },
                report.wal_frames_replayed
            );
        }
    }
    eprintln!(
        "flixd: serving {} on {socket} (epoch {})",
        files.join(" "),
        server.epoch()
    );

    // Serve until a client sends the `shutdown` op.
    server.join();
    eprintln!("flixd: shut down");
    Ok(())
}

fn path_arg(
    it: &mut impl Iterator<Item = String>,
    flag: &str,
    what: &str,
) -> Result<String, Failure> {
    let path = it
        .next()
        .ok_or_else(|| Failure::usage(format!("{flag} requires {what}")))?;
    if path.starts_with('-') {
        return Err(Failure::usage(format!(
            "{flag} requires {what}, got option {path}"
        )));
    }
    Ok(path)
}
