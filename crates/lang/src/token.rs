//! Tokens of the FLIX surface language.

use std::fmt;

/// A source position (1-based line and column).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct Pos {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number.
    pub col: u32,
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// A lexical token.
#[derive(Clone, PartialEq, Debug)]
pub enum Tok {
    // Literals and identifiers.
    /// An integer literal.
    Int(i64),
    /// A string literal (content, unescaped).
    Str(String),
    /// An identifier starting with a lowercase letter (variables,
    /// functions, attribute names).
    LowerIdent(String),
    /// An identifier starting with an uppercase letter (predicates, enum
    /// types, enum cases).
    UpperIdent(String),

    // Keywords.
    /// `enum`
    Enum,
    /// `case`
    Case,
    /// `def`
    Def,
    /// `let`
    Let,
    /// `rel`
    Rel,
    /// `lat`
    Lat,
    /// `match`
    Match,
    /// `with`
    With,
    /// `if`
    If,
    /// `else`
    Else,
    /// `true`
    True,
    /// `false`
    False,

    // Punctuation.
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `.`
    Dot,
    /// `:`
    Colon,
    /// `:-`
    ColonDash,
    /// `=`
    Eq,
    /// `=>`
    FatArrow,
    /// `<-`
    BackArrow,
    /// `<>` (lattice instance marker, as in `Parity<>`)
    Diamond,
    /// `_`
    Underscore,
    /// `!`
    Bang,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `==`
    EqEq,
    /// `!=`
    BangEq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,

    /// End of input.
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Int(n) => write!(f, "{n}"),
            Tok::Str(s) => write!(f, "{s:?}"),
            Tok::LowerIdent(s) | Tok::UpperIdent(s) => write!(f, "{s}"),
            Tok::Enum => f.write_str("enum"),
            Tok::Case => f.write_str("case"),
            Tok::Def => f.write_str("def"),
            Tok::Let => f.write_str("let"),
            Tok::Rel => f.write_str("rel"),
            Tok::Lat => f.write_str("lat"),
            Tok::Match => f.write_str("match"),
            Tok::With => f.write_str("with"),
            Tok::If => f.write_str("if"),
            Tok::Else => f.write_str("else"),
            Tok::True => f.write_str("true"),
            Tok::False => f.write_str("false"),
            Tok::LParen => f.write_str("("),
            Tok::RParen => f.write_str(")"),
            Tok::LBrace => f.write_str("{"),
            Tok::RBrace => f.write_str("}"),
            Tok::Comma => f.write_str(","),
            Tok::Semi => f.write_str(";"),
            Tok::Dot => f.write_str("."),
            Tok::Colon => f.write_str(":"),
            Tok::ColonDash => f.write_str(":-"),
            Tok::Eq => f.write_str("="),
            Tok::FatArrow => f.write_str("=>"),
            Tok::BackArrow => f.write_str("<-"),
            Tok::Diamond => f.write_str("<>"),
            Tok::Underscore => f.write_str("_"),
            Tok::Bang => f.write_str("!"),
            Tok::Plus => f.write_str("+"),
            Tok::Minus => f.write_str("-"),
            Tok::Star => f.write_str("*"),
            Tok::Slash => f.write_str("/"),
            Tok::Percent => f.write_str("%"),
            Tok::EqEq => f.write_str("=="),
            Tok::BangEq => f.write_str("!="),
            Tok::Lt => f.write_str("<"),
            Tok::Le => f.write_str("<="),
            Tok::Gt => f.write_str(">"),
            Tok::Ge => f.write_str(">="),
            Tok::AndAnd => f.write_str("&&"),
            Tok::OrOr => f.write_str("||"),
            Tok::Eof => f.write_str("<eof>"),
        }
    }
}

/// A token with its source position.
#[derive(Clone, PartialEq, Debug)]
pub struct Token {
    /// The token.
    pub tok: Tok,
    /// Where it begins.
    pub pos: Pos,
}
