//! Lowering a checked surface program to the fixed-point engine.
//!
//! Lattice bindings become [`LatticeOps`] whose operations call the AST
//! interpreter; `def` functions are registered as engine functions the
//! same way; predicates, facts, and rules map one-to-one onto the
//! [`flix_core::ProgramBuilder`] API.

use crate::ast::{Atom, LatticeBind, RuleTerm};
use crate::error::LangError;
use crate::interp::{lit_value, Interpreter};
use crate::typeck::{CheckedBodyItem, CheckedProgram};
use flix_core::{
    BodyItem, FuncId, Head, HeadTerm, LatticeOps, PredId, Program, ProgramBuilder, Term, Value,
};
use std::collections::HashMap;
use std::sync::Arc;

/// Lowers a checked program to an executable engine [`Program`].
///
/// # Errors
///
/// Returns a [`LangError`] if the engine rejects the rule set (e.g. an
/// unbound head variable or an unstratifiable use of negation discovered
/// at solve time is reported by the solver instead).
pub fn lower(checked: Arc<CheckedProgram>) -> Result<Program, LangError> {
    let interp = Interpreter::new(checked.clone());
    let mut b = ProgramBuilder::new();

    // Lattice bindings → runtime ops (closures over the interpreter).
    let mut ops_by_ty: HashMap<String, LatticeOps> = HashMap::new();
    for (ty, bind) in &checked.lattices {
        ops_by_ty.insert(ty.clone(), ops_for_binding(&interp, ty, bind));
    }

    // Predicates, in declaration order.
    let mut pred_ids: HashMap<String, PredId> = HashMap::new();
    for name in &checked.pred_order {
        let sig = &checked.preds[name];
        let id = if sig.is_lattice {
            let ty = sig
                .lattice_ty
                .as_ref()
                .expect("checked: lat has value type");
            let ops = ops_by_ty.get(ty).cloned().ok_or_else(|| {
                LangError::lower(
                    Default::default(),
                    format!("lat {name} uses type {ty} which has no `let {ty}<> = ...` binding"),
                )
            })?;
            b.lattice(name.as_str(), sig.attrs.len(), ops)
        } else {
            b.relation(name.as_str(), sig.attrs.len())
        };
        pred_ids.insert(name.clone(), id);
    }

    // Every def becomes an engine function (transfer, filter, or choice).
    let mut func_ids: HashMap<String, FuncId> = HashMap::new();
    for name in checked.defs.keys() {
        let i = interp.clone();
        let n = name.clone();
        func_ids.insert(
            name.clone(),
            b.function(name.as_str(), move |args| i.call(&n, args)),
        );
    }

    // Constraints.
    for c in &checked.constraints {
        if c.body.is_empty() {
            let values: Vec<Value> = c.head.terms.iter().map(ground_value).collect();
            b.fact(pred_ids[&c.head.pred], values);
            continue;
        }
        let head = Head::new(
            pred_ids[&c.head.pred],
            c.head
                .terms
                .iter()
                .map(|t| lower_head_term(t, &func_ids))
                .collect::<Vec<_>>(),
        );
        let body: Vec<BodyItem> = c
            .body
            .iter()
            .map(|item| lower_body_item(item, &pred_ids, &func_ids))
            .collect();
        b.rule(head, body);
    }

    b.build()
        .map_err(|e| LangError::lower(Default::default(), e.to_string()))
}

/// Builds the runtime [`LatticeOps`] for one surface lattice binding;
/// shared with the safety checker of [`crate::verify`].
pub(crate) fn ops_for_binding(interp: &Interpreter, ty: &str, bind: &LatticeBind) -> LatticeOps {
    let bot = interp.eval_closed(&bind.bot);
    let top = interp.eval_closed(&bind.top);
    let (leq_i, leq_n) = (interp.clone(), bind.leq.clone());
    let (lub_i, lub_n) = (interp.clone(), bind.lub.clone());
    let (glb_i, glb_n) = (interp.clone(), bind.glb.clone());
    LatticeOps::from_fns(
        ty.to_string(),
        bot,
        Some(top),
        move |a, b| leq_i.call(&leq_n, &[a.clone(), b.clone()]).is_true(),
        move |a, b| lub_i.call(&lub_n, &[a.clone(), b.clone()]),
        move |a, b| glb_i.call(&glb_n, &[a.clone(), b.clone()]),
    )
}

/// Evaluates a ground rule term (literal or constructor) to a value.
fn ground_value(t: &RuleTerm) -> Value {
    match t {
        RuleTerm::Lit(l, _) => lit_value(l),
        RuleTerm::Ctor { case, args, .. } => {
            let payload = match args.len() {
                0 => Value::Unit,
                1 => ground_value(&args[0]),
                _ => Value::tuple(args.iter().map(ground_value)),
            };
            Value::tag(case.as_str(), payload)
        }
        RuleTerm::Var(..) | RuleTerm::Wildcard(_) | RuleTerm::App { .. } => {
            unreachable!("checker enforces groundness of facts")
        }
    }
}

fn lower_term(t: &RuleTerm) -> Term {
    match t {
        RuleTerm::Var(name, _) => Term::var(name.as_str()),
        RuleTerm::Lit(l, _) => Term::Lit(lit_value(l)),
        RuleTerm::Ctor { .. } => Term::Lit(ground_value(t)),
        RuleTerm::Wildcard(_) => Term::Wildcard,
        RuleTerm::App { .. } => unreachable!("checker restricts apps to head position"),
    }
}

fn lower_head_term(t: &RuleTerm, func_ids: &HashMap<String, FuncId>) -> HeadTerm {
    match t {
        RuleTerm::Var(name, _) => HeadTerm::var(name.as_str()),
        RuleTerm::Lit(l, _) => HeadTerm::Lit(lit_value(l)),
        RuleTerm::Ctor { .. } => HeadTerm::Lit(ground_value(t)),
        RuleTerm::App { func, args, .. } => HeadTerm::app(
            func_ids[func],
            args.iter().map(lower_term).collect::<Vec<_>>(),
        ),
        RuleTerm::Wildcard(_) => unreachable!("checker rejects wildcards in heads"),
    }
}

fn lower_atom_terms(atom: &Atom) -> Vec<Term> {
    atom.terms.iter().map(lower_term).collect()
}

fn lower_body_item(
    item: &CheckedBodyItem,
    pred_ids: &HashMap<String, PredId>,
    func_ids: &HashMap<String, FuncId>,
) -> BodyItem {
    match item {
        CheckedBodyItem::Atom(atom) => BodyItem::atom(pred_ids[&atom.pred], lower_atom_terms(atom)),
        CheckedBodyItem::NegAtom(atom) => {
            BodyItem::not(pred_ids[&atom.pred], lower_atom_terms(atom))
        }
        CheckedBodyItem::Filter { func, args } => BodyItem::filter(
            func_ids[func],
            args.iter().map(lower_term).collect::<Vec<_>>(),
        ),
        CheckedBodyItem::Choose { binds, func, args } => BodyItem::Choose {
            func: func_ids[func],
            args: args.iter().map(lower_term).collect(),
            binds: binds.iter().map(|s| s.as_str().into()).collect(),
        },
    }
}
