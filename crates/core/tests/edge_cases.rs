//! Engine edge cases: degenerate programs, deep recursion, empty
//! domains, and failure injection for user-supplied functions.

use flix_core::{
    BodyItem, Head, HeadTerm, LatticeOps, ProgramBuilder, Solver, Term, Value, ValueLattice,
};
use flix_lattice::Parity;

#[test]
fn empty_program_solves_to_empty_model() {
    let program = ProgramBuilder::new().build().expect("valid");
    let solution = Solver::new().solve(&program).expect("solves");
    assert_eq!(solution.total_facts(), 0);
}

#[test]
fn facts_only_program() {
    let mut b = ProgramBuilder::new();
    let p = b.relation("P", 1);
    b.fact(p, vec![1.into()]);
    b.fact(p, vec![1.into()]); // duplicate
    b.fact(p, vec![2.into()]);
    let solution = Solver::new()
        .solve(&b.build().expect("valid"))
        .expect("solves");
    assert_eq!(solution.len("P"), Some(2), "duplicates deduplicate");
}

#[test]
fn rule_with_no_matching_body_derives_nothing() {
    let mut b = ProgramBuilder::new();
    let p = b.relation("P", 1);
    let q = b.relation("Q", 1);
    b.rule(
        Head::new(q, [HeadTerm::var("x")]),
        [BodyItem::atom(p, [Term::var("x")])],
    );
    let solution = Solver::new()
        .solve(&b.build().expect("valid"))
        .expect("solves");
    assert_eq!(solution.len("Q"), Some(0));
}

#[test]
fn head_literals_work() {
    // Marker() :- P(x).  — arity-1 head with a literal.
    let mut b = ProgramBuilder::new();
    let p = b.relation("P", 1);
    let marker = b.relation("Marker", 1);
    b.fact(p, vec![5.into()]);
    b.rule(
        Head::new(marker, [HeadTerm::lit("seen")]),
        [BodyItem::atom(p, [Term::Wildcard])],
    );
    let solution = Solver::new()
        .solve(&b.build().expect("valid"))
        .expect("solves");
    assert!(solution.contains("Marker", &["seen".into()]));
}

#[test]
fn long_chain_recursion_terminates() {
    // A 3000-node chain: the semi-naive solver needs ~3000 rounds.
    let mut b = ProgramBuilder::new();
    let e = b.relation("E", 2);
    let r = b.relation("Reach", 1);
    for n in 0..3000i64 {
        b.fact(e, vec![n.into(), (n + 1).into()]);
    }
    b.fact(r, vec![0.into()]);
    b.rule(
        Head::new(r, [HeadTerm::var("y")]),
        [
            BodyItem::atom(r, [Term::var("x")]),
            BodyItem::atom(e, [Term::var("x"), Term::var("y")]),
        ],
    );
    let solution = Solver::new()
        .solve(&b.build().expect("valid"))
        .expect("solves");
    assert_eq!(solution.len("Reach"), Some(3001));
    assert!(solution.stats().rounds > 2500);
}

#[test]
fn choose_with_always_empty_set_blocks_the_rule() {
    let mut b = ProgramBuilder::new();
    let p = b.relation("P", 1);
    let q = b.relation("Q", 1);
    let none = b.function("none", |_| Value::set([]));
    b.fact(p, vec![1.into()]);
    b.rule(
        Head::new(q, [HeadTerm::var("y")]),
        [
            BodyItem::atom(p, [Term::var("x")]),
            BodyItem::choose(none, [Term::var("x")], "y"),
        ],
    );
    let solution = Solver::new()
        .solve(&b.build().expect("valid"))
        .expect("solves");
    assert_eq!(solution.len("Q"), Some(0));
}

#[test]
fn filter_returning_non_bool_is_a_safety_violation() {
    let mut b = ProgramBuilder::new();
    let p = b.relation("P", 1);
    let q = b.relation("Q", 1);
    let bad = b.function("bad", |_| Value::Int(1));
    b.fact(p, vec![1.into()]);
    b.rule(
        Head::new(q, [HeadTerm::var("x")]),
        [
            BodyItem::atom(p, [Term::var("x")]),
            BodyItem::filter(bad, [Term::var("x")]),
        ],
    );
    let failure = Solver::new()
        .solve(&b.build().expect("valid"))
        .expect_err("non-boolean filter is rejected");
    assert!(matches!(
        &failure.error,
        flix_core::SolveError::SafetyViolation {
            violation: flix_core::verify::Violation::FilterNotBoolean(_, _),
            ..
        }
    ));
    assert!(failure.error.to_string().contains("non-boolean"));
}

#[test]
fn choose_from_non_set_is_a_safety_violation() {
    let mut b = ProgramBuilder::new();
    let p = b.relation("P", 1);
    let q = b.relation("Q", 1);
    let bad = b.function("bad", |_| Value::Int(1));
    b.fact(p, vec![1.into()]);
    b.rule(
        Head::new(q, [HeadTerm::var("y")]),
        [
            BodyItem::atom(p, [Term::var("x")]),
            BodyItem::choose(bad, [Term::var("x")], "y"),
        ],
    );
    let failure = Solver::new()
        .solve(&b.build().expect("valid"))
        .expect_err("non-set choice result is rejected");
    assert!(matches!(
        &failure.error,
        flix_core::SolveError::SafetyViolation {
            violation: flix_core::verify::Violation::ChoiceMalformed(_, _),
            ..
        }
    ));
}

#[test]
fn lattice_fact_at_bottom_is_a_no_op() {
    let mut b = ProgramBuilder::new();
    let a = b.lattice("A", 2, LatticeOps::of::<Parity>());
    b.fact(a, vec![1.into(), Parity::Bot.to_value()]);
    let solution = Solver::new()
        .solve(&b.build().expect("valid"))
        .expect("solves");
    assert_eq!(solution.len("A"), Some(0), "⊥ cells are never materialised");
    assert_eq!(
        solution.lattice_value("A", &[1.into()]),
        Some(Parity::Bot.to_value()),
        "but querying them still answers ⊥"
    );
}

#[test]
fn same_predicate_twice_in_one_body() {
    // Siblings: pairs of distinct successors of the same node.
    let mut b = ProgramBuilder::new();
    let e = b.relation("E", 2);
    let sib = b.relation("Sib", 2);
    let neq = b.function("neq", |args| Value::Bool(args[0] != args[1]));
    b.fact(e, vec![0.into(), 1.into()]);
    b.fact(e, vec![0.into(), 2.into()]);
    b.fact(e, vec![3.into(), 4.into()]);
    b.rule(
        Head::new(sib, [HeadTerm::var("a"), HeadTerm::var("b")]),
        [
            BodyItem::atom(e, [Term::var("x"), Term::var("a")]),
            BodyItem::atom(e, [Term::var("x"), Term::var("b")]),
            BodyItem::filter(neq, [Term::var("a"), Term::var("b")]),
        ],
    );
    let solution = Solver::new()
        .solve(&b.build().expect("valid"))
        .expect("solves");
    assert_eq!(solution.len("Sib"), Some(2), "(1,2) and (2,1)");
}

#[test]
fn mutually_recursive_lattice_and_relation() {
    // A relation gated on a lattice threshold that itself grows from the
    // relation — exercises the rel/lat interleaving in one SCC.
    let mut b = ProgramBuilder::new();
    let seen = b.relation("Seen", 1);
    let level = b.lattice("Level", 1, LatticeOps::of::<Parity>());
    let to_odd = b.function("toOdd", |_| Parity::Odd.to_value());
    let not_bot = b.function("notBot", |args| {
        Value::Bool(Parity::expect_from(&args[0]) != Parity::Bot)
    });
    b.fact(seen, vec![0.into()]);
    // Level(toOdd(x)) :- Seen(x).
    b.rule(
        Head::new(level, [HeadTerm::app(to_odd, [Term::var("x")])]),
        [BodyItem::atom(seen, [Term::var("x")])],
    );
    // Seen(1) :- Level(l), notBot(l).
    b.rule(
        Head::new(seen, [HeadTerm::lit(1)]),
        [
            BodyItem::atom(level, [Term::var("l")]),
            BodyItem::filter(not_bot, [Term::var("l")]),
        ],
    );
    let solution = Solver::new()
        .solve(&b.build().expect("valid"))
        .expect("solves");
    assert!(solution.contains("Seen", &[1.into()]));
    assert_eq!(
        solution.lattice_value("Level", &[]),
        Some(Parity::Odd.to_value())
    );
}

#[test]
fn string_and_tuple_values_as_keys() {
    let mut b = ProgramBuilder::new();
    let m = b.lattice("M", 2, LatticeOps::of::<Parity>());
    let key = Value::tuple([Value::from("f"), Value::Int(2)]);
    b.fact(m, vec![key.clone(), Parity::Even.to_value()]);
    let solution = Solver::new()
        .solve(&b.build().expect("valid"))
        .expect("solves");
    assert_eq!(
        solution.lattice_value("M", &[key]),
        Some(Parity::Even.to_value())
    );
}

#[test]
fn negated_lattice_atom_is_a_threshold_test() {
    // NotYetEven(k) :- Keys(k), !A(k, Even) — holds while Even ⋢ A(k).
    let mut b = ProgramBuilder::new();
    let keys = b.relation("Keys", 1);
    let a = b.lattice("A", 2, LatticeOps::of::<Parity>());
    let out = b.relation("NotYetEven", 1);
    b.fact(keys, vec![1.into()]);
    b.fact(keys, vec![2.into()]);
    b.fact(keys, vec![3.into()]);
    b.fact(a, vec![1.into(), Parity::Even.to_value()]);
    b.fact(a, vec![2.into(), Parity::Odd.to_value()]);
    b.rule(
        Head::new(out, [HeadTerm::var("k")]),
        [
            BodyItem::atom(keys, [Term::var("k")]),
            BodyItem::not(a, [Term::var("k"), Term::Lit(Parity::Even.to_value())]),
        ],
    );
    let solution = Solver::new()
        .solve(&b.build().expect("valid"))
        .expect("solves");
    // 1 has Even (Even ⊑ Even): excluded. 2 has Odd (Even ⋢ Odd): kept.
    // 3 has no cell (⊥): kept.
    assert!(!solution.contains("NotYetEven", &[1.into()]));
    assert!(solution.contains("NotYetEven", &[2.into()]));
    assert!(solution.contains("NotYetEven", &[3.into()]));
}

#[test]
fn deeply_nested_values_roundtrip_through_the_engine() {
    let mut b = ProgramBuilder::new();
    let p = b.relation("P", 1);
    let deep = Value::tag(
        "Wrap",
        Value::tuple([
            Value::set([Value::Int(1), Value::tag0("X")]),
            Value::tuple([Value::Unit, Value::from("s")]),
        ]),
    );
    b.fact(p, vec![deep.clone()]);
    let solution = Solver::new()
        .solve(&b.build().expect("valid"))
        .expect("solves");
    assert!(solution.contains("P", &[deep]));
}
