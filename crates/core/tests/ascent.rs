//! Integration tests of the lattice-ascent diagnostics: a deliberately
//! tall-chain program triggers the `AscentWarning` at a configured
//! height without aborting the solve, and well-behaved lattice programs
//! report their expected chain heights.

use flix_core::{
    AscentConfig, AscentWarning, BodyItem, Head, HeadTerm, LatticeOps, Observer, ProgramBuilder,
    Query, Solver, Term, Value, ValueLattice,
};
use flix_lattice::MinCost;
use std::sync::{Arc, Mutex};

/// Records every ascent warning the solver fires.
#[derive(Default)]
struct WarningLog {
    warnings: Mutex<Vec<AscentWarning>>,
}

impl Observer for WarningLog {
    fn ascent_warning(&self, warning: &AscentWarning) {
        self.warnings.lock().expect("log").push(warning.clone());
    }
}

/// A max-of-ints lattice: every increment is a strict lub increase, so
/// a counting rule climbs one chain step per round — the shape of an
/// Interval analysis without widening.
fn max_int_ops() -> LatticeOps {
    LatticeOps::from_fns(
        "MaxInt",
        Value::Int(-1),
        None,
        |a, b| a.as_int() <= b.as_int(),
        |a, b| {
            if a.as_int() < b.as_int() {
                b.clone()
            } else {
                a.clone()
            }
        },
        |a, b| {
            if a.as_int() < b.as_int() {
                a.clone()
            } else {
                b.clone()
            }
        },
    )
}

/// `Count("c", n+1) :- Count("c", n), n < limit.` — a chain of height
/// `limit + 1` (the seed plus one strict increase per round).
fn tall_chain_builder(limit: i64) -> ProgramBuilder {
    let mut b = ProgramBuilder::new();
    let count = b.lattice("Count", 2, max_int_ops());
    let inc = b.function("inc", |args| Value::Int(args[0].as_int().expect("int") + 1));
    let below = b.function("below", move |args| {
        Value::Bool(args[0].as_int().expect("int") < limit)
    });
    b.fact(count, vec![Value::from("c"), Value::Int(0)]);
    b.rule(
        Head::new(
            count,
            [HeadTerm::var("k"), HeadTerm::app(inc, [Term::var("n")])],
        ),
        [
            BodyItem::atom(count, [Term::var("k"), Term::var("n")]),
            BodyItem::filter(below, [Term::var("n")]),
        ],
    );
    b
}

/// The §4.4 shortest-paths program on a cyclic graph where two cells
/// are first reached on an expensive path and later improved.
fn dist_builder() -> ProgramBuilder {
    let mut b = ProgramBuilder::new();
    let edge = b.relation("Edge", 3);
    let dist = b.lattice("Dist", 2, LatticeOps::of::<MinCost>());
    let extend = b.function("extend", |args| {
        let d = MinCost::expect_from(&args[0]);
        let c = args[1].as_int().expect("weight") as u64;
        d.add_weight(c).to_value()
    });
    b.fact(dist, vec![Value::from("a"), MinCost::finite(0).to_value()]);
    for (x, y, c) in [
        ("a", "b", 1),
        ("b", "c", 1),
        ("c", "d", 2),
        ("c", "a", 1),
        ("a", "c", 5),
    ] {
        b.fact(edge, vec![x.into(), y.into(), c.into()]);
    }
    b.rule(
        Head::new(
            dist,
            [
                HeadTerm::var("y"),
                HeadTerm::app(extend, [Term::var("d"), Term::var("c")]),
            ],
        ),
        [
            BodyItem::atom(dist, [Term::var("x"), Term::var("d")]),
            BodyItem::atom(edge, [Term::var("x"), Term::var("y"), Term::var("c")]),
        ],
    );
    b
}

#[test]
fn tall_chain_warns_at_threshold_without_aborting() {
    let program = tall_chain_builder(100).build().expect("valid");
    let log = Arc::new(WarningLog::default());
    let solution = Solver::new()
        .ascent(AscentConfig {
            warn_height: Some(50),
            top_k: 5,
        })
        .observer(log.clone())
        .solve(&program)
        .expect("the warning must not abort the solve");

    // The chain still ran to its fixed point.
    assert_eq!(
        solution.lattice_value("Count", &[Value::from("c")]),
        Some(Value::Int(100))
    );

    let warnings = log.warnings.lock().expect("log");
    assert_eq!(warnings.len(), 1, "one warning per cell, not one per join");
    let w = &warnings[0];
    assert_eq!(w.predicate, "Count");
    assert_eq!(w.key, vec![Value::from("c")]);
    assert_eq!(w.threshold, 50);
    assert_eq!(w.height, 50, "fires as soon as the threshold is crossed");

    let report = solution.ascent_report(5).expect("ascent was enabled");
    assert_eq!(report.cells, 1);
    assert_eq!(report.max_height, 101, "seed + 100 strict increases");
    assert_eq!(report.per_lattice, vec![("MaxInt".to_string(), 101)]);
    assert_eq!(report.hottest.len(), 1);
    assert_eq!(report.hottest[0].predicate, "Count");
}

#[test]
fn min_cost_shortest_paths_reports_expected_heights() {
    let program = dist_builder().build().expect("valid");
    let solution = Solver::new()
        .ascent(AscentConfig::default())
        .solve(&program)
        .expect("solves");
    let report = solution.ascent_report(10).expect("ascent was enabled");
    assert_eq!(report.cells, 4, "a, b, c, d");
    // b is reached once on its only path (height 1); c and d are first
    // reached expensively (a→c cost 5) and later improved through
    // a→b→c (height 2).
    assert_eq!(report.max_height, 2);
    assert_eq!(
        report.per_lattice,
        vec![("MinCost".to_string(), 2)],
        "the per-lattice maxima name the lattice type"
    );
    let heights: u64 = report.histogram.iter().map(|(_, n)| n).sum();
    assert_eq!(heights, report.cells, "histogram covers every cell");
    // Without a warn threshold no warning can fire — the default
    // config is report-only.
    assert_eq!(AscentConfig::default().warn_height, None);
}

#[test]
fn ascent_report_is_absent_unless_configured() {
    let program = dist_builder().build().expect("valid");
    let solution = Solver::new().solve(&program).expect("solves");
    assert!(solution.ascent_report(10).is_none());
}

#[test]
fn query_path_tracks_ascent_on_demanded_cells() {
    let program = dist_builder().build().expect("valid");
    let log = Arc::new(WarningLog::default());
    let result = Solver::new()
        .ascent(AscentConfig {
            warn_height: Some(2),
            top_k: 10,
        })
        .observer(log.clone())
        .solve_query(
            &program,
            &[Query::new("Dist", vec![Some(Value::from("d")), None])],
        )
        .expect("solves");
    let report = result
        .solution()
        .ascent_report(10)
        .expect("ascent was enabled on the rewritten run");
    assert!(report.cells > 0, "demanded cells are tracked");
    assert!(report.max_height >= 2);
    let warnings = log.warnings.lock().expect("log");
    assert!(
        warnings.iter().all(|w| w.predicate == "Dist"),
        "warnings name the user-facing lattice predicate: {warnings:?}"
    );
    assert!(!warnings.is_empty(), "height 2 crosses the threshold");
}

#[test]
fn resume_continues_ascent_accounting() {
    let program = tall_chain_builder(10).build().expect("valid");
    let solver = Solver::new().ascent(AscentConfig::default());
    let prior = solver.solve(&program).expect("solves");
    assert_eq!(
        prior.ascent_report(5).expect("enabled").max_height,
        11,
        "seed + 10 increases"
    );
    // Raising the cell directly resumes the chain from the prior model.
    let delta = flix_core::Delta::new().raise("Count", vec![Value::from("c")], Value::Int(20));
    let resumed = solver.resume(&program, &prior, &delta).expect("resumes");
    let report = resumed.ascent_report(5).expect("enabled");
    assert!(
        report.max_height >= 1,
        "the resumed run tracks its own joins: {report:?}"
    );
    assert_eq!(
        resumed.lattice_value("Count", &[Value::from("c")]),
        Some(Value::Int(20)),
        "the raise sticks (20 is above the filter bound, so no rule re-fires)"
    );
}
