//! Crash-safety tests for `flix_core::persist`: round trips, corruption
//! rejection, and the deterministic fault-injection sweep.
//!
//! The sweep is the load-bearing test: for every fault kind at every
//! byte offset of a snapshot save or WAL append, across three seeded
//! workloads, `Solver::recover` must return a model cell-for-cell equal
//! to a from-scratch solve of the base program plus the *surviving*
//! delta prefix — and must never panic or return a corrupt model.

use flix_core::incremental::Delta;
use flix_core::persist::{
    corrupt_file, load_snapshot, save_snapshot, save_snapshot_with_fault, snapshot_from_bytes,
    snapshot_to_bytes, DeltaLog, Fault, FaultPlan, PersistError,
};
use flix_core::{
    BodyItem, Head, HeadTerm, LatticeOps, Program, ProgramBuilder, Solution, Solver, Term, Value,
    ValueLattice,
};
use flix_lattice::MinCost;
use std::path::{Path, PathBuf};

/// Canonical sorted dump of every fact of every predicate, used to
/// compare models for exact equality.
fn dump(program: &Program, solution: &Solution) -> Vec<String> {
    let mut lines = Vec::new();
    for (_, decl) in program.predicates() {
        let name = decl.name();
        for fact in solution.facts(name).expect("declared predicate") {
            lines.push(format!("{name}({fact})"));
        }
    }
    lines.sort();
    lines
}

/// A fresh scratch directory per test, removed on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(test: &str) -> Scratch {
        let dir = std::env::temp_dir().join(format!("flix-persist-{}-{test}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        Scratch(dir)
    }

    fn path(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Workload 1: relational transitive closure.
fn paths_workload() -> (Program, Vec<Delta>) {
    let mut b = ProgramBuilder::new();
    let edge = b.relation("Edge", 2);
    let path = b.relation("Path", 2);
    for (x, y) in [(1, 2), (2, 3), (3, 4)] {
        b.fact(edge, vec![Value::from(x), Value::from(y)]);
    }
    b.rule(
        Head::new(path, [HeadTerm::var("x"), HeadTerm::var("y")]),
        [BodyItem::atom(edge, [Term::var("x"), Term::var("y")])],
    );
    b.rule(
        Head::new(path, [HeadTerm::var("x"), HeadTerm::var("z")]),
        [
            BodyItem::atom(path, [Term::var("x"), Term::var("y")]),
            BodyItem::atom(edge, [Term::var("y"), Term::var("z")]),
        ],
    );
    let program = b.build().expect("valid program");
    let deltas = vec![
        Delta::new().insert("Edge", vec![4.into(), 5.into()]),
        Delta::new()
            .insert("Edge", vec![5.into(), 1.into()])
            .insert("Edge", vec![2.into(), 5.into()]),
    ];
    (program, deltas)
}

/// Workload 2: single-source shortest paths over the MinCost lattice.
fn shortest_paths_workload() -> (Program, Vec<Delta>) {
    let mut b = ProgramBuilder::new();
    let edge = b.relation("Edge", 3);
    let dist = b.lattice("Dist", 2, LatticeOps::of::<MinCost>());
    let extend = b.function("extend", |args| {
        let d = MinCost::expect_from(&args[0]);
        let c = args[1].as_int().expect("edge weight") as u64;
        d.add_weight(c).to_value()
    });
    b.fact(dist, vec![Value::from(0), MinCost::finite(0).to_value()]);
    for (x, y, w) in [(0, 1, 4), (1, 2, 3), (0, 2, 9)] {
        b.fact(edge, vec![Value::from(x), Value::from(y), Value::from(w)]);
    }
    b.rule(
        Head::new(
            dist,
            [
                HeadTerm::var("y"),
                HeadTerm::app(extend, [Term::var("d"), Term::var("c")]),
            ],
        ),
        [
            BodyItem::atom(dist, [Term::var("x"), Term::var("d")]),
            BodyItem::atom(edge, [Term::var("x"), Term::var("y"), Term::var("c")]),
        ],
    );
    let program = b.build().expect("valid program");
    let deltas = vec![
        Delta::new().insert("Edge", vec![2.into(), 3.into(), 2.into()]),
        Delta::new().raise("Dist", vec![Value::from(3)], MinCost::finite(1).to_value()),
    ];
    (program, deltas)
}

/// Workload 3: every `Value` variant through the codec — tuples, sets,
/// tags, strings, unit, booleans — with a transfer function wrapping
/// each input.
fn values_workload() -> (Program, Vec<Delta>) {
    let mut b = ProgramBuilder::new();
    let input = b.relation("In", 1);
    let out = b.relation("Out", 2);
    let wrap = b.function("wrap", |args| Value::tag("Wrapped", args[0].clone()));
    b.fact(input, vec![Value::tuple([Value::Int(1), Value::str("a")])]);
    b.fact(
        input,
        vec![Value::set([Value::Int(2), Value::Int(1), Value::Unit])],
    );
    b.fact(input, vec![Value::Bool(true)]);
    b.rule(
        Head::new(
            out,
            [HeadTerm::var("x"), HeadTerm::app(wrap, [Term::var("x")])],
        ),
        [BodyItem::atom(input, [Term::var("x")])],
    );
    let program = b.build().expect("valid program");
    let deltas = vec![
        Delta::new().insert(
            "In",
            vec![Value::tag(
                "Key",
                Value::tuple([Value::str("nested"), Value::set([Value::Bool(false)])]),
            )],
        ),
        Delta::new()
            .insert("In", vec![Value::str("z")])
            .insert("In", vec![Value::Int(-7)]),
    ];
    (program, deltas)
}

fn workloads() -> Vec<(&'static str, Program, Vec<Delta>)> {
    let (p1, d1) = paths_workload();
    let (p2, d2) = shortest_paths_workload();
    let (p3, d3) = values_workload();
    vec![("paths", p1, d1), ("shortest", p2, d2), ("values", p3, d3)]
}

/// The concatenation of the first `m` deltas.
fn combined(deltas: &[Delta], m: usize) -> Delta {
    let mut all = Delta::new();
    for delta in &deltas[..m] {
        all.extend_from(delta);
    }
    all
}

/// The ground truth: a from-scratch solve of the program extended with
/// the first `m` deltas, dumped canonically.
fn expected_dump(program: &Program, deltas: &[Delta], m: usize) -> Vec<String> {
    let extended = program
        .with_delta(&combined(deltas, m))
        .expect("deltas fit program");
    let solution = Solver::new().solve(&extended).expect("solvable");
    dump(program, &solution)
}

const ALL_FAULTS: [Fault; 4] = [Fault::Torn, Fault::Short, Fault::BitFlip, Fault::IoError];

#[test]
fn snapshot_round_trips_byte_identically() {
    let scratch = Scratch::new("roundtrip");
    for (name, program, deltas) in workloads() {
        let solver = Solver::new();
        let mut solution = solver.solve(&program).expect("solvable");
        for (i, delta) in deltas.iter().enumerate() {
            solution = solver
                .resume(&program, &solution, delta)
                .expect("resumable");
            let bytes = snapshot_to_bytes(&program, &solution);
            let loaded = snapshot_from_bytes(&program, &bytes).expect("snapshot loads");
            assert_eq!(
                dump(&program, &solution),
                dump(&program, &loaded),
                "{name}: loaded model differs after delta {i}"
            );
            let rebytes = snapshot_to_bytes(&program, &loaded);
            assert_eq!(bytes, rebytes, "{name}: save→load→save not byte-identical");

            let path = scratch.path(&format!("{name}-{i}.snap"));
            save_snapshot(&path, &program, &solution).expect("snapshot saves");
            let reloaded = load_snapshot(&path, &program).expect("snapshot loads from disk");
            assert_eq!(dump(&program, &solution), dump(&program, &reloaded));
        }
    }
}

#[test]
fn snapshot_rejects_other_programs() {
    let (program, _) = paths_workload();
    let solution = Solver::new().solve(&program).expect("solvable");
    let bytes = snapshot_to_bytes(&program, &solution);

    // Same shape, one extra fact: different fingerprint.
    let mut b = ProgramBuilder::new();
    let edge = b.relation("Edge", 2);
    let _path = b.relation("Path", 2);
    b.fact(edge, vec![9.into(), 9.into()]);
    let other = b.build().expect("valid program");
    match snapshot_from_bytes(&other, &bytes) {
        Err(PersistError::ProgramMismatch { .. }) => {}
        other => panic!("expected ProgramMismatch, got {other:?}"),
    }
}

#[test]
fn wal_rejects_mismatched_program() {
    let scratch = Scratch::new("wal-mismatch");
    let (program, deltas) = paths_workload();
    let wal = scratch.path("log.wal");
    let (mut log, _) = DeltaLog::open(&wal, &program).expect("creates log");
    log.append(&deltas[0]).expect("appends");
    drop(log);

    let mut b = ProgramBuilder::new();
    b.relation("Edge", 2);
    let other = b.build().expect("valid program");
    match DeltaLog::open(&wal, &other) {
        Err(PersistError::ProgramMismatch { .. }) => {}
        other => panic!("expected ProgramMismatch, got {other:?}"),
    }
}

#[test]
fn corrupt_snapshot_bytes_never_panic() {
    let (program, _) = paths_workload();
    let solution = Solver::new().solve(&program).expect("solvable");
    let bytes = snapshot_to_bytes(&program, &solution);
    // Every truncation point and every single-bit flip must be a clean
    // structured error or (for flips the CRC provably catches) never a
    // panic — run the whole space, it is small.
    for end in 0..bytes.len() {
        assert!(
            snapshot_from_bytes(&program, &bytes[..end]).is_err(),
            "truncation at {end} must not parse"
        );
    }
    for at in 0..bytes.len() {
        let mut corrupt = bytes.clone();
        corrupt[at] ^= 1 << (at % 8);
        // A flipped bit may be detected anywhere; the only requirement
        // is no panic and no silent wrong model.
        if let Ok(loaded) = snapshot_from_bytes(&program, &corrupt) {
            assert_eq!(
                dump(&program, &solution),
                dump(&program, &loaded),
                "bit flip at {at} produced a different model without an error"
            );
        }
    }
}

/// Snapshot-write fault sweep: a fault at every byte offset of the
/// snapshot stream, for every fault kind. The WAL holds every delta, so
/// whatever happens to the snapshot, recovery must land on the full
/// updated model — via the old snapshot, the corrupted-snapshot scratch
/// fallback, or (when the fault hit after the payload) the new
/// snapshot.
#[test]
fn snapshot_fault_sweep_recovers_exactly() {
    let scratch = Scratch::new("snap-sweep");
    let solver = Solver::new();
    for (name, program, deltas) in workloads() {
        let base = solver.solve(&program).expect("solvable");
        let expected = expected_dump(&program, &deltas, deltas.len());
        let snapshot_len = snapshot_to_bytes(&program, &base).len();

        let wal = scratch.path(&format!("{name}.wal"));
        let (mut log, _) = DeltaLog::open(&wal, &program).expect("creates log");
        for delta in &deltas {
            log.append(delta).expect("appends");
        }
        drop(log);

        for fault in ALL_FAULTS {
            for at in (0..=snapshot_len).step_by(1) {
                let snap = scratch.path(&format!("{name}-{fault:?}-{at}.snap"));
                let plan = FaultPlan {
                    fault,
                    at: at as u64,
                };
                let result = save_snapshot_with_fault(&snap, &program, &base, plan);
                match fault {
                    Fault::Torn | Fault::IoError => {
                        assert!(result.is_err(), "{name}: {fault:?}@{at} must surface")
                    }
                    Fault::Short | Fault::BitFlip => {
                        assert!(result.is_ok(), "{name}: {fault:?}@{at} is silent")
                    }
                }
                let (recovered, report) = solver
                    .recover(&program, &snap, &wal)
                    .expect("recovery never fails on corruption");
                assert_eq!(
                    expected,
                    dump(&program, &recovered),
                    "{name}: {fault:?} at byte {at}: recovered model differs \
                     (report: {report:?})"
                );
            }
        }
    }
}

/// WAL-append fault sweep: with a clean snapshot of the base model and
/// `k` cleanly logged deltas, the `k+1`-th append faults at every byte
/// offset of its frame. Recovery must replay exactly the surviving
/// prefix — all `k` deltas, plus the faulted one only when the fault
/// struck at/after the end of its frame (i.e. the write completed).
#[test]
fn wal_fault_sweep_recovers_surviving_prefix() {
    let scratch = Scratch::new("wal-sweep");
    let solver = Solver::new();
    for (name, program, deltas) in workloads() {
        let base = solver.solve(&program).expect("solvable");
        let snap = scratch.path(&format!("{name}.snap"));
        save_snapshot(&snap, &program, &base).expect("snapshot saves");
        let expected: Vec<Vec<String>> = (0..=deltas.len())
            .map(|m| expected_dump(&program, &deltas, m))
            .collect();

        for k in 0..deltas.len() {
            // Measure the faulted frame's length with a clean append.
            let probe = scratch.path(&format!("{name}-probe.wal"));
            let _ = std::fs::remove_file(&probe);
            let (mut plog, _) = DeltaLog::open(&probe, &program).expect("creates log");
            let before = std::fs::metadata(&probe).expect("probe exists").len();
            plog.append(&deltas[k]).expect("appends");
            let frame_len =
                (std::fs::metadata(&probe).expect("probe exists").len() - before) as usize;
            drop(plog);

            for fault in ALL_FAULTS {
                for at in 0..=frame_len {
                    let wal = scratch.path(&format!("{name}-{k}-{fault:?}-{at}.wal"));
                    let _ = std::fs::remove_file(&wal);
                    let (mut log, _) = DeltaLog::open(&wal, &program).expect("creates log");
                    for delta in &deltas[..k] {
                        log.append(delta).expect("appends");
                    }
                    let plan = FaultPlan {
                        fault,
                        at: at as u64,
                    };
                    let result = log.append_with_fault(&deltas[k], plan);
                    match fault {
                        Fault::Torn | Fault::IoError => assert!(result.is_err()),
                        Fault::Short | Fault::BitFlip => assert!(result.is_ok()),
                    }
                    drop(log);

                    // The frame survives only if the fault let the full
                    // write through: a torn/short/error write of the
                    // whole frame (at == frame_len) is a completed
                    // write. A bit flip always corrupts the frame (the
                    // sweep never flips past the last byte).
                    let survives = at >= frame_len && fault != Fault::BitFlip;
                    let m = if survives { k + 1 } else { k };

                    let (recovered, report) = solver
                        .recover(&program, &snap, &wal)
                        .expect("recovery never fails on corruption");
                    assert_eq!(
                        expected[m],
                        dump(&program, &recovered),
                        "{name}: delta {k}, {fault:?} at byte {at}: recovered model \
                         differs (report: {report:?})"
                    );
                    assert_eq!(
                        report.wal_frames_replayed, m,
                        "{name}: delta {k}, {fault:?} at byte {at}"
                    );

                    // Recovery truncated the log to the valid prefix:
                    // reopening drops nothing and sees the same frames.
                    let (_log, reopened) =
                        DeltaLog::open(&wal, &program).expect("reopens after truncation");
                    assert_eq!(reopened.dropped_bytes, 0);
                    assert_eq!(reopened.deltas.len(), m);
                    let _ = std::fs::remove_file(&wal);
                }
            }
        }
    }
}

/// A lost write (`Short`) followed by further successful appends: the
/// later frames land beyond a zero-filled gap and are unreachable, so
/// recovery must stop at the gap.
#[test]
fn lost_write_with_later_appends_truncates_at_the_gap() {
    let scratch = Scratch::new("wal-gap");
    let solver = Solver::new();
    let (program, deltas) = paths_workload();
    let base = solver.solve(&program).expect("solvable");
    let snap = scratch.path("base.snap");
    save_snapshot(&snap, &program, &base).expect("snapshot saves");

    for at in [0u64, 7, 20] {
        let wal = scratch.path(&format!("gap-{at}.wal"));
        let _ = std::fs::remove_file(&wal);
        let (mut log, _) = DeltaLog::open(&wal, &program).expect("creates log");
        let result = log.append_with_fault(
            &deltas[0],
            FaultPlan {
                fault: Fault::Short,
                at,
            },
        );
        assert!(result.is_ok(), "a lost write is silent");
        // The writer, none the wiser, appends the next delta.
        log.append(&deltas[1]).expect("appends");
        drop(log);

        let (recovered, report) = solver
            .recover(&program, &snap, &wal)
            .expect("recovery never fails on corruption");
        assert_eq!(
            expected_dump(&program, &deltas, 0),
            dump(&program, &recovered),
            "Short at {at}: everything past the gap is unrecoverable"
        );
        assert!(report.wal_bytes_dropped > 0);
    }
}

/// The two compaction crash windows: after the snapshot lands but
/// before the log truncates (replay is idempotent), and the clean
/// compaction itself.
#[test]
fn compaction_crash_windows_are_safe() {
    let scratch = Scratch::new("compact");
    let solver = Solver::new();
    let (program, deltas) = paths_workload();
    let base = solver.solve(&program).expect("solvable");
    let snap = scratch.path("model.snap");
    let wal = scratch.path("model.wal");
    save_snapshot(&snap, &program, &base).expect("snapshot saves");

    let (mut log, _) = DeltaLog::open(&wal, &program).expect("creates log");
    let mut live = base;
    for delta in &deltas {
        log.append(delta).expect("appends");
        live = solver.resume(&program, &live, delta).expect("resumable");
    }
    let expected = dump(&program, &live);

    // Crash window: the compaction snapshot (which absorbs the logged
    // deltas) is written, but the process dies before truncating the
    // log. Recovery replays absorbed deltas — harmlessly.
    save_snapshot(&snap, &program, &live).expect("snapshot saves");
    let (recovered, report) = solver
        .recover(&program, &snap, &wal)
        .expect("recovery never fails");
    assert_eq!(expected, dump(&program, &recovered));
    assert_eq!(report.wal_frames_replayed, deltas.len());

    // Clean compaction: snapshot written and log reset atomically from
    // the caller's point of view.
    assert_eq!(log.frames(), deltas.len() as u64);
    log.compact_into(&snap, &program, &live).expect("compacts");
    assert_eq!(log.frames(), 0);
    drop(log);
    let (recovered, report) = solver
        .recover(&program, &snap, &wal)
        .expect("recovery never fails");
    assert_eq!(expected, dump(&program, &recovered));
    assert!(report.clean(), "{report:?}");
    assert_eq!(report.wal_frames_replayed, 0);
}

/// A WAL whose *header* is destroyed is unrecoverable as a log;
/// recovery reports it and proceeds with the snapshot alone.
#[test]
fn destroyed_wal_header_degrades_to_snapshot_only() {
    let scratch = Scratch::new("wal-header");
    let solver = Solver::new();
    let (program, deltas) = paths_workload();
    let base = solver.solve(&program).expect("solvable");
    let snap = scratch.path("model.snap");
    let wal = scratch.path("model.wal");
    save_snapshot(&snap, &program, &base).expect("snapshot saves");
    let (mut log, _) = DeltaLog::open(&wal, &program).expect("creates log");
    log.append(&deltas[0]).expect("appends");
    drop(log);

    corrupt_file(
        &wal,
        FaultPlan {
            fault: Fault::BitFlip,
            at: 3,
        },
    )
    .expect("corrupts");

    let (recovered, report) = solver
        .recover(&program, &snap, &wal)
        .expect("recovery never fails");
    assert_eq!(
        expected_dump(&program, &deltas, 0),
        dump(&program, &recovered)
    );
    assert!(report.wal_error.is_some());
    assert_eq!(report.wal_frames_replayed, 0);

    // The caller's move after a destroyed header: start a fresh log.
    let fresh = DeltaLog::create_truncated(&wal, &program).expect("recreates");
    assert_eq!(fresh.frames(), 0);
    drop(fresh);
    let (_, report) = solver.recover(&program, &snap, &wal).expect("recovers");
    assert!(report.clean(), "{report:?}");
}

/// Recovery with neither file present is just a scratch solve.
#[test]
fn recovery_from_nothing_is_a_scratch_solve() {
    let scratch = Scratch::new("nothing");
    let (program, deltas) = paths_workload();
    let solver = Solver::new();
    let (recovered, report) = solver
        .recover(
            &program,
            scratch.path("missing.snap"),
            scratch.path("missing.wal"),
        )
        .expect("recovery never fails");
    assert_eq!(
        expected_dump(&program, &deltas, 0),
        dump(&program, &recovered)
    );
    assert!(report.scratch_solve);
    assert!(!report.snapshot_loaded);
    assert!(
        !scratch.path("missing.wal").exists(),
        "recovery must not create files"
    );
}

// ---------------------------------------------------------------------
// Golden fixture: the committed snapshot must keep loading. If this
// test fails after an intentional format change, bump SNAPSHOT_VERSION
// and regenerate with:
//     cargo test -p flix-core --test persist -- --ignored regenerate
// ---------------------------------------------------------------------

/// The fixture program: the paths workload after its first delta, which
/// exercises both frame kinds once lattice workloads are added. Must
/// never change — it is the fixed point the fixture bytes encode.
fn golden_program() -> Program {
    let (program, _) = paths_workload();
    program
}

const GOLDEN: &[u8] = include_bytes!("fixtures/golden_v1.snap");
const GOLDEN_V2: &[u8] = include_bytes!("fixtures/golden_v2.snap");

#[test]
fn golden_v1_snapshot_keeps_loading() {
    let program = golden_program();
    let loaded = snapshot_from_bytes(&program, GOLDEN)
        .expect("committed golden snapshot must load; format changes need a version bump");
    let scratch = Solver::new().solve(&program).expect("solvable");
    assert_eq!(dump(&program, &scratch), dump(&program, &loaded));
    // And the legacy fixture is canonical for what it knows: a v1 load
    // carries no extensional store, so it re-saves as v1, byte-exactly.
    assert_eq!(GOLDEN, snapshot_to_bytes(&program, &loaded).as_slice());
}

#[test]
fn golden_v2_snapshot_keeps_loading() {
    let program = golden_program();
    let loaded = snapshot_from_bytes(&program, GOLDEN_V2)
        .expect("committed golden v2 snapshot must load; format changes need a version bump");
    let scratch = Solver::new().solve(&program).expect("solvable");
    assert_eq!(dump(&program, &scratch), dump(&program, &loaded));
    // The v2 fixture is canonical: re-saving reproduces it exactly.
    assert_eq!(GOLDEN_V2, snapshot_to_bytes(&program, &loaded).as_slice());
    // And it recorded the extensional store, so retracting deltas resume.
    let shrink = Delta::new().retract("Edge", vec![1.into(), 2.into()]);
    Solver::new()
        .resume(&program, &loaded, &shrink)
        .expect("v2 snapshots support retraction");
}

#[test]
#[ignore = "regenerates the golden fixture; run after a deliberate format change"]
fn regenerate_golden_snapshot() {
    // Only the current-version fixture can be regenerated; golden_v1.snap
    // is a frozen legacy artifact no current writer produces.
    let program = golden_program();
    let solution = Solver::new().solve(&program).expect("solvable");
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/golden_v2.snap");
    std::fs::write(&path, snapshot_to_bytes(&program, &solution)).expect("writes fixture");
    println!("wrote {}", path.display());
}

// ---------------------------------------------------------------------
// Format version 2: retraction-capable WAL entries and the snapshot's
// extensional-store frame.
// ---------------------------------------------------------------------

/// Reference CRC-32 (bitwise, IEEE 802.3) for handcrafting legacy
/// fixtures without reaching into the crate's private wire module.
fn crc32_ref(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc ^= b as u32;
        for _ in 0..8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
        }
    }
    !crc
}

/// Handcrafts a version-1 (pre-retraction) WAL: untagged insert-only
/// entries, exactly the bytes an older build would have written. Only
/// `Int` values are needed by the tests that use this.
fn v1_wal_bytes(program: &Program, deltas: &[Vec<(&str, Vec<i64>)>]) -> Vec<u8> {
    let mut bytes = Vec::new();
    bytes.extend_from_slice(b"FLIXWAL\0");
    bytes.extend_from_slice(&1u32.to_le_bytes());
    bytes.extend_from_slice(&flix_core::program_fingerprint(program).to_le_bytes());
    bytes.extend_from_slice(&0u32.to_le_bytes());
    let crc = crc32_ref(&bytes);
    bytes.extend_from_slice(&crc.to_le_bytes());
    for entries in deltas {
        let mut payload = Vec::new();
        payload.extend_from_slice(&(entries.len() as u32).to_le_bytes());
        for (name, tuple) in entries {
            payload.extend_from_slice(&(name.len() as u32).to_le_bytes());
            payload.extend_from_slice(name.as_bytes());
            payload.extend_from_slice(&(tuple.len() as u32).to_le_bytes());
            for v in tuple {
                payload.push(2); // Value::Int tag
                payload.extend_from_slice(&v.to_le_bytes());
            }
        }
        bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        let crc = crc32_ref(&payload);
        bytes.extend_from_slice(&payload);
        bytes.extend_from_slice(&crc.to_le_bytes());
    }
    bytes
}

/// A mixed-op delta over the shortest-paths workload's program:
/// insert, retract, raise, and lower in one delta.
fn mixed_delta() -> Delta {
    Delta::new()
        .insert("Edge", vec![3.into(), 4.into(), 2.into()])
        .retract("Edge", vec![1.into(), 2.into(), 3.into()])
        .raise("Dist", vec![3.into()], MinCost::finite(1).to_value())
        .lower("Dist", vec![0.into()], MinCost::finite(0).to_value())
}

#[test]
fn wal_v2_round_trips_mixed_ops_byte_identically() {
    let scratch = Scratch::new("wal-v2-roundtrip");
    let (program, deltas) = shortest_paths_workload();
    let wal = scratch.path("model.wal");
    let mixed = mixed_delta();
    {
        let (mut log, recovery) = DeltaLog::open(&wal, &program).expect("creates");
        assert!(recovery.deltas.is_empty());
        log.append(&deltas[0]).expect("appends");
        log.append(&mixed).expect("appends mixed ops");
        // An empty delta short-circuits regardless of op kinds seen.
        log.append(&Delta::new()).expect("no-op append");
        assert_eq!(log.frames(), 2);
    }
    let bytes_after_write = std::fs::read(&wal).expect("readable");
    let (version, _) = (
        u32::from_le_bytes(bytes_after_write[8..12].try_into().unwrap()),
        (),
    );
    assert_eq!(version, flix_core::persist::WAL_VERSION);

    // Reopen: every op of every frame survives, in order, and the
    // reopen itself rewrites nothing.
    let (_log, recovery) = DeltaLog::open(&wal, &program).expect("reopens");
    assert_eq!(recovery.dropped_bytes, 0);
    assert_eq!(recovery.deltas.len(), 2);
    assert_eq!(recovery.deltas[0], deltas[0]);
    assert_eq!(recovery.deltas[1], mixed);
    let bytes_after_reopen = std::fs::read(&wal).expect("readable");
    assert_eq!(
        bytes_after_write, bytes_after_reopen,
        "reopening a clean v2 log must be byte-identical"
    );
}

#[test]
fn v1_wal_upgrades_in_place_and_accepts_mixed_appends() {
    let scratch = Scratch::new("wal-v1-upgrade");
    let (program, _) = paths_workload();
    let wal = scratch.path("model.wal");
    let legacy = v1_wal_bytes(
        &program,
        &[
            vec![("Edge", vec![3, 4]), ("Edge", vec![4, 5])],
            vec![("Edge", vec![5, 6])],
        ],
    );
    std::fs::write(&wal, &legacy).expect("writes legacy log");

    // Open reads the untagged entries as inserts and upgrades the file
    // to the current version so later tagged appends stay readable.
    let expected_first = Delta::new()
        .insert("Edge", vec![3.into(), 4.into()])
        .insert("Edge", vec![4.into(), 5.into()]);
    let expected_second = Delta::new().insert("Edge", vec![5.into(), 6.into()]);
    {
        let (mut log, recovery) = DeltaLog::open(&wal, &program).expect("opens v1");
        assert_eq!(recovery.dropped_bytes, 0);
        assert_eq!(
            recovery.deltas,
            vec![expected_first.clone(), expected_second.clone()]
        );
        let upgraded = std::fs::read(&wal).expect("readable");
        assert_eq!(
            u32::from_le_bytes(upgraded[8..12].try_into().unwrap()),
            flix_core::persist::WAL_VERSION,
            "open must upgrade a v1 log in place"
        );
        log.append(&Delta::new().retract("Edge", vec![3.into(), 4.into()]))
            .expect("appends a retraction");
    }
    let (_log, recovery) = DeltaLog::open(&wal, &program).expect("reopens upgraded");
    assert_eq!(recovery.dropped_bytes, 0);
    assert_eq!(
        recovery.deltas,
        vec![
            expected_first,
            expected_second,
            Delta::new().retract("Edge", vec![3.into(), 4.into()]),
        ]
    );
}

#[test]
fn wal_v2_fault_sweep_with_mixed_ops_recovers_surviving_prefix() {
    // The mixed-op frame faulted at every byte offset, for every fault
    // kind: recovery must land on either "without the mixed delta" or
    // "with it" — never a torn in-between or a panic.
    let (program, deltas) = shortest_paths_workload();
    let solver = Solver::new();
    let base_model = solver.solve(&program).expect("solvable");
    let mixed = mixed_delta();

    let without: Vec<String> = {
        let extended = program.with_delta(&deltas[0]).expect("fits");
        let s = solver.solve(&extended).expect("solvable");
        dump(&program, &s)
    };
    let with: Vec<String> = {
        let mut combined = deltas[0].clone();
        combined.extend_from(&mixed);
        let extended = program.with_delta(&combined).expect("fits");
        let s = solver.solve(&extended).expect("solvable");
        dump(&program, &s)
    };

    let scratch = Scratch::new("wal-v2-sweep");
    let snap = scratch.path("model.snap");
    save_snapshot(&snap, &program, &base_model).expect("saves");

    // Measure the mixed frame's length with a clean append.
    let probe = scratch.path("probe.wal");
    let (mut plog, _) = DeltaLog::open(&probe, &program).expect("creates probe");
    let before = std::fs::metadata(&probe).expect("probe exists").len();
    plog.append(&mixed).expect("appends");
    let frame_len = (std::fs::metadata(&probe).expect("probe exists").len() - before) as usize;
    drop(plog);

    for fault in ALL_FAULTS {
        for at in 0..=frame_len {
            let wal = scratch.path(&format!("sweep-{fault:?}-{at}.wal"));
            let (mut log, _) = DeltaLog::open(&wal, &program).expect("creates");
            log.append(&deltas[0]).expect("clean append");
            let _ = log.append_with_fault(
                &mixed,
                FaultPlan {
                    fault,
                    at: at as u64,
                },
            );
            drop(log);

            // The mixed frame survives only when the fault let the whole
            // write through; a bit flip always corrupts it.
            let survives = at >= frame_len && fault != Fault::BitFlip;
            let (recovered, report) = solver
                .recover(&program, &snap, &wal)
                .expect("recovery never fails on corruption");
            let got = dump(&program, &recovered);
            let expected = if survives { &with } else { &without };
            assert_eq!(
                &got, expected,
                "{fault:?} at byte {at}: recovered model is not the surviving \
                 prefix (report: {report:?})"
            );
            let _ = std::fs::remove_file(&wal);
        }
    }
}

#[test]
fn v1_snapshot_loads_reject_retracting_deltas() {
    use flix_core::{DeltaError, SolveError};
    let program = golden_program();
    let loaded = snapshot_from_bytes(&program, GOLDEN).expect("golden loads");
    let solver = Solver::new();
    // Monotone resumes still work from a v1 snapshot...
    let grow = Delta::new().insert("Edge", vec![7.into(), 8.into()]);
    solver
        .resume(&program, &loaded, &grow)
        .expect("monotone resume from a v1 snapshot");
    // ...but a retracting delta is rejected up front: the v1 format
    // does not record the extensional store the model is a fixed point
    // of, so exact removal is impossible.
    let shrink = Delta::new().retract("Edge", vec![1.into(), 2.into()]);
    let failure = solver
        .resume(&program, &loaded, &shrink)
        .expect_err("retraction rejected");
    assert!(
        matches!(
            &failure.error,
            SolveError::Delta(DeltaError::NoExtensionalBase)
        ),
        "{:?}",
        failure.error
    );
    assert_eq!(dump(&program, &failure.partial), dump(&program, &loaded));
}

#[test]
fn recover_degrades_v1_snapshot_with_retracting_wal_to_scratch() {
    let scratch = Scratch::new("v1-snap-retract-wal");
    let program = golden_program();
    let snap = scratch.path("model.snap");
    let wal = scratch.path("model.wal");
    std::fs::write(&snap, GOLDEN).expect("writes v1 snapshot");
    let shrink = Delta::new().retract("Edge", vec![1.into(), 2.into()]);
    {
        let (mut log, _) = DeltaLog::open(&wal, &program).expect("creates");
        log.append(&shrink).expect("appends");
    }
    let solver = Solver::new();
    let (recovered, report) = solver
        .recover(&program, &snap, &wal)
        .expect("recovery degrades, not fails");
    assert!(report.snapshot_loaded);
    assert!(
        report.scratch_solve,
        "a v1 snapshot cannot replay retractions exactly; report={report:?}"
    );
    let extended = program.with_delta(&shrink).expect("fits");
    let expected = solver.solve(&extended).expect("solvable");
    assert_eq!(dump(&program, &recovered), dump(&extended, &expected));
}

#[test]
fn recovery_cancels_an_insert_retracted_in_a_later_frame() {
    // An insert appended in one run and its retraction appended in a
    // later run fold into a single combined delta at recovery
    // (`extend_from`); the cancelled pair has no net effect on the
    // store, so the recovered model must equal a scratch solve of the
    // base program — the inserted tuple and its consequences must not
    // survive the replay.
    let scratch = Scratch::new("wal-cancelled-pair");
    let (program, _) = paths_workload();
    let snap = scratch.path("model.snap");
    let wal = scratch.path("model.wal");
    let solver = Solver::new();
    let base = solver.solve(&program).expect("solvable");
    save_snapshot(&snap, &program, &base).expect("saves");
    {
        let (mut log, _) = DeltaLog::open(&wal, &program).expect("creates");
        log.append(&Delta::new().insert("Edge", vec![4.into(), 5.into()]))
            .expect("appends insert");
        log.append(&Delta::new().retract("Edge", vec![4.into(), 5.into()]))
            .expect("appends retraction");
    }
    let (recovered, report) = solver.recover(&program, &snap, &wal).expect("recovers");
    assert!(report.snapshot_loaded);
    assert_eq!(report.wal_frames_replayed, 2);
    assert_eq!(dump(&program, &recovered), dump(&program, &base));
    assert!(!recovered.contains("Edge", &[4.into(), 5.into()]));
    assert!(!recovered.contains("Path", &[1.into(), 5.into()]));
}

#[test]
fn snapshot_v2_preserves_the_extensional_store_across_restarts() {
    let scratch = Scratch::new("snap-v2-edb");
    let (program, _) = shortest_paths_workload();
    let solver = Solver::new();
    let base = solver.solve(&program).expect("solvable");

    // Absorb a mixed delta, snapshot the result, reload it, and retract
    // again: the reloaded solution must know its updated store, so the
    // second retraction resumes exactly instead of being rejected.
    let mixed = mixed_delta();
    let updated = solver.resume(&program, &base, &mixed).expect("resumes");
    let snap = scratch.path("model.snap");
    save_snapshot(&snap, &program, &updated).expect("saves v2");
    let reloaded = load_snapshot(&snap, &program).expect("loads v2");
    assert_eq!(dump(&program, &updated), dump(&program, &reloaded));

    let again = Delta::new().retract("Edge", vec![3.into(), 4.into(), 2.into()]);
    let resumed = solver
        .resume(&program, &reloaded, &again)
        .expect("retracting resume from a v2 snapshot");
    let mut combined = mixed.clone();
    combined.extend_from(&again);
    let extended = program.with_delta(&combined).expect("fits");
    let expected = solver.solve(&extended).expect("solvable");
    assert_eq!(dump(&program, &resumed), dump(&extended, &expected));

    // And the v2 bytes themselves round-trip exactly.
    let bytes = snapshot_to_bytes(&program, &updated);
    let from_bytes = snapshot_from_bytes(&program, &bytes).expect("decodes");
    assert_eq!(bytes, snapshot_to_bytes(&program, &from_bytes));
}

const GOLDEN_WAL_V2: &[u8] = include_bytes!("fixtures/golden_v2.wal");

/// The deltas pinned inside the committed v2 WAL fixture: the shortest
/// paths workload's first monotone delta, then a mixed-op delta
/// exercising all four tags of the v2 frame encoding.
fn golden_wal_deltas() -> Vec<Delta> {
    let (_, deltas) = shortest_paths_workload();
    vec![deltas[0].clone(), mixed_delta()]
}

#[test]
fn golden_v2_wal_keeps_loading() {
    let scratch = Scratch::new("golden-wal-v2");
    let (program, _) = shortest_paths_workload();
    let wal = scratch.path("model.wal");
    std::fs::write(&wal, GOLDEN_WAL_V2).expect("writes fixture copy");
    let (_log, recovery) = DeltaLog::open(&wal, &program)
        .expect("committed golden WAL must open; frame-format changes need a version bump");
    assert_eq!(recovery.dropped_bytes, 0);
    assert_eq!(recovery.deltas, golden_wal_deltas());
    // Opening a clean current-version log rewrites nothing: the fixture
    // is canonical for the v2 frame encoding, byte for byte.
    assert_eq!(
        GOLDEN_WAL_V2,
        std::fs::read(&wal).expect("readable").as_slice()
    );
}

#[test]
#[ignore = "regenerates the golden WAL fixture; run after a deliberate format change"]
fn regenerate_golden_wal() {
    let scratch = Scratch::new("golden-wal-v2-regen");
    let (program, _) = shortest_paths_workload();
    let wal = scratch.path("model.wal");
    {
        let (mut log, _) = DeltaLog::open(&wal, &program).expect("creates");
        for delta in golden_wal_deltas() {
            log.append(&delta).expect("appends");
        }
    }
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/golden_v2.wal");
    std::fs::copy(&wal, &path).expect("writes fixture");
    println!("wrote {}", path.display());
}
