//! Tests of derivation provenance: the event log and the reconstructed
//! derivation trees.

use flix_core::provenance::Source;
use flix_core::{BodyItem, Head, HeadTerm, LatticeOps, ProgramBuilder, Solver, Term, ValueLattice};
use flix_lattice::Parity;

fn closure() -> flix_core::Program {
    let mut b = ProgramBuilder::new();
    let e = b.relation("Edge", 2);
    let p = b.relation("Path", 2);
    b.fact(e, vec![1.into(), 2.into()]);
    b.fact(e, vec![2.into(), 3.into()]);
    b.fact(e, vec![3.into(), 4.into()]);
    b.rule(
        Head::new(p, [HeadTerm::var("x"), HeadTerm::var("y")]),
        [BodyItem::atom(e, [Term::var("x"), Term::var("y")])],
    );
    b.rule(
        Head::new(p, [HeadTerm::var("x"), HeadTerm::var("z")]),
        [
            BodyItem::atom(p, [Term::var("x"), Term::var("y")]),
            BodyItem::atom(e, [Term::var("y"), Term::var("z")]),
        ],
    );
    b.build().expect("valid")
}

#[test]
fn provenance_is_off_by_default() {
    let solution = Solver::new().solve(&closure()).expect("solves");
    assert!(solution.provenance().is_none());
    assert!(solution.explain("Path", &[1.into(), 4.into()]).is_none());
}

#[test]
fn events_cover_every_insertion() {
    let solution = Solver::new()
        .record_provenance(true)
        .solve(&closure())
        .expect("solves");
    let events = solution.provenance().expect("recorded");
    // 3 facts + 3 one-step paths + (1,3), (2,4), (1,4) = 9 insertions.
    assert_eq!(events.len(), 9);
    assert_eq!(
        events.iter().filter(|e| e.source == Source::Fact).count(),
        3
    );
}

#[test]
fn explain_reconstructs_the_full_proof() {
    let solution = Solver::new()
        .record_provenance(true)
        .solve(&closure())
        .expect("solves");
    let tree = solution
        .explain("Path", &[1.into(), 4.into()])
        .expect("derivable");
    assert_eq!(tree.predicate, "Path");
    assert_eq!(tree.rule, Some(1), "derived by the transitive rule");
    // Path(1,4) <- Path(1,3) <- Path(1,2) <- Edge(1,2): height 4.
    assert_eq!(tree.height(), 4);
    // Leaves are facts.
    fn leaves_are_facts(t: &flix_core::provenance::DerivationTree) -> bool {
        if t.children.is_empty() {
            t.rule.is_none()
        } else {
            t.children.iter().all(leaves_are_facts)
        }
    }
    assert!(leaves_are_facts(&tree));
    // The rendering is a readable proof.
    let rendered = tree.to_string();
    assert!(rendered.contains("Path(1, 4)  [rule 1]"), "{rendered}");
    assert!(rendered.contains("[fact]"), "{rendered}");
}

#[test]
fn explain_unknown_fact_is_none() {
    let solution = Solver::new()
        .record_provenance(true)
        .solve(&closure())
        .expect("solves");
    assert!(solution.explain("Path", &[4.into(), 1.into()]).is_none());
    assert!(solution.explain("Nope", &[1.into()]).is_none());
}

#[test]
fn lattice_cells_explain_their_increases() {
    // A(x) :- B(x): A's cell rises from Even to Top when B holds Odd too.
    let mut b = ProgramBuilder::new();
    let a = b.lattice("A", 1, LatticeOps::of::<Parity>());
    let bb = b.lattice("B", 1, LatticeOps::of::<Parity>());
    b.fact(a, vec![Parity::Even.to_value()]);
    b.fact(bb, vec![Parity::Odd.to_value()]);
    b.rule(
        Head::new(a, [HeadTerm::var("x")]),
        [BodyItem::atom(bb, [Term::var("x")])],
    );
    let solution = Solver::new()
        .record_provenance(true)
        .solve(&b.build().expect("valid"))
        .expect("solves");

    // Explaining by key alone covers the last increase (to ⊤).
    let tree = solution.explain("A", &[]).expect("cell exists");
    assert_eq!(tree.tuple, vec![Parity::Top.to_value()]);
    assert_eq!(tree.rule, Some(0));
    assert_eq!(tree.children.len(), 1, "premise B");
    assert_eq!(tree.children[0].predicate, "B");

    // Explaining the earlier state (the Even fact) by full tuple.
    let earlier = solution
        .explain("A", &[Parity::Even.to_value()])
        .expect("the fact insertion was logged");
    assert_eq!(earlier.rule, None);
}

#[test]
fn provenance_with_parallel_solver() {
    let seq = Solver::new()
        .record_provenance(true)
        .solve(&closure())
        .expect("solves");
    let par = Solver::new()
        .record_provenance(true)
        .threads(4)
        .solve(&closure())
        .expect("solves");
    // Event order may differ, but both logs cover the same facts and both
    // explain the same conclusion.
    assert_eq!(
        seq.provenance().expect("recorded").len(),
        par.provenance().expect("recorded").len()
    );
    assert!(par.explain("Path", &[1.into(), 4.into()]).is_some());
}

#[test]
fn wildcard_premises_are_recorded_as_unknown() {
    let mut b = ProgramBuilder::new();
    let e = b.relation("E", 2);
    let has = b.relation("HasSucc", 1);
    b.fact(e, vec![1.into(), 2.into()]);
    b.rule(
        Head::new(has, [HeadTerm::var("x")]),
        [BodyItem::atom(e, [Term::var("x"), Term::Wildcard])],
    );
    let solution = Solver::new()
        .record_provenance(true)
        .solve(&b.build().expect("valid"))
        .expect("solves");
    let tree = solution.explain("HasSucc", &[1.into()]).expect("derived");
    // The wildcard premise still resolves to the matching Edge fact.
    assert_eq!(tree.children.len(), 1);
    assert_eq!(tree.children[0].tuple, vec![1.into(), 2.into()]);
}
