//! Fault injection against the guarded execution layer (§7 "Safety").
//!
//! Every test here feeds the solver deliberately broken user code —
//! panicking transfer functions, lattice operations that violate the
//! laws, unbounded-height lattices, exhausted budgets, cancellation —
//! and asserts two things: the failure is reported as the *structured*
//! error variant (no process abort, no unwinding through the solver),
//! and the returned [`SolveFailure`] carries a non-empty partial
//! solution with the facts derived before the fault.

use flix_core::{
    verify::Violation, BodyItem, Budget, BudgetKind, CancelToken, Head, HeadTerm, LatticeOps,
    Program, ProgramBuilder, SolveError, Solver, Term, Value,
};
use std::time::{Duration, Instant};

/// An integer "lattice" of unbounded height: sound order, but every join
/// overshoots to `max + 1`, so cells climb forever.
fn diverging_ops() -> LatticeOps {
    LatticeOps::from_fns(
        "Diverging",
        Value::Int(0),
        None,
        |a, b| a.as_int() <= b.as_int(),
        |a, b| Value::Int(a.as_int().unwrap_or(0).max(b.as_int().unwrap_or(0)) + 1),
        |a, b| {
            if a.as_int() <= b.as_int() {
                a.clone()
            } else {
                b.clone()
            }
        },
    )
}

/// A program whose single stratum never converges: `Bad(x + 1) :- Bad(x)`
/// over [`diverging_ops`].
fn diverging_program() -> Program {
    let mut b = ProgramBuilder::new();
    let bad = b.lattice("Bad", 1, diverging_ops());
    let step = b.function("step", |args| {
        Value::Int(args[0].as_int().expect("int") + 1)
    });
    b.fact(bad, vec![Value::Int(1)]);
    b.rule(
        Head::new(bad, [HeadTerm::app(step, [Term::var("x")])]),
        [BodyItem::atom(bad, [Term::var("x")])],
    );
    b.build().expect("valid")
}

#[test]
fn panicking_transfer_function_reports_rule_context_and_partial() {
    let mut b = ProgramBuilder::new();
    let edge = b.relation("Edge", 2);
    let reach = b.relation("Reach", 2);
    let boom = b.function("boom", |args| {
        let n = args[0].as_int().expect("int");
        if n >= 3 {
            panic!("transfer function exploded on {n}");
        }
        Value::Int(n)
    });
    b.fact(edge, vec![1.into(), 2.into()]);
    b.fact(edge, vec![2.into(), 3.into()]);
    b.fact(edge, vec![3.into(), 4.into()]);
    // Rule #0 copies edges; rule #1 extends paths through `boom`, which
    // panics once a node id reaches 3.
    b.rule(
        Head::new(reach, [HeadTerm::var("x"), HeadTerm::var("y")]),
        [BodyItem::atom(edge, [Term::var("x"), Term::var("y")])],
    );
    b.rule(
        Head::new(
            reach,
            [HeadTerm::var("x"), HeadTerm::app(boom, [Term::var("z")])],
        ),
        [
            BodyItem::atom(reach, [Term::var("x"), Term::var("y")]),
            BodyItem::atom(edge, [Term::var("y"), Term::var("z")]),
        ],
    );
    let failure = Solver::new()
        .solve(&b.build().expect("valid"))
        .expect_err("transfer function panics");
    match &failure.error {
        SolveError::FunctionPanicked {
            predicate,
            rule,
            function,
            payload,
        } => {
            assert_eq!(predicate, "Reach");
            assert_eq!(*rule, Some(1));
            assert_eq!(function, "boom");
            assert!(payload.contains("transfer function exploded"), "{payload}");
        }
        other => panic!("expected FunctionPanicked, got {other:?}"),
    }
    // The partial solution holds the facts derived before the panic.
    assert!(failure.partial.len("Reach").expect("known predicate") > 0);
    assert!(failure.stats.facts_inserted > 0);
    // And the formatted diagnostic names everything a user needs.
    let msg = failure.error.to_string();
    assert!(
        msg.contains("boom") && msg.contains("Reach") && msg.contains("rule #1"),
        "{msg}"
    );
}

#[test]
fn panicking_lattice_op_is_named_in_the_error() {
    let mut b = ProgramBuilder::new();
    let ops = LatticeOps::from_fns(
        "Fragile",
        Value::Int(0),
        None,
        |a, b| {
            if b.as_int().unwrap_or(0) >= 3 {
                panic!("leq saw a value it cannot handle");
            }
            a.as_int() <= b.as_int()
        },
        |a, b| Value::Int(a.as_int().unwrap_or(0).max(b.as_int().unwrap_or(0))),
        |a, b| Value::Int(a.as_int().unwrap_or(0).min(b.as_int().unwrap_or(0))),
    );
    let cell = b.lattice("Cell", 1, ops);
    let step = b.function("grow", |args| {
        Value::Int((args[0].as_int().expect("int") + 1).min(3))
    });
    b.fact(cell, vec![Value::Int(1)]);
    b.rule(
        Head::new(cell, [HeadTerm::app(step, [Term::var("x")])]),
        [BodyItem::atom(cell, [Term::var("x")])],
    );
    let failure = Solver::new()
        .solve(&b.build().expect("valid"))
        .expect_err("leq panics at 3");
    match &failure.error {
        SolveError::FunctionPanicked {
            predicate,
            function,
            ..
        } => {
            assert_eq!(predicate, "Cell");
            assert_eq!(function, "Fragile.leq");
        }
        other => panic!("expected FunctionPanicked, got {other:?}"),
    }
    assert_eq!(failure.partial.len("Cell"), Some(1));
}

#[test]
fn non_boolean_filter_reports_safety_violation_with_args() {
    let mut b = ProgramBuilder::new();
    let p = b.relation("P", 1);
    let q = b.relation("Q", 1);
    let weird = b.function("weird", |args| args[0].clone());
    b.fact(p, vec![7.into()]);
    b.rule(
        Head::new(q, [HeadTerm::var("x")]),
        [
            BodyItem::atom(p, [Term::var("x")]),
            BodyItem::filter(weird, [Term::var("x")]),
        ],
    );
    let failure = Solver::new()
        .solve(&b.build().expect("valid"))
        .expect_err("filter is not boolean");
    match &failure.error {
        SolveError::SafetyViolation {
            predicate,
            violation: Violation::FilterNotBoolean(args, out),
            ..
        } => {
            assert_eq!(predicate, "Q");
            assert_eq!(args, &vec![Value::Int(7)]);
            assert_eq!(out, &Value::Int(7));
        }
        other => panic!("expected FilterNotBoolean, got {other:?}"),
    }
    // P's extensional fact survives in the partial solution.
    assert_eq!(failure.partial.len("P"), Some(1));
}

#[test]
fn lub_not_upper_bound_sentinel_trips_during_solving() {
    // `lub` ignores its right operand entirely, so joining an
    // incomparable element produces a "join" below one argument.
    let mut b = ProgramBuilder::new();
    let ops = LatticeOps::from_fns(
        "BadLub",
        Value::Int(i64::MIN),
        None,
        |a, b| a.as_int() <= b.as_int(),
        |a, _| a.clone(),
        |a, b| {
            if a.as_int() <= b.as_int() {
                a.clone()
            } else {
                b.clone()
            }
        },
    );
    let cell = b.lattice("Cell", 1, ops);
    b.fact(cell, vec![Value::Int(5)]);
    b.fact(cell, vec![Value::Int(9)]);
    let failure = Solver::new()
        .solve(&b.build().expect("valid"))
        .expect_err("lub is not an upper bound");
    assert!(
        matches!(
            &failure.error,
            SolveError::SafetyViolation {
                violation: Violation::LubNotUpperBound(_, _),
                ..
            }
        ),
        "got {:?}",
        failure.error
    );
}

#[test]
fn unbounded_height_lattice_hits_round_limit_with_stratum() {
    let failure = Solver::new()
        .max_rounds(25)
        .solve(&diverging_program())
        .expect_err("diverges");
    match &failure.error {
        SolveError::RoundLimitExceeded {
            limit,
            stratum,
            stats,
        } => {
            assert_eq!(*limit, 25);
            assert_eq!(*stratum, 0);
            assert!(stats.rounds >= 25);
        }
        other => panic!("expected RoundLimitExceeded, got {other:?}"),
    }
    assert_eq!(
        failure.partial.len("Bad"),
        Some(1),
        "partial keeps the cell"
    );
}

#[test]
fn max_derivations_budget_stops_divergence() {
    let failure = Solver::new()
        .budget(Budget::new().max_derivations(100))
        .solve(&diverging_program())
        .expect_err("budget runs out");
    match &failure.error {
        SolveError::BudgetExceeded { kind, stats } => {
            assert_eq!(*kind, BudgetKind::MaxDerivations { limit: 100 });
            assert!(stats.facts_derived > 100);
        }
        other => panic!("expected BudgetExceeded, got {other:?}"),
    }
    assert!(failure.partial.total_facts() > 0);
}

#[test]
fn max_facts_budget_stops_a_large_closure() {
    // Transitive closure over a 60-node chain derives ~1800 facts; cap
    // total storage at 150 (above the 60 extensional edges, far below the
    // full closure).
    let mut b = ProgramBuilder::new();
    let edge = b.relation("Edge", 2);
    let path = b.relation("Path", 2);
    for i in 0..60i64 {
        b.fact(edge, vec![i.into(), (i + 1).into()]);
    }
    b.rule(
        Head::new(path, [HeadTerm::var("x"), HeadTerm::var("y")]),
        [BodyItem::atom(edge, [Term::var("x"), Term::var("y")])],
    );
    b.rule(
        Head::new(path, [HeadTerm::var("x"), HeadTerm::var("z")]),
        [
            BodyItem::atom(path, [Term::var("x"), Term::var("y")]),
            BodyItem::atom(edge, [Term::var("y"), Term::var("z")]),
        ],
    );
    let failure = Solver::new()
        .budget(Budget::new().max_facts(150))
        .solve(&b.build().expect("valid"))
        .expect_err("fact budget runs out");
    assert!(matches!(
        &failure.error,
        SolveError::BudgetExceeded {
            kind: BudgetKind::MaxFacts { limit: 150 },
            ..
        }
    ));
    let partial_paths = failure.partial.len("Path").expect("known");
    assert!(partial_paths > 0, "partial solution is non-empty");
    assert!(
        failure.partial.total_facts() < 1830,
        "stopped well before the full closure"
    );
}

#[test]
fn deadline_expiry_returns_within_twice_the_timeout() {
    let deadline = Duration::from_millis(200);
    let start = Instant::now();
    let failure = Solver::new()
        .budget(Budget::new().deadline(deadline))
        .solve(&diverging_program())
        .expect_err("deadline expires");
    let elapsed = start.elapsed();
    assert!(
        elapsed < deadline * 2,
        "returned in {elapsed:?}, more than twice the {deadline:?} deadline"
    );
    match &failure.error {
        SolveError::BudgetExceeded { kind, .. } => {
            assert_eq!(
                *kind,
                BudgetKind::Deadline {
                    configured: deadline
                }
            );
        }
        other => panic!("expected BudgetExceeded, got {other:?}"),
    }
    assert!(failure.partial.total_facts() > 0, "facts derived so far");
    assert!(failure.stats.rounds > 0);
}

#[test]
fn deadline_interrupts_a_single_huge_rule_evaluation() {
    // One rule whose body is a three-way cross product (~8M combinations)
    // with an always-false filter: no round boundary is ever reached, so
    // only the intra-evaluation guard can stop it.
    let mut b = ProgramBuilder::new();
    let n = b.relation("N", 1);
    let out = b.relation("Out", 3);
    let never = b.function("never", |_| Value::Bool(false));
    for i in 0..200i64 {
        b.fact(n, vec![i.into()]);
    }
    b.rule(
        Head::new(
            out,
            [HeadTerm::var("x"), HeadTerm::var("y"), HeadTerm::var("z")],
        ),
        [
            BodyItem::atom(n, [Term::var("x")]),
            BodyItem::atom(n, [Term::var("y")]),
            BodyItem::atom(n, [Term::var("z")]),
            BodyItem::filter(never, [Term::var("x")]),
        ],
    );
    let deadline = Duration::from_millis(100);
    let start = Instant::now();
    let failure = Solver::new()
        .budget(Budget::new().deadline(deadline))
        .solve(&b.build().expect("valid"))
        .expect_err("deadline expires mid-rule");
    let elapsed = start.elapsed();
    assert!(
        matches!(
            &failure.error,
            SolveError::BudgetExceeded {
                kind: BudgetKind::Deadline { .. },
                ..
            }
        ),
        "got {:?}",
        failure.error
    );
    assert!(
        elapsed < Duration::from_secs(2),
        "intra-rule guard should fire long before the cross product \
         finishes (took {elapsed:?})"
    );
    assert_eq!(failure.partial.len("N"), Some(200), "facts survived");
}

#[test]
fn cancellation_mid_stratum_stops_the_solve() {
    let token = CancelToken::new();
    let program = diverging_program();
    let solver = Solver::new().budget(Budget::new().cancel_token(token.clone()));
    let canceller = {
        let token = token.clone();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            token.cancel();
        })
    };
    let failure = solver.solve(&program).expect_err("cancelled");
    canceller.join().expect("canceller thread");
    assert!(token.is_cancelled());
    assert!(matches!(
        &failure.error,
        SolveError::BudgetExceeded {
            kind: BudgetKind::Cancelled,
            ..
        }
    ));
    assert!(failure.partial.total_facts() > 0);
}

#[test]
fn parallel_solver_isolates_worker_panics() {
    // Several rules, one of which panics: with threads > 1 the panic is
    // caught inside the worker and surfaces as the same structured error.
    let mut b = ProgramBuilder::new();
    let p = b.relation("P", 1);
    let q = b.relation("Q", 1);
    let r = b.relation("R", 1);
    let ok = b.function("ok", |args| args[0].clone());
    let boom = b.function("kaboom", |_| panic!("worker-side panic"));
    b.fact(p, vec![1.into()]);
    b.fact(p, vec![2.into()]);
    b.rule(
        Head::new(q, [HeadTerm::app(ok, [Term::var("x")])]),
        [BodyItem::atom(p, [Term::var("x")])],
    );
    b.rule(
        Head::new(r, [HeadTerm::app(boom, [Term::var("x")])]),
        [BodyItem::atom(p, [Term::var("x")])],
    );
    let failure = Solver::new()
        .threads(4)
        .solve(&b.build().expect("valid"))
        .expect_err("a rule panics");
    match &failure.error {
        SolveError::FunctionPanicked {
            function, payload, ..
        } => {
            assert_eq!(function, "kaboom");
            assert!(payload.contains("worker-side panic"));
        }
        other => panic!("expected FunctionPanicked, got {other:?}"),
    }
    assert_eq!(failure.partial.len("P"), Some(2));
}

#[test]
fn internal_worker_panic_is_a_structured_error_with_partial_solution() {
    // The panics above all happen inside `catch_unwind`-guarded *user*
    // code. This injects a panic in the worker thread itself — outside
    // every guard, simulating an internal solver bug — and pins that the
    // scope join converts it into a structured `SolveError` (instead of
    // the historical behaviour: `h.join().expect(...)` aborting the
    // process) and that the partial solution still carries the facts
    // inserted before the failed round.
    let mut b = ProgramBuilder::new();
    let edge = b.relation("Edge", 2);
    let path = b.relation("Path", 2);
    let back = b.relation("Back", 2);
    for i in 0..10i64 {
        b.fact(edge, vec![i.into(), (i + 1).into()]);
    }
    // Two rules, so the parallel path (tasks > 1) is exercised.
    b.rule(
        Head::new(path, [HeadTerm::var("x"), HeadTerm::var("y")]),
        [BodyItem::atom(edge, [Term::var("x"), Term::var("y")])],
    );
    b.rule(
        Head::new(back, [HeadTerm::var("y"), HeadTerm::var("x")]),
        [BodyItem::atom(edge, [Term::var("x"), Term::var("y")])],
    );
    let failure = Solver::new()
        .threads(4)
        .inject_worker_panic_for_tests()
        .solve(&b.build().expect("valid"))
        .expect_err("injected worker panic");
    match &failure.error {
        SolveError::FunctionPanicked {
            predicate,
            rule,
            function,
            payload,
        } => {
            assert_eq!(predicate, "<internal>");
            assert_eq!(*rule, None);
            assert_eq!(function, "solver worker");
            assert!(payload.contains("injected worker panic"), "{payload}");
        }
        other => panic!("expected FunctionPanicked, got {other:?}"),
    }
    // Extensional facts inserted before the failed round survive.
    assert_eq!(failure.partial.len("Edge"), Some(10));
}

#[test]
fn parallel_deadline_returns_promptly_with_scaled_poll_period() {
    // Four huge cross-product rules evaluated by four workers: each
    // worker's amortised deadline poll runs at PERIOD / threads, so the
    // aggregate steps-between-checks (and therefore the response bound)
    // matches the sequential `deadline_interrupts_a_single_huge_rule_
    // evaluation` test above.
    let mut b = ProgramBuilder::new();
    let n = b.relation("N", 1);
    let never = b.function("never", |_| Value::Bool(false));
    let outs: Vec<_> = (0..4).map(|i| b.relation(format!("Out{i}"), 3)).collect();
    for i in 0..200i64 {
        b.fact(n, vec![i.into()]);
    }
    for &out in &outs {
        b.rule(
            Head::new(
                out,
                [HeadTerm::var("x"), HeadTerm::var("y"), HeadTerm::var("z")],
            ),
            [
                BodyItem::atom(n, [Term::var("x")]),
                BodyItem::atom(n, [Term::var("y")]),
                BodyItem::atom(n, [Term::var("z")]),
                BodyItem::filter(never, [Term::var("x")]),
            ],
        );
    }
    let deadline = Duration::from_millis(100);
    let start = Instant::now();
    let failure = Solver::new()
        .threads(4)
        .budget(Budget::new().deadline(deadline))
        .solve(&b.build().expect("valid"))
        .expect_err("deadline expires mid-round");
    let elapsed = start.elapsed();
    assert!(
        matches!(
            &failure.error,
            SolveError::BudgetExceeded {
                kind: BudgetKind::Deadline { .. },
                ..
            }
        ),
        "got {:?}",
        failure.error
    );
    assert!(
        elapsed < Duration::from_secs(2),
        "all four workers should observe the deadline long before their \
         cross products finish (took {elapsed:?})"
    );
    assert_eq!(failure.partial.len("N"), Some(200), "facts survived");
}

#[test]
fn budget_error_display_is_informative() {
    let failure = Solver::new()
        .budget(Budget::new().max_derivations(10))
        .solve(&diverging_program())
        .expect_err("budget");
    let msg = failure.to_string();
    assert!(
        msg.contains("derivation budget of 10") && msg.contains("partial solution"),
        "{msg}"
    );
}
