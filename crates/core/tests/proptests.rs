//! Property-based cross-validation of the solver strategies.
//!
//! The central correctness argument of §3.7 of the paper is that
//! semi-naïve evaluation computes the same minimal model as naïve
//! evaluation. We check it on randomly generated programs, together with
//! the model-theoretic characterisation of §3.2 (the output is a model and
//! locally minimal), for both relational and lattice programs, with and
//! without indexes, sequentially and in parallel.
//!
//! Randomised with the in-tree deterministic [`SmallRng`] (seeded loops)
//! rather than an external property-testing framework, so the suite runs
//! without network access.

use flix_core::{
    model, BodyItem, Head, HeadTerm, LatticeOps, Program, ProgramBuilder, Solution, Solver,
    Strategy as EvalStrategy, Term, Value, ValueLattice,
};
use flix_lattice::rng::SmallRng;
use flix_lattice::{MinCost, Parity};

const CASES: usize = 64;

/// Random edge lists over a small node universe.
fn arb_edges(rng: &mut SmallRng) -> Vec<(i64, i64)> {
    let n = rng.gen_range(0usize..24);
    (0..n)
        .map(|_| (rng.gen_range(0i64..8), rng.gen_range(0i64..8)))
        .collect()
}

fn arb_weighted_edges(rng: &mut SmallRng) -> Vec<(i64, i64, i64)> {
    let n = rng.gen_range(0usize..20);
    (0..n)
        .map(|_| {
            (
                rng.gen_range(0i64..7),
                rng.gen_range(0i64..7),
                rng.gen_range(1i64..10),
            )
        })
        .collect()
}

fn arb_parity_facts(rng: &mut SmallRng) -> Vec<(i64, Parity)> {
    let n = rng.gen_range(0usize..16);
    (0..n)
        .map(|_| {
            let p = match rng.gen_range(0u8..3) {
                0 => Parity::Even,
                1 => Parity::Odd,
                _ => Parity::Top,
            };
            (rng.gen_range(0i64..6), p)
        })
        .collect()
}

/// Transitive closure program over the given edges.
fn closure_program(edges: &[(i64, i64)]) -> Program {
    let mut b = ProgramBuilder::new();
    let e = b.relation("Edge", 2);
    let p = b.relation("Path", 2);
    for &(x, y) in edges {
        b.fact(e, vec![x.into(), y.into()]);
    }
    b.rule(
        Head::new(p, [HeadTerm::var("x"), HeadTerm::var("y")]),
        [BodyItem::atom(e, [Term::var("x"), Term::var("y")])],
    );
    b.rule(
        Head::new(p, [HeadTerm::var("x"), HeadTerm::var("z")]),
        [
            BodyItem::atom(p, [Term::var("x"), Term::var("y")]),
            BodyItem::atom(e, [Term::var("y"), Term::var("z")]),
        ],
    );
    b.build().expect("valid")
}

/// Parity dataflow over assignments: IntVar(x, p) facts plus copy edges.
fn parity_program(facts: &[(i64, Parity)], copies: &[(i64, i64)]) -> Program {
    let mut b = ProgramBuilder::new();
    let assign = b.relation("Assign", 2);
    let intvar = b.lattice("IntVar", 2, LatticeOps::of::<Parity>());
    for &(x, p) in facts {
        b.fact(intvar, vec![x.into(), p.to_value()]);
    }
    for &(x, y) in copies {
        b.fact(assign, vec![x.into(), y.into()]);
    }
    // IntVar(v, i) :- Assign(v, v2), IntVar(v2, i).
    b.rule(
        Head::new(intvar, [HeadTerm::var("v"), HeadTerm::var("i")]),
        [
            BodyItem::atom(assign, [Term::var("v"), Term::var("v2")]),
            BodyItem::atom(intvar, [Term::var("v2"), Term::var("i")]),
        ],
    );
    b.build().expect("valid")
}

fn shortest_path_program(edges: &[(i64, i64, i64)]) -> Program {
    let mut b = ProgramBuilder::new();
    let e = b.relation("Edge", 3);
    let dist = b.lattice("Dist", 2, LatticeOps::of::<MinCost>());
    let extend = b.function("extend", |args| {
        let d = MinCost::expect_from(&args[0]);
        let c = args[1].as_int().expect("weight") as u64;
        d.add_weight(c).to_value()
    });
    b.fact(dist, vec![0.into(), MinCost::finite(0).to_value()]);
    for &(x, y, c) in edges {
        b.fact(e, vec![x.into(), y.into(), c.into()]);
    }
    b.rule(
        Head::new(
            dist,
            [
                HeadTerm::var("y"),
                HeadTerm::app(extend, [Term::var("d"), Term::var("c")]),
            ],
        ),
        [
            BodyItem::atom(dist, [Term::var("x"), Term::var("d")]),
            BodyItem::atom(e, [Term::var("x"), Term::var("y"), Term::var("c")]),
        ],
    );
    b.build().expect("valid")
}

/// All facts of a solution in canonical order, for whole-model comparison.
fn canonical(s: &Solution, preds: &[&str]) -> Vec<(String, Vec<Value>)> {
    let mut out = Vec::new();
    for &p in preds {
        if let Some(rows) = s.relation(p) {
            for r in rows {
                out.push((p.to_string(), r.to_vec()));
            }
        }
        if let Some(cells) = s.lattice(p) {
            for (k, v) in cells {
                let mut row = k.to_vec();
                row.push(v.clone());
                out.push((p.to_string(), row));
            }
        }
    }
    out.sort();
    out
}

/// Reference transitive closure by repeated squaring of the edge set.
fn reference_closure(edges: &[(i64, i64)]) -> std::collections::BTreeSet<(i64, i64)> {
    let mut closure: std::collections::BTreeSet<(i64, i64)> = edges.iter().copied().collect();
    loop {
        let mut grew = false;
        let snapshot: Vec<(i64, i64)> = closure.iter().copied().collect();
        for &(x, y) in &snapshot {
            for &(y2, z) in &snapshot {
                if y == y2 && closure.insert((x, z)) {
                    grew = true;
                }
            }
        }
        if !grew {
            return closure;
        }
    }
}

/// Reference Bellman-Ford from node 0.
fn reference_bellman_ford(edges: &[(i64, i64, i64)]) -> std::collections::BTreeMap<i64, u64> {
    let mut dist = std::collections::BTreeMap::from([(0i64, 0u64)]);
    for _ in 0..10 {
        for &(x, y, c) in edges {
            if let Some(&dx) = dist.get(&x) {
                let cand = dx + c as u64;
                let entry = dist.entry(y).or_insert(u64::MAX);
                if cand < *entry {
                    *entry = cand;
                }
            }
        }
    }
    dist
}

#[test]
fn strategies_agree_on_transitive_closure() {
    let mut rng = SmallRng::seed_from_u64(0xC0DE_0001);
    for _ in 0..CASES {
        let edges = arb_edges(&mut rng);
        let prog = closure_program(&edges);
        let semi = Solver::new().solve(&prog).expect("solves");
        let naive = Solver::new()
            .strategy(EvalStrategy::Naive)
            .solve(&prog)
            .expect("solves");
        let par = Solver::new().threads(3).solve(&prog).expect("solves");
        let noidx = Solver::new()
            .use_indexes(false)
            .solve(&prog)
            .expect("solves");
        let preds = ["Edge", "Path"];
        let want = canonical(&semi, &preds);
        assert_eq!(canonical(&naive, &preds), want, "edges={edges:?}");
        assert_eq!(canonical(&par, &preds), want, "edges={edges:?}");
        assert_eq!(canonical(&noidx, &preds), want, "edges={edges:?}");
    }
}

#[test]
fn closure_matches_reference() {
    let mut rng = SmallRng::seed_from_u64(0xC0DE_0002);
    for _ in 0..CASES {
        let edges = arb_edges(&mut rng);
        let prog = closure_program(&edges);
        let solution = Solver::new().solve(&prog).expect("solves");
        let expected = reference_closure(&edges);
        assert_eq!(
            solution.len("Path"),
            Some(expected.len()),
            "edges={edges:?}"
        );
        for (x, y) in expected {
            assert!(
                solution.contains("Path", &[x.into(), y.into()]),
                "edges={edges:?}"
            );
        }
    }
}

#[test]
fn closure_solution_is_model_and_minimal() {
    let mut rng = SmallRng::seed_from_u64(0xC0DE_0003);
    for _ in 0..CASES {
        let edges = arb_edges(&mut rng);
        let prog = closure_program(&edges);
        let solution = Solver::new().solve(&prog).expect("solves");
        assert!(model::is_model(&prog, &solution), "edges={edges:?}");
    }
}

#[test]
fn strategies_agree_on_parity_dataflow() {
    let mut rng = SmallRng::seed_from_u64(0xC0DE_0004);
    for _ in 0..CASES {
        let facts = arb_parity_facts(&mut rng);
        let copies: Vec<(i64, i64)> = arb_edges(&mut rng)
            .into_iter()
            .map(|(a, b)| (a % 6, b % 6))
            .collect();
        let prog = parity_program(&facts, &copies);
        let semi = Solver::new().solve(&prog).expect("solves");
        let naive = Solver::new()
            .strategy(EvalStrategy::Naive)
            .solve(&prog)
            .expect("solves");
        let preds = ["IntVar"];
        assert_eq!(
            canonical(&naive, &preds),
            canonical(&semi, &preds),
            "facts={facts:?} copies={copies:?}"
        );
        assert!(model::is_model(&prog, &semi));
        assert!(model::is_locally_minimal(&prog, &semi));
    }
}

#[test]
fn shortest_paths_match_bellman_ford() {
    let mut rng = SmallRng::seed_from_u64(0xC0DE_0005);
    for _ in 0..CASES {
        let edges = arb_weighted_edges(&mut rng);
        let prog = shortest_path_program(&edges);
        let semi = Solver::new().solve(&prog).expect("solves");
        let naive = Solver::new()
            .strategy(EvalStrategy::Naive)
            .solve(&prog)
            .expect("solves");
        assert_eq!(canonical(&naive, &["Dist"]), canonical(&semi, &["Dist"]));
        let expected = reference_bellman_ford(&edges);
        for (node, d) in expected {
            assert_eq!(
                semi.lattice_value("Dist", &[node.into()]),
                Some(MinCost::finite(d).to_value()),
                "distance to {node} with edges={edges:?}"
            );
        }
    }
}
