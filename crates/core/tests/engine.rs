//! Engine-level integration tests: the worked examples of §2 and §3 of
//! the paper, strategy cross-validation, and feature interactions.

use flix_core::{
    model, BodyItem, Head, HeadTerm, LatticeOps, ProgramBuilder, Solution, Solver, Strategy, Term,
    Value, ValueLattice,
};
use flix_lattice::{MinCost, Parity, Sign};

fn v(s: &str) -> Value {
    Value::from(s)
}

fn solve(b: ProgramBuilder) -> Solution {
    Solver::new()
        .solve(&b.build().expect("valid program"))
        .expect("solves")
}

/// Builds the Datalog points-to program of Figure 1 with the §2.1 facts.
fn points_to_program() -> ProgramBuilder {
    let mut b = ProgramBuilder::new();
    let new = b.relation("New", 2);
    let assign = b.relation("Assign", 2);
    let load = b.relation("Load", 3);
    let store = b.relation("Store", 3);
    let vpt = b.relation("VarPointsTo", 2);
    let hpt = b.relation("HeapPointsTo", 3);

    b.rule(
        Head::new(vpt, [HeadTerm::var("v1"), HeadTerm::var("h1")]),
        [BodyItem::atom(new, [Term::var("v1"), Term::var("h1")])],
    );
    b.rule(
        Head::new(vpt, [HeadTerm::var("v1"), HeadTerm::var("h2")]),
        [
            BodyItem::atom(assign, [Term::var("v1"), Term::var("v2")]),
            BodyItem::atom(vpt, [Term::var("v2"), Term::var("h2")]),
        ],
    );
    b.rule(
        Head::new(vpt, [HeadTerm::var("v1"), HeadTerm::var("h2")]),
        [
            BodyItem::atom(load, [Term::var("v1"), Term::var("v2"), Term::var("f")]),
            BodyItem::atom(vpt, [Term::var("v2"), Term::var("h1")]),
            BodyItem::atom(hpt, [Term::var("h1"), Term::var("f"), Term::var("h2")]),
        ],
    );
    b.rule(
        Head::new(
            hpt,
            [HeadTerm::var("h1"), HeadTerm::var("f"), HeadTerm::var("h2")],
        ),
        [
            BodyItem::atom(store, [Term::var("v1"), Term::var("f"), Term::var("v2")]),
            BodyItem::atom(vpt, [Term::var("v1"), Term::var("h1")]),
            BodyItem::atom(vpt, [Term::var("v2"), Term::var("h2")]),
        ],
    );

    // The five facts of §2.1.
    b.fact(new, vec![v("o1"), v("A")]);
    b.fact(new, vec![v("o2"), v("B")]);
    b.fact(assign, vec![v("o3"), v("o2")]);
    b.fact(store, vec![v("o2"), v("f"), v("o1")]);
    b.fact(load, vec![v("r"), v("o3"), v("f")]);
    b
}

#[test]
fn figure_1_points_to_example() {
    let solution = solve(points_to_program());
    // "Running the solver infers a solution containing the fact
    //  VarPointsTo("r", "A"), as expected."
    assert!(solution.contains("VarPointsTo", &[v("r"), v("A")]));
    assert!(solution.contains("VarPointsTo", &[v("o3"), v("B")]));
    assert!(solution.contains("HeapPointsTo", &[v("B"), v("f"), v("A")]));
    // r must NOT point to B.
    assert!(!solution.contains("VarPointsTo", &[v("r"), v("B")]));
}

#[test]
fn naive_and_semi_naive_agree_on_points_to() {
    let prog = points_to_program().build().expect("valid");
    let naive = Solver::new()
        .strategy(Strategy::Naive)
        .solve(&prog)
        .expect("solves");
    let semi = Solver::new()
        .strategy(Strategy::SemiNaive)
        .solve(&prog)
        .expect("solves");
    let collect = |s: &Solution, p: &str| {
        let mut rows: Vec<Vec<Value>> = s.relation(p).expect("rel").map(|r| r.to_vec()).collect();
        rows.sort();
        rows
    };
    for p in ["VarPointsTo", "HeapPointsTo"] {
        assert_eq!(collect(&naive, p), collect(&semi, p));
    }
    // Semi-naïve must not do more rule evaluations than naïve needs
    // full-program re-evaluations would imply; it is the efficiency claim
    // of §3.7. We just check it did fewer derivations.
    assert!(semi.stats().facts_derived <= naive.stats().facts_derived);
}

#[test]
fn parallel_solver_agrees_with_sequential() {
    let prog = points_to_program().build().expect("valid");
    let seq = Solver::new().solve(&prog).expect("solves");
    let par = Solver::new().threads(4).solve(&prog).expect("solves");
    assert_eq!(seq.total_facts(), par.total_facts());
    assert!(par.contains("VarPointsTo", &[v("r"), v("A")]));
}

#[test]
fn unindexed_solver_agrees_with_indexed() {
    let prog = points_to_program().build().expect("valid");
    let indexed = Solver::new().solve(&prog).expect("solves");
    let unindexed = Solver::new()
        .use_indexes(false)
        .solve(&prog)
        .expect("solves");
    assert_eq!(indexed.total_facts(), unindexed.total_facts());
    assert_eq!(unindexed.stats().index_probes, 0);
}

#[test]
fn sign_lattice_example_of_section_3_2() {
    // Facts: A(1, Pos). A(2, Pos). A(2, Neg).
    // Minimal model: A(1, Pos), A(2, ⊤)   (interpretation I4).
    let mut b = ProgramBuilder::new();
    let a = b.lattice("A", 2, LatticeOps::of::<Sign>());
    b.fact(a, vec![1.into(), Sign::Pos.to_value()]);
    b.fact(a, vec![2.into(), Sign::Pos.to_value()]);
    b.fact(a, vec![2.into(), Sign::Neg.to_value()]);
    let prog = b.build().expect("valid");
    let solution = Solver::new().solve(&prog).expect("solves");
    assert_eq!(
        solution.lattice_value("A", &[1.into()]),
        Some(Sign::Pos.to_value())
    );
    assert_eq!(
        solution.lattice_value("A", &[2.into()]),
        Some(Sign::Top.to_value())
    );
    assert!(model::is_model(&prog, &solution));
    assert!(model::is_locally_minimal(&prog, &solution));
}

#[test]
fn semi_naive_compactness_example_of_section_3_7() {
    // A(Odd). B(Even). A(x) :- B(x). R(x) :- isMaybeZero(x), A(x).
    // The paper: A becomes ⊤ and the third rule must re-evaluate under
    // {x ↦ ⊤}, giving R(⊤).
    let mut b = ProgramBuilder::new();
    let a = b.lattice("A", 1, LatticeOps::of::<Parity>());
    let bb = b.lattice("B", 1, LatticeOps::of::<Parity>());
    let r = b.lattice("R", 1, LatticeOps::of::<Parity>());
    let is_maybe_zero = b.function("isMaybeZero", |args| {
        Value::Bool(Parity::expect_from(&args[0]).is_maybe_zero())
    });
    b.fact(a, vec![Parity::Odd.to_value()]);
    b.fact(bb, vec![Parity::Even.to_value()]);
    b.rule(
        Head::new(a, [HeadTerm::var("x")]),
        [BodyItem::atom(bb, [Term::var("x")])],
    );
    b.rule(
        Head::new(r, [HeadTerm::var("x")]),
        [
            BodyItem::atom(a, [Term::var("x")]),
            BodyItem::filter(is_maybe_zero, [Term::var("x")]),
        ],
    );
    let prog = b.build().expect("valid");
    let solution = Solver::new().solve(&prog).expect("solves");
    assert_eq!(
        solution.lattice_value("A", &[]),
        Some(Parity::Top.to_value())
    );
    assert_eq!(
        solution.lattice_value("R", &[]),
        Some(Parity::Top.to_value())
    );
    assert!(model::is_model(&prog, &solution));
}

#[test]
fn filter_rejects_non_matching_elements() {
    // R(x) :- A(x), isMaybeZero(x) with A = Odd: filter is false, R empty.
    let mut b = ProgramBuilder::new();
    let a = b.lattice("A", 1, LatticeOps::of::<Parity>());
    let r = b.lattice("R", 1, LatticeOps::of::<Parity>());
    let is_maybe_zero = b.function("isMaybeZero", |args| {
        Value::Bool(Parity::expect_from(&args[0]).is_maybe_zero())
    });
    b.fact(a, vec![Parity::Odd.to_value()]);
    b.rule(
        Head::new(r, [HeadTerm::var("x")]),
        [
            BodyItem::atom(a, [Term::var("x")]),
            BodyItem::filter(is_maybe_zero, [Term::var("x")]),
        ],
    );
    let solution = solve(b);
    assert_eq!(solution.len("R"), Some(0));
}

#[test]
fn transfer_function_in_head() {
    // Sum(sum(x, y)) :- A(x), B(y).
    let mut b = ProgramBuilder::new();
    let a = b.lattice("A", 1, LatticeOps::of::<Parity>());
    let bb = b.lattice("B", 1, LatticeOps::of::<Parity>());
    let sum = b.lattice("Sum", 1, LatticeOps::of::<Parity>());
    let f = b.function("sum", |args| {
        Parity::expect_from(&args[0])
            .sum(&Parity::expect_from(&args[1]))
            .to_value()
    });
    b.fact(a, vec![Parity::Odd.to_value()]);
    b.fact(bb, vec![Parity::Odd.to_value()]);
    b.rule(
        Head::new(sum, [HeadTerm::app(f, [Term::var("x"), Term::var("y")])]),
        [
            BodyItem::atom(a, [Term::var("x")]),
            BodyItem::atom(bb, [Term::var("y")]),
        ],
    );
    let solution = solve(b);
    assert_eq!(
        solution.lattice_value("Sum", &[]),
        Some(Parity::Even.to_value())
    );
}

#[test]
fn choose_binding_iterates_set_elements() {
    // Next(y) :- Cur(x), y <- succs(x).  succs returns a two-element set.
    let mut b = ProgramBuilder::new();
    let cur = b.relation("Cur", 1);
    let next = b.relation("Next", 1);
    let succs = b.function("succs", |args| {
        let n = args[0].as_int().expect("int");
        Value::set([Value::Int(n + 1), Value::Int(n + 2)])
    });
    b.fact(cur, vec![10.into()]);
    b.rule(
        Head::new(next, [HeadTerm::var("y")]),
        [
            BodyItem::atom(cur, [Term::var("x")]),
            BodyItem::choose(succs, [Term::var("x")], "y"),
        ],
    );
    let solution = solve(b);
    assert!(solution.contains("Next", &[11.into()]));
    assert!(solution.contains("Next", &[12.into()]));
    assert_eq!(solution.len("Next"), Some(2));
}

#[test]
fn choose_binding_destructures_tuples() {
    // Pairs: (d, t) <- expand(x).
    let mut b = ProgramBuilder::new();
    let src = b.relation("Src", 1);
    let out = b.relation("Out", 2);
    let expand = b.function("expand", |args| {
        let n = args[0].as_int().expect("int");
        Value::set([
            Value::tuple([Value::Int(n), Value::from("a")]),
            Value::tuple([Value::Int(n + 1), Value::from("b")]),
        ])
    });
    b.fact(src, vec![1.into()]);
    b.rule(
        Head::new(out, [HeadTerm::var("d"), HeadTerm::var("t")]),
        [
            BodyItem::atom(src, [Term::var("x")]),
            BodyItem::choose_tuple(expand, [Term::var("x")], ["d", "t"]),
        ],
    );
    let solution = solve(b);
    assert!(solution.contains("Out", &[1.into(), v("a")]));
    assert!(solution.contains("Out", &[2.into(), v("b")]));
}

#[test]
fn stratified_negation_computes_complement() {
    let mut b = ProgramBuilder::new();
    let node = b.relation("Node", 1);
    let edge = b.relation("Edge", 2);
    let reach = b.relation("Reach", 1);
    let unreach = b.relation("Unreach", 1);
    for n in 1..=4 {
        b.fact(node, vec![n.into()]);
    }
    b.fact(reach, vec![1.into()]);
    b.fact(edge, vec![1.into(), 2.into()]);
    b.fact(edge, vec![3.into(), 4.into()]);
    b.rule(
        Head::new(reach, [HeadTerm::var("y")]),
        [
            BodyItem::atom(reach, [Term::var("x")]),
            BodyItem::atom(edge, [Term::var("x"), Term::var("y")]),
        ],
    );
    b.rule(
        Head::new(unreach, [HeadTerm::var("x")]),
        [
            BodyItem::atom(node, [Term::var("x")]),
            BodyItem::not(reach, [Term::var("x")]),
        ],
    );
    let solution = solve(b);
    assert!(solution.contains("Unreach", &[3.into()]));
    assert!(solution.contains("Unreach", &[4.into()]));
    assert!(!solution.contains("Unreach", &[1.into()]));
    assert!(!solution.contains("Unreach", &[2.into()]));
}

#[test]
fn negative_cycle_reported_at_solve_time() {
    let mut b = ProgramBuilder::new();
    let n = b.relation("N", 1);
    let a = b.relation("A", 1);
    let bb = b.relation("B", 1);
    b.rule(
        Head::new(a, [HeadTerm::var("x")]),
        [
            BodyItem::atom(n, [Term::var("x")]),
            BodyItem::not(bb, [Term::var("x")]),
        ],
    );
    b.rule(
        Head::new(bb, [HeadTerm::var("x")]),
        [
            BodyItem::atom(n, [Term::var("x")]),
            BodyItem::not(a, [Term::var("x")]),
        ],
    );
    let prog = b.build().expect("builds");
    let err = Solver::new().solve(&prog).expect_err("not stratifiable");
    assert!(err.to_string().contains("not stratifiable"));
}

#[test]
fn shortest_paths_on_a_cycle_terminates() {
    // A graph with a cycle: the min-cost lattice still reaches a fixed
    // point because path extension cannot beat the existing minimum
    // forever.
    let mut b = ProgramBuilder::new();
    let edge = b.relation("Edge", 3);
    let dist = b.lattice("Dist", 2, LatticeOps::of::<MinCost>());
    let extend = b.function("extend", |args| {
        let d = MinCost::expect_from(&args[0]);
        let c = args[1].as_int().expect("weight") as u64;
        d.add_weight(c).to_value()
    });
    b.fact(dist, vec![v("a"), MinCost::finite(0).to_value()]);
    for (x, y, c) in [("a", "b", 1), ("b", "c", 1), ("c", "a", 1), ("a", "c", 5)] {
        b.fact(edge, vec![v(x), v(y), c.into()]);
    }
    b.rule(
        Head::new(
            dist,
            [
                HeadTerm::var("y"),
                HeadTerm::app(extend, [Term::var("d"), Term::var("c")]),
            ],
        ),
        [
            BodyItem::atom(dist, [Term::var("x"), Term::var("d")]),
            BodyItem::atom(edge, [Term::var("x"), Term::var("y"), Term::var("c")]),
        ],
    );
    let solution = solve(b);
    assert_eq!(
        solution.lattice_value("Dist", &[v("c")]),
        Some(MinCost::finite(2).to_value()),
        "a -> b -> c beats the direct a -> c edge"
    );
    assert_eq!(
        solution.lattice_value("Dist", &[v("a")]),
        Some(MinCost::finite(0).to_value()),
        "the cycle must not shrink the origin below 0"
    );
}

#[test]
fn round_limit_stops_divergence() {
    // An unbounded-height "lattice" over integers: the order is sound
    // (reflexive `<=`), but every join overshoots to `max + 1`, so the
    // chain of cell values climbs forever and the fixed point never
    // arrives.
    let mut b = ProgramBuilder::new();
    let bad = b.lattice(
        "Bad",
        1,
        LatticeOps::from_fns(
            "Diverging",
            Value::Int(0),
            None,
            |a, b| a.as_int() <= b.as_int(),
            |a, b| Value::Int(a.as_int().unwrap_or(0).max(b.as_int().unwrap_or(0)) + 1),
            |a, b| {
                if a.as_int() <= b.as_int() {
                    a.clone()
                } else {
                    b.clone()
                }
            },
        ),
    );
    let step = b.function("step", |args| {
        Value::Int(args[0].as_int().expect("int") + 1)
    });
    b.fact(bad, vec![Value::Int(1)]);
    b.rule(
        Head::new(bad, [HeadTerm::app(step, [Term::var("x")])]),
        [BodyItem::atom(bad, [Term::var("x")])],
    );
    let prog = b.build().expect("valid");
    let failure = Solver::new()
        .max_rounds(50)
        .solve(&prog)
        .expect_err("diverges");
    assert!(matches!(
        failure.error,
        flix_core::SolveError::RoundLimitExceeded {
            limit: 50,
            stratum: 0,
            ..
        }
    ));
    // The error message names the non-converging stratum, and the partial
    // solution retains the facts derived so far.
    assert!(failure.error.to_string().contains("stratum 0"));
    assert_eq!(failure.partial.len("Bad"), Some(1));
    assert!(failure.stats.rounds >= 50);
}

#[test]
fn wildcards_match_without_binding() {
    let mut b = ProgramBuilder::new();
    let e = b.relation("E", 2);
    let has_succ = b.relation("HasSucc", 1);
    b.fact(e, vec![1.into(), 2.into()]);
    b.fact(e, vec![1.into(), 3.into()]);
    b.fact(e, vec![4.into(), 5.into()]);
    b.rule(
        Head::new(has_succ, [HeadTerm::var("x")]),
        [BodyItem::atom(e, [Term::var("x"), Term::Wildcard])],
    );
    let solution = solve(b);
    assert_eq!(solution.len("HasSucc"), Some(2));
}

#[test]
fn literals_in_atoms_restrict_matches() {
    let mut b = ProgramBuilder::new();
    let e = b.relation("E", 2);
    let from_one = b.relation("FromOne", 1);
    b.fact(e, vec![1.into(), 2.into()]);
    b.fact(e, vec![3.into(), 4.into()]);
    b.rule(
        Head::new(from_one, [HeadTerm::var("y")]),
        [BodyItem::atom(e, [Term::lit(1), Term::var("y")])],
    );
    let solution = solve(b);
    assert!(solution.contains("FromOne", &[2.into()]));
    assert_eq!(solution.len("FromOne"), Some(1));
}

#[test]
fn repeated_variable_within_one_atom() {
    // SelfLoop(x) :- Edge(x, x).   (§3.7)
    let mut b = ProgramBuilder::new();
    let e = b.relation("Edge", 2);
    let self_loop = b.relation("SelfLoop", 1);
    b.fact(e, vec![1.into(), 1.into()]);
    b.fact(e, vec![1.into(), 2.into()]);
    b.fact(e, vec![2.into(), 2.into()]);
    b.rule(
        Head::new(self_loop, [HeadTerm::var("x")]),
        [BodyItem::atom(e, [Term::var("x"), Term::var("x")])],
    );
    let solution = solve(b);
    assert_eq!(solution.len("SelfLoop"), Some(2));
    assert!(solution.contains("SelfLoop", &[1.into()]));
    assert!(solution.contains("SelfLoop", &[2.into()]));
}

#[test]
fn lattice_literal_in_body_is_a_threshold_test() {
    // AtLeastEven(k) :- A(k, Even).  — true when Even ⊑ A(k).
    let mut b = ProgramBuilder::new();
    let a = b.lattice("A", 2, LatticeOps::of::<Parity>());
    let out = b.relation("AtLeastEven", 1);
    b.fact(a, vec![1.into(), Parity::Even.to_value()]);
    b.fact(a, vec![2.into(), Parity::Odd.to_value()]);
    b.fact(a, vec![3.into(), Parity::Top.to_value()]);
    b.rule(
        Head::new(out, [HeadTerm::var("k")]),
        [BodyItem::atom(
            a,
            [Term::var("k"), Term::Lit(Parity::Even.to_value())],
        )],
    );
    let solution = solve(b);
    assert!(solution.contains("AtLeastEven", &[1.into()]));
    assert!(!solution.contains("AtLeastEven", &[2.into()]));
    assert!(solution.contains("AtLeastEven", &[3.into()]));
}

#[test]
fn shared_lattice_variable_takes_glb_across_atoms() {
    // Both(k, x) :- A(k, x), B(k, x).
    let mut b = ProgramBuilder::new();
    let a = b.lattice("A", 2, LatticeOps::of::<Parity>());
    let bb = b.lattice("B", 2, LatticeOps::of::<Parity>());
    let both = b.lattice("Both", 2, LatticeOps::of::<Parity>());
    b.fact(a, vec![1.into(), Parity::Top.to_value()]);
    b.fact(bb, vec![1.into(), Parity::Odd.to_value()]);
    b.fact(a, vec![2.into(), Parity::Even.to_value()]);
    b.fact(bb, vec![2.into(), Parity::Odd.to_value()]);
    b.rule(
        Head::new(both, [HeadTerm::var("k"), HeadTerm::var("x")]),
        [
            BodyItem::atom(a, [Term::var("k"), Term::var("x")]),
            BodyItem::atom(bb, [Term::var("k"), Term::var("x")]),
        ],
    );
    let solution = solve(b);
    assert_eq!(
        solution.lattice_value("Both", &[1.into()]),
        Some(Parity::Odd.to_value()),
        "⊤ ⊓ Odd = Odd"
    );
    assert_eq!(
        solution.lattice_value("Both", &[2.into()]),
        Some(Parity::Bot.to_value()),
        "Even ⊓ Odd = ⊥: no cell stored"
    );
}

#[test]
fn solution_query_api() {
    let solution = solve(points_to_program());
    assert_eq!(solution.is_lattice("VarPointsTo"), Some(false));
    assert_eq!(solution.is_empty("VarPointsTo"), Some(false));
    assert!(solution.predicate("VarPointsTo").is_some());
    assert!(solution.predicate("Missing").is_none());
    assert!(solution.relation("Missing").is_none());
    assert!(solution.lattice("VarPointsTo").is_none());
    assert!(solution.stats().rounds > 0);
    assert!(solution.total_facts() >= 5);
}
