//! Integration tests of the execution tracer: span nesting invariants,
//! event-count parity with the solver's statistics across strategies
//! and thread counts, ring-buffer bounding, export formats, and trace
//! capture through `resume`, `solve_query`, and guarded failures.

use flix_core::{
    BodyItem, Delta, ExecutionTrace, Head, HeadTerm, LatticeOps, ProgramBuilder, Query, Solver,
    SpanKind, Strategy, Term, TraceConfig, Value, ValueLattice,
};
use flix_lattice::MinCost;

/// The transitive-closure program: two rules, several rounds.
fn path_builder() -> ProgramBuilder {
    let mut b = ProgramBuilder::new();
    let edge = b.relation("Edge", 2);
    let path = b.relation("Path", 2);
    for (x, y) in [(1, 2), (2, 3), (3, 4), (4, 5), (5, 6)] {
        b.fact(edge, vec![x.into(), y.into()]);
    }
    b.rule(
        Head::new(path, [HeadTerm::var("x"), HeadTerm::var("y")]),
        [BodyItem::atom(edge, [Term::var("x"), Term::var("y")])],
    );
    b.rule(
        Head::new(path, [HeadTerm::var("x"), HeadTerm::var("z")]),
        [
            BodyItem::atom(path, [Term::var("x"), Term::var("y")]),
            BodyItem::atom(edge, [Term::var("y"), Term::var("z")]),
        ],
    );
    b
}

/// The §4.4 shortest-paths lattice program on a small cyclic graph.
fn dist_builder() -> ProgramBuilder {
    let mut b = ProgramBuilder::new();
    let edge = b.relation("Edge", 3);
    let dist = b.lattice("Dist", 2, LatticeOps::of::<MinCost>());
    let extend = b.function("extend", |args| {
        let d = MinCost::expect_from(&args[0]);
        let c = args[1].as_int().expect("weight") as u64;
        d.add_weight(c).to_value()
    });
    b.fact(dist, vec![Value::from("a"), MinCost::finite(0).to_value()]);
    for (x, y, c) in [
        ("a", "b", 1),
        ("b", "c", 1),
        ("c", "d", 2),
        ("c", "a", 1),
        ("a", "c", 5),
    ] {
        b.fact(edge, vec![x.into(), y.into(), c.into()]);
    }
    b.rule(
        Head::new(
            dist,
            [
                HeadTerm::var("y"),
                HeadTerm::app(extend, [Term::var("d"), Term::var("c")]),
            ],
        ),
        [
            BodyItem::atom(dist, [Term::var("x"), Term::var("d")]),
            BodyItem::atom(edge, [Term::var("x"), Term::var("y"), Term::var("c")]),
        ],
    );
    b
}

/// Asserts the structural invariants every trace must satisfy: exactly
/// one solve span enclosing everything, every round inside its stratum's
/// window, every rule evaluation inside its round's window (matching
/// stratum and round numbers), and all tids within the worker count.
fn assert_well_nested(trace: &ExecutionTrace) {
    let events = trace.events();
    let solves: Vec<_> = events
        .iter()
        .filter(|e| e.kind == SpanKind::Solve)
        .collect();
    assert_eq!(solves.len(), 1, "exactly one solve span");
    let solve = solves[0];
    assert_eq!(solve.tid, 0, "solve span on the coordinator track");

    for event in events {
        assert!(
            event.tid <= trace.workers(),
            "tid {} exceeds worker count {}",
            event.tid,
            trace.workers()
        );
        let end = event.start_ns + event.dur_ns;
        assert!(
            solve.start_ns <= event.start_ns && end <= solve.start_ns + solve.dur_ns,
            "{:?} escapes the solve span",
            event.kind
        );
        match &event.kind {
            SpanKind::Round { stratum, .. } => {
                let parent = events
                    .iter()
                    .find(|p| matches!(&p.kind, SpanKind::Stratum { stratum: s } if s == stratum))
                    .unwrap_or_else(|| panic!("round has no stratum {stratum} span"));
                assert!(
                    parent.start_ns <= event.start_ns && end <= parent.start_ns + parent.dur_ns,
                    "round escapes stratum {stratum}"
                );
            }
            SpanKind::RuleEval { stratum, round, .. } => {
                let parent = events
                    .iter()
                    .find(|p| {
                        matches!(&p.kind, SpanKind::Round { stratum: s, round: r }
                                 if s == stratum && r == round)
                    })
                    .unwrap_or_else(|| panic!("rule eval has no round {round} span"));
                assert!(
                    parent.start_ns <= event.start_ns && end <= parent.start_ns + parent.dur_ns,
                    "rule eval escapes round {round}"
                );
            }
            _ => {}
        }
    }
}

fn count(trace: &ExecutionTrace, pred: impl Fn(&SpanKind) -> bool) -> u64 {
    trace.events().iter().filter(|e| pred(&e.kind)).count() as u64
}

#[test]
fn trace_spans_nest_and_match_stats() {
    for builder in [path_builder, dist_builder] {
        let program = builder().build().expect("valid");
        let solution = Solver::new()
            .trace(TraceConfig::default())
            .solve(&program)
            .expect("solves");
        let stats = solution.stats().clone();
        let trace = solution.trace().expect("trace was recorded");
        assert_well_nested(trace);
        assert_eq!(trace.dropped_events(), 0);
        assert_eq!(trace.workers(), 0, "sequential solve has no worker tracks");
        assert_eq!(
            count(trace, |k| matches!(k, SpanKind::Round { .. })),
            stats.rounds,
            "one round span per round"
        );
        assert_eq!(
            count(trace, |k| matches!(k, SpanKind::Stratum { .. })),
            stats.strata,
            "one stratum span per stratum"
        );
        assert_eq!(
            count(trace, |k| matches!(k, SpanKind::RuleEval { .. })),
            stats.rule_evaluations,
            "one rule-eval span per rule evaluation"
        );
        assert_eq!(count(trace, |k| *k == SpanKind::LoadFacts), 1);
    }
}

#[test]
fn event_counts_agree_across_strategies_and_threads() {
    let program = path_builder().build().expect("valid");
    for solver in [
        Solver::new().strategy(Strategy::Naive),
        Solver::new().strategy(Strategy::SemiNaive),
        Solver::new().threads(4),
    ] {
        let solution = solver
            .trace(TraceConfig::default())
            .solve(&program)
            .expect("solves");
        let stats = solution.stats().clone();
        let trace = solution.trace().expect("trace was recorded");
        assert_well_nested(trace);
        assert_eq!(
            count(trace, |k| matches!(k, SpanKind::RuleEval { .. })),
            stats.rule_evaluations,
            "rule-eval spans match the strategy's own evaluation count"
        );
        assert_eq!(
            count(trace, |k| matches!(k, SpanKind::Round { .. })),
            stats.rounds
        );
        // The derived counts attached to the spans sum to the stats
        // counter, whichever thread recorded them.
        let derived: u64 = trace
            .events()
            .iter()
            .filter_map(|e| match e.kind {
                SpanKind::RuleEval { derived, .. } => Some(derived),
                _ => None,
            })
            .sum();
        assert_eq!(derived, stats.facts_derived);
    }
}

#[test]
fn tiny_ring_buffer_drops_oldest_and_counts() {
    let program = path_builder().build().expect("valid");
    let solution = Solver::new()
        .trace(TraceConfig { buffer_capacity: 2 })
        .solve(&program)
        .expect("solves");
    let trace = solution.trace().expect("trace was recorded");
    assert!(
        trace.dropped_events() > 0,
        "a 2-event ring must overflow on a multi-round solve"
    );
    assert!(trace.events().len() <= 2, "capacity bounds retained events");
    // The newest events survive: the solve span is recorded last.
    assert!(trace.events().iter().any(|e| e.kind == SpanKind::Solve));
}

#[test]
fn disabled_tracer_records_nothing() {
    let program = path_builder().build().expect("valid");
    let solution = Solver::new().solve(&program).expect("solves");
    assert!(solution.trace().is_none(), "no trace unless configured");
}

#[test]
fn chrome_export_is_schema_shaped() {
    let program = dist_builder().build().expect("valid");
    let solution = Solver::new()
        .trace(TraceConfig::default())
        .threads(4)
        .solve(&program)
        .expect("solves");
    let trace = solution.trace().expect("trace was recorded");
    let json = trace.to_chrome_json();
    assert!(json.contains("\"traceEvents\""));
    assert!(json.contains("\"ph\": \"X\""));
    assert!(json.contains("\"ph\": \"M\""));
    assert!(json.contains("\"coordinator\""));
    assert!(json.contains("\"displayTimeUnit\": \"ms\""));
    // One thread_name metadata record per track.
    let name_count = json.matches("\"thread_name\"").count() as u32;
    assert_eq!(name_count, trace.workers() + 1);

    let folded = trace.to_folded();
    for line in folded.lines() {
        let (stack, value) = line.rsplit_once(' ').expect("stack then value");
        assert!(stack.starts_with("solve;"), "{line}");
        value.parse::<u64>().expect("numeric folded value");
    }
}

#[test]
fn resume_traces_the_seed_phase() {
    let program = path_builder().build().expect("valid");
    let solver = Solver::new().trace(TraceConfig::default());
    let prior = solver.solve(&program).expect("solves");
    let delta = Delta::new().insert("Edge", vec![Value::from(6), Value::from(7)]);
    let resumed = solver.resume(&program, &prior, &delta).expect("resumes");
    let trace = resumed.trace().expect("resume records a trace");
    assert_well_nested(trace);
    assert_eq!(
        count(trace, |k| *k == SpanKind::ResumeSeed),
        1,
        "one seed span per resume"
    );
    assert!(
        count(trace, |k| matches!(k, SpanKind::RuleEval { .. })) > 0,
        "the warm-start rounds are traced"
    );
}

#[test]
fn query_trace_collapses_demand_rules_onto_originals() {
    let program = path_builder().build().expect("valid");
    let num_rules = 2;
    let result = Solver::new()
        .trace(TraceConfig::default())
        .solve_query(
            &program,
            &[Query::new("Path", vec![Some(Value::from(1)), None])],
        )
        .expect("solves");
    let trace = result.solution().trace().expect("query records a trace");
    assert_well_nested(trace);
    assert_eq!(
        count(trace, |k| *k == SpanKind::DemandRewrite),
        1,
        "the rewrite phase is traced"
    );
    for event in trace.events() {
        if let SpanKind::RuleEval { rule, .. } = event.kind {
            assert!(
                rule < num_rules,
                "rule index {rule} must be an original rule, not demand machinery"
            );
        }
    }
    // Demand-internal predicates never leak into the exported names.
    let json = trace.to_chrome_json();
    assert!(!json.contains("demand$"), "{json}");
    assert!(json.contains("Path"));
}

#[test]
fn guarded_failure_carries_the_partial_trace() {
    let program = path_builder().build().expect("valid");
    let failure = Solver::new()
        .trace(TraceConfig::default())
        .max_rounds(1)
        .solve(&program)
        .expect_err("round limit must trip");
    let trace = failure
        .partial
        .trace()
        .expect("partial solution keeps the trace");
    assert!(
        count(trace, |k| matches!(k, SpanKind::Round { .. })) >= 1,
        "the rounds before the failure are traced"
    );
    assert!(
        count(trace, |k| *k == SpanKind::Solve) == 1,
        "the failed solve still closes its root span"
    );
}
