//! Integration tests for the incremental re-solve engine
//! (`flix_core::incremental`): `Solver::resume` must agree cell-for-cell
//! with a from-scratch solve, reject malformed deltas up front, fall back
//! soundly in the presence of stratified negation, and compose with the
//! guarded-execution and provenance layers.

use flix_core::{
    BodyItem, Budget, Delta, DeltaError, Fact, Head, HeadTerm, LatticeOps, Program, ProgramBuilder,
    Solution, SolveError, Solver, SolverConfig, Strategy, Term, Value, ValueLattice,
};
use flix_lattice::MinCost;

/// Canonical sorted dump of every fact of every predicate, used to compare
/// models for exact equality.
fn dump(program: &Program, solution: &Solution) -> Vec<String> {
    let mut lines = Vec::new();
    for (_, decl) in program.predicates() {
        let name = decl.name();
        for fact in solution.facts(name).expect("declared predicate") {
            lines.push(format!("{name}({fact})"));
        }
    }
    lines.sort();
    lines
}

/// The Edge/Path transitive-closure program over the given edges.
fn paths_program(edges: &[(i64, i64)]) -> Program {
    let mut b = ProgramBuilder::new();
    let edge = b.relation("Edge", 2);
    let path = b.relation("Path", 2);
    for (x, y) in edges {
        b.fact(edge, vec![Value::from(*x), Value::from(*y)]);
    }
    b.rule(
        Head::new(path, [HeadTerm::var("x"), HeadTerm::var("y")]),
        [BodyItem::atom(edge, [Term::var("x"), Term::var("y")])],
    );
    b.rule(
        Head::new(path, [HeadTerm::var("x"), HeadTerm::var("z")]),
        [
            BodyItem::atom(path, [Term::var("x"), Term::var("y")]),
            BodyItem::atom(edge, [Term::var("y"), Term::var("z")]),
        ],
    );
    b.build().expect("valid program")
}

/// Single-source shortest paths (§4.4): Edge(x, y, w) relation and a
/// Dist(node; MinCost) lattice seeded at node 0.
fn shortest_paths_program(edges: &[(i64, i64, i64)]) -> Program {
    let mut b = ProgramBuilder::new();
    let edge = b.relation("Edge", 3);
    let dist = b.lattice("Dist", 2, LatticeOps::of::<MinCost>());
    let extend = b.function("extend", |args| {
        let d = MinCost::expect_from(&args[0]);
        let c = args[1].as_int().expect("edge weight") as u64;
        d.add_weight(c).to_value()
    });
    b.fact(dist, vec![Value::from(0), MinCost::finite(0).to_value()]);
    for (x, y, w) in edges {
        b.fact(
            edge,
            vec![Value::from(*x), Value::from(*y), Value::from(*w)],
        );
    }
    b.rule(
        Head::new(
            dist,
            [
                HeadTerm::var("y"),
                HeadTerm::app(extend, [Term::var("d"), Term::var("c")]),
            ],
        ),
        [
            BodyItem::atom(dist, [Term::var("x"), Term::var("d")]),
            BodyItem::atom(edge, [Term::var("x"), Term::var("y"), Term::var("c")]),
        ],
    );
    b.build().expect("valid program")
}

fn configurations() -> Vec<Solver> {
    vec![
        Solver::new().strategy(Strategy::Naive),
        Solver::new(),
        Solver::with_config(SolverConfig {
            threads: 4,
            ..SolverConfig::default()
        })
        .expect("valid config"),
    ]
}

#[test]
fn resume_matches_scratch_on_paths() {
    let base_edges = [(1, 2), (2, 3), (5, 6)];
    let base = paths_program(&base_edges);
    let all_edges = [(1, 2), (2, 3), (5, 6), (3, 4), (6, 1)];
    let scratch_program = paths_program(&all_edges);
    let delta = Delta::new()
        .insert("Edge", vec![Value::from(3), Value::from(4)])
        .insert("Edge", vec![Value::from(6), Value::from(1)]);
    for solver in configurations() {
        let prior = solver.solve(&base).expect("solves");
        let resumed = solver.resume(&base, &prior, &delta).expect("resumes");
        let scratch = solver.solve(&scratch_program).expect("solves");
        assert_eq!(dump(&base, &resumed), dump(&scratch_program, &scratch));
        assert!(resumed.contains("Path", &[Value::from(6), Value::from(4)]));
    }
}

#[test]
fn resume_matches_scratch_on_lattice_raise() {
    let base_edges = [(0, 1, 4), (1, 2, 3), (0, 2, 9), (2, 3, 1)];
    let base = shortest_paths_program(&base_edges);
    // A new edge plus a direct lattice raise: finite(5) is *better* than
    // the settled Dist(2) = finite(7) (MinCost orders smaller costs
    // higher), so the raise must propagate to nodes 3 and 4. The scratch
    // program mirrors the raise as a Dist fact.
    let with_edge = [(0, 1, 4), (1, 2, 3), (0, 2, 9), (2, 3, 1), (3, 4, 2)];
    let delta = Delta::new()
        .insert("Edge", vec![Value::from(3), Value::from(4), Value::from(2)])
        .raise("Dist", vec![Value::from(2)], MinCost::finite(5).to_value());
    let scratch_program = {
        let b_edges: Vec<(i64, i64, i64)> = with_edge.to_vec();
        let mut b = ProgramBuilder::new();
        let edge = b.relation("Edge", 3);
        let dist = b.lattice("Dist", 2, LatticeOps::of::<MinCost>());
        let extend = b.function("extend", |args| {
            let d = MinCost::expect_from(&args[0]);
            let c = args[1].as_int().expect("edge weight") as u64;
            d.add_weight(c).to_value()
        });
        b.fact(dist, vec![Value::from(0), MinCost::finite(0).to_value()]);
        b.fact(dist, vec![Value::from(2), MinCost::finite(5).to_value()]);
        for (x, y, w) in &b_edges {
            b.fact(
                edge,
                vec![Value::from(*x), Value::from(*y), Value::from(*w)],
            );
        }
        b.rule(
            Head::new(
                dist,
                [
                    HeadTerm::var("y"),
                    HeadTerm::app(extend, [Term::var("d"), Term::var("c")]),
                ],
            ),
            [
                BodyItem::atom(dist, [Term::var("x"), Term::var("d")]),
                BodyItem::atom(edge, [Term::var("x"), Term::var("y"), Term::var("c")]),
            ],
        );
        b.build().expect("valid program")
    };
    for solver in configurations() {
        let prior = solver.solve(&base).expect("solves");
        assert_eq!(
            prior.lattice_value("Dist", &[Value::from(2)]),
            Some(MinCost::finite(7).to_value())
        );
        let resumed = solver.resume(&base, &prior, &delta).expect("resumes");
        let scratch = solver.solve(&scratch_program).expect("solves");
        assert_eq!(dump(&base, &resumed), dump(&scratch_program, &scratch));
        assert_eq!(
            resumed.lattice_value("Dist", &[Value::from(2)]),
            Some(MinCost::finite(5).to_value())
        );
        assert_eq!(
            resumed.lattice_value("Dist", &[Value::from(4)]),
            Some(MinCost::finite(8).to_value())
        );
    }
}

#[test]
fn noop_and_absorbed_deltas_leave_the_model_unchanged() {
    let base = paths_program(&[(1, 2), (2, 3)]);
    let solver = Solver::new();
    let prior = solver.solve(&base).expect("solves");
    // Empty delta.
    let resumed = solver
        .resume(&base, &prior, &Delta::new())
        .expect("resumes");
    assert_eq!(dump(&base, &resumed), dump(&base, &prior));
    assert_eq!(resumed.stats().rounds, 0, "no stratum was re-evaluated");
    // A delta whose facts are already in the model is absorbed without
    // re-deriving anything.
    let absorbed = Delta::new().insert("Edge", vec![Value::from(1), Value::from(2)]);
    let resumed = solver.resume(&base, &prior, &absorbed).expect("resumes");
    assert_eq!(dump(&base, &resumed), dump(&base, &prior));
    assert_eq!(resumed.stats().facts_inserted, 0);
    assert_eq!(resumed.stats().rounds, 0);
}

#[test]
fn malformed_deltas_are_rejected_with_the_prior_model_intact() {
    let base = paths_program(&[(1, 2), (2, 3)]);
    let solver = Solver::new();
    let prior = solver.solve(&base).expect("solves");

    let unknown = Delta::new().insert("Nope", vec![Value::from(1)]);
    let failure = solver
        .resume(&base, &prior, &unknown)
        .expect_err("rejected");
    assert!(matches!(
        &failure.error,
        SolveError::Delta(DeltaError::UnknownPredicate { predicate }) if predicate == "Nope"
    ));
    assert_eq!(dump(&base, &failure.partial), dump(&base, &prior));

    let bad_arity = Delta::new().insert("Edge", vec![Value::from(1)]);
    let failure = solver
        .resume(&base, &prior, &bad_arity)
        .expect_err("rejected");
    assert!(matches!(
        &failure.error,
        SolveError::Delta(DeltaError::ArityMismatch {
            predicate,
            declared: 2,
            found: 1,
        }) if predicate == "Edge"
    ));
    assert_eq!(dump(&base, &failure.partial), dump(&base, &prior));

    // A solution from a structurally different program is rejected.
    let other = shortest_paths_program(&[(0, 1, 1)]);
    let other_solution = solver.solve(&other).expect("solves");
    let failure = solver
        .resume(&base, &other_solution, &Delta::new())
        .expect_err("rejected");
    assert!(matches!(
        &failure.error,
        SolveError::Delta(DeltaError::SolutionMismatch)
    ));
}

#[test]
fn negation_fallback_retracts_like_a_scratch_solve() {
    // C(x) :- A(x), not B(x): inserting into B must *retract* C facts,
    // which the monotone warm start cannot express — resume falls back to
    // a full solve and must still match it exactly.
    fn build(a_facts: &[i64], b_facts: &[i64]) -> Program {
        let mut b = ProgramBuilder::new();
        let a = b.relation("A", 1);
        let bb = b.relation("B", 1);
        let c = b.relation("C", 1);
        for x in a_facts {
            b.fact(a, vec![Value::from(*x)]);
        }
        for x in b_facts {
            b.fact(bb, vec![Value::from(*x)]);
        }
        b.rule(
            Head::new(c, [HeadTerm::var("x")]),
            [
                BodyItem::atom(a, [Term::var("x")]),
                BodyItem::not(bb, [Term::var("x")]),
            ],
        );
        b.build().expect("valid program")
    }
    let base = build(&[1, 2], &[2]);
    let scratch_program = build(&[1, 2], &[1, 2]);
    for solver in configurations() {
        let prior = solver.solve(&base).expect("solves");
        assert!(prior.contains("C", &[Value::from(1)]));
        let delta = Delta::new().insert("B", vec![Value::from(1)]);
        let resumed = solver.resume(&base, &prior, &delta).expect("resumes");
        let scratch = solver.solve(&scratch_program).expect("solves");
        assert_eq!(dump(&base, &resumed), dump(&scratch_program, &scratch));
        assert!(
            !resumed.contains("C", &[Value::from(1)]),
            "C(1) must be retracted once B(1) arrives"
        );
    }
}

#[test]
fn budget_exhausted_mid_resume_returns_a_partial_superset_of_the_prior_model() {
    // A long chain so the resumed propagation needs many derivations, and
    // a delta shortcut that re-opens the whole chain.
    let n = 60i64;
    let edges: Vec<(i64, i64, i64)> = (0..n).map(|i| (i, i + 1, 10)).collect();
    let base = shortest_paths_program(&edges);
    let solver = Solver::new();
    let prior = solver.solve(&base).expect("solves");

    let strict = Solver::new().budget(Budget::new().max_derivations(5));
    let delta = Delta::new().insert(
        "Edge",
        vec![Value::from(0), Value::from(n / 2), Value::from(1)],
    );
    let failure = strict
        .resume(&base, &prior, &delta)
        .expect_err("budget trips");
    assert!(
        matches!(&failure.error, SolveError::BudgetExceeded { .. }),
        "{:?}",
        failure.error
    );

    // The partial model must be ⊒ the pre-update model: every prior Dist
    // cell is present with an equal-or-better (smaller or equal) cost, and
    // every prior Edge row survives.
    for fact in prior.facts("Dist").expect("lattice") {
        let (key, prior_cost) = match fact {
            Fact::Cell(key, value) => (key, MinCost::expect_from(value)),
            Fact::Row(_) => unreachable!("Dist is a lattice"),
        };
        let partial_value = failure
            .partial
            .lattice_value("Dist", key)
            .expect("prior key retained in the partial model");
        let partial_cost = MinCost::expect_from(&partial_value);
        assert!(
            partial_cost.value().unwrap() <= prior_cost.value().unwrap(),
            "partial Dist({key:?}) regressed: {partial_cost:?} vs {prior_cost:?}"
        );
    }
    for fact in prior.facts("Edge").expect("relation") {
        if let Fact::Row(row) = fact {
            assert!(failure.partial.contains("Edge", row));
        }
    }
    // The delta fact itself was applied before the budget tripped.
    assert!(failure.partial.contains(
        "Edge",
        &[Value::from(0), Value::from(n / 2), Value::from(1)]
    ));
}

#[test]
fn with_config_rejects_zero_threads_and_the_chain_clamps() {
    let err = Solver::with_config(SolverConfig {
        threads: 0,
        ..SolverConfig::default()
    })
    .expect_err("zero threads rejected");
    assert!(err.to_string().contains("threads must be at least 1"));
    // The chained setter keeps its lenient historical behaviour.
    let solver = Solver::new().threads(0);
    assert_eq!(solver.config().threads, 1);
}

#[test]
fn provenance_carries_through_resume() {
    let base = paths_program(&[(1, 2), (2, 3)]);
    let solver = Solver::new().record_provenance(true);
    let prior = solver.solve(&base).expect("solves");
    let delta = Delta::new().insert("Edge", vec![Value::from(3), Value::from(4)]);
    let resumed = solver.resume(&base, &prior, &delta).expect("resumes");
    // A fact that only exists after the update has a full derivation tree
    // reaching back through pre-update facts.
    let tree = resumed
        .explain("Path", &[Value::from(1), Value::from(4)])
        .expect("explainable");
    let rendered = tree.to_string();
    assert!(rendered.contains("Edge(3, 4)"), "{rendered}");
    assert!(rendered.contains("Edge(1, 2)"), "{rendered}");
    // Pre-update facts remain explainable.
    assert!(resumed
        .explain("Path", &[Value::from(1), Value::from(3)])
        .is_some());
}

#[test]
fn resume_stats_profile_the_incremental_rounds() {
    let base = paths_program(&[(1, 2), (2, 3)]);
    let solver = Solver::new();
    let prior = solver.solve(&base).expect("solves");
    let delta = Delta::new().insert("Edge", vec![Value::from(3), Value::from(4)]);
    let resumed = solver.resume(&base, &prior, &delta).expect("resumes");
    let stats = resumed.stats();
    assert!(stats.rounds >= 1, "resume re-ran at least one round");
    assert!(stats.facts_inserted >= 1, "the delta landed");
    assert_eq!(
        stats.per_rule.len(),
        2,
        "per-rule profile covers every rule"
    );
    assert!(
        stats.per_rule.iter().any(|r| r.evaluations > 0),
        "resumed rounds appear in the per-rule profile"
    );
    assert!(
        !stats.per_stratum.is_empty(),
        "resumed strata appear in the per-stratum profile"
    );
    assert!(stats.wall_ns > 0);
    // Resume did strictly less rule evaluation than the original solve
    // on this delta (the whole point of warm starting).
    assert!(stats.rule_evaluations <= prior.stats().rule_evaluations);
}

#[test]
fn facts_view_unifies_relations_and_lattices() {
    let program = shortest_paths_program(&[(0, 1, 4)]);
    let solution = Solver::new().solve(&program).expect("solves");
    // Relation facts come out as rows with no lattice value.
    let edge_facts: Vec<Fact> = solution.facts("Edge").expect("relation").collect();
    assert_eq!(edge_facts.len(), 1);
    assert!(matches!(edge_facts[0], Fact::Row(_)));
    assert_eq!(edge_facts[0].value(), None);
    assert_eq!(format!("{}", edge_facts[0]), "0, 1, 4");
    // Lattice facts come out as key/value cells.
    let dist_facts: Vec<Fact> = solution.facts("Dist").expect("lattice").collect();
    assert_eq!(dist_facts.len(), 2);
    for fact in &dist_facts {
        assert!(matches!(fact, Fact::Cell(_, _)));
        assert!(fact.value().is_some());
        assert_eq!(fact.key().len(), 1);
    }
    // The named iterators agree with the unified view.
    let rel_rows: Vec<&[Value]> = solution.relation("Edge").expect("relation").collect();
    assert_eq!(rel_rows.len(), 1);
    assert!(solution.relation("Dist").is_none());
    let lat_cells: Vec<(&[Value], &Value)> = solution.lattice("Dist").expect("lattice").collect();
    assert_eq!(lat_cells.len(), 2);
    assert!(solution.lattice("Edge").is_none());
    // Unknown predicates yield None everywhere.
    assert!(solution.facts("Nope").is_none());
    assert!(solution.relation("Nope").is_none());
    assert!(solution.lattice("Nope").is_none());
}

#[test]
fn chained_resumes_match_scratch() {
    // Apply three deltas in sequence, comparing each against a scratch
    // solve with all facts so far; resume always takes the *base*
    // program (it never re-reads program.facts).
    let base_edges = vec![(1, 2), (2, 3)];
    let base = paths_program(&base_edges);
    let steps: Vec<(i64, i64)> = vec![(3, 4), (4, 5), (5, 1)];
    for solver in configurations() {
        let mut current = solver.solve(&base).expect("solves");
        let mut all_edges = base_edges.clone();
        for (x, y) in &steps {
            all_edges.push((*x, *y));
            let delta = Delta::new().insert("Edge", vec![Value::from(*x), Value::from(*y)]);
            current = solver.resume(&base, &current, &delta).expect("resumes");
            let scratch_program = paths_program(&all_edges);
            let scratch = solver.solve(&scratch_program).expect("solves");
            assert_eq!(dump(&base, &current), dump(&scratch_program, &scratch));
        }
        // After closing the cycle, everything reaches everything.
        for x in 1..=5 {
            for y in 1..=5 {
                assert!(current.contains("Path", &[Value::from(x), Value::from(y)]));
            }
        }
    }
}

#[test]
fn empty_delta_short_circuits_without_cloning_or_strata() {
    let program = paths_program(&[(1, 2), (2, 3)]);
    for solver in configurations() {
        let prior = solver.solve(&program).expect("solves");
        let resumed = solver
            .resume(&program, &prior, &Delta::new())
            .expect("resumes");
        // Same model, and no fixed-point machinery ran: no rounds, no
        // strata, no rule evaluations, no insertions.
        assert_eq!(dump(&program, &prior), dump(&program, &resumed));
        assert_eq!(resumed.stats().rounds, 0);
        assert_eq!(resumed.stats().strata, 0);
        assert_eq!(resumed.stats().rule_evaluations, 0);
        assert_eq!(resumed.stats().facts_inserted, 0);
        assert_eq!(resumed.stats().total_facts as usize, prior.total_facts(),);
        // And the short-circuited solution keeps working as a prior for
        // a real resume.
        let delta = Delta::new().insert("Edge", vec![3.into(), 4.into()]);
        let updated = solver.resume(&program, &resumed, &delta).expect("resumes");
        assert!(updated.contains("Path", &[1.into(), 4.into()]));
    }
}

#[test]
fn empty_delta_carries_provenance_over() {
    let program = paths_program(&[(1, 2), (2, 3)]);
    let solver = Solver::new().record_provenance(true);
    let prior = solver.solve(&program).expect("solves");
    let events = prior.provenance().expect("recorded").len();
    let resumed = solver
        .resume(&program, &prior, &Delta::new())
        .expect("resumes");
    assert_eq!(resumed.provenance().expect("carried").len(), events);
    assert!(resumed.explain("Path", &[1.into(), 3.into()]).is_some());
}

// ---------------------------------------------------------------------
// Retraction (DeltaOp::Retract / DeltaOp::Lower) coverage.
// ---------------------------------------------------------------------

/// Configurations with provenance recording on — the precondition for
/// the exact over-delete/re-derive path (without it retraction degrades
/// to a scratch solve, covered separately below).
fn provenance_configurations() -> Vec<Solver> {
    configurations()
        .into_iter()
        .map(|s| s.record_provenance(true))
        .collect()
}

#[test]
fn retraction_matches_scratch_on_paths() {
    // Retract the middle edge of a chain: every Path fact that routed
    // through it must disappear, while an alternative route survives.
    let base_edges = [(1, 2), (2, 3), (3, 4), (1, 3)];
    let base = paths_program(&base_edges);
    let scratch_program = paths_program(&[(1, 2), (3, 4), (1, 3)]);
    let delta = Delta::new().retract("Edge", vec![Value::from(2), Value::from(3)]);
    for solver in provenance_configurations() {
        let prior = solver.solve(&base).expect("solves");
        assert!(prior.contains("Path", &[Value::from(2), Value::from(4)]));
        let resumed = solver.resume(&base, &prior, &delta).expect("resumes");
        let scratch = solver.solve(&scratch_program).expect("solves");
        assert_eq!(dump(&base, &resumed), dump(&scratch_program, &scratch));
        assert!(!resumed.contains("Path", &[Value::from(2), Value::from(4)]));
        // Path(1, 4) survives: it re-derives through Edge(1, 3).
        assert!(resumed.contains("Path", &[Value::from(1), Value::from(4)]));
    }
}

#[test]
fn retraction_without_provenance_falls_back_and_matches_scratch() {
    // With no event log there is no cone to over-delete; the resume
    // must degrade to a scratch solve of the updated store and still
    // agree with it cell-for-cell.
    let base = paths_program(&[(1, 2), (2, 3), (3, 4)]);
    let scratch_program = paths_program(&[(1, 2), (3, 4)]);
    let delta = Delta::new().retract("Edge", vec![Value::from(2), Value::from(3)]);
    for solver in configurations() {
        let prior = solver.solve(&base).expect("solves");
        let resumed = solver.resume(&base, &prior, &delta).expect("resumes");
        let scratch = solver.solve(&scratch_program).expect("solves");
        assert_eq!(dump(&base, &resumed), dump(&scratch_program, &scratch));
    }
}

#[test]
fn insert_then_retract_in_one_delta_is_a_net_noop() {
    // An insertion cancelled by a later retraction of the same tuple in
    // one delta has no net effect on the store, so the resumed model
    // must equal the prior one — the cancelled tuple must not leak into
    // the warm database. This is the WAL-recovery shape: an insert
    // logged in one run and its retraction logged in a later run fold
    // into a single combined delta on replay.
    let base = paths_program(&[(1, 2)]);
    let delta = Delta::new()
        .insert("Edge", vec![Value::from(2), Value::from(3)])
        .retract("Edge", vec![Value::from(2), Value::from(3)]);
    for solver in configurations()
        .into_iter()
        .chain(provenance_configurations())
    {
        let prior = solver.solve(&base).expect("solves");
        let resumed = solver.resume(&base, &prior, &delta).expect("resumes");
        let scratch = solver.solve(&base).expect("solves");
        assert_eq!(dump(&base, &resumed), dump(&base, &scratch));
        assert!(!resumed.contains("Edge", &[Value::from(2), Value::from(3)]));
        assert!(!resumed.contains("Path", &[Value::from(2), Value::from(3)]));
        assert!(!resumed.contains("Path", &[Value::from(1), Value::from(3)]));
    }
}

#[test]
fn cancelled_ops_ride_along_with_surviving_insertions() {
    // A cancelled insert/retract pair mixed with a real insertion: only
    // the net addition may seed the warm monotone path.
    let base = paths_program(&[(1, 2)]);
    let scratch_program = paths_program(&[(1, 2), (2, 5)]);
    let delta = Delta::new()
        .insert("Edge", vec![Value::from(2), Value::from(3)])
        .insert("Edge", vec![Value::from(2), Value::from(5)])
        .retract("Edge", vec![Value::from(2), Value::from(3)]);
    for solver in configurations()
        .into_iter()
        .chain(provenance_configurations())
    {
        let prior = solver.solve(&base).expect("solves");
        let resumed = solver.resume(&base, &prior, &delta).expect("resumes");
        let scratch = solver.solve(&scratch_program).expect("solves");
        assert_eq!(dump(&base, &resumed), dump(&scratch_program, &scratch));
        assert!(resumed.contains("Path", &[Value::from(1), Value::from(5)]));
        assert!(!resumed.contains("Path", &[Value::from(1), Value::from(3)]));
    }
}

#[test]
fn raise_then_lower_in_one_delta_is_a_net_noop() {
    // The lattice mirror of the cancelled pair: a Raise withdrawn by a
    // Lower of the same contribution within one delta must not leave a
    // stale upper bound (or any cell at all) behind.
    let base = shortest_paths_program(&[(0, 1, 4)]);
    let raise = (vec![Value::from(5)], MinCost::finite(1).to_value());
    let delta = Delta::new()
        .raise("Dist", raise.0.clone(), raise.1.clone())
        .lower("Dist", raise.0.clone(), raise.1.clone());
    for solver in configurations()
        .into_iter()
        .chain(provenance_configurations())
    {
        let prior = solver.solve(&base).expect("solves");
        let resumed = solver.resume(&base, &prior, &delta).expect("resumes");
        let scratch = solver.solve(&base).expect("solves");
        assert_eq!(dump(&base, &resumed), dump(&base, &scratch));
        // The never-materialized cell reads as bottom (absent ≡ ⊥) and
        // stays out of the model dump.
        assert_eq!(
            resumed.lattice_value("Dist", &[Value::from(5)]),
            Some(MinCost::INFINITY.to_value())
        );
        assert!(
            !dump(&base, &resumed)
                .iter()
                .any(|line| line.starts_with("Dist(5")),
            "the cancelled raise must not materialize a cell"
        );
    }
}

#[test]
fn lattice_lower_resettles_at_the_lub_of_survivors() {
    // Dist(2) = 7 via 0→1→2; the direct Edge(0, 2, 9) is dominated.
    // Retracting Edge(1, 2, 3) removes the justification for 7, and the
    // cell must re-settle at 9 — the lub of what remains — not vanish
    // and not stay at the stale 7.
    let base = shortest_paths_program(&[(0, 1, 4), (1, 2, 3), (0, 2, 9), (2, 3, 1)]);
    let scratch_program = shortest_paths_program(&[(0, 1, 4), (0, 2, 9), (2, 3, 1)]);
    let delta = Delta::new().retract("Edge", vec![Value::from(1), Value::from(2), Value::from(3)]);
    for solver in provenance_configurations() {
        let prior = solver.solve(&base).expect("solves");
        assert_eq!(
            prior.lattice_value("Dist", &[Value::from(2)]),
            Some(MinCost::finite(7).to_value())
        );
        let resumed = solver.resume(&base, &prior, &delta).expect("resumes");
        let scratch = solver.solve(&scratch_program).expect("solves");
        assert_eq!(dump(&base, &resumed), dump(&scratch_program, &scratch));
        assert_eq!(
            resumed.lattice_value("Dist", &[Value::from(2)]),
            Some(MinCost::finite(9).to_value())
        );
        assert_eq!(
            resumed.lattice_value("Dist", &[Value::from(3)]),
            Some(MinCost::finite(10).to_value())
        );
    }
}

#[test]
fn lowering_an_asserted_cell_withdraws_its_contribution() {
    // The base asserts Dist(5) = finite(2) directly (no edge reaches
    // node 5). Lowering exactly that contribution must make the cell
    // disappear; lowering a contribution that was never asserted is a
    // no-op.
    let mut b = ProgramBuilder::new();
    let edge = b.relation("Edge", 3);
    let dist = b.lattice("Dist", 2, LatticeOps::of::<MinCost>());
    let extend = b.function("extend", |args| {
        let d = MinCost::expect_from(&args[0]);
        let c = args[1].as_int().expect("edge weight") as u64;
        d.add_weight(c).to_value()
    });
    b.fact(dist, vec![Value::from(0), MinCost::finite(0).to_value()]);
    b.fact(dist, vec![Value::from(5), MinCost::finite(2).to_value()]);
    b.fact(edge, vec![Value::from(0), Value::from(1), Value::from(4)]);
    b.rule(
        Head::new(
            dist,
            [
                HeadTerm::var("y"),
                HeadTerm::app(extend, [Term::var("d"), Term::var("c")]),
            ],
        ),
        [
            BodyItem::atom(dist, [Term::var("x"), Term::var("d")]),
            BodyItem::atom(edge, [Term::var("x"), Term::var("y"), Term::var("c")]),
        ],
    );
    let base = b.build().expect("valid program");

    for solver in provenance_configurations() {
        let prior = solver.solve(&base).expect("solves");
        assert_eq!(
            prior.lattice_value("Dist", &[Value::from(5)]),
            Some(MinCost::finite(2).to_value())
        );
        let lower = Delta::new().lower("Dist", vec![Value::from(5)], MinCost::finite(2).to_value());
        let resumed = solver.resume(&base, &prior, &lower).expect("resumes");
        // The cell is gone from the database; reading it yields the
        // lattice bottom (absent ≡ ⊥), and the unified fact view no
        // longer lists it.
        assert_eq!(
            resumed.lattice_value("Dist", &[Value::from(5)]),
            Some(MinCost::INFINITY.to_value())
        );
        assert!(
            !dump(&base, &resumed)
                .iter()
                .any(|line| line.starts_with("Dist(5")),
            "the lowered cell must drop out of the model"
        );
        assert_eq!(
            resumed.lattice_value("Dist", &[Value::from(1)]),
            Some(MinCost::finite(4).to_value()),
            "untouched cells survive the lower"
        );
        // Lowering a never-asserted contribution changes nothing.
        let noop = Delta::new().lower("Dist", vec![Value::from(1)], MinCost::finite(4).to_value());
        let unchanged = solver.resume(&base, &resumed, &noop).expect("resumes");
        assert_eq!(dump(&base, &unchanged), dump(&base, &resumed));
    }
}

#[test]
fn retraction_into_a_negated_cone_falls_back_to_scratch() {
    // C(x) :- A(x), not B(x): retracting a B fact must *create* C facts,
    // which the over-delete/re-derive pass cannot express (the event log
    // only witnesses positive premises) — resume must detect the negated
    // cone, fall back to a scratch solve of the updated store, and still
    // match it exactly.
    fn build(a_facts: &[i64], b_facts: &[i64]) -> Program {
        let mut b = ProgramBuilder::new();
        let a = b.relation("A", 1);
        let bb = b.relation("B", 1);
        let c = b.relation("C", 1);
        for x in a_facts {
            b.fact(a, vec![Value::from(*x)]);
        }
        for x in b_facts {
            b.fact(bb, vec![Value::from(*x)]);
        }
        b.rule(
            Head::new(c, [HeadTerm::var("x")]),
            [
                BodyItem::atom(a, [Term::var("x")]),
                BodyItem::not(bb, [Term::var("x")]),
            ],
        );
        b.build().expect("valid program")
    }
    let base = build(&[1, 2], &[1, 2]);
    let scratch_program = build(&[1, 2], &[2]);
    for solver in provenance_configurations() {
        let prior = solver.solve(&base).expect("solves");
        assert!(!prior.contains("C", &[Value::from(1)]));
        let delta = Delta::new().retract("B", vec![Value::from(1)]);
        let resumed = solver.resume(&base, &prior, &delta).expect("resumes");
        let scratch = solver.solve(&scratch_program).expect("solves");
        assert_eq!(dump(&base, &resumed), dump(&scratch_program, &scratch));
        assert!(
            resumed.contains("C", &[Value::from(1)]),
            "C(1) must appear once B(1) is retracted"
        );
    }
}

#[test]
fn retracting_a_derived_only_fact_is_a_noop() {
    // Path(1, 3) is derived, never asserted; delta ops are set
    // operations on the extensional store, so retracting it changes
    // nothing — the derivation still stands.
    let base = paths_program(&[(1, 2), (2, 3)]);
    for solver in provenance_configurations() {
        let prior = solver.solve(&base).expect("solves");
        let delta = Delta::new().retract("Path", vec![Value::from(1), Value::from(3)]);
        let resumed = solver.resume(&base, &prior, &delta).expect("resumes");
        assert_eq!(dump(&base, &resumed), dump(&base, &prior));
        assert!(resumed.contains("Path", &[Value::from(1), Value::from(3)]));
    }
}

#[test]
fn retract_then_reinsert_in_one_delta_cancels() {
    let base = paths_program(&[(1, 2), (2, 3)]);
    for solver in provenance_configurations() {
        let prior = solver.solve(&base).expect("solves");
        let delta = Delta::new()
            .retract("Edge", vec![Value::from(1), Value::from(2)])
            .insert("Edge", vec![Value::from(1), Value::from(2)]);
        let resumed = solver.resume(&base, &prior, &delta).expect("resumes");
        assert_eq!(dump(&base, &resumed), dump(&base, &prior));
        // The ops cancelled: nothing was effectively removed, and the
        // reinserted fact was already absorbed, so no re-derivation ran.
        assert_eq!(resumed.stats().facts_inserted, 0);
    }
}

#[test]
fn chained_mixed_resumes_match_scratch() {
    // Inserts, retracts, raises, and lowers chained through five
    // resumes, each checked against a scratch solve of the same store.
    let base = shortest_paths_program(&[(0, 1, 4), (1, 2, 3), (0, 2, 9)]);
    for solver in provenance_configurations() {
        let mut current = solver.solve(&base).expect("solves");

        // Step 1: insert an edge extending the graph.
        let d1 = Delta::new().insert("Edge", vec![Value::from(2), Value::from(3), Value::from(1)]);
        current = solver.resume(&base, &current, &d1).expect("resumes");
        let s1 = shortest_paths_program(&[(0, 1, 4), (1, 2, 3), (0, 2, 9), (2, 3, 1)]);
        let scratch = solver.solve(&s1).expect("solves");
        assert_eq!(dump(&base, &current), dump(&s1, &scratch));

        // Step 2: retract the cheap middle edge inserted before step 1.
        let d2 = Delta::new().retract("Edge", vec![Value::from(1), Value::from(2), Value::from(3)]);
        current = solver.resume(&base, &current, &d2).expect("resumes");
        let s2 = shortest_paths_program(&[(0, 1, 4), (0, 2, 9), (2, 3, 1)]);
        let scratch = solver.solve(&s2).expect("solves");
        assert_eq!(dump(&base, &current), dump(&s2, &scratch));
        assert_eq!(
            current.lattice_value("Dist", &[Value::from(2)]),
            Some(MinCost::finite(9).to_value())
        );

        // Step 3: raise Dist(3) directly, as if a better out-of-band
        // route appeared.
        let d3 = Delta::new().raise("Dist", vec![Value::from(3)], MinCost::finite(5).to_value());
        current = solver.resume(&base, &current, &d3).expect("resumes");
        assert_eq!(
            current.lattice_value("Dist", &[Value::from(3)]),
            Some(MinCost::finite(5).to_value())
        );

        // Step 4: lower it again — the cell re-settles at the derived 10.
        let d4 = Delta::new().lower("Dist", vec![Value::from(3)], MinCost::finite(5).to_value());
        current = solver.resume(&base, &current, &d4).expect("resumes");
        let scratch = solver.solve(&s2).expect("solves");
        assert_eq!(dump(&base, &current), dump(&s2, &scratch));
        assert_eq!(
            current.lattice_value("Dist", &[Value::from(3)]),
            Some(MinCost::finite(10).to_value())
        );

        // Step 5: re-insert the retracted edge; back to the step-1 model.
        let d5 = Delta::new().insert("Edge", vec![Value::from(1), Value::from(2), Value::from(3)]);
        current = solver.resume(&base, &current, &d5).expect("resumes");
        let scratch = solver.solve(&s1).expect("solves");
        assert_eq!(dump(&base, &current), dump(&s1, &scratch));
    }
}

#[test]
fn delta_op_builder_and_wrappers_agree() {
    use flix_core::DeltaOp;
    // The thin wrappers produce exactly the ops the explicit builder
    // does, and is_empty accounts for every op kind.
    let via_wrappers = Delta::new()
        .insert("Edge", vec![Value::from(1), Value::from(2)])
        .retract("Edge", vec![Value::from(2), Value::from(3)])
        .raise("Dist", vec![Value::from(0)], Value::from(0))
        .lower("Dist", vec![Value::from(1)], Value::from(5));
    let via_ops = Delta::new()
        .op(DeltaOp::Insert {
            predicate: "Edge".to_string(),
            tuple: vec![Value::from(1), Value::from(2)],
        })
        .op(DeltaOp::Retract {
            predicate: "Edge".to_string(),
            tuple: vec![Value::from(2), Value::from(3)],
        })
        .op(DeltaOp::Raise {
            predicate: "Dist".to_string(),
            key: vec![Value::from(0)],
            element: Value::from(0),
        })
        .op(DeltaOp::Lower {
            predicate: "Dist".to_string(),
            key: vec![Value::from(1)],
            element: Value::from(5),
        });
    assert_eq!(via_wrappers, via_ops);
    assert_eq!(via_wrappers.len(), 4);
    assert!(!via_wrappers.is_empty());
    for op in via_wrappers.ops() {
        let single = Delta::new().op(op.clone());
        assert!(!single.is_empty(), "{op:?} must make the delta non-empty");
    }
    assert!(Delta::new().is_empty());
}
