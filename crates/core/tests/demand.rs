//! Integration tests for the demand subsystem (`flix_core::demand`):
//! query-directed solves must fall back soundly through stratified
//! negation, compose with the incremental engine (query after delta),
//! degrade to a partial model ⊑ the full model on budget exhaustion,
//! reject malformed queries up front, and keep the rewrite invisible in
//! stats, profiles, observers, and provenance.

use flix_core::{
    BodyItem, Budget, Delta, DemandError, Head, HeadTerm, LatticeOps, Observer, Program,
    ProgramBuilder, Query, RuleEvaluated, SolveError, Solver, Term, Value, ValueLattice,
};
use flix_lattice::MinCost;
use std::sync::{Arc, Mutex};

/// The Edge/Path transitive-closure program over the given edges.
fn paths_program(edges: &[(i64, i64)]) -> Program {
    let mut b = ProgramBuilder::new();
    let edge = b.relation("Edge", 2);
    let path = b.relation("Path", 2);
    for (x, y) in edges {
        b.fact(edge, vec![Value::from(*x), Value::from(*y)]);
    }
    b.rule(
        Head::new(path, [HeadTerm::var("x"), HeadTerm::var("y")]),
        [BodyItem::atom(edge, [Term::var("x"), Term::var("y")])],
    );
    b.rule(
        Head::new(path, [HeadTerm::var("x"), HeadTerm::var("z")]),
        [
            BodyItem::atom(path, [Term::var("x"), Term::var("y")]),
            BodyItem::atom(edge, [Term::var("y"), Term::var("z")]),
        ],
    );
    b.build().expect("valid program")
}

/// A chain 0 → 1 → ... → n-1 plus the given extra edges.
fn chain(n: i64, extra: &[(i64, i64)]) -> Vec<(i64, i64)> {
    let mut edges: Vec<(i64, i64)> = (0..n - 1).map(|i| (i, i + 1)).collect();
    edges.extend_from_slice(extra);
    edges
}

/// Edge/Path/Node/Unreachable: `Unreachable(x, y)` holds for node pairs
/// with *no* path, via stratified negation over the full `Path` relation.
fn negation_program(nodes: &[i64], edges: &[(i64, i64)]) -> Program {
    let mut b = ProgramBuilder::new();
    let edge = b.relation("Edge", 2);
    let path = b.relation("Path", 2);
    let node = b.relation("Node", 1);
    let unreachable = b.relation("Unreachable", 2);
    for n in nodes {
        b.fact(node, vec![Value::from(*n)]);
    }
    for (x, y) in edges {
        b.fact(edge, vec![Value::from(*x), Value::from(*y)]);
    }
    b.rule(
        Head::new(path, [HeadTerm::var("x"), HeadTerm::var("y")]),
        [BodyItem::atom(edge, [Term::var("x"), Term::var("y")])],
    );
    b.rule(
        Head::new(path, [HeadTerm::var("x"), HeadTerm::var("z")]),
        [
            BodyItem::atom(path, [Term::var("x"), Term::var("y")]),
            BodyItem::atom(edge, [Term::var("y"), Term::var("z")]),
        ],
    );
    b.rule(
        Head::new(unreachable, [HeadTerm::var("x"), HeadTerm::var("y")]),
        [
            BodyItem::atom(node, [Term::var("x")]),
            BodyItem::atom(node, [Term::var("y")]),
            BodyItem::not(path, [Term::var("x"), Term::var("y")]),
        ],
    );
    b.build().expect("valid stratified program")
}

/// Single-source shortest paths (§4.4): Edge(x, y, w) and a
/// Dist(node; MinCost) lattice seeded at node 0.
fn shortest_paths_program(edges: &[(i64, i64, i64)]) -> Program {
    let mut b = ProgramBuilder::new();
    let edge = b.relation("Edge", 3);
    let dist = b.lattice("Dist", 2, LatticeOps::of::<MinCost>());
    let extend = b.function("extend", |args| {
        let d = MinCost::expect_from(&args[0]);
        let c = args[1].as_int().expect("edge weight") as u64;
        d.add_weight(c).to_value()
    });
    b.fact(dist, vec![Value::from(0), MinCost::finite(0).to_value()]);
    for (x, y, w) in edges {
        b.fact(
            edge,
            vec![Value::from(*x), Value::from(*y), Value::from(*w)],
        );
    }
    b.rule(
        Head::new(
            dist,
            [
                HeadTerm::var("y"),
                HeadTerm::app(extend, [Term::var("d"), Term::var("c")]),
            ],
        ),
        [
            BodyItem::atom(dist, [Term::var("x"), Term::var("d")]),
            BodyItem::atom(edge, [Term::var("x"), Term::var("y"), Term::var("c")]),
        ],
    );
    b.build().expect("valid program")
}

/// The sorted answers of query `idx`, rendered.
fn answer_lines(result: &flix_core::QueryResult, idx: usize) -> Vec<String> {
    let mut lines: Vec<String> = result.answers(idx).map(|f| f.to_string()).collect();
    lines.sort();
    lines
}

// ---------------------------------------------------------------------
// Negation fallback.
// ---------------------------------------------------------------------

#[test]
fn demand_through_negation_falls_back_to_full_evaluation() {
    let nodes: Vec<i64> = (0..6).collect();
    let program = negation_program(&nodes, &[(0, 1), (1, 2), (4, 5)]);
    let query = Query::new("Unreachable", vec![Some(Value::from(0)), None]);
    let result = Solver::new()
        .solve_query(&program, std::slice::from_ref(&query))
        .expect("query solves");

    // The negated dependency was evaluated in full; the queried
    // predicate stayed guarded.
    assert!(result.full_predicates().any(|p| p == "Path"));
    assert!(result.demanded_predicates().any(|p| p == "Unreachable"));
    assert!(!result.used_fallback());

    // Answers are exactly the full model's matching tuples: nodes 3, 4,
    // and 5 are unreachable from 0 (and 0 cannot reach itself).
    let full = Solver::new().solve(&program).expect("full solve");
    let mut reference: Vec<String> = full
        .facts("Unreachable")
        .expect("declared")
        .filter(|f| query.matches(f))
        .map(|f| f.to_string())
        .collect();
    reference.sort();
    assert_eq!(answer_lines(&result, 0), reference);
    assert!(result
        .solution()
        .contains("Unreachable", &[0.into(), 3.into()]));
    assert!(!result
        .solution()
        .contains("Unreachable", &[0.into(), 2.into()]));
}

#[test]
fn negation_fallback_still_restricts_the_guarded_predicate() {
    let nodes: Vec<i64> = (0..6).collect();
    let program = negation_program(&nodes, &[(0, 1), (1, 2), (4, 5)]);
    let result = Solver::new()
        .solve_query(
            &program,
            &[Query::new("Unreachable", vec![Some(Value::from(0)), None])],
        )
        .expect("query solves");
    let full = Solver::new().solve(&program).expect("full solve");
    // Path fell back to full evaluation, but Unreachable itself only
    // materialized the demanded slice (first column = 0).
    assert_eq!(result.solution().len("Path"), full.len("Path"));
    assert!(
        result.solution().len("Unreachable").expect("declared")
            < full.len("Unreachable").expect("declared")
    );
}

// ---------------------------------------------------------------------
// Composition with the incremental engine: query after delta.
// ---------------------------------------------------------------------

#[test]
fn query_after_delta_matches_resumed_model() {
    let base = paths_program(&chain(8, &[]));
    let solver = Solver::new();
    let prior = solver.solve(&base).expect("base solves");

    // A new edge 7 → 0 closes the chain into a cycle.
    let delta = Delta::new().insert("Edge", vec![Value::from(7), Value::from(0)]);
    let resumed = solver.resume(&base, &prior, &delta).expect("resumes");

    // The demand route: fold the delta into the program and point-query
    // the updated world, never materializing the full updated model.
    let updated = base.with_delta(&delta).expect("delta fits");
    let query = Query::new("Path", vec![Some(Value::from(5)), None]);
    let result = solver
        .solve_query(&updated, std::slice::from_ref(&query))
        .expect("query solves");

    let mut reference: Vec<String> = resumed
        .facts("Path")
        .expect("declared")
        .filter(|f| query.matches(f))
        .map(|f| f.to_string())
        .collect();
    reference.sort();
    assert_eq!(answer_lines(&result, 0), reference);
    // The cycle makes every node reachable from 5.
    assert_eq!(result.solution().len("Path"), Some(8));
}

#[test]
fn with_delta_rejects_malformed_deltas() {
    let base = paths_program(&chain(4, &[]));
    let unknown = Delta::new().insert("Nope", vec![Value::from(1)]);
    assert!(base.with_delta(&unknown).is_err());
    let wrong_arity = Delta::new().insert("Edge", vec![Value::from(1)]);
    assert!(base.with_delta(&wrong_arity).is_err());
}

// ---------------------------------------------------------------------
// Budget exhaustion mid-query.
// ---------------------------------------------------------------------

#[test]
fn budget_exhaustion_returns_partial_below_full_model() {
    let program = paths_program(&chain(40, &[(39, 0)]));
    let query = Query::new("Path", vec![Some(Value::from(0)), None]);
    let failure = Solver::new()
        .budget(Budget::new().max_derivations(25))
        .solve_query(&program, &[query])
        .expect_err("the budget must trip before the fixed point");
    assert!(matches!(failure.error, SolveError::BudgetExceeded { .. }));

    // The partial model is a sound under-approximation: every reported
    // fact is in the full model.
    let full = Solver::new().solve(&program).expect("full solve");
    let partial_paths: Vec<Vec<Value>> = failure
        .partial
        .relation("Path")
        .expect("declared")
        .map(|row| row.to_vec())
        .collect();
    assert!(
        !partial_paths.is_empty(),
        "some work happened before the trip"
    );
    assert!(partial_paths.len() < full.len("Path").expect("declared"));
    for row in &partial_paths {
        assert!(full.contains("Path", row), "spurious fact {row:?}");
    }
    // The failure stats are remapped onto the original rules.
    assert_eq!(failure.stats.per_rule.len(), program.num_rules());
    assert!(failure.stats.per_rule.iter().all(|r| !r.head.contains('$')));
}

#[test]
fn budget_exhaustion_keeps_lattice_cells_below_full_values() {
    // A long weighted cycle; a tiny derivation budget stops the ripple
    // mid-propagation. MinCost order: partial ⊑ full means every partial
    // cost is *at least* the full (optimal) cost.
    let edges: Vec<(i64, i64, i64)> = (0..30).map(|i| (i, (i + 1) % 30, 1)).collect();
    let program = shortest_paths_program(&edges);
    let query = Query::new("Dist", vec![None, None]);
    let failure = Solver::new()
        .budget(Budget::new().max_derivations(10))
        .solve_query(&program, &[query])
        .expect_err("the budget must trip before the fixed point");
    let full = Solver::new().solve(&program).expect("full solve");
    for (key, value) in failure.partial.lattice("Dist").expect("declared") {
        let partial_cost = MinCost::expect_from(value).value().expect("finite");
        let full_value = full.lattice_value("Dist", key).expect("lattice predicate");
        let full_cost = MinCost::expect_from(&full_value).value().expect("finite");
        assert!(
            partial_cost >= full_cost,
            "partial cell above full model at {key:?}: {partial_cost} < {full_cost}"
        );
    }
}

// ---------------------------------------------------------------------
// Malformed queries.
// ---------------------------------------------------------------------

#[test]
fn malformed_queries_fail_fast_with_empty_partial() {
    let program = paths_program(&chain(4, &[]));
    let failure = Solver::new()
        .solve_query(&program, &[Query::new("Nope", vec![None, None])])
        .expect_err("unknown predicate");
    assert!(matches!(
        failure.error,
        SolveError::Demand(DemandError::UnknownPredicate { .. })
    ));
    assert_eq!(failure.partial.total_facts(), 0);

    let failure = Solver::new()
        .solve_query(&program, &[Query::new("Path", vec![None, None, None])])
        .expect_err("arity mismatch");
    let SolveError::Demand(DemandError::ArityMismatch {
        predicate,
        declared,
        found,
    }) = &failure.error
    else {
        panic!("expected an arity mismatch, got {}", failure.error);
    };
    assert_eq!((predicate.as_str(), *declared, *found), ("Path", 2, 3));

    // One bad query poisons the whole batch — nothing is solved.
    let failure = Solver::new()
        .solve_query(
            &program,
            &[
                Query::new("Path", vec![Some(Value::from(0)), None]),
                Query::new("Path", vec![None]),
            ],
        )
        .expect_err("second query is malformed");
    assert!(matches!(failure.error, SolveError::Demand(_)));
    assert_eq!(failure.partial.total_facts(), 0);
}

// ---------------------------------------------------------------------
// Rewrite invisibility: observers, profiles, provenance.
// ---------------------------------------------------------------------

#[derive(Default)]
struct Recorder {
    rules: Mutex<Vec<usize>>,
}

impl Observer for Recorder {
    fn rule_evaluated(&self, event: &RuleEvaluated) {
        self.rules.lock().expect("poisoned").push(event.rule);
    }
}

#[test]
fn observer_sees_only_original_rule_indices() {
    let program = paths_program(&chain(10, &[]));
    let recorder = Arc::new(Recorder::default());
    let result = Solver::new()
        .observer(recorder.clone() as Arc<dyn Observer>)
        .solve_query(
            &program,
            &[Query::new("Path", vec![Some(Value::from(0)), None])],
        )
        .expect("query solves");
    assert!(result.stats().rule_evaluations > 0);
    let rules = recorder.rules.lock().expect("poisoned");
    assert!(!rules.is_empty(), "the observer fired");
    assert!(
        rules.iter().all(|&r| r < program.num_rules()),
        "a rewritten rule index leaked: {rules:?}"
    );
}

#[test]
fn profile_table_groups_rewritten_variants_under_original_rules() {
    let program = paths_program(&chain(10, &[]));
    let result = Solver::new()
        .solve_query(
            &program,
            &[Query::new("Path", vec![Some(Value::from(0)), None])],
        )
        .expect("query solves");
    let table = flix_core::render_profile_table(result.stats());
    assert!(table.contains("Path"), "{table}");
    assert!(!table.contains('$'), "demand machinery leaked:\n{table}");
    // Exactly the original program's rules are listed (rule 0 and 1).
    assert_eq!(result.stats().per_rule.len(), 2);
}

#[test]
fn explain_works_through_the_rewrite() {
    let program = paths_program(&chain(5, &[]));
    let result = Solver::new()
        .record_provenance(true)
        .solve_query(
            &program,
            &[Query::new("Path", vec![Some(Value::from(0)), None])],
        )
        .expect("query solves");
    let tree = result
        .solution()
        .explain("Path", &[Value::from(0), Value::from(2)])
        .expect("demanded fact has provenance");
    let rendered = tree.to_string();
    assert!(rendered.contains("Path(0, 2)"), "{rendered}");
    assert!(
        !rendered.contains('$'),
        "demand premise leaked:\n{rendered}"
    );
    // The recursive rule of the *original* program is rule 1.
    assert!(rendered.contains("[rule 1]"), "{rendered}");
}

// ---------------------------------------------------------------------
// Demand restriction facts.
// ---------------------------------------------------------------------

#[test]
fn disjoint_subsystems_stay_unmaterialized() {
    // Two independent IDB subsystems over disjoint EDB inputs; querying
    // one must not evaluate (or even load) the other.
    let mut b = ProgramBuilder::new();
    let edge_a = b.relation("EdgeA", 2);
    let path_a = b.relation("PathA", 2);
    let edge_b = b.relation("EdgeB", 2);
    let path_b = b.relation("PathB", 2);
    for (x, y) in [(1, 2), (2, 3)] {
        b.fact(edge_a, vec![Value::from(x), Value::from(y)]);
        b.fact(edge_b, vec![Value::from(10 * x), Value::from(10 * y)]);
    }
    for (edge, path) in [(edge_a, path_a), (edge_b, path_b)] {
        b.rule(
            Head::new(path, [HeadTerm::var("x"), HeadTerm::var("y")]),
            [BodyItem::atom(edge, [Term::var("x"), Term::var("y")])],
        );
        b.rule(
            Head::new(path, [HeadTerm::var("x"), HeadTerm::var("z")]),
            [
                BodyItem::atom(path, [Term::var("x"), Term::var("y")]),
                BodyItem::atom(edge, [Term::var("y"), Term::var("z")]),
            ],
        );
    }
    let program = b.build().expect("valid program");
    let result = Solver::new()
        .solve_query(
            &program,
            &[Query::new("PathA", vec![Some(Value::from(1)), None])],
        )
        .expect("query solves");
    assert_eq!(
        result.solution().len("PathB"),
        Some(0),
        "undemanded IDB materialized"
    );
    assert_eq!(
        result.solution().len("EdgeB"),
        Some(0),
        "irrelevant EDB loaded"
    );
    assert!(result.solution().len("PathA").expect("declared") > 0);
    // SolveStats confirm the PathB rules never ran.
    for rs in &result.stats().per_rule {
        if rs.head == "PathB" {
            assert_eq!(rs.evaluations, 0, "undemanded rule evaluated");
        }
    }
}

#[test]
fn queries_on_extensional_predicates_answer_from_facts() {
    let program = paths_program(&chain(5, &[]));
    let result = Solver::new()
        .solve_query(
            &program,
            &[Query::new("Edge", vec![Some(Value::from(2)), None])],
        )
        .expect("query solves");
    assert_eq!(answer_lines(&result, 0), vec!["2, 3".to_string()]);
    // No rules were demanded at all.
    assert_eq!(result.demanded_predicates().count(), 0);
}

#[test]
fn multiple_queries_union_their_demands() {
    let program = paths_program(&[(1, 2), (2, 3), (10, 11), (20, 21)]);
    let result = Solver::new()
        .solve_query(
            &program,
            &[
                Query::new("Path", vec![Some(Value::from(1)), None]),
                Query::new("Path", vec![Some(Value::from(10)), None]),
            ],
        )
        .expect("query solves");
    assert_eq!(answer_lines(&result, 0), vec!["1, 2", "1, 3"]);
    assert_eq!(answer_lines(&result, 1), vec!["10, 11"]);
    // The component rooted at 20 is undemanded.
    assert!(!result.solution().contains("Path", &[20.into(), 21.into()]));
}

#[test]
fn bound_lattice_value_filters_answers_without_widening_demand() {
    let edges: Vec<(i64, i64, i64)> = vec![(0, 1, 4), (1, 2, 3), (0, 2, 9)];
    let program = shortest_paths_program(&edges);
    // Binding the value column filters the answers by the cell's final
    // value; the cell itself is still demanded whole (by key).
    let hit = Query::new(
        "Dist",
        vec![Some(Value::from(2)), Some(MinCost::finite(7).to_value())],
    );
    let miss = Query::new(
        "Dist",
        vec![Some(Value::from(2)), Some(MinCost::finite(9).to_value())],
    );
    let result = Solver::new()
        .solve_query(&program, &[hit, miss])
        .expect("query solves");
    assert_eq!(result.answers(0).count(), 1);
    assert_eq!(
        result.answers(1).count(),
        0,
        "intermediate value must not match"
    );
}

#[test]
fn query_directed_solve_agrees_across_strategies_and_threads() {
    let program = paths_program(&chain(12, &[(11, 4), (7, 1)]));
    let query = Query::new("Path", vec![Some(Value::from(3)), None]);
    let reference = {
        let result = Solver::new()
            .solve_query(&program, std::slice::from_ref(&query))
            .expect("query solves");
        answer_lines(&result, 0)
    };
    for solver in [
        Solver::new().strategy(flix_core::Strategy::Naive),
        Solver::new().threads(4),
    ] {
        let result = solver
            .solve_query(&program, std::slice::from_ref(&query))
            .expect("query solves");
        assert_eq!(answer_lines(&result, 0), reference);
    }
}
