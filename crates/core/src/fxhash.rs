//! A small, fast, non-cryptographic hasher for the solver's internal
//! tables (the Firefox/rustc "Fx" multiply-rotate construction).
//!
//! The fact store hashes *encoded* tuples — short sequences of `u64`
//! slots — millions of times per solve; SipHash's per-hash setup cost
//! dominates at that grain. Keys are engine-controlled (row encodings,
//! spill values), not attacker-controlled, so HashDoS resistance is not
//! needed here.

use std::hash::{BuildHasherDefault, Hasher};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The hasher: one multiply-rotate step per written word.
#[derive(Default, Clone)]
pub(crate) struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add(u64::from_le_bytes(chunk.try_into().expect("8 bytes")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(tail) ^ rest.len() as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }
}

/// `HashMap` with the Fx hasher.
pub(crate) type FxHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// `HashSet` with the Fx hasher.
pub(crate) type FxHashSet<T> = std::collections::HashSet<T, BuildHasherDefault<FxHasher>>;

/// Hashes a sequence of encoded value slots (the row-hash used by the
/// columnar store's membership set and indexes).
#[inline]
pub(crate) fn hash_slots(slots: &[u64]) -> u64 {
    let mut h = FxHasher::default();
    for &s in slots {
        h.add(s);
    }
    // Length matters: (a) and (a, 0) must not collide trivially.
    h.add(slots.len() as u64);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_hashes_differ_by_length_and_content() {
        assert_ne!(hash_slots(&[1]), hash_slots(&[1, 0]));
        assert_ne!(hash_slots(&[1, 2]), hash_slots(&[2, 1]));
        assert_eq!(hash_slots(&[7, 9]), hash_slots(&[7, 9]));
    }

    #[test]
    fn byte_writes_cover_tails() {
        let mut a = FxHasher::default();
        a.write(b"hello world!!");
        let mut b = FxHasher::default();
        b.write(b"hello world!?");
        assert_ne!(a.finish(), b.finish());
    }
}
